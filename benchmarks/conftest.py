"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates (part of) a table or figure of the paper at
a configurable problem scale:

* default: ``REPRO_SCALE=0.32`` — minutes-not-hours wall-clock, same
  qualitative shape;
* ``REPRO_SCALE=1.0 pytest benchmarks/ --benchmark-only`` — the paper's
  exact problem sizes (n=200 shortest paths, n up to 640 gauss).

The *simulated* seconds are attached to each benchmark via
``benchmark.extra_info`` — the wall-clock numbers pytest-benchmark
reports measure the simulator itself, not the T800 machine.
"""

import os

import pytest

SCALE = float(os.environ.get("REPRO_SCALE", "0.32"))


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE

"""Benchmark T2 — Table 2: Gaussian elimination grid.

Regenerates the Skil absolute times, DPFL/Skil quotients (paper: 3.48 -
6.69, growing with n, shrinking with p) and Skil/Parix-C quotients
(paper: 0.91 - 2.64, shrinking with p) over the paper's (p, n) grid, and
checks those bands and trends.
"""

import pytest

from repro.eval.experiments import TABLE2_NS, TABLE2_PS, table2
from repro.eval.harness import run_gauss
from repro.eval.tables import format_table2


def test_table2_full_grid(benchmark, scale):
    cells = benchmark.pedantic(lambda: table2(scale=scale), rounds=1, iterations=1)
    print()
    print(format_table2(cells))
    assert len(cells) == len(TABLE2_PS) * len(TABLE2_NS)

    by_p: dict[int, list] = {}
    for c in cells:
        by_p.setdefault(c.p, []).append(c)

    for p, col in by_p.items():
        col.sort(key=lambda c: c.n)
        for c in col:
            if c.dpfl_over_skil is not None:
                assert 2.5 < c.dpfl_over_skil < 8.0, f"DPFL/Skil off at {c.p},{c.n}"
            assert 0.8 < c.skil_over_c < 3.0, f"Skil/C off at {c.p},{c.n}"
        # DPFL/Skil grows with the matrix size (comm overhead dilutes)
        ratios = [c.dpfl_over_skil for c in col if c.dpfl_over_skil]
        assert ratios == sorted(ratios) or len(ratios) < 2

    # Skil/C shrinks with the network size at the largest n
    largest_n = max(c.n for c in cells)
    last = [c for c in cells if c.n == largest_n]
    last.sort(key=lambda c: c.p)
    assert last[0].skil_over_c >= last[-1].skil_over_c


def test_table2_memory_gaps(benchmark):
    """The paper could not fit large matrices on small networks (1 MB
    nodes); the same cells must be marked infeasible for DPFL here."""
    from repro.eval.harness import fits_paper_memory

    benchmark.pedantic(lambda: fits_paper_memory(640, 4, "dpfl"),
                       rounds=1, iterations=1)

    assert not fits_paper_memory(640, 4, "dpfl")
    assert fits_paper_memory(640, 64, "dpfl")
    assert fits_paper_memory(64, 4, "dpfl")


@pytest.mark.parametrize("language", ["skil", "dpfl", "parix-c"])
def test_bench_gauss_p16(benchmark, scale, language):
    """Wall-clock of simulating one 4x4 Table-2 cell per language."""
    n = max(16, int(256 * scale))
    n -= n % 16

    def run():
        return run_gauss(language, 16, n)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    assert result.seconds > 0

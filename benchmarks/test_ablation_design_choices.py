"""Benchmarks A4/A5 — design-choice ablations from DESIGN.md §5.

These quantify the two mechanisms the paper credits for Skil beating the
old message-passing C in Table 1: virtual-topology embeddings and
asynchronous communication.  The topology ablation doubles as a
documented negative result of this reproduction — see
``ablation_topology``'s docstring and EXPERIMENTS.md.
"""

from repro.eval.experiments import ablation_sync_comm, ablation_topology
from repro.eval.tables import format_ablation


def test_ablation_virtual_topology(benchmark, scale):
    res = benchmark.pedantic(
        lambda: ablation_topology(scale=scale, p=64), rounds=1, iterations=1
    )
    print()
    print(format_ablation(res))
    benchmark.extra_info["measured_ratio"] = res.measured_ratio
    benchmark.extra_info["end_to_end_ratio"] = res.details["end_to_end_ratio"]
    # link level: a wrap message must cost ~(g-1)/2 x more unfolded
    assert res.measured_ratio > 2.0
    # end to end: documented wash — the embedding neither helps nor
    # hurts by more than a few percent in the store-and-forward model
    assert 0.9 < res.details["end_to_end_ratio"] < 1.15


def test_ablation_virtual_topology_link_ratio_grows_with_p(benchmark, scale):
    small = ablation_topology(scale=scale, p=16)
    big = benchmark.pedantic(
        lambda: ablation_topology(scale=scale, p=64), rounds=1, iterations=1
    )
    print()
    print(format_ablation(small))
    print(format_ablation(big))
    # wrap-around penalties scale with the torus side at the link level
    assert big.measured_ratio > small.measured_ratio


def test_ablation_sync_comm(benchmark, scale):
    res = benchmark.pedantic(
        lambda: ablation_sync_comm(scale=scale, p=64), rounds=1, iterations=1
    )
    print()
    print(format_ablation(res))
    benchmark.extra_info["measured_ratio"] = res.measured_ratio
    assert res.measured_ratio > 1.0

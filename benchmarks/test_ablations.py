"""Benchmarks A1-A3 — the paper's in-text quantitative claims.

* A1 (§5.1 / ref [3]): an *equally optimized* C matmul is ~20 % faster
  than the Skil version ("a Skil program could never beat an equally
  well optimized C version ... since Skil is translated to
  message-passing C").
* A2 (§5.2): the complete gauss with pivot search/exchange runs "about
  twice as long" as the simple version.
* A3 (§2.4): translation by instantiation avoids the "important
  run-time overheads" of closures.
"""

from repro.eval.experiments import (
    ablation_equal_c,
    ablation_full_gauss,
    ablation_instantiation,
)
from repro.eval.tables import format_ablation


def test_ablation_equal_c(benchmark, scale):
    res = benchmark.pedantic(
        lambda: ablation_equal_c(scale=scale), rounds=1, iterations=1
    )
    print()
    print(format_ablation(res))
    benchmark.extra_info["measured_ratio"] = res.measured_ratio
    # paper: around 20 % slower; accept 10-40 %
    assert 1.05 < res.measured_ratio < 1.45


def test_ablation_full_gauss(benchmark, scale):
    res = benchmark.pedantic(
        lambda: ablation_full_gauss(scale=scale), rounds=1, iterations=1
    )
    print()
    print(format_ablation(res))
    benchmark.extra_info["measured_ratio"] = res.measured_ratio
    # paper: "about twice as long"; accept 1.5 - 3.5
    assert 1.5 < res.measured_ratio < 3.5


def test_ablation_instantiation(benchmark, scale):
    res = benchmark.pedantic(
        lambda: ablation_instantiation(scale=scale), rounds=1, iterations=1
    )
    print()
    print(format_ablation(res))
    benchmark.extra_info["measured_ratio"] = res.measured_ratio
    # closures must cost measurably more, else instantiation is pointless
    assert res.measured_ratio > 1.2

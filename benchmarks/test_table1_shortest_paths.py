"""Benchmark T1 — Table 1: shortest paths, Skil vs DPFL vs old Parix-C.

Regenerates the paper's Table 1 rows (grids 2x2 ... 8x8, n ~ 200) and
checks the reproduced *shape*:

* Skil is ~6x faster than DPFL at every grid (paper: 6.04 - 6.51);
* Skil beats the old message-passing C at every grid (paper: Skil/C
  between 0.90 and 0.97; our simulated machine gives Skil a slightly
  larger edge on big grids because the naive torus embedding penalises
  the old C's wrap-around rotations more than Parix did).
"""

import pytest

from repro.eval.experiments import table1
from repro.eval.harness import run_shpaths
from repro.eval.tables import format_table1


def test_table1_full_grid(benchmark, scale):
    rows = benchmark.pedantic(lambda: table1(scale=scale), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [
        (r.p, round(r.skil_seconds, 2), round(r.speedup_vs_dpfl, 2)) for r in rows
    ]
    print()
    print(format_table1(rows))
    assert len(rows) == 7
    for r in rows:
        # who wins, by roughly what factor
        assert 4.0 < r.speedup_vs_dpfl < 9.0, f"DPFL/Skil off at p={r.p}"
        assert r.ratio_vs_c_old < 1.1, f"Skil should beat old C at p={r.p}"
    # speed-ups degrade (mildly) as partitions shrink
    ups = [r.speedup_vs_dpfl for r in rows]
    assert ups[0] >= ups[-1]


@pytest.mark.parametrize("language", ["skil", "dpfl", "parix-c-old"])
def test_bench_shpaths_8x8(benchmark, scale, language):
    """Wall-clock of simulating one 8x8 Table-1 cell per language."""
    n = max(8, int(200 * scale))

    def run():
        return run_shpaths(language, 64, n)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["messages"] = result.messages
    assert result.seconds > 0

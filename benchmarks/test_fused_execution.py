"""Benchmark F — fused whole-array execution vs the per-rank loop.

Times the same skeleton workload under both execution modes (see
docs/PERFORMANCE.md) and asserts the *simulated* seconds agree bitwise —
the wall-clock gap is purely simulator speed.  ``python -m
repro.eval bench`` is the standalone version with the committed JSON
record; this keeps the comparison visible in the pytest-benchmark suite.
"""

import numpy as np
import pytest

from repro.arrays.darray import DistArray
from repro.machine.machine import Machine
from repro.skeletons import PLUS, SkilContext, skil_fn

P = 64


def _workload(fused: bool, n: int, m: int) -> float:
    ctx = SkilContext(Machine(P), fused=fused)
    data = np.random.default_rng(0).uniform(-1.0, 1.0, size=(n, m))
    src = DistArray.from_global(ctx.machine, data)
    dst = DistArray.from_global(ctx.machine, np.zeros((n, m)))
    f = skil_fn(
        ops=2, vectorized=lambda block, grids, env: block * 1.0001 + grids[0]
    )(lambda v, ix: v * 1.0001 + ix[0])
    conv = skil_fn(
        ops=2, vectorized=lambda block, grids, env: block * block
    )(lambda v, ix: v * v)
    for _ in range(5):
        ctx.array_map(f, src, dst)
        ctx.array_copy(dst, src)
    total = ctx.array_fold(conv, PLUS, src)
    assert np.isfinite(total)
    return ctx.machine.time


@pytest.mark.parametrize("mode", ["fused", "per-rank"])
def test_bench_fused_vs_per_rank(benchmark, scale, mode):
    n = max(P, int(512 * scale))
    m = max(16, int(192 * scale))
    sim = benchmark.pedantic(
        lambda: _workload(mode == "fused", n, m), rounds=3, iterations=1
    )
    benchmark.extra_info["simulated_seconds"] = sim
    benchmark.extra_info["p"] = P
    # the two modes must simulate the identical machine time
    assert sim == _workload(mode != "fused", n, m)

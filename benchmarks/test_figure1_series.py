"""Benchmark F1 — Figure 1: the two ratio-vs-processors panels.

The paper plots, per matrix size, Skil's speed-up over DPFL (left,
"most of the speedups ... are grouped around the factor 6, while only a
few go below 5 [for] small partitions") and its slow-down vs Parix-C
(right, "mainly grouped around 2, in some cases (generally, for large
networks) going down to 1").
"""

from repro.eval.experiments import figure1, table2
from repro.eval.figures import format_figure1, series_csv


def test_figure1_series_shape(benchmark, scale):
    cells = benchmark.pedantic(lambda: table2(scale=scale), rounds=1, iterations=1)
    speedups, slowdowns = figure1(cells)
    print()
    print(format_figure1(speedups, slowdowns))
    print(series_csv(speedups, "speedup_vs_dpfl"))
    print(series_csv(slowdowns, "slowdown_vs_c"))

    all_ups = [v for pts in speedups.values() for _, v in pts]
    all_downs = [v for pts in slowdowns.values() for _, v in pts]
    assert all_ups and all_downs

    # left panel: grouped around 6, dips only for small partitions
    assert sum(1 for v in all_ups if 5.0 <= v <= 7.0) >= len(all_ups) * 0.6
    assert min(all_ups) > 2.5

    # right panel: grouped around 2, approaching 1 on large networks
    assert sum(1 for v in all_downs if 1.5 <= v <= 2.7) >= len(all_downs) * 0.5
    biggest_p = max(p for pts in slowdowns.values() for p, _ in pts)
    big_net = [v for pts in slowdowns.values() for p, v in pts if p == biggest_p]
    assert min(big_net) < 1.6, "large networks should approach parity with C"

    # within one matrix size, the speed-up falls as processors grow
    for n, pts in speedups.items():
        vals = [v for _, v in pts]
        if len(vals) >= 2:
            assert vals[0] >= vals[-1] - 0.3, f"speed-up trend off for n={n}"


def test_bench_figure1_generation(benchmark, scale):
    """Wall-clock of regenerating the full figure from scratch."""
    small = min(scale, 0.15)
    result = benchmark.pedantic(
        lambda: figure1(scale=small), rounds=1, iterations=1
    )
    speedups, slowdowns = result
    benchmark.extra_info["series"] = {
        "speedups": {n: len(p) for n, p in speedups.items()},
    }
    assert speedups and slowdowns

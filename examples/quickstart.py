"""Quickstart: skeletons on a simulated 16-transputer machine.

Creates a distributed array on a 4x4 machine, maps a function over it,
folds it to a scalar, and prints what that cost in simulated machine
time — the workflow of §3 of the paper in ~30 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DISTR_TORUS2D, Machine, SKIL
from repro.skeletons import PLUS, SkilContext, skil_fn

# a 16-processor machine with the paper's T800/Parix cost model
machine = Machine(16)
ctx = SkilContext(machine, SKIL)

# --- array_create: initialise each element from its global index --------
init = skil_fn(ops=1, vectorized=lambda grids, env: grids[0] * 64 + grids[1])(
    lambda ix: ix[0] * 64 + ix[1]
)
a = ctx.array_create(2, (64, 64), (0, 0), (-1, -1), init, DISTR_TORUS2D)
b = ctx.array_create(2, (64, 64), (0, 0), (-1, -1), skil_fn(ops=0)(lambda ix: 0),
                     DISTR_TORUS2D)

# --- array_map: the paper's above_thresh example -------------------------
thresh = 2000.0
above = skil_fn(
    ops=1, vectorized=lambda blk, grids, env: (blk >= thresh).astype(float)
)(lambda v, ix: float(v >= thresh))
ctx.array_map(above, a, b)

# --- array_fold: count the elements above the threshold ------------------
count = ctx.array_fold(skil_fn(ops=0)(lambda v, ix: v), PLUS, b)

print(f"machine          : {machine.p} processors "
      f"({machine.mesh.rows}x{machine.mesh.cols} mesh)")
print(f"elements >= {thresh:.0f}: {int(count)} of {64 * 64}")
print(f"simulated time   : {machine.time * 1e3:.3f} ms")
print(f"messages sent    : {machine.stats.messages}")
print(f"skeleton calls   : {machine.stats.skeleton_calls}")

assert int(count) == int((np.arange(64)[:, None] * 64 + np.arange(64) >= thresh).sum())
print("verified against numpy ✓")

"""Road-network shortest paths — the paper's §4.1 application.

Builds a random road network (cities + highways), computes all-pairs
shortest travel times with the (min, +) ``array_gen_mult`` skeleton on a
simulated 8x8 transputer grid, verifies against scipy's Dijkstra, and
compares the three language backends of the evaluation section.

Run:  python examples/shortest_paths_roadmap.py
"""

import numpy as np
from scipy.sparse.csgraph import shortest_path

from repro import Machine, SKIL
from repro.apps import random_distance_matrix, round_up_to_grid, shpaths
from repro.baselines import make_c_machine, shpaths_c, shpaths_dpfl
from repro.skeletons import SkilContext

P = 64  # 8x8 grid, the paper's largest network
N_CITIES = round_up_to_grid(96, 8)

print(f"road network: {N_CITIES} cities, {P} processors\n")

# distance matrix: travel minutes between directly connected cities
dist = random_distance_matrix(N_CITIES, density=0.08, max_weight=90, seed=42)

# --- Skil ---------------------------------------------------------------
ctx = SkilContext(Machine(P), SKIL)
travel, rep_skil = shpaths(ctx, dist)

# --- oracle check --------------------------------------------------------
w = dist.copy()
w[np.isinf(w)] = 0
oracle = shortest_path(w, method="D")
assert np.allclose(travel, oracle)
print("results verified against scipy Dijkstra ✓")

reachable = np.isfinite(travel) & ~np.eye(N_CITIES, dtype=bool)
print(f"reachable pairs     : {reachable.sum()} / {N_CITIES * (N_CITIES - 1)}")
print(f"longest shortest path: {travel[reachable].max():.0f} minutes\n")

# --- language comparison (one Table 1 row) --------------------------------
_, rep_dpfl = shpaths_dpfl(P, dist)
_, rep_cold = shpaths_c(make_c_machine(P, old=True), dist, old=True)

print(f"{'backend':<22}{'simulated time':>16}")
print(f"{'Skil':<22}{rep_skil.seconds:>13.2f} s")
print(f"{'DPFL (functional)':<22}{rep_dpfl.seconds:>13.2f} s"
      f"   ({rep_dpfl.seconds / rep_skil.seconds:.1f}x slower)")
print(f"{'old message-passing C':<22}{rep_cold.seconds:>13.2f} s"
      f"   (Skil/C = {rep_skil.seconds / rep_cold.seconds:.2f})")

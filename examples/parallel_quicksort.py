"""Quicksort with the divide&conquer skeleton — the paper's §1 example.

The introduction motivates skeletons with d&c quicksort; this example
runs it on the engine-level task-parallel skeleton and shows why plain
quicksort gains little from transputer-era links (shipping list halves
costs more than sorting them), while a compute-heavy d&c does scale —
the trade-off every skeleton user of that era had to reason about.

Run:  python examples/parallel_quicksort.py
"""

import numpy as np

from repro import Machine, SKIL
from repro.apps import quicksort
from repro.skeletons import SkilContext, skil_fn

rng = np.random.default_rng(0)
data = rng.integers(0, 10**6, size=1024).tolist()

print("--- d&c quicksort (paper §1) -----------------------------------")
for p in (1, 4, 16):
    ctx = SkilContext(Machine(p), SKIL)
    result, rep = quicksort(ctx, data)
    assert result == sorted(data)
    print(f"p={p:>2}: simulated {rep.seconds * 1e3:8.1f} ms   "
          f"messages={ctx.machine.stats.messages}")
print("sorted output verified ✓  (communication-bound: little speed-up)")

print()
print("--- compute-heavy d&c (numerical quadrature) ---------------------")


@skil_fn(ops=400)
def integrate_leaf(interval):
    a, b = interval[0]
    xs = np.linspace(a, b, 400)
    return float(np.trapezoid(np.sin(xs) * np.exp(-xs / 5.0), xs))


for p in (1, 4, 16):
    ctx = SkilContext(Machine(p), SKIL)
    result = ctx.divide_and_conquer(
        is_trivial=lambda iv: (iv[0][1] - iv[0][0]) <= 0.25,
        solve=integrate_leaf,
        split=lambda iv: [
            [(iv[0][0], (iv[0][0] + iv[0][1]) / 2)],
            [((iv[0][0] + iv[0][1]) / 2, iv[0][1])],
        ],
        join=lambda parts: parts[0] + parts[1],
        problem=[(0.0, 16.0)],
        size_of=lambda iv: 400,
        nbytes_of=lambda iv: 16,
    )
    print(f"p={p:>2}: integral={result:.6f}   "
          f"simulated {ctx.machine.time * 1e3:8.1f} ms")

xs = np.linspace(0, 16, 100_000)
expect = np.trapezoid(np.sin(xs) * np.exp(-xs / 5.0), xs)
assert abs(result - expect) < 1e-3
print(f"verified against dense quadrature ({expect:.6f}) ✓")

"""Heat diffusion with the overlap (ghost-cell) extension skeleton.

The paper's conclusions propose "overlapping areas for the single
partitions, in order to reduce communication in operations which
require more than one element at a time. Such operations are used for
instance in solving partial differential equations" — this example is
exactly that: Jacobi iteration of the 2-D heat equation using
``array_map_overlap``, which exchanges one-element halos between
grid-neighbouring partitions instead of doing remote element reads.

Run:  python examples/heat_diffusion_stencil.py
"""

import numpy as np

from repro import Machine, SKIL
from repro.skeletons import SkilContext, skil_fn

P = 16
N = 64
STEPS = 25
ALPHA = 0.2


def jacobi_vec(padded, pad, grids, env):
    """Vectorized 5-point stencil on the halo-extended block.

    ``padded`` is the owned block widened by the (clipped) halo; ``pad``
    gives the offset of the owned window.  Edges of the *global* array
    clamp (repeat the border value), matching the scalar ``get()``.
    """
    r0, c0 = pad
    r1 = r0 + grids[0].size
    c1 = c0 + grids[1].size
    center = padded[r0:r1, c0:c1]

    def shifted(dr, dc):
        rs = slice(r0 + dr, r1 + dr)
        cs = slice(c0 + dc, c1 + dc)
        if rs.start < 0 or rs.stop > padded.shape[0] or cs.start < 0 or (
            cs.stop > padded.shape[1]
        ):
            # global border: clamp by shifting the centre window itself
            out = center.copy()
            if dr == -1:
                out[1:] = center[:-1]
            elif dr == 1:
                out[:-1] = center[1:]
            if dc == -1:
                out[:, 1:] = center[:, :-1]
            elif dc == 1:
                out[:, :-1] = center[:, 1:]
            return out
        return padded[rs, cs]

    return center + ALPHA * (
        shifted(-1, 0) + shifted(1, 0) + shifted(0, -1) + shifted(0, 1) - 4 * center
    )


@skil_fn(ops=7, vectorized=jacobi_vec)
def jacobi(get, ix):
    c = get(0, 0)
    return c + ALPHA * (get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1) - 4 * c)


def oracle_step(t: np.ndarray) -> np.ndarray:
    up = np.vstack([t[:1], t[:-1]])
    down = np.vstack([t[1:], t[-1:]])
    left = np.hstack([t[:, :1], t[:, :-1]])
    right = np.hstack([t[:, 1:], t[:, -1:]])
    return t + ALPHA * (up + down + left + right - 4 * t)


machine = Machine(P)
ctx = SkilContext(machine, SKIL)

# hot spot in the middle of a cold plate
hot = skil_fn(
    ops=1,
    vectorized=lambda grids, env: np.where(
        (abs(grids[0] - N // 2) < 4) & (abs(grids[1] - N // 2) < 4), 100.0, 0.0
    ),
)(lambda ix: 100.0 if abs(ix[0] - N // 2) < 4 and abs(ix[1] - N // 2) < 4 else 0.0)

t_cur = ctx.array_create(2, (N, N), (0, 0), (-1, -1), hot, "DISTR_DEFAULT")
t_new = ctx.array_create(2, (N, N), (0, 0), (-1, -1),
                         skil_fn(ops=0)(lambda ix: 0.0), "DISTR_DEFAULT")

expect = t_cur.global_view()
for step in range(STEPS):
    ctx.array_map_overlap(jacobi, t_cur, t_new, overlap=1)
    t_cur, t_new = t_new, t_cur
    expect = oracle_step(expect)

assert np.allclose(t_cur.global_view(), expect)
print(f"heat diffusion: {N}x{N} plate, {STEPS} Jacobi steps on {P} processors")
print("temperatures verified against a sequential oracle ✓")
print(f"peak temperature  : {t_cur.global_view().max():.2f}")
print(f"simulated time    : {machine.time * 1e3:.1f} ms")
print(f"halo messages     : {machine.stats.messages}")

"""Graph connectivity from a .skil source file.

Compiles ``examples/skil/connectivity.skil`` — transitive closure as
``array_gen_mult`` over the boolean (OR, AND) semiring, a third
instantiation of the paper's generic multiplication after (+,*) and
(min,+) — and checks the reachability matrix against networkx.  Also
runs ``examples/skil/stats.skil`` (folds + a map with computed lifted
arguments) against numpy.

Run:  python examples/graph_connectivity.py
"""

from pathlib import Path

import networkx as nx
import numpy as np

from repro import Machine, SKIL
from repro.lang import compile_skil_file
from repro.skeletons import SkilContext

HERE = Path(__file__).parent / "skil"

# --- connectivity ----------------------------------------------------------
N = 32
rng = np.random.default_rng(11)
adj = (rng.random((N, N)) < 0.06).astype(np.int64)
np.fill_diagonal(adj, 1)

mod = compile_skil_file(HERE / "connectivity.skil")
ctx = SkilContext(Machine(16), SKIL)
closure = mod.run("closure", N, ctx=ctx, externals={"adj": lambda ix: adj[ix]})
reach = closure.global_view().astype(bool)

g = nx.from_numpy_array(adj, create_using=nx.DiGraph)
expect = np.zeros((N, N), dtype=bool)
for i, reachable in nx.all_pairs_shortest_path_length(g):
    for j in reachable:
        expect[i, j] = True
assert np.array_equal(reach, expect)

components = len(list(nx.strongly_connected_components(g)))
print(f"connectivity.skil: {N}-node digraph on 16 processors")
print("reachability matrix verified against networkx ✓")
print(f"reachable pairs        : {int(reach.sum())} / {N * N}")
print(f"strongly conn. comps   : {components}")
print(f"simulated time         : {ctx.machine.time:.3f} s")

# --- z-scores ---------------------------------------------------------------
M = 64
data = rng.normal(loc=5.0, scale=2.0, size=M).astype(np.float32)
mod2 = compile_skil_file(HERE / "stats.skil")
ctx2 = SkilContext(Machine(8), SKIL)
zs = mod2.run("zscores", M, ctx=ctx2,
              externals={"sample": lambda ix: data[ix[0]]})
z = zs.global_view()
expect_z = (data - data.mean()) / np.sqrt(np.mean(data**2) - data.mean() ** 2)
assert np.allclose(z, expect_z, rtol=1e-4)
print(f"\nstats.skil: standardised {M} samples on 8 processors ✓ "
      f"(|mean(z)| = {abs(z.mean()):.2e})")

"""Solving a resistor-network (circuit) system with skeleton Gauss.

Nodal analysis of a random resistor grid produces the classic
diagonally-dominant linear system ``G v = i`` (conductance matrix x
node voltages = injected currents).  We solve it with the paper's
complete Gaussian elimination (§4.2) — fold-based pivot search, row
permutation, pivot-row broadcast, elimination maps — on a simulated
32-processor machine, and show the A2 ablation (pivoting ≈ 2x).

Run:  python examples/gaussian_circuit.py
"""

import numpy as np

from repro import Machine, SKIL
from repro.apps import gauss_full, gauss_simple
from repro.skeletons import SkilContext

P = 16
N = 256  # circuit nodes (divisible by p, as the paper assumes)


def resistor_grid_system(n: int, seed: int = 0):
    """Conductance matrix of a random resistor network + current vector."""
    rng = np.random.default_rng(seed)
    g = np.zeros((n, n))
    # ring backbone + random chords, conductances in siemens
    for i in range(n):
        for j in ([(i + 1) % n] + list(rng.integers(0, n, size=3))):
            if i == j:
                continue
            cond = rng.uniform(0.1, 2.0)
            g[i, j] -= cond
            g[j, i] -= cond
    np.fill_diagonal(g, 0.0)
    np.fill_diagonal(g, -g.sum(axis=1) + 1.0)  # +1: grounding conductance
    currents = rng.uniform(-1.0, 1.0, size=n)
    return g, currents


G, I = resistor_grid_system(N, seed=7)

ctx = SkilContext(Machine(P), SKIL)
voltages, rep_full = gauss_full(ctx, G, I)

expect = np.linalg.solve(G, I)
assert np.allclose(voltages, expect)
print(f"circuit: {N} nodes on {P} processors")
print("node voltages verified against numpy.linalg.solve ✓")
print(f"max |v|           : {np.abs(voltages).max():.4f} V")
print(f"simulated time    : {rep_full.seconds:.2f} s (full, with pivoting)")

ctx2 = SkilContext(Machine(P), SKIL)
_, rep_simple = gauss_simple(ctx2, G, I)
print(f"simulated time    : {rep_simple.seconds:.2f} s (simple, no pivoting)")
print(f"pivoting overhead : {rep_full.seconds / rep_simple.seconds:.2f}x "
      "(paper: 'about twice as long')")

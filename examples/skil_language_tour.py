"""A tour of the Skil language front end.

Compiles the paper's ``above_thresh`` example (§2.4) and the full
shortest-paths program (§4.1) from Skil *source code*, shows the
translation-by-instantiation report and the generated first-order code,
then executes the compiled program on the simulated machine.

Run:  python examples/skil_language_tour.py
"""

import numpy as np

from repro import Machine, SKIL
from repro.apps import random_distance_matrix, shortest_paths_oracle
from repro.apps.skil_sources import SHPATHS_SKIL, THRESHOLD_SKIL
from repro.lang import compile_skil
from repro.skeletons import SkilContext

# --- 1. the §2.4 instantiation example ------------------------------------
print("=" * 70)
print("§2.4 — instantiating array_map(above_thresh(t), A, B)")
print("=" * 70)
mod = compile_skil(THRESHOLD_SKIL)
print("instantiation report:", dict(mod.instantiation_report))
gen = mod.python_source
inst = gen[gen.index("def above_thresh_1"):].split("\n\n")[0]
print("generated instance (threshold lifted to a parameter):\n")
print(inst)

rng = np.random.default_rng(1)
data = rng.uniform(0, 10, size=(16, 16)).astype(np.float32)
ctx = SkilContext(Machine(4), SKIL)
mod.run("threshold", 16, 5.0, ctx=ctx, externals={"init_f": lambda ix: data[ix]})
print(f"\nexecuted on 4 processors in {ctx.machine.time * 1e3:.2f} simulated ms")

# --- 2. the §4.1 shortest-paths program ------------------------------------
print()
print("=" * 70)
print("§4.1 — compiling and running the shpaths program")
print("=" * 70)
n = 32
dist = random_distance_matrix(n, seed=2)
uint_inf = 2**32 - 1
weights = np.where(np.isinf(dist), uint_inf, dist).astype(np.uint64)

mod2 = compile_skil(SHPATHS_SKIL)
print("entry points        :", mod2.entry_names())
print("instantiation report:", dict(mod2.instantiation_report))

ctx2 = SkilContext(Machine(16), SKIL)
result = mod2.run("shpaths", n, ctx=ctx2,
                  externals={"init_f": lambda ix: weights[ix]})
got = result.global_view().astype(float)
got[got >= uint_inf] = np.inf
assert np.allclose(got, shortest_paths_oracle(dist))
print(f"\nshortest paths for n={n} verified ✓  "
      f"(simulated time {ctx2.machine.time:.2f} s on 16 processors)")

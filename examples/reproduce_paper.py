"""One-shot miniature reproduction of the paper's whole evaluation.

Runs Table 1, Table 2, Figure 1 and all five ablations at a small scale
(~1 minute) and prints the same artefacts the paper reports, each with
its shape-check verdict.  Use ``python -m repro.eval all`` (scale 1.0)
for the paper-size run; see EXPERIMENTS.md for paper-vs-measured.

Run:  python examples/reproduce_paper.py [scale] [--trace out.json]

``--trace`` additionally runs a fully traced Gaussian elimination and
writes a Chrome trace-event JSON (open in Perfetto / chrome://tracing).
"""

import argparse
import sys

from repro.eval.experiments import (
    ablation_equal_c,
    ablation_full_gauss,
    ablation_instantiation,
    ablation_sync_comm,
    ablation_topology,
    figure1,
    table1,
    table2,
)
from repro.eval.figures import format_figure1
from repro.eval.tables import format_ablation, format_table1, format_table2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scale", nargs="?", type=float, default=0.2,
        help="problem-size scale in (0, 1]; paper sizes = 1.0",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="also write a Chrome trace of a gauss-full run (Perfetto)",
    )
    args = parser.parse_args(argv)
    scale = args.scale

    print(f"reproducing the evaluation at scale {scale} "
          f"(paper sizes = 1.0)\n")

    rows = table1(scale=scale)
    print(format_table1(rows))
    ok = all(4 < r.speedup_vs_dpfl < 9 and r.ratio_vs_c_old < 1.1 for r in rows)
    print(f"--> Table 1 shape {'✓' if ok else '✗'}: Skil ~6x over DPFL, "
          "beats old C everywhere\n")

    cells = table2(scale=scale)
    print(format_table2(cells))
    ok = all(
        (c.dpfl_over_skil is None or 2.5 < c.dpfl_over_skil < 8)
        and 0.8 < c.skil_over_c < 3.0
        for c in cells
    )
    print(f"--> Table 2 shape {'✓' if ok else '✗'}: DPFL/Skil in the 3.5-6.7 "
          "band, Skil/C around 2 shrinking with p\n")

    ups, downs = figure1(cells)
    print(format_figure1(ups, downs))

    for ab in (
        ablation_equal_c(scale=scale),
        ablation_full_gauss(scale=scale),
        ablation_instantiation(scale=scale),
        ablation_topology(scale=scale),
        ablation_sync_comm(scale=scale),
    ):
        print(format_ablation(ab))
        print()

    if args.trace:
        from repro.eval.tracecmd import run_trace_command

        print(run_trace_command("gauss-full", p=8, n=max(16, int(48 * scale)),
                                out=args.trace))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Exception hierarchy for the Skil reproduction.

All library-raised exceptions derive from :class:`SkilError` so callers can
catch everything coming out of the package with one ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class SkilError(Exception):
    """Base class of every exception raised by this package."""


class UsageError(SkilError):
    """Invalid command-line usage (e.g. a nonpositive ``--p``/``--workers``).

    The CLI entry points catch this and print the message without a
    traceback, exiting with argparse's conventional status 2.
    """


class MachineError(SkilError):
    """Errors in the simulated machine (bad rank, bad topology, ...)."""


class MemoryLimitError(MachineError):
    """A node exceeded its configured memory capacity (1 MB on the T800)."""


class TopologyError(MachineError):
    """Invalid topology construction or addressing."""


class DeadlockError(MachineError):
    """The event-driven engine detected that no process can make progress."""


class BackendError(MachineError):
    """A real execution backend could not run a kernel.

    Raised by the multiprocessing backend's closure-shipping path when an
    instantiated kernel cannot be serialized for a worker process — the
    message names the offending free variable — and by backend selection
    for unknown backend names.  Never used for silent fallback: a kernel
    either ships or the caller hears about it.
    """


class DistributionError(SkilError):
    """Invalid distribution parameters for a distributed array."""


class LocalityError(SkilError):
    """A non-local element access through ``array_get_elem``/``put_elem``.

    The paper restricts these macros to the partition placed on the current
    processor; any other index is a programming error, not a communication
    request.
    """


class SkeletonError(SkilError):
    """Invalid skeleton invocation (aliased arrays for gen_mult, non
    bijective permutation functions, shape mismatches, ...)."""


class SkilSyntaxError(SkilError):
    """Lexical or syntactic error in Skil source code."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class SkilTypeError(SkilError):
    """Polymorphic type-checking failure in Skil source code."""


class InstantiationError(SkilError):
    """Translation-by-instantiation failed (e.g. the restricted class of
    recursively-defined higher-order functions mentioned in the paper)."""


class SkilRuntimeError(SkilError):
    """Run-time error raised by executing a compiled Skil program
    (e.g. the ``error()`` builtin, or a singular matrix in gauss)."""

"""Worker processes, mailboxes and closure shipping for the real backends.

The simulated :class:`~repro.machine.machine.Machine` charges analytic
clocks in one Python process; the *real* backends
(:mod:`repro.machine.backend`) additionally execute the numpy kernels on
actual cores.  This module holds the runtime pieces the multiprocessing
backend is built from, following the REENTRANTRUNTIME idiom (SNIPPETS.md
Snippet 1: per-context state, local mailboxes, ``split``/``join``):

* :class:`Mailbox` — a local mailbox with *selective receive*: messages
  carry ``(src, dst, tag, seq)`` headers, a receiver may wait for a
  specific ``(src, tag)`` or use the :data:`ANY` wildcard, and delivery
  is FIFO per ``(src, dst, tag)`` stream (unmatched messages buffer
  locally, exactly like an Erlang/REENTRANTRUNTIME mailbox);
* :class:`SharedArena` — named ``multiprocessing.shared_memory``
  segments handed out as numpy buffers, so worker processes operate on
  the *same* pooled array storage the main process allocated (zero-copy
  input); every segment is tracked and unlinked on :meth:`close`;
* :func:`ship_kernel` / :func:`unship_kernel` — safe closure passing à
  la Haller & Miller: a kernel function is decomposed into code object,
  defaults, closure cells and the referenced globals, each captured
  recursively; anything that cannot cross a process boundary raises a
  typed :class:`~repro.errors.BackendError` **naming the offending free
  variable** instead of silently falling back;
* :class:`WorkerPool` — long-lived worker processes, one inbound
  mailbox each plus a shared result mailbox, with crash detection (a
  dead worker surfaces as :class:`~repro.errors.MachineError`, never a
  hang) and idempotent teardown.
"""

from __future__ import annotations

import hashlib
import itertools
import marshal
import os
import pickle
import queue as queue_mod
import time
import types
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import BackendError, MachineError

__all__ = [
    "ANY",
    "Message",
    "Mailbox",
    "SharedArena",
    "WorkerPool",
    "ship_kernel",
    "unship_kernel",
    "shm_prefix",
]


class _Any:
    """Wildcard matching every source / tag in :meth:`Mailbox.recv`."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ANY"


ANY = _Any()


@dataclass(frozen=True)
class Message:
    """One mailbox message.  ``seq`` is assigned per sender and makes the
    per-``(src, dst, tag)`` delivery order observable in tests."""

    src: int | str
    dst: int | str
    tag: str
    seq: int
    payload: Any = None


class Mailbox:
    """A local mailbox over a multiprocessing (or thread-safe) queue.

    The queue is the transport; the mailbox adds *selective receive*:
    :meth:`recv` returns the oldest buffered-or-arriving message whose
    ``(src, tag)`` matches, buffering everything that does not match so
    later receives still see it.  Because the transport is FIFO and the
    buffer is scanned oldest-first, messages of one ``(src, dst, tag)``
    stream are always delivered in send order.
    """

    #: how often a blocked receive polls the transport and the liveness
    #: callback; coarse enough to stay cheap, fine enough that a worker
    #: crash surfaces quickly
    POLL_S = 0.05

    def __init__(self, owner: int | str, queue=None):
        self.owner = owner
        self._q = queue if queue is not None else queue_mod.SimpleQueue()
        self._buffer: deque[Message] = deque()
        #: optional queue-depth probe (``callable(depth)``): invoked with
        #: the buffered depth after every successful receive — the wall
        #: profiler wires :meth:`WallProfiler.mailbox_depth` here
        self.depth_probe = None

    # ------------------------------------------------------------------ send
    def post(self, msg: Message) -> None:
        """Deliver *msg* into this mailbox (called by the sender side)."""
        self._q.put(msg)

    # ------------------------------------------------------------------ recv
    def _matches(self, msg: Message, src, tag) -> bool:
        return (src is ANY or msg.src == src) and (tag is ANY or msg.tag == tag)

    def _drain(self) -> None:
        while True:
            try:
                self._buffer.append(self._q.get_nowait())
            except queue_mod.Empty:
                return

    def recv(
        self,
        src=ANY,
        tag=ANY,
        timeout: float | None = None,
        liveness: Callable[[], None] | None = None,
    ) -> Message:
        """Receive the oldest message matching ``(src, tag)``.

        *liveness* is called on every poll round; raising from it aborts
        the wait (the worker pool uses it to turn a dead peer into a
        :class:`MachineError` instead of an indefinite block).  On
        *timeout* a :class:`MachineError` is raised.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._drain()
            for i, msg in enumerate(self._buffer):
                if self._matches(msg, src, tag):
                    del self._buffer[i]
                    if self.depth_probe is not None:
                        self.depth_probe(len(self._buffer))
                    return msg
            if liveness is not None:
                liveness()
            remaining = self.POLL_S
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    raise MachineError(
                        f"mailbox {self.owner!r}: receive (src={src!r}, "
                        f"tag={tag!r}) timed out after {timeout}s"
                    )
            try:
                self._buffer.append(self._q.get(timeout=remaining))
            except (queue_mod.Empty, AttributeError):
                # SimpleQueue on some transports lacks timeout= — fall
                # back to a plain poll sleep
                if not hasattr(self._q, "get") or isinstance(
                    self._q, queue_mod.SimpleQueue
                ):
                    time.sleep(min(0.001, remaining))

    def drain_pending(self) -> int:
        """Discard every buffered and queued message (reset support);
        returns how many were dropped."""
        self._drain()
        n = len(self._buffer)
        self._buffer.clear()
        return n

    def pending(self) -> int:
        self._drain()
        return len(self._buffer)


# ---------------------------------------------------------------------------
# shared-memory arena
# ---------------------------------------------------------------------------
def shm_prefix() -> str:
    """Name prefix of every segment this process allocates — the
    teardown tests glob ``/dev/shm`` for it."""
    return f"repro{os.getpid()}_"


#: process-global segment numbering: several machines (each with its
#: own arena) can be alive at once, so per-arena counters would collide
#: on the same /dev/shm name
_SEGMENT_COUNTER = itertools.count()


class SharedArena:
    """Named shared-memory segments exposed as numpy arrays.

    The main process allocates pool buffers here when the machine runs
    the ``mp`` backend; workers attach by name and see the same bytes.
    Every allocation is tracked so :meth:`close` can unlink everything —
    after it, no ``/dev/shm/repro<pid>_*`` segment may remain.
    """

    def __init__(self) -> None:
        self._segments: dict[str, Any] = {}
        self._by_addr: dict[int, tuple[str, int]] = {}  # addr -> (name, nbytes)
        self._closed = False
        #: optional :class:`~repro.obs.prof.WallProfiler` receiving
        #: segment/bytes-live gauge updates (``Machine(profile=True)``)
        self.profiler = None

    def allocate(self, shape, dtype) -> np.ndarray:
        from multiprocessing import shared_memory

        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        name = f"{shm_prefix()}{next(_SEGMENT_COUNTER)}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        arr.fill(0)
        self._segments[name] = seg
        self._by_addr[arr.__array_interface__["data"][0]] = (name, nbytes)
        if self.profiler is not None:
            self.profiler.shm_alloc(nbytes)
        return arr

    def descriptor(self, view: np.ndarray) -> tuple | None:
        """Shippable descriptor of *view* if it lives in this arena:
        ``(segment_name, byte_offset, shape, dtype_str, strides)``."""
        addr = view.__array_interface__["data"][0]
        for base_addr, (name, nbytes) in self._by_addr.items():
            if base_addr <= addr < base_addr + max(1, nbytes):
                return (
                    name,
                    addr - base_addr,
                    view.shape,
                    view.dtype.str if view.dtype.names is None else view.dtype,
                    view.strides,
                )
        return None

    def release(self, arr: np.ndarray) -> None:
        """Unlink the segment backing *arr* (array destruction)."""
        addr = arr.__array_interface__["data"][0]
        entry = self._by_addr.pop(addr, None)
        if entry is None:
            return
        name, nbytes = entry
        seg = self._segments.pop(name, None)
        if seg is not None:
            del arr  # drop the exported buffer view before closing
            seg.close()
            seg.unlink()
            if self.profiler is not None:
                self.profiler.shm_free(nbytes)

    def segment_names(self) -> list[str]:
        return sorted(self._segments)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for seg in self._segments.values():
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        if self.profiler is not None:
            for name, nbytes in self._by_addr.values():
                if name in self._segments:
                    self.profiler.shm_free(nbytes)
        self._segments.clear()
        self._by_addr.clear()


def _attach_view(cache: dict, desc: tuple) -> np.ndarray:
    """Worker side: materialise the numpy view a descriptor names."""
    from multiprocessing import shared_memory

    name, offset, shape, dtype, strides = desc
    seg = cache.get(name)
    if seg is None:
        seg = shared_memory.SharedMemory(name=name, create=False)
        cache[name] = seg
    return np.ndarray(
        shape, dtype=np.dtype(dtype), buffer=seg.buf, offset=offset,
        strides=strides,
    )


# ---------------------------------------------------------------------------
# closure shipping (safe closure passing, Haller & Miller style)
# ---------------------------------------------------------------------------
_FN_KIND = "fn"
_MOD_KIND = "mod"
_PICKLE_KIND = "pickle"
_REF_KIND = "ref"
_CELL_EMPTY = "empty-cell"


def _global_names(code) -> set[str]:
    """Every name the code object (or a nested one) may look up globally."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _global_names(const)
    return names


def _capture(obj, memo: dict, path: str):
    """Recursively capture *obj* into a picklable tagged structure.

    *path* names where the value came from (``kernel.closure.data``) so
    a :class:`BackendError` can point at the offending free variable.
    """
    if id(obj) in memo:
        return (_REF_KIND, memo[id(obj)])
    if isinstance(obj, types.ModuleType):
        return (_MOD_KIND, obj.__name__)
    if isinstance(obj, types.FunctionType):
        idx = len(memo)
        memo[id(obj)] = idx
        code = obj.__code__
        globals_needed = {}
        for name in sorted(_global_names(code)):
            if name in obj.__globals__:
                globals_needed[name] = _capture(
                    obj.__globals__[name], memo, f"{path}.globals.{name}"
                )
        closure = None
        if obj.__closure__ is not None:
            closure = tuple(
                _capture(
                    cell.cell_contents, memo,
                    f"{path}.closure.{var}",
                )
                if _cell_filled(cell)
                else (_PICKLE_KIND, pickle.dumps(_CELL_EMPTY))
                for var, cell in zip(code.co_freevars, obj.__closure__)
            )
        defaults = None
        if obj.__defaults__ is not None:
            defaults = tuple(
                _capture(d, memo, f"{path}.defaults[{i}]")
                for i, d in enumerate(obj.__defaults__)
            )
        kwdefaults = None
        if obj.__kwdefaults__:
            kwdefaults = {
                k: _capture(v, memo, f"{path}.kwdefaults.{k}")
                for k, v in obj.__kwdefaults__.items()
            }
        attrs = {
            k: _capture(v, memo, f"{path}.{k}")
            for k, v in vars(obj).items()
        }
        return (
            _FN_KIND,
            idx,
            marshal.dumps(code),
            obj.__name__,
            defaults,
            kwdefaults,
            closure,
            globals_needed,
            attrs,
        )
    try:
        return (_PICKLE_KIND, pickle.dumps(obj))
    except Exception as exc:
        raise BackendError(
            f"kernel is not shippable to worker processes: free variable "
            f"{path!r} = {obj!r} cannot be pickled ({exc})"
        ) from None


def _cell_filled(cell) -> bool:
    try:
        cell.cell_contents
        return True
    except ValueError:
        return False


def ship_kernel(fn: Callable) -> bytes:
    """Serialize *fn* (a kernel function, possibly a closure) for a
    worker process.  Raises :class:`BackendError` naming the first free
    variable, default or global that cannot cross the boundary."""
    name = getattr(fn, "__name__", repr(fn))
    if isinstance(fn, types.FunctionType):
        captured = _capture(fn, {}, name)
    else:
        # bound callables (Section instances, papply objects) must pickle
        # as a whole; the error still names the object
        captured = _capture(fn, {}, name)
    return pickle.dumps(captured, protocol=pickle.HIGHEST_PROTOCOL)


def _rebuild(node, objects: dict):
    kind = node[0]
    if kind == _REF_KIND:
        return objects[node[1]]
    if kind == _MOD_KIND:
        import importlib

        return importlib.import_module(node[1])
    if kind == _PICKLE_KIND:
        return pickle.loads(node[1])
    if kind == _FN_KIND:
        (_, idx, code_bytes, name, defaults, kwdefaults, closure,
         globals_needed, attrs) = node
        code = marshal.loads(code_bytes)
        g: dict = {"__builtins__": __builtins__}
        fn = types.FunctionType(code, g, name)
        objects[idx] = fn  # register before recursing (cycles)
        for gname, sub in globals_needed.items():
            g[gname] = _rebuild(sub, objects)
        if defaults is not None:
            fn.__defaults__ = tuple(_rebuild(d, objects) for d in defaults)
        if kwdefaults is not None:
            fn.__kwdefaults__ = {
                k: _rebuild(v, objects) for k, v in kwdefaults.items()
            }
        if closure is not None:
            cells = []
            for sub in closure:
                if sub == (_PICKLE_KIND, pickle.dumps(_CELL_EMPTY)):
                    cells.append(types.CellType())
                else:
                    cells.append(types.CellType(_rebuild(sub, objects)))
            fn = types.FunctionType(
                code, g, name, fn.__defaults__, tuple(cells)
            )
            objects[idx] = fn
            if kwdefaults is not None:
                fn.__kwdefaults__ = {
                    k: _rebuild(v, objects) for k, v in kwdefaults.items()
                }
        for k, sub in attrs.items():
            setattr(fn, k, _rebuild(sub, objects))
        return fn
    raise BackendError(f"corrupt shipped kernel node {kind!r}")


def unship_kernel(data: bytes) -> Callable:
    """Reconstruct a kernel shipped with :func:`ship_kernel`."""
    return _rebuild(pickle.loads(data), {})


def kernel_fingerprint(data: bytes) -> str:
    """Stable content id of a shipped kernel (worker-side cache key)."""
    return hashlib.sha256(data).hexdigest()[:16]


# ---------------------------------------------------------------------------
# worker processes
# ---------------------------------------------------------------------------
#: control / task tags of the worker protocol
TAG_TASK = "task"
TAG_KERNEL = "kernel"
TAG_RESULT = "result"
TAG_RESET = "reset"
TAG_STOP = "stop"

MAIN = "main"


def _worker_main(rank: int, inbox_q, result_q) -> None:
    """Worker process loop: receive kernels and tasks, execute, reply.

    Runs until a ``stop`` message (or EOF on the transport).  Defined at
    module top level so the pool works under every start method.
    """
    import random as _random

    inbox = Mailbox(rank, inbox_q)
    kernels: dict[str, Callable] = {}
    shm_cache: dict[str, Any] = {}
    try:
        while True:
            msg = inbox.recv()
            if msg.tag == TAG_STOP:
                break
            if msg.tag == TAG_RESET:
                seed = msg.payload
                _random.seed(seed + rank)
                np.random.seed((seed + rank) % (2**32))
                kernels.clear()
                continue
            if msg.tag == TAG_KERNEL:
                kid, data = msg.payload
                if kid not in kernels:
                    kernels[kid] = unship_kernel(data)
                continue
            if msg.tag == TAG_TASK:
                # payload may carry a trailing want_stamps flag (wall
                # profiler attached); old 4-tuples keep working
                epoch, task_id, kid, arg_descs = msg.payload[:4]
                want_stamps = len(msg.payload) > 4 and msg.payload[4]
                try:
                    args = [
                        _attach_view(shm_cache, a[1]) if a[0] == "shm" else a[1]
                        for a in arg_descs
                    ]
                    # wall stamps bracket the kernel call only (argument
                    # attachment is dispatch work); CLOCK_MONOTONIC is
                    # system-wide on Linux, so these are comparable to
                    # main-process stamps
                    t0 = time.monotonic() if want_stamps else 0.0
                    out = kernels[kid](*args)
                    stamps = (t0, time.monotonic()) if want_stamps else None
                    body = (
                        (epoch, "ok", np.asarray(out), stamps)
                        if want_stamps
                        else (epoch, "ok", np.asarray(out))
                    )
                    result_q.put(
                        Message(rank, MAIN, TAG_RESULT, task_id, body)
                    )
                except Exception as exc:  # surfaced in the main process
                    import traceback

                    result_q.put(
                        Message(
                            rank, MAIN, TAG_RESULT, task_id,
                            (
                                epoch,
                                "error",
                                (type(exc).__name__, str(exc),
                                 traceback.format_exc(limit=6)),
                            ),
                        )
                    )
                continue
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        for seg in shm_cache.values():
            try:
                seg.close()
            except Exception:  # pragma: no cover
                pass


class WorkerPool:
    """A fixed set of worker processes with per-worker mailboxes.

    Tasks are distributed round-robin; results come back through one
    shared result mailbox tagged with their task id, so out-of-order
    completion is fine.  A worker dying mid-task raises
    :class:`MachineError` instead of hanging (liveness is polled while
    waiting on the result mailbox).
    """

    #: ceiling on waiting for one task batch; generous — real batches
    #: finish in milliseconds, only a livelocked worker ever hits it
    TIMEOUT_S = 120.0

    def __init__(self, n_workers: int, start_method: str | None = None):
        import multiprocessing as mp

        if n_workers <= 0:
            raise MachineError(f"need at least one worker, got {n_workers}")
        method = start_method or os.environ.get("REPRO_MP_START") or (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._mp = mp.get_context(method)
        self.n_workers = n_workers
        self._result_q = self._mp.Queue()
        self.results = Mailbox(MAIN, self._result_q)
        self._inbox_qs = [self._mp.Queue() for _ in range(n_workers)]
        self._procs = [
            self._mp.Process(
                target=_worker_main,
                args=(w, self._inbox_qs[w], self._result_q),
                daemon=True,
                name=f"repro-worker-{w}",
            )
            for w in range(n_workers)
        ]
        for proc in self._procs:
            proc.start()
        self._seq = itertools.count()
        self._shipped: set[tuple[int, str]] = set()  # (worker, kernel id)
        self.epoch = 0
        self._closed = False

    # ------------------------------------------------------------------ send
    def _check_alive(self) -> None:
        if self._closed:
            raise MachineError("worker pool is closed")
        for w, proc in enumerate(self._procs):
            if not proc.is_alive():
                code = proc.exitcode
                raise MachineError(
                    f"worker {w} died (exit code {code}); the machine's mp "
                    "backend cannot continue — close() and rebuild the "
                    "Machine"
                )

    def _post(self, worker: int, tag: str, payload) -> None:
        self._inbox_qs[worker].put(
            Message(MAIN, worker, tag, next(self._seq), payload)
        )

    def ensure_kernel(self, kid: str, data: bytes) -> int:
        """Ship kernel *data* to every worker that has not seen it;
        returns how many workers it was actually sent to."""
        sent = 0
        for w in range(self.n_workers):
            if (w, kid) not in self._shipped:
                self._post(w, TAG_KERNEL, (kid, data))
                self._shipped.add((w, kid))
                sent += 1
        return sent

    def run_tasks(
        self, kid: str, arg_descs_per_task: list[list], profiler=None
    ):
        """Execute one task per entry, round-robin over the workers;
        returns results in task order.

        With a *profiler* attached, tasks request in-worker wall stamps
        and the return value becomes ``(results, stamps)`` where
        ``stamps[task_id]`` is ``(worker, start, end)`` (or ``None`` for
        a result that carried no stamps).  Without one, the historical
        plain list comes back — the unprofiled path is byte-for-byte the
        old protocol.
        """
        self._check_alive()
        want = profiler is not None
        if want:
            # sample result-mailbox depth on every receive below
            self.results.depth_probe = profiler.mailbox_depth
        n = len(arg_descs_per_task)
        for task_id, descs in enumerate(arg_descs_per_task):
            self._post(
                task_id % self.n_workers, TAG_TASK,
                (self.epoch, task_id, kid, descs, True)
                if want
                else (self.epoch, task_id, kid, descs),
            )
        results: list = [None] * n
        stamps: list = [None] * n
        received = 0
        deadline = time.monotonic() + self.TIMEOUT_S
        while received < n:
            if time.monotonic() > deadline:  # pragma: no cover - livelock
                raise MachineError(
                    f"worker pool: {n - received} task result(s) missing "
                    f"after {self.TIMEOUT_S}s"
                )
            msg = self.results.recv(
                tag=TAG_RESULT, timeout=self.TIMEOUT_S,
                liveness=self._check_alive,
            )
            epoch, status, payload = msg.payload[:3]
            if epoch != self.epoch:
                continue  # stale result from before a reset()
            if status == "error":
                name, text, tb = payload
                err = MachineError(
                    f"worker {msg.src} task {msg.seq} raised {name}: {text}\n{tb}"
                )
                # the original exception class name, so callers can
                # translate control-flow exceptions (FusionFallback)
                err.worker_exc = name
                raise err
            results[msg.seq] = payload
            if want and len(msg.payload) > 3 and msg.payload[3] is not None:
                t0, t1 = msg.payload[3]
                stamps[msg.seq] = (msg.src, t0, t1)
            received += 1
        if want:
            return results, stamps
        return results

    # ------------------------------------------------------------------ reset
    def reset(self, seed: int = 0) -> None:
        """Discard in-flight state and reseed worker RNGs.

        Results of tasks submitted before the reset are invalidated by
        the epoch bump (a late arrival is dropped, never mistaken for a
        new task's result) — the seam that made back-to-back trials in
        one process flaky.
        """
        self.epoch += 1
        self.results.drain_pending()
        self._shipped.clear()
        for w in range(self.n_workers):
            self._post(w, TAG_RESET, seed)

    # ------------------------------------------------------------------ close
    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        for w, proc in enumerate(self._procs):
            if proc.is_alive():
                try:
                    self._post(w, TAG_STOP, None)
                except Exception:  # pragma: no cover - queue already dead
                    pass
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for q in [*self._inbox_qs, self._result_q]:
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover
                pass

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close(timeout=0.5)
        except Exception:
            pass

"""The simulated Parsytec-style machine: processors + network + memory.

:class:`Machine` is the object everything else hangs off: distributed
arrays are allocated on it, skeletons charge its network clocks, and the
evaluation harness reads the final makespan from it.  It substitutes the
paper's testbed (64 T800 transputers, 1 MB RAM each, 2-D mesh, Parix) as
documented in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineError, MemoryLimitError, TopologyError
from repro.machine.costmodel import CostModel, T800_PARSYTEC
from repro.machine.network import Network
from repro.machine.topology import (
    BinomialTree,
    DefaultMapping,
    Mesh2D,
    Ring,
    Torus2D,
    VirtualTopology,
)
from repro.machine.trace import TraceStats

__all__ = [
    "Machine",
    "DISTR_DEFAULT",
    "DISTR_RING",
    "DISTR_TORUS2D",
    "STREAM_AUTO_P",
]

#: distribution constants mirroring the paper's Parix-based implementation
DISTR_DEFAULT = "DISTR_DEFAULT"
DISTR_RING = "DISTR_RING"
DISTR_TORUS2D = "DISTR_TORUS2D"

#: machines at least this large default to ``trace_mode="stream"`` when
#: fully traced — record mode's O(messages) lists are the one remaining
#: superlinear consumer, and at 10^4-10^5 ranks they dominate memory
STREAM_AUTO_P = 4096


@dataclass
class _NodeMemory:
    capacity: int
    used: int = 0

    def alloc(self, nbytes: int, strict: bool, rank: int) -> None:
        self.used += nbytes
        if strict and self.used > self.capacity:
            raise MemoryLimitError(
                f"node {rank}: {self.used} bytes exceed the {self.capacity}-byte "
                "node memory (the Parsytec MC had 1 MB per node; use a larger "
                "network or Machine(strict_memory=False))"
            )

    def free(self, nbytes: int) -> None:
        self.used = max(0, self.used - nbytes)


class Machine:
    """A ``p``-processor distributed-memory machine.

    Parameters
    ----------
    p:
        Number of processors; arranged as the most-square 2-D mesh.
    cost:
        Hardware cost model; defaults to the T800/Parix preset.
    strict_memory:
        Enforce the per-node memory limit (1 MB in the preset).  Off by
        default so modern-size test problems fit; the Table 1/2 harness
        switches it on to reproduce which problem sizes fit on which
        networks.
    keep_message_records:
        Retain individual message records in the trace (for debugging and
        the trace tests; costs memory on long runs).
    use_virtual_topologies:
        When ``False``, every virtual topology degenerates to the naive
        embedding (wrap-around edges cross the mesh) — models the old C
        code of Table 1.
    trace_level:
        Observability depth (zero-cost when 0, the default):

        * ``0`` — only the aggregate :class:`TraceStats` counters;
        * ``1`` — plus a :class:`~repro.obs.span.SpanTracer` (paired
          skeleton spans) and a
          :class:`~repro.obs.metrics.MetricsRegistry`;
        * ``2`` — plus a per-rank :class:`~repro.obs.timeline.Timeline`
          and individual message records.
    trace_mode:
        How observability data is retained (DESIGN: docs/OBSERVABILITY.md):

        * ``"record"`` — materialize everything: message records,
          timeline intervals and spans accumulate in lists,
          O(messages) memory, full post-hoc analysis (DAG, what-if).
        * ``"stream"`` — route the same event stream through
          :mod:`repro.obs.stream` sinks: exact O(p) aggregates, a
          seeded reservoir of message records, a ring of recent spans,
          optional JSONL spill.  Memory stays O(p + samples) at any
          run length; aggregate values are bit-identical to folding a
          full recording (the ``stream`` check pillar).
        * ``None`` (the default) — pick automatically: ``"stream"``
          for a fully traced (``trace_level >= 2``) machine with
          ``p >= STREAM_AUTO_P`` (where record mode's O(messages)
          retention would dominate memory), ``"record"`` otherwise.
    stream:
        Optional :class:`~repro.obs.stream.StreamConfig` for
        ``trace_mode="stream"`` (sample sizes, spill path, seed).
    backend:
        Where fused skeleton kernels physically execute: ``"sim"``
        (single process, the default), ``"threads"`` (thread pool over
        the shared pools; numpy releases the GIL), ``"mp"`` (worker
        processes over shared-memory pools with shipped closures), or a
        ready-made :class:`~repro.machine.backend.ExecBackend`.  ``None``
        consults :func:`~repro.machine.backend.backend_default`
        (``REPRO_BACKEND``).  Simulated seconds are bit-identical across
        backends — the network stays the only cost oracle.
    workers:
        Worker count for the real backends (default: ``REPRO_WORKERS``
        or ``min(p, cores)``).
    profile:
        Attach a :class:`~repro.obs.prof.WallProfiler` to the worker
        plane (``True``, or a ready-made profiler instance).  Wall-clock
        only: the profiler owns its own metrics registry and never
        touches the network, so simulated seconds, :class:`TraceStats`,
        records and the machine's metrics stay bitwise identical with
        profiling on or off (asserted by the ``backend`` pillar).
        Zero-cost when off (the default): every instrumented hot path
        is a single ``is None`` test.
    """

    def __init__(
        self,
        p: int,
        cost: CostModel = T800_PARSYTEC,
        strict_memory: bool = False,
        keep_message_records: bool = False,
        use_virtual_topologies: bool = True,
        link_contention: bool = False,
        trace_level: int = 0,
        trace_mode: str | None = None,
        stream=None,
        backend=None,
        workers: int | None = None,
        profile=False,
    ):
        if p <= 0:
            raise MachineError(f"need a positive processor count, got {p}")
        if trace_level not in (0, 1, 2):
            raise MachineError(f"trace_level must be 0, 1 or 2, got {trace_level}")
        if trace_mode is None:
            trace_mode = (
                "stream"
                if trace_level >= 2 and p >= STREAM_AUTO_P
                else "record"
            )
        if trace_mode not in ("record", "stream"):
            raise MachineError(
                f"trace_mode must be 'record' or 'stream', got {trace_mode!r}"
            )
        self.p = p
        self.cost = cost
        self.mesh = Mesh2D.for_processors(p)
        self.trace_level = trace_level
        self.trace_mode = trace_mode
        streaming = trace_mode == "stream"
        self.stats = TraceStats(
            keep_records=keep_message_records
            or (trace_level >= 2 and not streaming)
        )
        self.network = Network(
            cost, p, stats=self.stats, link_contention=link_contention
        )
        #: observability objects; ``None`` when the level does not pay
        #: for them, so every hot-path check is one ``is None`` test.
        #: They share ``self.stats`` and the network clocks — see
        #: :meth:`reset` for the sharing contract.
        self.tracer = self.metrics = self.timeline = None
        #: the :class:`~repro.obs.stream.StreamObserver` in stream mode
        self.stream_obs = None
        if streaming:
            from repro.obs.stream import StreamObserver

            self.stream_obs = StreamObserver(p, stream)
        if trace_level >= 1:
            from repro.obs.metrics import MetricsRegistry

            self.metrics = MetricsRegistry()
            self.network.metrics = self.metrics
            if streaming:
                from repro.obs.stream import StreamSpanTracer

                self.tracer = StreamSpanTracer(
                    self.stats, self.network, self.stream_obs
                )
            else:
                from repro.obs.span import SpanTracer

                self.tracer = SpanTracer(self.stats, self.network)
        if trace_level >= 2:
            if streaming:
                # the stream timeline takes the Timeline's place on the
                # network; ``self.timeline`` stays None so DAG-building
                # analysis correctly refuses (use analyze_stream)
                self.network.timeline = self.stream_obs.timeline
                self.stats.sink = self.stream_obs
            else:
                from repro.obs.timeline import Timeline

                self.timeline = Timeline()
                self.network.timeline = self.timeline
        self.strict_memory = strict_memory
        self.use_virtual_topologies = use_virtual_topologies
        self._memory = [_NodeMemory(cost.memory_bytes) for _ in range(p)]
        self._topologies: dict[str, VirtualTopology] = {}
        from repro.machine.backend import make_backend

        #: the :class:`~repro.machine.backend.ExecBackend` running fused
        #: kernels; never touches the network, so it cannot perturb
        #: simulated time
        self.backend = make_backend(backend, p, workers)
        #: the wall-clock :class:`~repro.obs.prof.WallProfiler`, or
        #: ``None`` (the default) — see the ``profile`` parameter
        self.profiler = None
        if profile:
            from repro.obs.prof import WallProfiler

            self.profiler = (
                profile if isinstance(profile, WallProfiler) else WallProfiler()
            )
            self.backend.profiler = self.profiler
            arena = getattr(self.backend, "arena", None)
            if arena is not None:
                arena.profiler = self.profiler
        self._closed = False

    # ------------------------------------------------------------------ time
    @property
    def time(self) -> float:
        """Simulated makespan so far (seconds)."""
        return self.network.time

    # ---------------------------------------------------------------- backend
    @property
    def backend_name(self) -> str:
        """``"sim"``, ``"threads"`` or ``"mp"``."""
        return self.backend.name

    def alloc_pool_buffer(self, shape, dtype) -> np.ndarray:
        """Backend-visible zeroed buffer for a pooled distributed array
        (shared memory under ``backend="mp"``, plain memory otherwise)."""
        return self.backend.alloc_pool(shape, dtype)

    def free_pool_buffer(self, pool: np.ndarray) -> None:
        """Release a buffer from :meth:`alloc_pool_buffer`."""
        self.backend.free_pool(pool)

    def close(self) -> None:
        """Tear down backend workers and shared-memory segments.

        Idempotent; ``backend="sim"`` machines have nothing to release,
        so existing code that never calls ``close()`` keeps working.
        Real-backend users should close (or use the machine as a context
        manager) so no ``/dev/shm`` segments outlive the run.
        """
        if self._closed:
            return
        self._closed = True
        self.backend.close()
        if self.profiler is not None:
            # detach the profiler from the worker plane (after teardown,
            # so close-time segment frees still reach the shm gauges);
            # the collected stamps stay readable on ``self.profiler``
            # for post-run export
            self.backend.profiler = None
            arena = getattr(self.backend, "arena", None)
            if arena is not None:
                arena.profiler = None

    def __enter__(self) -> "Machine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-exit ordering
        try:
            self.close()
        except Exception:
            pass

    def reset(self) -> None:
        """Zero the clocks and statistics; keeps memory accounting.

        Sharing contract: ``self.stats`` is the **same object** for the
        machine's whole lifetime — the network, any
        :class:`~repro.machine.engine.Engine` built from this machine,
        and the span tracer all capture it at construction.  Reset
        therefore clears it *in place* (never replaces it), so every
        captured reference keeps observing the live accumulator.
        Spans, timelines and metrics are cleared the same way.
        """
        self.network.reset()
        self.stats.clear()
        assert self.network.stats is self.stats, (
            "machine/network stats were rewired behind reset()'s back"
        )
        if self.tracer is not None:
            self.tracer.clear()
        if self.metrics is not None:
            self.metrics.clear()
        if self.timeline is not None:
            self.timeline.clear()
        if self.stream_obs is not None:
            self.stream_obs.clear()
        if self.profiler is not None:
            self.profiler.clear()
        # reseed/flush backend worker state too — without this,
        # back-to-back trials in one process see stale worker caches and
        # in-flight results from the previous trial (the flaky seam)
        self.backend.reset()

    @property
    def obs_timeline(self):
        """The interval sink embedded engines should emit into: the
        record-mode :class:`~repro.obs.timeline.Timeline`, the stream
        timeline in stream mode, or ``None`` below ``trace_level=2``."""
        if self.stream_obs is not None and self.trace_level >= 2:
            return self.stream_obs.timeline
        return self.timeline

    # ------------------------------------------------------------------ topo
    def topology(self, distr: str = DISTR_DEFAULT) -> VirtualTopology:
        """Virtual topology for a ``DISTR_*`` constant (cached)."""
        if distr not in self._topologies:
            folded = self.use_virtual_topologies
            if distr == DISTR_DEFAULT:
                topo: VirtualTopology = DefaultMapping(self.mesh)
            elif distr == DISTR_RING:
                topo = Ring(self.mesh) if folded else DefaultMapping(self.mesh)
                if not folded:
                    topo = _NaiveRing(self.mesh)
            elif distr == DISTR_TORUS2D:
                topo = Torus2D(self.mesh, folded=folded)
            else:
                raise TopologyError(f"unknown distribution constant {distr!r}")
            self._topologies[distr] = topo
        return self._topologies[distr]

    def tree(self, root: int = 0) -> BinomialTree:
        return BinomialTree(self.mesh, root=root)

    # ------------------------------------------------------------------ memory
    def alloc(self, rank: int, nbytes: int) -> None:
        self._check_rank(rank)
        self._memory[rank].alloc(int(nbytes), self.strict_memory, rank)

    def free(self, rank: int, nbytes: int) -> None:
        self._check_rank(rank)
        self._memory[rank].free(int(nbytes))

    def memory_used(self, rank: int) -> int:
        self._check_rank(rank)
        return self._memory[rank].used

    def max_memory_used(self) -> int:
        return max(m.used for m in self._memory)

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.p):
            raise MachineError(f"rank {rank} outside machine of {self.p}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine(p={self.p}, mesh={self.mesh.rows}x{self.mesh.cols}, "
            f"time={self.time:.6f}s)"
        )


class _NaiveRing(Ring):
    """Ring without embedding: logical neighbours placed in rank order,
    so the closing edge (and nothing else) is long.  Used when virtual
    topologies are disabled."""

    def __init__(self, mesh: Mesh2D):
        VirtualTopology.__init__(self, mesh)
        self._place = np.arange(mesh.p, dtype=np.int64)

"""The simulated Parsytec-style machine: processors + network + memory.

:class:`Machine` is the object everything else hangs off: distributed
arrays are allocated on it, skeletons charge its network clocks, and the
evaluation harness reads the final makespan from it.  It substitutes the
paper's testbed (64 T800 transputers, 1 MB RAM each, 2-D mesh, Parix) as
documented in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineError, MemoryLimitError, TopologyError
from repro.machine.costmodel import CostModel, T800_PARSYTEC
from repro.machine.network import Network
from repro.machine.topology import (
    BinomialTree,
    DefaultMapping,
    Mesh2D,
    Ring,
    Torus2D,
    VirtualTopology,
)
from repro.machine.trace import TraceStats

__all__ = ["Machine", "DISTR_DEFAULT", "DISTR_RING", "DISTR_TORUS2D"]

#: distribution constants mirroring the paper's Parix-based implementation
DISTR_DEFAULT = "DISTR_DEFAULT"
DISTR_RING = "DISTR_RING"
DISTR_TORUS2D = "DISTR_TORUS2D"


@dataclass
class _NodeMemory:
    capacity: int
    used: int = 0

    def alloc(self, nbytes: int, strict: bool, rank: int) -> None:
        self.used += nbytes
        if strict and self.used > self.capacity:
            raise MemoryLimitError(
                f"node {rank}: {self.used} bytes exceed the {self.capacity}-byte "
                "node memory (the Parsytec MC had 1 MB per node; use a larger "
                "network or Machine(strict_memory=False))"
            )

    def free(self, nbytes: int) -> None:
        self.used = max(0, self.used - nbytes)


class Machine:
    """A ``p``-processor distributed-memory machine.

    Parameters
    ----------
    p:
        Number of processors; arranged as the most-square 2-D mesh.
    cost:
        Hardware cost model; defaults to the T800/Parix preset.
    strict_memory:
        Enforce the per-node memory limit (1 MB in the preset).  Off by
        default so modern-size test problems fit; the Table 1/2 harness
        switches it on to reproduce which problem sizes fit on which
        networks.
    keep_message_records:
        Retain individual message records in the trace (for debugging and
        the trace tests; costs memory on long runs).
    use_virtual_topologies:
        When ``False``, every virtual topology degenerates to the naive
        embedding (wrap-around edges cross the mesh) — models the old C
        code of Table 1.
    """

    def __init__(
        self,
        p: int,
        cost: CostModel = T800_PARSYTEC,
        strict_memory: bool = False,
        keep_message_records: bool = False,
        use_virtual_topologies: bool = True,
        link_contention: bool = False,
    ):
        if p <= 0:
            raise MachineError(f"need a positive processor count, got {p}")
        self.p = p
        self.cost = cost
        self.mesh = Mesh2D.for_processors(p)
        self.stats = TraceStats(keep_records=keep_message_records)
        self.network = Network(
            cost, p, stats=self.stats, link_contention=link_contention
        )
        self.strict_memory = strict_memory
        self.use_virtual_topologies = use_virtual_topologies
        self._memory = [_NodeMemory(cost.memory_bytes) for _ in range(p)]
        self._topologies: dict[str, VirtualTopology] = {}

    # ------------------------------------------------------------------ time
    @property
    def time(self) -> float:
        """Simulated makespan so far (seconds)."""
        return self.network.time

    def reset(self) -> None:
        """Zero the clocks and statistics; keeps memory accounting."""
        self.network.reset()
        self.stats = TraceStats(keep_records=self.stats.keep_records)
        self.network.stats = self.stats

    # ------------------------------------------------------------------ topo
    def topology(self, distr: str = DISTR_DEFAULT) -> VirtualTopology:
        """Virtual topology for a ``DISTR_*`` constant (cached)."""
        if distr not in self._topologies:
            folded = self.use_virtual_topologies
            if distr == DISTR_DEFAULT:
                topo: VirtualTopology = DefaultMapping(self.mesh)
            elif distr == DISTR_RING:
                topo = Ring(self.mesh) if folded else DefaultMapping(self.mesh)
                if not folded:
                    topo = _NaiveRing(self.mesh)
            elif distr == DISTR_TORUS2D:
                topo = Torus2D(self.mesh, folded=folded)
            else:
                raise TopologyError(f"unknown distribution constant {distr!r}")
            self._topologies[distr] = topo
        return self._topologies[distr]

    def tree(self, root: int = 0) -> BinomialTree:
        return BinomialTree(self.mesh, root=root)

    # ------------------------------------------------------------------ memory
    def alloc(self, rank: int, nbytes: int) -> None:
        self._check_rank(rank)
        self._memory[rank].alloc(int(nbytes), self.strict_memory, rank)

    def free(self, rank: int, nbytes: int) -> None:
        self._check_rank(rank)
        self._memory[rank].free(int(nbytes))

    def memory_used(self, rank: int) -> int:
        self._check_rank(rank)
        return self._memory[rank].used

    def max_memory_used(self) -> int:
        return max(m.used for m in self._memory)

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.p):
            raise MachineError(f"rank {rank} outside machine of {self.p}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine(p={self.p}, mesh={self.mesh.rows}x{self.mesh.cols}, "
            f"time={self.time:.6f}s)"
        )


class _NaiveRing(Ring):
    """Ring without embedding: logical neighbours placed in rank order,
    so the closing edge (and nothing else) is long.  Used when virtual
    topologies are disabled."""

    def __init__(self, mesh: Mesh2D):
        VirtualTopology.__init__(self, mesh)
        self._place = list(range(mesh.p))

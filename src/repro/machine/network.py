"""Clock-level simulation of message passing over a virtual topology.

The skeletons (and the hand-written baselines) move the *actual data*
between partitions themselves — they are ordinary numpy code running in
one Python process.  What this module simulates is **time**: a vector of
per-processor clocks is advanced according to the communication pattern,
the message cost model and the synchronisation semantics:

* an **asynchronous** send charges the sender only the software setup and
  lets it continue; the receiver blocks until the message has crossed all
  its hardware hops,
* a **synchronous** (rendezvous) send blocks both parties until the
  transfer completes — the semantics of the old Parix C code that Table 1
  compares against.

All collective patterns used by the paper's skeletons are provided:
point-to-point, simultaneous shifts (the torus rotations of Gentleman's
algorithm), binomial-tree broadcast and reduction (``array_fold``,
``array_broadcast_part``), and barriers.  The fine-grained event engine
(:mod:`repro.machine.engine`) implements the same semantics at message
granularity; the test-suite checks the two agree on small configurations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import MachineError
from repro.machine.costmodel import CostModel
from repro.machine.topology import BinomialTree, VirtualTopology
from repro.machine.trace import TraceStats

__all__ = ["Network"]


class Network:
    """Per-processor clocks plus the message cost arithmetic.

    Parameters
    ----------
    cost:
        Hardware cost model (see :class:`repro.machine.costmodel.CostModel`).
    p:
        Number of (logical) processors.
    stats:
        Optional shared statistics accumulator.
    """

    def __init__(
        self,
        cost: CostModel,
        p: int,
        stats: TraceStats | None = None,
        link_contention: bool = False,
    ):
        if p <= 0:
            raise MachineError(f"need at least one processor, got p={p}")
        self.cost = cost
        self.p = p
        self.clocks = np.zeros(p, dtype=np.float64)
        self.stats = stats if stats is not None else TraceStats()
        #: when enabled, simultaneous transfers in a :meth:`shift` whose
        #: dimension-ordered routes share a directed hardware link are
        #: slowed by the link's total load (approximate serialization)
        self.link_contention = link_contention
        #: optional observability sinks (attached by
        #: :class:`repro.machine.machine.Machine` when tracing is on);
        #: every hot-path use is guarded by one ``is None`` test so the
        #: clock arithmetic is bit-identical with tracing off
        self.metrics = None  # repro.obs.metrics.MetricsRegistry | None
        self.timeline = None  # repro.obs.timeline.Timeline | None
        #: what-if knob (see :mod:`repro.obs.analysis`): when enabled,
        #: per-processor compute vectors are replaced by their mean and
        #: single-rank compute is spread over all processors — the
        #: "perfectly balanced compute" counterfactual.  Never set on
        #: machines used for real measurements.
        self.balance_compute = False

    def _observe_message(self, nbytes: int, hops: int, tag: str) -> None:
        m = self.metrics
        m.observe("net.message_bytes", nbytes)
        m.observe(
            "net.message_hops", hops, buckets=tuple(float(h) for h in range(1, 17))
        )
        m.inc(f"net.messages.{tag or 'untagged'}")

    # ------------------------------------------------------------------ helpers
    @property
    def time(self) -> float:
        """Makespan so far: the latest of all processor clocks."""
        return float(self.clocks.max())

    def reset(self) -> None:
        self.clocks[:] = 0.0

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.p):
            raise MachineError(f"rank {rank} outside machine of {self.p} processors")

    # ------------------------------------------------------------------ compute
    def compute(self, seconds) -> None:
        """Advance clocks by local computation time.

        *seconds* may be a scalar (same work everywhere) or an array of
        per-processor times.
        """
        sec = np.asarray(seconds, dtype=np.float64)
        if sec.ndim != 0 and self.balance_compute and sec.shape == (self.p,):
            sec = np.asarray(float(sec.mean()))
        if sec.ndim == 0:
            if self.timeline is not None and float(sec) > 0.0:
                for r in range(self.p):
                    t0 = float(self.clocks[r])
                    self.timeline.add(r, "compute", t0, t0 + float(sec))
            self.clocks += float(sec)
            self.stats.compute_seconds += float(sec) * self.p
        else:
            if sec.shape != (self.p,):
                raise MachineError(
                    f"per-processor compute vector must have shape ({self.p},), "
                    f"got {sec.shape}"
                )
            if self.timeline is not None:
                for r in range(self.p):
                    if sec[r] > 0.0:
                        t0 = float(self.clocks[r])
                        self.timeline.add(r, "compute", t0, t0 + float(sec[r]))
            self.clocks += sec
            self.stats.compute_seconds += float(sec.sum())

    def compute_at(self, rank: int, seconds: float) -> None:
        """Advance one processor's clock by local work."""
        self._check_rank(rank)
        if self.balance_compute:
            self.compute(seconds / self.p)
            return
        if self.timeline is not None and seconds > 0.0:
            t0 = float(self.clocks[rank])
            self.timeline.add(rank, "compute", t0, t0 + seconds)
        self.clocks[rank] += seconds
        self.stats.compute_seconds += seconds

    # ------------------------------------------------------------------ p2p
    def p2p(
        self,
        src: int,
        dst: int,
        nbytes: int,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "p2p",
    ) -> float:
        """One message from *src* to *dst*; returns its arrival time."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            # a local copy, no wire involved
            t = nbytes * self.cost.t_mem
            if self.timeline is not None and t > 0.0:
                t0 = float(self.clocks[src])
                self.timeline.add(src, "compute", t0, t0 + t, detail="local-copy")
            self.clocks[src] += t
            self.stats.comm_seconds += t
            return float(self.clocks[src])
        hops = topo.edge_hops(src, dst)
        wire = self.cost.message_time(nbytes, hops)
        # plain-float arithmetic on purpose: this is the hottest loop of
        # the collective simulation, and numpy scalar indexing dominates
        # it otherwise.  Python floats are the same IEEE doubles, so the
        # clock values are bit-identical to the array-scalar version.
        old_src = float(self.clocks[src])
        old_dst = float(self.clocks[dst])
        depart = old_src + self.cost.t_setup
        arrival = depart + wire
        if sync:
            depart = max(depart, old_dst)
            arrival = depart + wire
            self.stats.idle_seconds += max(0.0, arrival - old_dst - wire)
            self.clocks[src] = arrival
            self.clocks[dst] = arrival
        else:
            self.clocks[src] = depart
            self.stats.idle_seconds += max(0.0, arrival - old_dst)
            self.clocks[dst] = max(old_dst, arrival)
        self.stats.record_message(arrival, src, dst, nbytes, hops, tag, depart=depart)
        self.stats.comm_seconds += wire + self.cost.t_setup
        if self.metrics is not None:
            self._observe_message(nbytes, hops, tag)
        if self.timeline is not None:
            self.timeline.add(src, "send", old_src, float(self.clocks[src]), tag)
            if arrival - wire > old_dst:
                self.timeline.add(dst, "idle", old_dst, arrival - wire, tag)
            self.timeline.add(dst, "recv", max(old_dst, arrival - wire), arrival, tag)
        return float(arrival)

    # ------------------------------------------------------------------ shift
    def shift(
        self,
        pairs: Iterable[tuple[int, int]],
        nbytes,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "shift",
    ) -> None:
        """Simultaneous transfers along disjoint (src, dst) pairs.

        Used for the partition rotations of Gentleman's algorithm and for
        row permutations.  Each processor appears at most once as source
        and at most once as destination; the transfers proceed in
        parallel over distinct links.

        *nbytes* may be a scalar or a per-source mapping/array.
        """
        pairs = list(pairs)
        srcs = [s for s, _ in pairs]
        dsts = [d for _, d in pairs]
        if len(set(srcs)) != len(srcs) or len(set(dsts)) != len(dsts):
            raise MachineError("shift pairs must be disjoint per side")

        def nb(s: int) -> int:
            if np.isscalar(nbytes):
                return int(nbytes)
            return int(nbytes[s])

        old = self.clocks.copy()
        if sync:
            # rendezvous on every edge; a processor that both sends and
            # receives does so serially (no DMA overlap on the old code
            # path), so it pays for two transfers after synchronising
            # with both partners.
            for s, d in pairs:
                start = max(old[s], old[d]) + self.cost.t_setup
                hops = topo.edge_hops(s, d)
                wire = self.cost.message_time(nb(s), hops)
                finish = start + wire
                self.clocks[s] = max(self.clocks[s], finish)
                self.clocks[d] = max(self.clocks[d], finish) + (
                    wire if d in srcs else 0.0
                )
                self.stats.record_message(
                    finish, s, d, nb(s), hops, tag, depart=start
                )
                self.stats.comm_seconds += wire + self.cost.t_setup
                self.stats.idle_seconds += max(0.0, start - self.cost.t_setup - old[d])
                if self.metrics is not None:
                    self._observe_message(nb(s), hops, tag)
                if self.timeline is not None:
                    self.timeline.add(s, "send", float(old[s]), finish, tag)
                    self.timeline.add(d, "recv", float(old[d]), finish, tag)
        else:
            depart = {s: old[s] + self.cost.t_setup for s, _ in pairs}
            new = self.clocks.copy()
            for s, _ in pairs:
                new[s] = max(new[s], depart[s])
            slowdown = self._contention_factors(pairs, nb, topo)
            for s, d in pairs:
                hops = topo.edge_hops(s, d)
                wire = self.cost.message_time(nb(s), hops) * slowdown.get(
                    (s, d), 1.0
                )
                arrival = depart[s] + wire
                self.stats.idle_seconds += max(0.0, arrival - old[d])
                new[d] = max(new[d], arrival)
                self.stats.record_message(
                    arrival, s, d, nb(s), hops, tag, depart=depart[s]
                )
                self.stats.comm_seconds += wire + self.cost.t_setup
                if self.metrics is not None:
                    self._observe_message(nb(s), hops, tag)
                if self.timeline is not None:
                    self.timeline.add(s, "send", float(old[s]), depart[s], tag)
                    if arrival - wire > old[d]:
                        self.timeline.add(d, "idle", float(old[d]), arrival - wire, tag)
                    self.timeline.add(
                        d, "recv", max(float(old[d]), arrival - wire), arrival, tag
                    )
            self.clocks = new

    def _contention_factors(self, pairs, nb, topo: VirtualTopology) -> dict:
        """Per-transfer slowdown from shared directed hardware links.

        A transfer's factor is the worst byte-load ratio among the links
        of its dimension-ordered route: if a link carries 3x this
        transfer's bytes in total, the transfer runs 3x slower on it —
        an upper-bound approximation of store-and-forward serialization.
        Only computed when :attr:`link_contention` is enabled.
        """
        if not self.link_contention:
            return {}
        link_load: dict[tuple[int, int], int] = {}
        routes: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for s, d in pairs:
            route = topo.mesh.route_links(topo.place(s), topo.place(d))
            routes[(s, d)] = route
            for link in route:
                link_load[link] = link_load.get(link, 0) + nb(s)
        factors: dict[tuple[int, int], float] = {}
        for s, d in pairs:
            own = max(1, nb(s))
            worst = max(
                (link_load[link] / own for link in routes[(s, d)]), default=1.0
            )
            factors[(s, d)] = max(1.0, worst)
        return factors

    # ------------------------------------------------------------------ trees
    def broadcast(
        self,
        root: int,
        nbytes: int,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "bcast",
    ) -> None:
        """Binomial-tree broadcast of *nbytes* from *root* to everyone."""
        self._check_rank(root)
        if self.p == 1:
            return
        tree = BinomialTree(topo.mesh, root=root)
        for rnd in tree.broadcast_rounds():
            for s, d in rnd:
                self.p2p(s, d, nbytes, topo, sync=sync, tag=tag)

    def reduce(
        self,
        root: int,
        nbytes: int,
        topo: VirtualTopology,
        combine_seconds: float = 0.0,
        sync: bool = False,
        tag: str = "reduce",
    ) -> None:
        """Binomial-tree reduction to *root*.

        *combine_seconds* is charged at every merge point (the cost of
        applying the folding function to one pair of partial results).
        """
        self._check_rank(root)
        if self.p == 1:
            return
        tree = BinomialTree(topo.mesh, root=root)
        for rnd in tree.reduce_rounds():
            for s, d in rnd:
                self.p2p(s, d, nbytes, topo, sync=sync, tag=tag)
                if combine_seconds:
                    self.compute_at(d, combine_seconds)

    def allreduce(
        self,
        nbytes: int,
        topo: VirtualTopology,
        combine_seconds: float = 0.0,
        root: int = 0,
        sync: bool = False,
    ) -> None:
        """Reduce to *root* then broadcast back — the paper's
        ``array_fold`` wire pattern ("the result finally collected at the
        root ... it is broadcasted from the root along the tree edges")."""
        self.reduce(root, nbytes, topo, combine_seconds, sync=sync, tag="fold-up")
        self.broadcast(root, nbytes, topo, sync=sync, tag="fold-down")

    def barrier(self, topo: VirtualTopology, tag: str = "barrier") -> None:
        """Synchronise all processors (empty allreduce)."""
        if self.p == 1:
            return
        self.allreduce(1, topo)
        self.clocks[:] = self.clocks.max()

    # ------------------------------------------------------------------ gather
    def gather(
        self,
        root: int,
        nbytes_per_rank: Sequence[int] | int,
        topo: VirtualTopology,
        tag: str = "gather",
    ) -> None:
        """Everyone sends its block to *root* (used for result output)."""
        for r in range(self.p):
            if r == root:
                continue
            nb = (
                int(nbytes_per_rank)
                if np.isscalar(nbytes_per_rank)
                else int(nbytes_per_rank[r])
            )
            self.p2p(r, root, nb, topo, tag=tag)

    def scatter(
        self,
        root: int,
        nbytes_per_rank: Sequence[int] | int,
        topo: VirtualTopology,
        tag: str = "scatter",
    ) -> None:
        """*root* sends each processor its block (initial distribution)."""
        for r in range(self.p):
            if r == root:
                continue
            nb = (
                int(nbytes_per_rank)
                if np.isscalar(nbytes_per_rank)
                else int(nbytes_per_rank[r])
            )
            self.p2p(root, r, nb, topo, tag=tag)

    def allgather(
        self,
        nbytes: int,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "allgather",
    ) -> None:
        """Ring allgather: p-1 rounds, each processor forwarding the
        block it just received to its successor — the standard pattern
        on ring virtual topologies."""
        if self.p == 1:
            return
        from repro.machine.topology import Ring

        ring = topo if isinstance(topo, Ring) else Ring(topo.mesh)
        pairs = [(i, ring.succ(i)) for i in range(self.p)]
        for _ in range(self.p - 1):
            self.shift(pairs, nbytes, ring, sync=sync, tag=tag)

    def alltoall(
        self,
        nbytes: int,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "alltoall",
    ) -> None:
        """Personalised all-to-all as p-1 rotation rounds (each round is
        a disjoint permutation r -> r XOR k when p is a power of two,
        r -> (r + k) mod p otherwise)."""
        if self.p == 1:
            return
        for k in range(1, self.p):
            if self.p & (self.p - 1) == 0:
                pairs = [(r, r ^ k) for r in range(self.p)]
            else:
                pairs = [(r, (r + k) % self.p) for r in range(self.p)]
            self.shift(pairs, nbytes, topo, sync=sync, tag=tag)

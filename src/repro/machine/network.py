"""Clock-level simulation of message passing over a virtual topology.

The skeletons (and the hand-written baselines) move the *actual data*
between partitions themselves — they are ordinary numpy code running in
one Python process.  What this module simulates is **time**: a vector of
per-processor clocks is advanced according to the communication pattern,
the message cost model and the synchronisation semantics:

* an **asynchronous** send charges the sender only the software setup and
  lets it continue; the receiver blocks until the message has crossed all
  its hardware hops,
* a **synchronous** (rendezvous) send blocks both parties until the
  transfer completes — the semantics of the old Parix C code that Table 1
  compares against.

All collective patterns used by the paper's skeletons are provided:
point-to-point, simultaneous shifts (the torus rotations of Gentleman's
algorithm), binomial-tree broadcast and reduction (``array_fold``,
``array_broadcast_part``), and barriers.  The fine-grained event engine
(:mod:`repro.machine.engine`) implements the same semantics at message
granularity; the test-suite checks the two agree on small configurations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import MachineError
from repro.machine.costmodel import CostModel
from repro.machine.topology import (
    BinomialTree,
    Ring,
    VirtualTopology,
    binomial_round_arrays,
)
from repro.machine.trace import TraceStats

__all__ = ["Network"]

#: waves shorter than this are charged through the scalar loop — numpy
#: dispatch overhead beats the vector math on runs of one or two messages
_WAVE_MIN = 4

#: hop-count histogram buckets (1..16 mesh hops)
_HOP_BUCKETS = tuple(float(h) for h in range(1, 17))


class Network:
    """Per-processor clocks plus the message cost arithmetic.

    Parameters
    ----------
    cost:
        Hardware cost model (see :class:`repro.machine.costmodel.CostModel`).
    p:
        Number of (logical) processors.
    stats:
        Optional shared statistics accumulator.
    """

    def __init__(
        self,
        cost: CostModel,
        p: int,
        stats: TraceStats | None = None,
        link_contention: bool = False,
    ):
        if p <= 0:
            raise MachineError(f"need at least one processor, got p={p}")
        self.cost = cost
        self.p = p
        self.clocks = np.zeros(p, dtype=np.float64)
        self._all_ranks = np.arange(p, dtype=np.int64)
        self.stats = stats if stats is not None else TraceStats()
        #: when enabled, simultaneous transfers in a :meth:`shift` whose
        #: dimension-ordered routes share a directed hardware link are
        #: slowed by the link's total load (approximate serialization)
        self.link_contention = link_contention
        #: optional observability sinks (attached by
        #: :class:`repro.machine.machine.Machine` when tracing is on);
        #: every hot-path use is guarded by one ``is None`` test so the
        #: clock arithmetic is bit-identical with tracing off
        self.metrics = None  # repro.obs.metrics.MetricsRegistry | None
        self.timeline = None  # repro.obs.timeline.Timeline | None
        #: what-if knob (see :mod:`repro.obs.analysis`): when enabled,
        #: per-processor compute vectors are replaced by their mean and
        #: single-rank compute is spread over all processors — the
        #: "perfectly balanced compute" counterfactual.  Never set on
        #: machines used for real measurements.
        self.balance_compute = False

    def _observe_message(self, nbytes: int, hops: int, tag: str) -> None:
        m = self.metrics
        m.observe("net.message_bytes", nbytes)
        m.observe("net.message_hops", hops, buckets=_HOP_BUCKETS)
        m.inc(f"net.messages.{tag or 'untagged'}")

    def _observe_wave(self, nbytes, hops, tag: str) -> None:
        """Vectorized :meth:`_observe_message` over one wave.

        Histogram bucketing and counts are exact; the running sums use
        a seeded left fold (:meth:`Histogram.observe_many`), so the
        registry state is bit-identical to the per-message loop.
        """
        m = self.metrics
        m.observe_many("net.message_bytes", nbytes)
        m.observe_many("net.message_hops", hops, buckets=_HOP_BUCKETS)
        m.inc(f"net.messages.{tag or 'untagged'}", len(nbytes))

    def _fold_stat_seconds(self, comm_terms, idle_terms) -> None:
        """Fold per-message comm/idle seconds into the running stats.

        ``np.add.accumulate`` is a *sequential* left fold (unlike
        ``np.add.reduce``, which regroups pairwise), so seeding it with
        the current accumulator reproduces the scalar ``+=`` loop's
        rounding bit for bit.
        """
        stats = self.stats
        buf = np.empty(comm_terms.shape[0] + 1, dtype=np.float64)
        buf[0] = stats.comm_seconds
        buf[1:] = comm_terms
        stats.comm_seconds = float(np.add.accumulate(buf)[-1])
        buf[0] = stats.idle_seconds
        buf[1:] = idle_terms
        stats.idle_seconds = float(np.add.accumulate(buf)[-1])

    # ------------------------------------------------------------------ helpers
    @property
    def time(self) -> float:
        """Makespan so far: the latest of all processor clocks."""
        return float(self.clocks.max())

    def reset(self) -> None:
        self.clocks[:] = 0.0

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.p):
            raise MachineError(f"rank {rank} outside machine of {self.p} processors")

    # ------------------------------------------------------------------ compute
    def compute(self, seconds) -> None:
        """Advance clocks by local computation time.

        *seconds* may be a scalar (same work everywhere) or an array of
        per-processor times.
        """
        sec = np.asarray(seconds, dtype=np.float64)
        if sec.ndim != 0 and self.balance_compute and sec.shape == (self.p,):
            sec = np.asarray(float(sec.mean()))
        if sec.ndim == 0:
            tl = self.timeline
            if tl is not None and float(sec) > 0.0:
                if getattr(tl, "wave_api", False):
                    tl.add_many(
                        self._all_ranks, "compute",
                        self.clocks, self.clocks + float(sec),
                    )
                else:
                    for r in range(self.p):
                        t0 = float(self.clocks[r])
                        tl.add(r, "compute", t0, t0 + float(sec))
            self.clocks += float(sec)
            self.stats.compute_seconds += float(sec) * self.p
        else:
            if sec.shape != (self.p,):
                raise MachineError(
                    f"per-processor compute vector must have shape ({self.p},), "
                    f"got {sec.shape}"
                )
            tl = self.timeline
            if tl is not None:
                if getattr(tl, "wave_api", False):
                    tl.add_many(
                        self._all_ranks, "compute", self.clocks, self.clocks + sec
                    )
                else:
                    for r in range(self.p):
                        if sec[r] > 0.0:
                            t0 = float(self.clocks[r])
                            tl.add(r, "compute", t0, t0 + float(sec[r]))
            self.clocks += sec
            self.stats.compute_seconds += float(sec.sum())

    def compute_at(self, rank: int, seconds: float) -> None:
        """Advance one processor's clock by local work."""
        self._check_rank(rank)
        if self.balance_compute:
            self.compute(seconds / self.p)
            return
        if self.timeline is not None and seconds > 0.0:
            t0 = float(self.clocks[rank])
            self.timeline.add(rank, "compute", t0, t0 + seconds)
        self.clocks[rank] += seconds
        self.stats.compute_seconds += seconds

    # ------------------------------------------------------------------ p2p
    def p2p(
        self,
        src: int,
        dst: int,
        nbytes: int,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "p2p",
    ) -> float:
        """One message from *src* to *dst*; returns its arrival time."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            # a local copy, no wire involved
            t = nbytes * self.cost.t_mem
            if self.timeline is not None and t > 0.0:
                t0 = float(self.clocks[src])
                self.timeline.add(src, "compute", t0, t0 + t, detail="local-copy")
            self.clocks[src] += t
            self.stats.comm_seconds += t
            return float(self.clocks[src])
        hops = topo.edge_hops(src, dst)
        wire = self.cost.message_time(nbytes, hops)
        # plain-float arithmetic on purpose: this is the hottest loop of
        # the collective simulation, and numpy scalar indexing dominates
        # it otherwise.  Python floats are the same IEEE doubles, so the
        # clock values are bit-identical to the array-scalar version.
        old_src = float(self.clocks[src])
        old_dst = float(self.clocks[dst])
        depart = old_src + self.cost.t_setup
        arrival = depart + wire
        if sync:
            depart = max(depart, old_dst)
            arrival = depart + wire
            self.stats.idle_seconds += max(0.0, arrival - old_dst - wire)
            self.clocks[src] = arrival
            self.clocks[dst] = arrival
        else:
            self.clocks[src] = depart
            self.stats.idle_seconds += max(0.0, arrival - old_dst)
            self.clocks[dst] = max(old_dst, arrival)
        self.stats.record_message(arrival, src, dst, nbytes, hops, tag, depart=depart)
        self.stats.comm_seconds += wire + self.cost.t_setup
        if self.metrics is not None:
            self._observe_message(nbytes, hops, tag)
        if self.timeline is not None:
            self.timeline.add(src, "send", old_src, float(self.clocks[src]), tag)
            if arrival - wire > old_dst:
                self.timeline.add(dst, "idle", old_dst, arrival - wire, tag)
            self.timeline.add(dst, "recv", max(old_dst, arrival - wire), arrival, tag)
        return float(arrival)

    # ------------------------------------------------------------------ batch
    def p2p_batch(
        self,
        srcs,
        dsts,
        nbytes,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "p2p",
    ) -> None:
        """Charge a sequence of point-to-point messages.

        Bit-identical to calling :meth:`p2p` once per message in order
        (property-tested by the ``batch`` pillar of :mod:`repro.check`):
        the sequence is split into *waves* — maximal runs in which no
        rank appears twice in any role — whose messages are independent
        by construction and are charged in one vectorized pass from the
        wave-start clocks; short or conflicting runs fall back to the
        scalar loop.  *nbytes* may be a scalar or a per-message array.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        k = int(srcs.size)
        if k == 0:
            return
        if int(dsts.size) != k:
            raise MachineError("p2p_batch src/dst arrays must have equal length")
        nbs = np.asarray(nbytes, dtype=np.int64)
        if nbs.ndim == 0:
            nbs = np.full(k, int(nbs), dtype=np.int64)
        elif int(nbs.size) != k:
            raise MachineError("p2p_batch nbytes array must match message count")
        lo = min(int(srcs.min()), int(dsts.min()))
        hi = max(int(srcs.max()), int(dsts.max()))
        if lo < 0 or hi >= self.p:
            bad = lo if lo < 0 else hi
            raise MachineError(
                f"rank {bad} outside machine of {self.p} processors"
            )
        sl = srcs.tolist()
        dl = dsts.tolist()
        start = 0
        seen: set[int] = set()
        i = 0
        while i < k:
            s = sl[i]
            d = dl[i]
            if not seen:
                # an empty wave may instead open a same-source *run*:
                # consecutive async messages from one rank to pairwise
                # distinct remote destinations (a row permutation's
                # send pattern), charged vectorized as a prefix-sum of
                # departures instead of one degenerate wave per message
                j = i + 1
                while j < k and sl[j] == s:
                    j += 1
                if j - i >= _WAVE_MIN and not sync:
                    dseg = dl[i:j]
                    if s not in dseg and len(set(dseg)) == j - i:
                        self._p2p_run(srcs, dsts, nbs, i, j, topo, tag)
                        start = i = j
                        continue
            if s in seen or d in seen:
                self._charge_wave(srcs, dsts, nbs, start, i, topo, sync, tag)
                seen.clear()
                start = i
                continue
            seen.add(s)
            seen.add(d)
            i += 1
        if start < k:
            self._charge_wave(srcs, dsts, nbs, start, k, topo, sync, tag)

    def _charge_wave(self, srcs, dsts, nbs, i0, i1, topo, sync, tag) -> None:
        if i1 - i0 < _WAVE_MIN:
            for i in range(i0, i1):
                self.p2p(
                    int(srcs[i]), int(dsts[i]), int(nbs[i]), topo, sync=sync, tag=tag
                )
            return
        self._p2p_wave(srcs[i0:i1], dsts[i0:i1], nbs[i0:i1], topo, sync, tag)

    def _p2p_run(self, srcs, dsts, nbs, i0, i1, topo, tag) -> None:
        self._p2p_fanout(int(srcs[i0]), dsts[i0:i1], nbs[i0:i1], topo, tag)

    def _p2p_fanout(self, s, rd, rnb, topo, tag) -> None:
        """Async messages from one source to distinct remote
        destinations, vectorized (same-source runs and :meth:`scatter`).

        The scalar loop advances the source clock by ``t_setup`` per
        message, so the departures are the sequential prefix sums
        ``np.add.accumulate([old_src + t_setup, t_setup, ...])`` —
        ``accumulate`` is a left fold, reproducing the scalar additions
        bit for bit.  No destination repeats and none equals the source,
        so every arrival depends only on the run-start clocks.
        """
        cost = self.cost
        clocks = self.clocks
        n = int(rd.size)
        rhops = topo.hops_vec(s, rd)
        wire = cost.message_time_vec(rnb, rhops)
        old_src = float(clocks[s])
        steps = np.full(n, cost.t_setup, dtype=np.float64)
        steps[0] = old_src + cost.t_setup
        departs = np.add.accumulate(steps)
        arrival = departs + wire
        old_dst = clocks[rd]
        idle_c = np.maximum(0.0, arrival - old_dst)
        clocks[rd] = np.maximum(old_dst, arrival)
        clocks[s] = departs[-1]
        self.stats.record_messages(
            arrival,
            np.full(n, s, dtype=np.int64),
            rd,
            rnb,
            rhops,
            tag,
            departs=departs,
        )
        self._fold_stat_seconds(wire + cost.t_setup, idle_c)
        if self.metrics is not None:
            self._observe_wave(rnb, rhops, tag)
        if self.timeline is not None:
            tl = self.timeline
            if getattr(tl, "wave_api", False):
                send_starts = np.empty(n, dtype=np.float64)
                send_starts[0] = old_src
                send_starts[1:] = departs[:-1]
                tl.add_many(
                    np.full(n, s, dtype=np.int64), "send", send_starts, departs, tag
                )
                idle_end = arrival - wire
                tl.add_many(rd, "idle", old_dst, idle_end, tag)
                tl.add_many(rd, "recv", np.maximum(old_dst, idle_end), arrival, tag)
            else:
                prev_send = old_src
                for d, dep, arr, w, od in zip(
                    rd.tolist(),
                    departs.tolist(),
                    arrival.tolist(),
                    wire.tolist(),
                    old_dst.tolist(),
                ):
                    tl.add(s, "send", prev_send, dep, tag)
                    prev_send = dep
                    if arr - w > od:
                        tl.add(d, "idle", od, arr - w, tag)
                    tl.add(d, "recv", max(od, arr - w), arr, tag)

    def _p2p_wave(self, srcs, dsts, nbs, topo, sync, tag) -> None:
        """One conflict-free wave, vectorized.

        Every rank appears in at most one message, so each message's
        clock arithmetic depends only on the wave-start clocks and the
        per-message expressions match the scalar :meth:`p2p` ones
        operation for operation.  Stats floats are still accumulated by
        a per-message left-fold so the running sums keep the scalar
        rounding behaviour.
        """
        cost = self.cost
        clocks = self.clocks
        k = int(srcs.size)
        hops = topo.hops_vec(srcs, dsts)
        local = srcs == dsts
        remote = ~local
        comm_c = np.empty(k, dtype=np.float64)
        idle_c = np.zeros(k, dtype=np.float64)
        if local.any():
            ls = srcs[local]
            t_loc = nbs[local].astype(np.float64) * cost.t_mem
            old_loc = clocks[ls]
            if self.timeline is not None:
                tl = self.timeline
                if getattr(tl, "wave_api", False):
                    tl.add_many(
                        ls, "compute", old_loc, old_loc + t_loc, "local-copy"
                    )
                else:
                    for s, t0, t in zip(
                        ls.tolist(), old_loc.tolist(), t_loc.tolist()
                    ):
                        if t > 0.0:
                            tl.add(s, "compute", t0, t0 + t, detail="local-copy")
            clocks[ls] = old_loc + t_loc
            comm_c[local] = t_loc
        if remote.any():
            rs = srcs[remote]
            rd = dsts[remote]
            rnb = nbs[remote]
            rhops = hops[remote]
            old_src = clocks[rs]
            old_dst = clocks[rd]
            wire = cost.message_time_vec(rnb, rhops)
            depart = old_src + cost.t_setup
            arrival = depart + wire
            if sync:
                depart = np.maximum(depart, old_dst)
                arrival = depart + wire
                idle_c[remote] = np.maximum(0.0, arrival - old_dst - wire)
                clocks[rs] = arrival
                clocks[rd] = arrival
                new_src = arrival
            else:
                clocks[rs] = depart
                idle_c[remote] = np.maximum(0.0, arrival - old_dst)
                clocks[rd] = np.maximum(old_dst, arrival)
                new_src = depart
            comm_c[remote] = wire + cost.t_setup
            self.stats.record_messages(
                arrival, rs, rd, rnb, rhops, tag, departs=depart
            )
            if self.metrics is not None:
                self._observe_wave(rnb, rhops, tag)
            if self.timeline is not None:
                tl = self.timeline
                if getattr(tl, "wave_api", False):
                    tl.add_many(rs, "send", old_src, new_src, tag)
                    idle_end = arrival - wire
                    tl.add_many(rd, "idle", old_dst, idle_end, tag)
                    tl.add_many(
                        rd, "recv", np.maximum(old_dst, idle_end), arrival, tag
                    )
                else:
                    for s, d, t_old_s, t_old_d, t_new_s, arr, w in zip(
                        rs.tolist(),
                        rd.tolist(),
                        old_src.tolist(),
                        old_dst.tolist(),
                        new_src.tolist(),
                        arrival.tolist(),
                        wire.tolist(),
                    ):
                        tl.add(s, "send", t_old_s, t_new_s, tag)
                        if arr - w > t_old_d:
                            tl.add(d, "idle", t_old_d, arr - w, tag)
                        tl.add(d, "recv", max(t_old_d, arr - w), arr, tag)
        # left-fold the float accumulators in message order so the
        # running sums round exactly like the scalar loop's; local
        # messages contribute no idle term, and their +0.0 entries in
        # idle_c are fold-neutral (the accumulator is never -0.0)
        self._fold_stat_seconds(comm_c, idle_c)

    # ------------------------------------------------------------------ shift
    def shift(
        self,
        pairs: Iterable[tuple[int, int]],
        nbytes,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "shift",
    ) -> None:
        """Simultaneous transfers along disjoint (src, dst) pairs.

        Used for the partition rotations of Gentleman's algorithm and for
        row permutations.  Each processor appears at most once as source
        and at most once as destination; the transfers proceed in
        parallel over distinct links.

        *nbytes* may be a scalar or a per-source mapping/array.
        """
        pairs = list(pairs)
        srcs = [s for s, _ in pairs]
        dsts = [d for _, d in pairs]
        if not pairs:
            return
        if np.isscalar(nbytes):
            nbs = np.full(len(pairs), int(nbytes), dtype=np.int64)
        else:
            nbs = np.fromiter(
                (int(nbytes[s]) for s in srcs), dtype=np.int64, count=len(srcs)
            )
        self.shift_batch(
            np.asarray(srcs, dtype=np.int64),
            np.asarray(dsts, dtype=np.int64),
            nbs,
            topo,
            sync=sync,
            tag=tag,
        )

    def shift_batch(
        self,
        srcs,
        dsts,
        nbytes,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "shift",
    ) -> None:
        """Vectorized :meth:`shift` over parallel (src, dst, nbytes) arrays.

        The asynchronous case is inherently parallel — every transfer
        departs from the pre-shift clocks — so all clock updates, hop
        lookups (closed-form coordinate arithmetic), wire times and
        contention factors
        are computed in one vectorized pass; the rendezvous case is
        order-dependent (a node that both sends and receives serializes)
        and replays the scalar pair loop.  Either way the result is
        bit-identical to the original per-pair loop.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        k = int(srcs.size)
        if k == 0:
            return
        nbs = np.asarray(nbytes, dtype=np.int64)
        if nbs.ndim == 0:
            nbs = np.full(k, int(nbs), dtype=np.int64)
        if int(np.unique(srcs).size) != k or int(np.unique(dsts).size) != k:
            raise MachineError("shift pairs must be disjoint per side")
        old = self.clocks.copy()
        cost = self.cost
        if sync:
            # rendezvous on every edge; a processor that both sends and
            # receives does so serially (no DMA overlap on the old code
            # path), so it pays for two transfers after synchronising
            # with both partners.
            src_set = set(srcs.tolist())
            for s, d, nb_s in zip(srcs.tolist(), dsts.tolist(), nbs.tolist()):
                start = max(old[s], old[d]) + cost.t_setup
                hops = topo.edge_hops(s, d)
                wire = cost.message_time(nb_s, hops)
                finish = start + wire
                self.clocks[s] = max(self.clocks[s], finish)
                self.clocks[d] = max(self.clocks[d], finish) + (
                    wire if d in src_set else 0.0
                )
                self.stats.record_message(
                    finish, s, d, nb_s, hops, tag, depart=start
                )
                self.stats.comm_seconds += wire + cost.t_setup
                self.stats.idle_seconds += max(0.0, start - cost.t_setup - old[d])
                if self.metrics is not None:
                    self._observe_message(nb_s, hops, tag)
                if self.timeline is not None:
                    self.timeline.add(s, "send", float(old[s]), finish, tag)
                    self.timeline.add(d, "recv", float(old[d]), finish, tag)
            return
        new = self.clocks.copy()
        hops = topo.hops_vec(srcs, dsts)
        departs = old[srcs] + cost.t_setup
        new[srcs] = np.maximum(new[srcs], departs)
        wire = cost.message_time_vec(nbs, hops)
        if self.link_contention:
            wire = wire * self._contention_factors(srcs, dsts, nbs, topo)
        arrival = departs + wire
        old_dst = old[dsts]
        idle_c = np.maximum(0.0, arrival - old_dst)
        new[dsts] = np.maximum(new[dsts], arrival)
        self.stats.record_messages(
            arrival, srcs, dsts, nbs, hops, tag, departs=departs
        )
        # left-fold the float accumulators in pair order (scalar rounding)
        self._fold_stat_seconds(wire + cost.t_setup, idle_c)
        if self.metrics is not None:
            self._observe_wave(nbs, hops, tag)
        if self.timeline is not None:
            tl = self.timeline
            if getattr(tl, "wave_api", False):
                tl.add_many(srcs, "send", old[srcs], departs, tag)
                idle_end = arrival - wire
                tl.add_many(dsts, "idle", old_dst, idle_end, tag)
                tl.add_many(dsts, "recv", np.maximum(old_dst, idle_end), arrival, tag)
            else:
                for s, d, dep, arr, w, od in zip(
                    srcs.tolist(),
                    dsts.tolist(),
                    departs.tolist(),
                    arrival.tolist(),
                    wire.tolist(),
                    old_dst.tolist(),
                ):
                    tl.add(s, "send", float(old[s]), dep, tag)
                    if arr - w > od:
                        tl.add(d, "idle", od, arr - w, tag)
                    tl.add(d, "recv", max(od, arr - w), arr, tag)
        self.clocks = new

    def _contention_factors(self, srcs, dsts, nbs, topo: VirtualTopology):
        """Per-transfer slowdown from shared directed hardware links.

        A transfer's factor is the worst byte-load ratio among the links
        of its dimension-ordered route: if a link carries 3x this
        transfer's bytes in total, the transfer runs 3x slower on it —
        an upper-bound approximation of store-and-forward serialization.
        Only computed when :attr:`link_contention` is enabled.

        Link keys are the integer-id route arrays memoized on the
        topology (:meth:`VirtualTopology.route_link_ids`) and loads are
        accumulated into one flat array — no per-call dictionaries.  The
        factors equal the historical dict-based computation bit-for-bit:
        integer byte loads are exact, and the max of per-link quotients
        equals the quotient of the max load for a shared positive
        divisor (IEEE division is monotone).
        """
        sl = srcs.tolist()
        dl = dsts.tolist()
        nl = nbs.tolist()
        routes = [topo.route_link_ids(s, d) for s, d in zip(sl, dl)]
        factors = np.ones(len(sl), dtype=np.float64)
        lens = [int(r.size) for r in routes]
        if not any(lens):
            return factors
        all_ids = np.concatenate(routes)
        loads = np.zeros(topo.mesh.p * topo.mesh.p, dtype=np.int64)
        np.add.at(loads, all_ids, np.repeat(np.asarray(nl, dtype=np.int64), lens))
        for i, route in enumerate(routes):
            if lens[i]:
                own = max(1, nl[i])
                factors[i] = max(1.0, float(loads[route].max()) / own)
        return factors

    # ------------------------------------------------------------------ trees
    def _charge_round(self, srcs, dsts, nbytes: int, topo, sync, tag) -> None:
        """Charge one disjoint binomial round given as edge arrays.

        The edges of a binomial round touch every rank at most once, so
        the whole round is exactly one conflict-free wave: short rounds
        go through the scalar :meth:`p2p` loop, longer ones straight
        into :meth:`_p2p_wave` — the same split (and therefore the same
        bit-exact arithmetic) the historical ``p2p_batch`` wave scan
        produced, without its per-edge Python pass.
        """
        k = int(srcs.size)
        if k < _WAVE_MIN:
            for i in range(k):
                self.p2p(
                    int(srcs[i]), int(dsts[i]), nbytes, topo, sync=sync, tag=tag
                )
            return
        nbs = np.full(k, int(nbytes), dtype=np.int64)
        self._p2p_wave(srcs, dsts, nbs, topo, sync, tag)

    def broadcast(
        self,
        root: int,
        nbytes: int,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "bcast",
    ) -> None:
        """Binomial-tree broadcast of *nbytes* from *root* to everyone.

        Closed form: the per-round edge arrays come straight from
        :func:`repro.machine.topology.binomial_round_arrays` (O(edges)
        numpy index arithmetic, no per-rank Python), and each round is
        charged as one conflict-free wave — ``log2(p)`` vectorized
        charges total.
        """
        self._check_rank(root)
        if self.p == 1:
            return
        for srcs, dsts in binomial_round_arrays(self.p, root):
            self._charge_round(srcs, dsts, nbytes, topo, sync, tag)

    def reduce(
        self,
        root: int,
        nbytes: int,
        topo: VirtualTopology,
        combine_seconds: float = 0.0,
        sync: bool = False,
        tag: str = "reduce",
    ) -> None:
        """Binomial-tree reduction to *root*.

        *combine_seconds* is charged at every merge point (the cost of
        applying the folding function to one pair of partial results).
        The schedule is the reversed broadcast with every edge flipped,
        taken closed-form from the same per-round arrays as
        :meth:`broadcast`.
        """
        self._check_rank(root)
        if self.p == 1:
            return
        if self.balance_compute:
            # the what-if replay spreads every combine over all
            # clocks, so the per-edge interleaving matters — replay
            # the scalar order exactly
            tree = BinomialTree(topo.mesh, root=root)
            for rnd in tree.reduce_rounds():
                for s, d in rnd:
                    self.p2p(s, d, nbytes, topo, sync=sync, tag=tag)
                    if combine_seconds:
                        self.compute_at(d, combine_seconds)
            return
        for b_srcs, b_dsts in reversed(binomial_round_arrays(self.p, root)):
            # reduction messages flow dst -> src of the broadcast edge;
            # the merge happens at the broadcast-edge source
            self._charge_round(b_dsts, b_srcs, nbytes, topo, sync, tag)
            if combine_seconds:
                self._charge_combines(b_srcs, combine_seconds)

    def _charge_combines(self, ranks, combine_seconds: float) -> None:
        """Charge one reduction round's merge work at *ranks*.

        Ranks in a round are disjoint, so merging after the round's
        messages touches the same clocks in the same per-rank order as
        the interleaved scalar loop; the stats float is folded with a
        seeded ``np.add.accumulate`` (a sequential left fold), matching
        the scalar ``+=`` loop bit for bit.
        """
        tl = self.timeline
        k = int(ranks.size)
        if k < _WAVE_MIN or (tl is not None and not getattr(tl, "wave_api", False)):
            for d in ranks.tolist():
                self.compute_at(int(d), combine_seconds)
            return
        old = self.clocks[ranks]
        if tl is not None:
            tl.add_many(ranks, "compute", old, old + combine_seconds)
        self.clocks[ranks] += combine_seconds
        buf = np.full(k + 1, combine_seconds, dtype=np.float64)
        buf[0] = self.stats.compute_seconds
        self.stats.compute_seconds = float(np.add.accumulate(buf)[-1])

    def allreduce(
        self,
        nbytes: int,
        topo: VirtualTopology,
        combine_seconds: float = 0.0,
        root: int = 0,
        sync: bool = False,
    ) -> None:
        """Reduce to *root* then broadcast back — the paper's
        ``array_fold`` wire pattern ("the result finally collected at the
        root ... it is broadcasted from the root along the tree edges")."""
        self.reduce(root, nbytes, topo, combine_seconds, sync=sync, tag="fold-up")
        self.broadcast(root, nbytes, topo, sync=sync, tag="fold-down")

    def barrier(self, topo: VirtualTopology, tag: str = "barrier") -> None:
        """Synchronise all processors (empty allreduce)."""
        if self.p == 1:
            return
        self.allreduce(1, topo)
        self.clocks[:] = self.clocks.max()

    # ------------------------------------------------------------------ gather
    def _fan_ranks(self, root: int) -> np.ndarray:
        """Every rank except *root*, ascending — the fan-in/out order."""
        return np.concatenate(
            (
                np.arange(root, dtype=np.int64),
                np.arange(root + 1, self.p, dtype=np.int64),
            )
        )

    def _fan_bytes(self, nbytes_per_rank, ranks: np.ndarray) -> np.ndarray:
        if np.isscalar(nbytes_per_rank):
            return np.full(ranks.size, int(nbytes_per_rank), dtype=np.int64)
        return np.asarray(nbytes_per_rank, dtype=np.int64)[ranks]

    def gather(
        self,
        root: int,
        nbytes_per_rank: Sequence[int] | int,
        topo: VirtualTopology,
        tag: str = "gather",
    ) -> None:
        """Everyone sends its block to *root* (used for result output).

        Closed form: the senders are independent (each appears once, the
        root only receives), so departures and arrivals come from the
        rank-start clocks in one vectorized pass; the root's clock is the
        running maximum of the arrivals (``np.maximum.accumulate`` —
        exact, so bit-identical to the scalar fold), and per-message idle
        terms use the pre-message running value.
        """
        self._check_rank(root)
        if self.p == 1:
            return
        srcs = self._fan_ranks(root)
        k = int(srcs.size)
        nbs = self._fan_bytes(nbytes_per_rank, srcs)
        if k < _WAVE_MIN:
            for i in range(k):
                self.p2p(int(srcs[i]), root, int(nbs[i]), topo, tag=tag)
            return
        cost = self.cost
        clocks = self.clocks
        hops = topo.hops_vec(srcs, root)
        wire = cost.message_time_vec(nbs, hops)
        old_src = clocks[srcs]
        departs = old_src + cost.t_setup
        arrival = departs + wire
        old_root = float(clocks[root])
        run_max = np.maximum.accumulate(arrival)
        prev = np.empty(k, dtype=np.float64)
        prev[0] = old_root
        np.maximum(old_root, run_max[:-1], out=prev[1:])
        idle_c = np.maximum(0.0, arrival - prev)
        clocks[srcs] = departs
        clocks[root] = max(old_root, float(run_max[-1]))
        self.stats.record_messages(
            arrival,
            srcs,
            np.full(k, root, dtype=np.int64),
            nbs,
            hops,
            tag,
            departs=departs,
        )
        self._fold_stat_seconds(wire + cost.t_setup, idle_c)
        if self.metrics is not None:
            self._observe_wave(nbs, hops, tag)
        if self.timeline is not None:
            tl = self.timeline
            idle_end = arrival - wire
            if getattr(tl, "wave_api", False):
                roots = np.full(k, root, dtype=np.int64)
                tl.add_many(srcs, "send", old_src, departs, tag)
                tl.add_many(roots, "idle", prev, idle_end, tag)
                tl.add_many(
                    roots, "recv", np.maximum(prev, idle_end), arrival, tag
                )
            else:
                for s, t0, dep, arr, ie, pv in zip(
                    srcs.tolist(),
                    old_src.tolist(),
                    departs.tolist(),
                    arrival.tolist(),
                    idle_end.tolist(),
                    prev.tolist(),
                ):
                    tl.add(s, "send", t0, dep, tag)
                    if ie > pv:
                        tl.add(root, "idle", pv, ie, tag)
                    tl.add(root, "recv", max(pv, ie), arr, tag)

    def scatter(
        self,
        root: int,
        nbytes_per_rank: Sequence[int] | int,
        topo: VirtualTopology,
        tag: str = "scatter",
    ) -> None:
        """*root* sends each processor its block (initial distribution).

        Closed form: one source fanning out to distinct destinations is
        exactly the prefix-sum departure pattern of
        :meth:`_p2p_fanout`, charged in one vectorized pass.
        """
        self._check_rank(root)
        if self.p == 1:
            return
        dsts = self._fan_ranks(root)
        k = int(dsts.size)
        nbs = self._fan_bytes(nbytes_per_rank, dsts)
        if k < _WAVE_MIN:
            for i in range(k):
                self.p2p(root, int(dsts[i]), int(nbs[i]), topo, tag=tag)
            return
        self._p2p_fanout(root, dsts, nbs, topo, tag)

    def allgather(
        self,
        nbytes: int,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "allgather",
    ) -> None:
        """Ring allgather: p-1 rounds, each processor forwarding the
        block it just received to its successor — the standard pattern
        on ring virtual topologies."""
        if self.p == 1:
            return
        ring = topo if isinstance(topo, Ring) else Ring(topo.mesh)
        srcs = np.arange(self.p, dtype=np.int64)
        dsts = (srcs + 1) % self.p
        for _ in range(self.p - 1):
            self.shift_batch(srcs, dsts, nbytes, ring, sync=sync, tag=tag)

    def alltoall(
        self,
        nbytes: int,
        topo: VirtualTopology,
        sync: bool = False,
        tag: str = "alltoall",
    ) -> None:
        """Personalised all-to-all as p-1 rotation rounds (each round is
        a disjoint permutation r -> r XOR k when p is a power of two,
        r -> (r + k) mod p otherwise)."""
        if self.p == 1:
            return
        ranks = np.arange(self.p, dtype=np.int64)
        pow2 = self.p & (self.p - 1) == 0
        for k in range(1, self.p):
            dsts = (ranks ^ k) if pow2 else (ranks + k) % self.p
            self.shift_batch(ranks, dsts, nbytes, topo, sync=sync, tag=tag)

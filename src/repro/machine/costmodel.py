"""Cost model of the simulated machine and of the three language backends.

Two orthogonal ingredients determine a simulated run time:

* the **hardware cost model** (:class:`CostModel`) — how long a scalar
  operation, a memory move, and a message of *b* bytes over *h* hops take
  on one node of the machine.  The default preset is calibrated to the
  paper's testbed: a Parsytec MC with 20 MHz T800 transputers (about one
  microsecond per useful scalar operation once loop/index overhead is
  accounted for), 20 Mbit/s links with roughly 1.5 MB/s effective
  unidirectional bandwidth, and a software message setup in the hundreds
  of microseconds (Parix).

* the **language profile** (:class:`LanguageProfile`) — how much *slower
  than hand-written C* each language executes the same abstract work.
  This is where the paper's three contestants differ:

  - ``PARIX_C``: the reference.  Factor 1.0, no skeleton-call overhead,
    no per-element function-call cost (loops are written by hand).
  - ``SKIL``: translation by instantiation produces first-order
    monomorphic C that "differs only little from the hand-written
    versions, usually containing more function calls".  We charge a small
    per-element call cost plus a fixed overhead per skeleton invocation.
    The elementwise factor of 1.2 reproduces the 20 % gap against
    *equally optimized* C reported in the paper (Section 5.1, ref. [3]).
  - ``DPFL``: the data-parallel functional language.  Boxed values,
    closure application for every element, graph reduction, and no
    in-place update (``array_map`` must build a fresh array).  The paper
    measures Skil ≈ 6x faster on average; the DPFL factors below are the
    explicit, documented encoding of that gap.

All times are in **seconds** of simulated machine time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "CostModel",
    "LanguageProfile",
    "T800_PARSYTEC",
    "PARIX_C",
    "PARIX_C_OLD",
    "SKIL",
    "SKIL_CLOSURES",
    "DPFL",
    "PROFILES",
]


@dataclass(frozen=True)
class CostModel:
    """Hardware timing parameters of one node + the interconnect.

    Calibration note: ``t_op = 6 us`` reproduces the paper's *absolute*
    run times (e.g. Skil shortest paths on 2x2 = 234 s implies ~14 us
    per multiply-add pair after the Skil factors; the T800's raw FPU is
    faster, but the paper's per-element times include array indexing,
    loop control and cache-less DRAM access on a 20 MHz part).
    ``t_byte = 1 us/B`` for our float64 partitions corresponds to an
    effective ~0.5 MB/s per 4-byte element under Parix's software
    store-and-forward routing — calibrated against the communication
    share implied by the paper's large-network Gauss cells.

    Parameters
    ----------
    t_op:
        Seconds per useful scalar operation (arithmetic + the share of
        loop/index bookkeeping), in hand-written C.
    t_mem:
        Seconds per byte for a local block copy (``memcpy``); the paper
        exploits this in ``array_copy`` ("partitions are internally
        represented as contiguous memory areas").
    t_setup:
        Software cost to initiate one message (both ends combined).
    t_byte:
        Seconds per byte per *link traversal* (store-and-forward) or per
        message (cut-through), depending on *store_and_forward*.
    t_hop:
        Routing latency added per hardware hop.
    store_and_forward:
        The T800/Parix generation forwarded whole packets hop by hop;
        keep ``True`` for the paper preset.
    memory_bytes:
        RAM per node.  The Parsytec MC exposed only 1 MB, which is why
        the paper says "larger problem sizes could only be fitted into
        larger networks"; the machine enforces this when asked to.
    """

    t_op: float = 6.0e-6
    t_mem: float = 0.05e-6
    t_setup: float = 150e-6
    t_byte: float = 1.0e-6
    t_hop: float = 5e-6
    store_and_forward: bool = True
    memory_bytes: int = 1 << 20

    def message_time(self, nbytes: int, hops: int) -> float:
        """Wire time of one message of *nbytes* over *hops* links.

        Does not include the software setup (``t_setup``), which callers
        charge on the initiating side so that asynchronous sends can
        return after paying only the setup.
        """
        if hops <= 0:
            # local "message" — modelled as a block copy
            return nbytes * self.t_mem
        if self.store_and_forward:
            return hops * (self.t_hop + nbytes * self.t_byte)
        return hops * self.t_hop + nbytes * self.t_byte

    def message_time_vec(self, nbytes, hops):
        """Vectorized :meth:`message_time` over numpy arrays.

        Elementwise bit-identical to the scalar method: byte counts and
        hop counts below 2**53 convert to float64 exactly, and the same
        multiply/add expression tree is evaluated per element.
        """
        nb = np.asarray(nbytes, dtype=np.float64)
        h = np.asarray(hops, dtype=np.float64)
        if self.store_and_forward:
            wire = h * (self.t_hop + nb * self.t_byte)
        else:
            wire = h * self.t_hop + nb * self.t_byte
        if h.size == 0 or h.min() > 0.0:
            return wire
        return np.where(h <= 0.0, nb * self.t_mem, wire)

    def with_(self, **kw) -> "CostModel":
        """Return a copy with some fields replaced (calibration helper)."""
        return replace(self, **kw)


@dataclass(frozen=True)
class LanguageProfile:
    """How one language backend maps abstract work onto machine time.

    Parameters
    ----------
    elem_factor:
        Multiplier on ``t_op`` for elementwise computation relative to
        hand-written C.
    call_cost:
        Seconds charged per *element* for the residual function call left
        by instantiation (0 for hand-inlined C).
    closure_cost:
        Seconds charged per element for building/entering a closure and
        boxing/unboxing its arguments (the functional-language penalty;
        0 when translation by instantiation is used).
    skeleton_overhead:
        Fixed seconds per skeleton invocation per processor (argument
        marshalling, bounds setup).
    comm_byte_factor:
        Multiplier on per-byte wire cost for skeleton communication.
        A functional host must flatten boxed values into a contiguous
        buffer before sending and re-box afterwards, so DPFL pays several
        times the C wire cost per element; Skil partitions are already
        contiguous C arrays (factor 1).
    copy_on_update:
        ``True`` when the language cannot update arrays in place, so a
        map must allocate and later copy a temporary (the paper points
        out Skil avoids this and functional hosts cannot).
    async_comm:
        Whether the backend uses asynchronous communication where the
        pattern allows overlap.  The old C shortest-paths baseline of
        Table 1 did not.
    virtual_topologies:
        Whether the backend maps arrays onto folded virtual topologies.
        Again, the old C baseline did not (wrap-around rotations then
        cross the whole mesh).
    """

    name: str
    elem_factor: float = 1.0
    call_cost: float = 0.0
    closure_cost: float = 0.0
    skeleton_overhead: float = 0.0
    comm_byte_factor: float = 1.0
    copy_on_update: bool = False
    async_comm: bool = True
    virtual_topologies: bool = True

    def elem_time(self, cost: CostModel, ops_per_elem: float = 1.0) -> float:
        """Per-element compute time: scaled ops + residual calls + closures."""
        return (
            ops_per_elem * self.elem_factor * cost.t_op
            + self.call_cost
            + self.closure_cost
        )


#: the paper's testbed
T800_PARSYTEC = CostModel()

#: hand-written message-passing C under Parix (the reference in Table 2
#: and in the "equally optimized" comparison of Section 5.1)
PARIX_C = LanguageProfile(name="parix-c")

#: the *older* C version referenced in Table 1: synchronous communication,
#: no virtual topologies, and a less tuned sequential kernel — the paper
#: notes an *equally optimized* C beats Skil by ~20 %, yet this older
#: version loses to Skil, so its scalar code was ~35 % off the good C
PARIX_C_OLD = LanguageProfile(
    name="parix-c-old",
    elem_factor=1.35,
    async_comm=False,
    virtual_topologies=False,
)

#: Skil with translation by instantiation (the paper's system)
SKIL = LanguageProfile(
    name="skil",
    elem_factor=1.15,
    call_cost=0.12e-6,
    skeleton_overhead=60e-6,
)

#: ablation A3 — Skil compiled with classical closures instead of
#: instantiation, to quantify what the compilation technique buys
SKIL_CLOSURES = LanguageProfile(
    name="skil-closures",
    elem_factor=1.15,
    call_cost=0.12e-6,
    closure_cost=6.0e-6,
    skeleton_overhead=90e-6,
)

#: the data-parallel functional language of refs [7, 8]
DPFL = LanguageProfile(
    name="dpfl",
    elem_factor=7.1,
    call_cost=0.12e-6,
    closure_cost=2.8e-6,
    skeleton_overhead=140e-6,
    comm_byte_factor=6.0,
    copy_on_update=True,
)

PROFILES: dict[str, LanguageProfile] = {
    p.name: p for p in (PARIX_C, PARIX_C_OLD, SKIL, SKIL_CLOSURES, DPFL)
}

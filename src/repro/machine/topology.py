"""Hardware and virtual (software) topologies.

The paper's testbed is a Parsytec MC: 64 T800 transputers wired as a
2-dimensional mesh, running Parix.  Parix lets applications request
*virtual topologies* (ring, 2-D torus, tree, ...) which the OS embeds into
the hardware mesh; messages along a virtual link are routed over one or
more hardware links.

We model exactly that split:

* :class:`Mesh2D` is the *hardware* — it defines the hop distance between
  any two physical nodes (dimension-ordered routing, so the hop count is
  the Manhattan distance).
* :class:`VirtualTopology` subclasses (:class:`Ring`, :class:`Torus2D`,
  :class:`BinomialTree`, :class:`DefaultMapping`) define logical neighbour
  relations plus an *embedding*: for every logical edge, the number of
  hardware hops a message travelling that edge crosses.

The quality of the embedding matters for the experiments: the paper notes
that the *old* hand-written C version of shortest paths did not use
virtual topologies (nor asynchronous communication), which is why Skil's
``array_gen_mult`` — running on a torus embedding — beats it in Table 1.

Embeddings implemented:

* ring: boustrophedon (snake) walk of the mesh — dilation 1 (every ring
  edge is one hardware hop).
* torus: either *folded* (dilation 2: interleave rows/columns so that
  wrap-around edges also cost 2 hops — the classic folded-torus trick) or
  *naive* (wrap edges cost ``size - 1`` hops, as a plain mesh would).
* binomial tree: used for reductions/broadcasts; edge (i, i ^ 2^k) costs
  the mesh distance between the two placed nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

import numpy as np

from repro.errors import TopologyError

__all__ = [
    "Mesh2D",
    "VirtualTopology",
    "DefaultMapping",
    "Ring",
    "Torus2D",
    "BinomialTree",
    "square_grid",
    "binomial_round_arrays",
    "DENSE_HOPS_MAX_P",
]

#: largest topology for which the dense ``(p, p)`` hop matrix may be
#: materialized; above it every consumer must go through the closed-form
#: :meth:`VirtualTopology.hops_vec` (a ``(p, p)`` int64 matrix at
#: p = 65536 would be 32 GiB)
DENSE_HOPS_MAX_P = 2048


def square_grid(p: int) -> tuple[int, int]:
    """Return the most square ``rows x cols`` factorisation of *p*.

    Used both for the hardware mesh shape and for the default process grid
    of 2-D distributed arrays.  Prefers ``rows <= cols``.
    """
    if p <= 0:
        raise TopologyError(f"need a positive number of processors, got {p}")
    rows = int(math.isqrt(p))
    while p % rows != 0:
        rows -= 1
    return rows, p // rows


@dataclass(frozen=True)
class Mesh2D:
    """A ``rows x cols`` hardware mesh of processors.

    Node *r* sits at mesh coordinates ``(r // cols, r % cols)``; messages
    use dimension-ordered (X-then-Y) routing, so the number of link
    traversals between two nodes is their Manhattan distance.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise TopologyError(f"invalid mesh shape {self.rows}x{self.cols}")

    @classmethod
    def for_processors(cls, p: int) -> "Mesh2D":
        """Most-square mesh holding exactly *p* nodes."""
        r, c = square_grid(p)
        return cls(r, c)

    @property
    def p(self) -> int:
        return self.rows * self.cols

    def coords(self, rank: int) -> tuple[int, int]:
        self._check(rank)
        return divmod(rank, self.cols)

    def rank_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise TopologyError(f"coordinates ({row},{col}) outside mesh")
        return row * self.cols + col

    def hops(self, src: int, dst: int) -> int:
        """Hardware link traversals between *src* and *dst* (0 if equal)."""
        r1, c1 = self.coords(src)
        r2, c2 = self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def route_links(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Directed hardware links of the X-then-Y route (contention model).

        Transputer-era routers used dimension-ordered routing; two
        messages whose routes share a directed link serialize on it.
        """
        r1, c1 = self.coords(src)
        r2, c2 = self.coords(dst)
        links: list[tuple[int, int]] = []
        cur = (r1, c1)
        step = 1 if c2 > c1 else -1
        for c in range(c1, c2, step):
            nxt = (r1, c + step)
            links.append((self.rank_of(*cur), self.rank_of(*nxt)))
            cur = nxt
        step = 1 if r2 > r1 else -1
        for r in range(r1, r2, step):
            nxt = (r + step, c2)
            links.append((self.rank_of(*cur), self.rank_of(*nxt)))
            cur = nxt
        return links

    def neighbors(self, rank: int) -> list[int]:
        """Physically adjacent nodes (the T800 has four links)."""
        r, c = self.coords(rank)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < self.rows and 0 <= nc < self.cols:
                out.append(self.rank_of(nr, nc))
        return out

    def _check(self, rank: int) -> None:
        if not (0 <= rank < self.p):
            raise TopologyError(f"rank {rank} outside mesh of {self.p} nodes")


class VirtualTopology:
    """A logical topology embedded into a hardware mesh.

    Subclasses define logical neighbour relations; :meth:`edge_hops`
    translates a logical edge into hardware hops through the embedding.
    """

    #: symbolic name matching the paper's ``DISTR_*`` constants
    distr_name = "DISTR_DEFAULT"

    def __init__(self, mesh: Mesh2D):
        self.mesh = mesh
        # hop counts are pure in (src, dst) for a given embedding, and
        # topology objects are cached on the Machine — below
        # DENSE_HOPS_MAX_P the full (p, p) hop-distance matrix may still
        # be memoized for dense consumers; the charging hot paths use the
        # O(p) placed-coordinate arrays instead
        self._hop_matrix: np.ndarray | None = None
        self._place_vec: np.ndarray | None = None
        self._placed_coords: tuple[np.ndarray, np.ndarray] | None = None
        # directed hardware link ids of every route, keyed (src, dst);
        # built lazily for the link-contention model
        self._route_ids_cache: dict[tuple[int, int], np.ndarray] = {}

    @property
    def p(self) -> int:
        return self.mesh.p

    def place(self, logical: int) -> int:
        """Hardware rank hosting logical processor *logical*.

        The identity by default; embeddings override it.
        """
        return logical

    def _compute_place_vector(self) -> np.ndarray:
        """Embedding as an array; subclasses override with closed forms."""
        if type(self).place is VirtualTopology.place:
            # identity embedding — no per-rank Python calls
            return np.arange(self.p, dtype=np.int64)
        return np.fromiter(
            (self.place(r) for r in range(self.p)), dtype=np.int64, count=self.p
        )

    def place_vector(self) -> np.ndarray:
        """Hardware rank of every logical rank as a read-only int64 array."""
        if self._place_vec is None:
            placed = np.ascontiguousarray(
                self._compute_place_vector(), dtype=np.int64
            )
            placed.setflags(write=False)
            self._place_vec = placed
        return self._place_vec

    def placed_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Mesh ``(rows, cols)`` of every placed logical rank — O(p).

        These two arrays are the whole hop "matrix" in factored form:
        the dimension-ordered route length of any edge is the Manhattan
        distance of its endpoints' coordinates.
        """
        if self._placed_coords is None:
            rows, cols = np.divmod(self.place_vector(), self.mesh.cols)
            rows.setflags(write=False)
            cols.setflags(write=False)
            self._placed_coords = (rows, cols)
        return self._placed_coords

    def hops_vec(self, srcs, dsts) -> np.ndarray:
        """Closed-form hardware hops for logical edges ``srcs[i]→dsts[i]``.

        Accepts arrays or scalars (numpy broadcasting applies) and
        computes the Manhattan distances from the O(p) placed-coordinate
        arrays — entry for entry the same integers as
        ``hop_matrix()[srcs, dsts]``, without ever materializing the
        dense ``(p, p)`` matrix.
        """
        rows, cols = self.placed_coords()
        return np.abs(rows[srcs] - rows[dsts]) + np.abs(cols[srcs] - cols[dsts])

    def hop_matrix(self) -> np.ndarray:
        """Memoized ``(p, p)`` matrix of hardware hops per logical edge.

        ``hop_matrix()[s, d] == mesh.hops(place(s), place(d))`` — the
        Manhattan distance of the dimension-ordered route between the
        placed nodes.  Only available up to ``DENSE_HOPS_MAX_P`` ranks;
        larger topologies must use the closed-form :meth:`hops_vec`
        (which is bit-identical entry for entry).
        """
        if self.p > DENSE_HOPS_MAX_P:
            raise TopologyError(
                f"dense hop matrix disabled above {DENSE_HOPS_MAX_P} ranks "
                f"(topology has {self.p}); use hops_vec(srcs, dsts)"
            )
        if self._hop_matrix is None:
            rows, cols = self.placed_coords()
            hops = np.abs(rows[:, None] - rows[None, :]) + np.abs(
                cols[:, None] - cols[None, :]
            )
            hops.setflags(write=False)
            self._hop_matrix = hops
        return self._hop_matrix

    def edge_hops(self, src: int, dst: int) -> int:
        """Hardware hops for a message on the logical edge *src*→*dst*."""
        if not (0 <= src < self.p and 0 <= dst < self.p):
            raise TopologyError(
                f"edge ({src},{dst}) outside topology of {self.p} ranks"
            )
        return int(self.hops_vec(src, dst))

    def route_link_ids(self, src: int, dst: int) -> np.ndarray:
        """Directed hardware link ids of the logical edge's route.

        Link ``(u, v)`` is encoded as ``u * mesh.p + v``; the arrays are
        memoized per logical edge (read-only) so the contention model can
        histogram link loads without rebuilding per-call dictionaries.
        """
        key = (src, dst)
        ids = self._route_ids_cache.get(key)
        if ids is None:
            links = self.mesh.route_links(self.place(src), self.place(dst))
            mp = self.mesh.p
            ids = np.fromiter(
                (u * mp + v for (u, v) in links), dtype=np.int64, count=len(links)
            )
            ids.setflags(write=False)
            self._route_ids_cache[key] = ids
        return ids

    def edges(self) -> Iterator[tuple[int, int]]:  # pragma: no cover - abstract
        raise NotImplementedError


class DefaultMapping(VirtualTopology):
    """Identity mapping onto the hardware (``DISTR_DEFAULT``)."""

    distr_name = "DISTR_DEFAULT"

    def edges(self) -> Iterator[tuple[int, int]]:
        for r in range(self.p):
            for n in self.mesh.neighbors(r):
                yield (r, n)


class Ring(VirtualTopology):
    """A ring of all processors (``DISTR_RING``).

    Embedded as a boustrophedon walk of the mesh: consecutive ring members
    are physically adjacent (dilation 1) except the single closing edge,
    which crosses ``rows - 1`` vertical links.
    """

    distr_name = "DISTR_RING"

    def __init__(self, mesh: Mesh2D):
        super().__init__(mesh)
        # boustrophedon walk, built closed-form: row-major ranks with
        # every odd row reversed (rank_of(r, c) == r * cols + c)
        order = np.arange(mesh.p, dtype=np.int64).reshape(mesh.rows, mesh.cols)
        order[1::2] = order[1::2, ::-1]
        self._place = order.reshape(-1)

    def place(self, logical: int) -> int:
        return int(self._place[logical])

    def _compute_place_vector(self) -> np.ndarray:
        return np.asarray(self._place, dtype=np.int64)

    def succ(self, logical: int) -> int:
        return (logical + 1) % self.p

    def pred(self, logical: int) -> int:
        return (logical - 1) % self.p

    def edges(self) -> Iterator[tuple[int, int]]:
        for i in range(self.p):
            yield (i, self.succ(i))


class Torus2D(VirtualTopology):
    """A 2-D torus of virtual processors (``DISTR_TORUS2D``).

    This is the topology ``array_gen_mult`` wants: Gentleman's algorithm
    rotates matrix partitions along torus rows and columns.

    With ``folded=True`` (the default) the torus is embedded with the
    folded interleaving so every torus edge — including wrap-around —
    costs at most 2 hardware hops.  With ``folded=False`` the naive
    embedding is used and wrap-around edges cost ``size - 1`` hops; this
    models software that does *not* exploit virtual topologies (the old C
    baseline of Table 1).
    """

    distr_name = "DISTR_TORUS2D"

    def __init__(self, mesh: Mesh2D, folded: bool = True):
        super().__init__(mesh)
        self.grid_rows = mesh.rows
        self.grid_cols = mesh.cols
        self.folded = folded
        if folded:
            self._row_perm = _folded_order(mesh.rows)
            self._col_perm = _folded_order(mesh.cols)
        else:
            self._row_perm = list(range(mesh.rows))
            self._col_perm = list(range(mesh.cols))

    # -- logical grid addressing -------------------------------------------------
    def grid_coords(self, logical: int) -> tuple[int, int]:
        if not (0 <= logical < self.p):
            raise TopologyError(f"rank {logical} outside torus of {self.p}")
        return divmod(logical, self.grid_cols)

    def grid_rank(self, row: int, col: int) -> int:
        return (row % self.grid_rows) * self.grid_cols + (col % self.grid_cols)

    def place(self, logical: int) -> int:
        lr, lc = self.grid_coords(logical)
        return self.mesh.rank_of(self._row_perm[lr], self._col_perm[lc])

    def _compute_place_vector(self) -> np.ndarray:
        lr, lc = np.divmod(np.arange(self.p, dtype=np.int64), self.grid_cols)
        rp = np.asarray(self._row_perm, dtype=np.int64)
        cp = np.asarray(self._col_perm, dtype=np.int64)
        # rank_of(row, col) == row * mesh.cols + col
        return rp[lr] * self.mesh.cols + cp[lc]

    # -- neighbour helpers used by gen_mult ---------------------------------------
    def west(self, logical: int) -> int:
        r, c = self.grid_coords(logical)
        return self.grid_rank(r, c - 1)

    def east(self, logical: int) -> int:
        r, c = self.grid_coords(logical)
        return self.grid_rank(r, c + 1)

    def north(self, logical: int) -> int:
        r, c = self.grid_coords(logical)
        return self.grid_rank(r - 1, c)

    def south(self, logical: int) -> int:
        r, c = self.grid_coords(logical)
        return self.grid_rank(r + 1, c)

    def edges(self) -> Iterator[tuple[int, int]]:
        for i in range(self.p):
            yield (i, self.east(i))
            yield (i, self.south(i))


class BinomialTree(VirtualTopology):
    """Binomial broadcast/reduction tree rooted at an arbitrary rank.

    Round *k* of a broadcast from the root sends from every already
    informed node ``i`` to ``i XOR 2^k`` (ranks relative to the root).
    ``array_fold`` runs the mirror image of this pattern upwards and then
    broadcasts the result back down, exactly as described in the paper
    ("performed along the edges of a virtual tree topology").
    """

    distr_name = "DISTR_TREE"

    def __init__(self, mesh: Mesh2D, root: int = 0):
        super().__init__(mesh)
        if not (0 <= root < mesh.p):
            raise TopologyError(f"tree root {root} outside machine")
        self.root = root

    @property
    def rounds(self) -> int:
        return max(1, math.ceil(math.log2(self.p))) if self.p > 1 else 0

    def relative(self, rank: int) -> int:
        return (rank - self.root) % self.p

    def absolute(self, rel: int) -> int:
        return (rel + self.root) % self.p

    def broadcast_rounds(self) -> list[list[tuple[int, int]]]:
        """List of rounds; each round is a list of (src, dst) logical edges."""
        return [list(rnd) for rnd in _binomial_rounds(self.p, self.root)]

    def reduce_rounds(self) -> list[list[tuple[int, int]]]:
        """Reduction is the reversed broadcast with edges flipped."""
        return [
            [(d, s) for (s, d) in rnd]
            for rnd in reversed(_binomial_rounds(self.p, self.root))
        ]

    def edges(self) -> Iterator[tuple[int, int]]:
        for rnd in self.broadcast_rounds():
            yield from rnd


@lru_cache(maxsize=None)
def _binomial_rounds(p: int, root: int) -> tuple[tuple[tuple[int, int], ...], ...]:
    """Binomial broadcast schedule for *p* ranks rooted at *root*.

    The schedule depends only on ``(p, root)`` — it is recomputed on every
    collective otherwise (a fresh :class:`BinomialTree` per call), so the
    edge lists are memoized here; :meth:`BinomialTree.broadcast_rounds`
    hands out fresh lists so callers may mutate them.
    """
    rounds: list[tuple[tuple[int, int], ...]] = []
    informed = 1
    k = 0
    while informed < p:
        step = 1 << k
        edges = tuple(
            ((rel + root) % p, (rel + step + root) % p)
            for rel in range(min(step, p))
            if rel + step < p
        )
        rounds.append(edges)
        informed += len(edges)
        k += 1
    return tuple(rounds)


@lru_cache(maxsize=512)
def binomial_round_arrays(
    p: int, root: int
) -> tuple[tuple[np.ndarray, np.ndarray], ...]:
    """Closed-form binomial broadcast schedule as per-round edge arrays.

    Round *k* (step = 2^k) informs ranks ``step .. min(2*step, p) - 1``
    relative to the root, so its edge list is exactly

    ``rel = 0 .. min(step, p - step) - 1:  (rel + root) % p  →
    (rel + step + root) % p``

    — the same edges, in the same order, as the Python-tuple schedule
    ``_binomial_rounds`` (the filter ``rel + step < p`` over
    ``range(min(step, p))`` is the range ``min(step, p - step)``).  The
    arrays are generated with ``np.arange`` in O(edges) numpy work, no
    per-rank Python loop, and memoized read-only per ``(p, root)``.
    """
    rounds: list[tuple[np.ndarray, np.ndarray]] = []
    step = 1
    while step < p:
        rel = np.arange(min(step, p - step), dtype=np.int64)
        srcs = (rel + root) % p
        dsts = (rel + step + root) % p
        srcs.setflags(write=False)
        dsts.setflags(write=False)
        rounds.append((srcs, dsts))
        step <<= 1
    return tuple(rounds)


def _folded_order(n: int) -> list[int]:
    """Interleaved placement giving a dilation-2 ring on a line.

    ``0 2 4 ... 5 3 1`` — consecutive ring positions (including the wrap)
    are at most 2 apart on the physical line.
    """
    evens = list(range(0, n, 2))
    odds = list(range(1, n, 2))
    return evens + odds[::-1]

"""Discrete-event engine for arbitrary SPMD programs on the machine.

While the skeletons use the fast analytic clock arithmetic of
:mod:`repro.machine.network`, some things need *message-granularity*
simulation: the task-parallel divide&conquer skeleton, hand-written
message-passing programs used in tests, and the consistency checks that
validate the analytic layer.

Each simulated processor is a Python **generator** that yields requests
to the engine and is resumed when they complete:

``yield Compute(seconds)``
    advance this processor's local clock by *seconds*.

``yield Send(dst, payload, nbytes, tag)``
    synchronous (rendezvous) send: blocks until the matching receive is
    posted and the transfer has crossed all hardware hops.

``yield ISend(dst, payload, nbytes, tag)``
    asynchronous send: the processor continues after paying the software
    setup; the message arrives later.

``payload = yield Recv(src, tag)``
    blocks until a matching message (FIFO per (src, tag) channel) has
    arrived; evaluates to its payload.

The engine detects deadlock (no runnable process but blocked processes
remain) and reports the blocked ranks — the paper's motivation section
lists exactly this class of bug as what skeletons shield users from.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from repro.errors import DeadlockError, MachineError
from repro.machine.costmodel import CostModel
from repro.machine.topology import VirtualTopology
from repro.machine.trace import TraceStats

__all__ = ["Compute", "Send", "ISend", "Recv", "Engine", "run_spmd", "ANY_SOURCE"]

#: wildcard for ``Recv.src``: match the earliest message with the tag
#: from any sender (MPI_ANY_SOURCE; Parix had the same facility)
ANY_SOURCE = -1


@dataclass(frozen=True)
class Compute:
    seconds: float


@dataclass(frozen=True)
class Send:
    dst: int
    payload: Any = None
    nbytes: int = 0
    tag: str = ""


@dataclass(frozen=True)
class ISend:
    dst: int
    payload: Any = None
    nbytes: int = 0
    tag: str = ""


@dataclass(frozen=True)
class Recv:
    src: int  #: sender rank, or ANY_SOURCE for a wildcard receive
    tag: str = ""


@dataclass
class _Proc:
    rank: int
    gen: Generator
    clock: float = 0.0
    blocked: bool = False
    done: bool = False


@dataclass
class _AsyncMsg:
    arrival: float
    payload: Any


@dataclass
class _PendingSend:
    """A synchronous sender waiting for its receiver."""

    src: int
    ready: float  # sender clock when it posted the send
    payload: Any
    nbytes: int


class Engine:
    """Event-driven simulator over a virtual topology."""

    def __init__(
        self,
        cost: CostModel,
        topo: VirtualTopology,
        stats: TraceStats | None = None,
        timeline=None,
        metrics=None,
        t0: float = 0.0,
    ):
        self.cost = cost
        self.topo = topo
        self.stats = stats if stats is not None else TraceStats()
        #: optional observability sinks (see repro.obs); *t0* offsets the
        #: engine's relative clock onto the machine timeline, since the
        #: engine always starts at time zero while the embedding machine
        #: may already have advanced
        self.timeline = timeline
        self.metrics = metrics
        self.t0 = t0
        self._procs: dict[int, _Proc] = {}
        self._ready: list[tuple[float, int, int, Any]] = []  # (time, seq, rank, value)
        self._seq = itertools.count()
        # mailboxes for async messages and rendezvous bookkeeping,
        # keyed by (dst, src, tag)
        self._mail: dict[tuple[int, int, str], deque[_AsyncMsg]] = defaultdict(deque)
        self._pending_sends: dict[tuple[int, int, str], deque[_PendingSend]] = (
            defaultdict(deque)
        )
        self._pending_recvs: dict[tuple[int, int, str], deque[float]] = defaultdict(
            deque
        )
        self._recv_waiters: dict[tuple[int, int, str], deque[int]] = defaultdict(deque)
        # wildcard (ANY_SOURCE) receives, keyed by (dst, tag):
        # queue of (waiter_rank, post_time)
        self._any_waiters: dict[tuple[int, str], deque[tuple[int, float]]] = (
            defaultdict(deque)
        )
        # (dst, tag) -> senders with a non-empty queue; keeps wildcard
        # receives O(matching senders) instead of O(every (dst, src, tag)
        # channel ever touched)
        self._mail_index: dict[tuple[int, str], set[int]] = defaultdict(set)
        self._send_index: dict[tuple[int, str], set[int]] = defaultdict(set)

    # ---------------------------------------------------------- mailbox upkeep
    def _put_mail(self, key: tuple[int, int, str], msg: _AsyncMsg) -> None:
        self._mail[key].append(msg)
        self._mail_index[(key[0], key[2])].add(key[1])

    def _pop_mail(self, key: tuple[int, int, str]) -> _AsyncMsg:
        q = self._mail[key]
        msg = q.popleft()
        if not q:
            self._mail_index[(key[0], key[2])].discard(key[1])
        return msg

    def _put_pending_send(self, key: tuple[int, int, str], snd: _PendingSend) -> None:
        self._pending_sends[key].append(snd)
        self._send_index[(key[0], key[2])].add(key[1])

    def _pop_pending_send(self, key: tuple[int, int, str]) -> _PendingSend:
        q = self._pending_sends[key]
        snd = q.popleft()
        if not q:
            self._send_index[(key[0], key[2])].discard(key[1])
        return snd

    # ------------------------------------------------------------------ setup
    def spawn(self, rank: int, gen: Generator) -> None:
        if not (0 <= rank < self.topo.p):
            raise MachineError(f"rank {rank} outside machine of {self.topo.p}")
        if rank in self._procs:
            raise MachineError(f"rank {rank} already has a process")
        self._procs[rank] = _Proc(rank, gen)
        self._push(0.0, rank, None)

    def _push(self, time: float, rank: int, value: Any) -> None:
        heapq.heappush(self._ready, (time, next(self._seq), rank, value))

    # ------------------------------------------------------------------ run
    def run(self) -> float:
        """Run to completion; returns the makespan (max final clock)."""
        while self._ready:
            time, _, rank, value = heapq.heappop(self._ready)
            proc = self._procs[rank]
            proc.clock = max(proc.clock, time)
            proc.blocked = False
            try:
                req = proc.gen.send(value)
            except StopIteration:
                proc.done = True
                continue
            self._handle(proc, req)
        blocked = [p.rank for p in self._procs.values() if not p.done]
        if blocked:
            raise DeadlockError(f"deadlock: ranks {blocked} blocked forever")
        return max((p.clock for p in self._procs.values()), default=0.0)

    # ------------------------------------------------------------------ dispatch
    def _mark(self, rank: int, kind: str, start: float, end: float, tag: str = "") -> None:
        if self.timeline is not None:
            self.timeline.add(rank, kind, self.t0 + start, self.t0 + end, tag)

    def _observe_message(self, nbytes: int, hops: int, tag: str) -> None:
        if self.metrics is not None:
            self.metrics.observe("net.message_bytes", nbytes)
            self.metrics.observe(
                "net.message_hops",
                hops,
                buckets=tuple(float(h) for h in range(1, 17)),
            )
            self.metrics.inc(f"net.messages.{tag or 'untagged'}")

    def _handle(self, proc: _Proc, req: Any) -> None:
        if isinstance(req, Compute):
            self.stats.compute_seconds += req.seconds
            self._mark(proc.rank, "compute", proc.clock, proc.clock + req.seconds)
            self._push(proc.clock + req.seconds, proc.rank, None)
        elif isinstance(req, ISend):
            self._isend(proc, req)
        elif isinstance(req, Send):
            self._send(proc, req)
        elif isinstance(req, Recv):
            self._recv(proc, req)
        else:
            raise MachineError(f"rank {proc.rank} yielded unknown request {req!r}")

    def _wire(self, src: int, dst: int, nbytes: int) -> tuple[float, int]:
        hops = self.topo.edge_hops(src, dst)
        return self.cost.message_time(nbytes, hops), hops

    def _isend(self, proc: _Proc, req: ISend) -> None:
        depart = proc.clock + self.cost.t_setup
        wire, hops = self._wire(proc.rank, req.dst, req.nbytes)
        arrival = depart + wire
        key = (req.dst, proc.rank, req.tag)
        # records live on the machine-absolute axis (like the timeline),
        # so the embedding offset is applied here too
        self.stats.record_message(
            self.t0 + arrival, proc.rank, req.dst, req.nbytes, hops, "isend",
            depart=self.t0 + depart,
        )
        self.stats.comm_seconds += wire + self.cost.t_setup
        self._observe_message(req.nbytes, hops, req.tag or "isend")
        self._mark(proc.rank, "send", proc.clock, depart, req.tag)
        waiters = self._recv_waiters[key]
        anykey = (req.dst, req.tag)
        if waiters:
            dst_rank = waiters.popleft()
            post_time = self._pending_recvs[key].popleft()
            resume = max(post_time, arrival)
            self.stats.idle_seconds += max(0.0, arrival - post_time)
            self._mark(dst_rank, "idle", post_time, resume, req.tag)
            self._push(resume, dst_rank, req.payload)
        elif self._any_waiters[anykey]:
            dst_rank, post_time = self._any_waiters[anykey].popleft()
            resume = max(post_time, arrival)
            self.stats.idle_seconds += max(0.0, arrival - post_time)
            self._mark(dst_rank, "idle", post_time, resume, req.tag)
            self._push(resume, dst_rank, req.payload)
        else:
            self._put_mail(key, _AsyncMsg(arrival, req.payload))
        self._push(depart, proc.rank, None)

    def _send(self, proc: _Proc, req: Send) -> None:
        key = (req.dst, proc.rank, req.tag)
        waiters = self._recv_waiters[key]
        anykey = (req.dst, req.tag)
        wire, hops = self._wire(proc.rank, req.dst, req.nbytes)
        self.stats.comm_seconds += wire + self.cost.t_setup
        if not waiters and self._any_waiters[anykey]:
            dst_rank, post_time = self._any_waiters[anykey].popleft()
            start = max(proc.clock + self.cost.t_setup, post_time)
            finish = start + wire
            self.stats.idle_seconds += max(0.0, finish - post_time - wire)
            self.stats.record_message(
                self.t0 + finish, proc.rank, req.dst, req.nbytes, hops, "send",
                depart=self.t0 + start,
            )
            self._observe_message(req.nbytes, hops, req.tag or "send")
            self._mark(proc.rank, "send", proc.clock, finish, req.tag)
            self._mark(dst_rank, "recv", post_time, finish, req.tag)
            self._push(finish, proc.rank, None)
            self._push(finish, dst_rank, req.payload)
            return
        if waiters:
            dst_rank = waiters.popleft()
            post_time = self._pending_recvs[key].popleft()
            start = max(proc.clock + self.cost.t_setup, post_time)
            finish = start + wire
            self.stats.idle_seconds += max(0.0, finish - post_time - wire)
            self.stats.record_message(
                self.t0 + finish, proc.rank, req.dst, req.nbytes, hops, "send",
                depart=self.t0 + start,
            )
            self._observe_message(req.nbytes, hops, req.tag or "send")
            self._mark(proc.rank, "send", proc.clock, finish, req.tag)
            self._mark(dst_rank, "recv", post_time, finish, req.tag)
            self._push(finish, proc.rank, None)
            self._push(finish, dst_rank, req.payload)
        else:
            self._put_pending_send(
                key, _PendingSend(proc.rank, proc.clock, req.payload, req.nbytes)
            )
            proc.blocked = True

    def _recv(self, proc: _Proc, req: Recv) -> None:
        if req.src == ANY_SOURCE:
            self._recv_any(proc, req)
            return
        key = (proc.rank, req.src, req.tag)
        if self._mail[key]:
            msg = self._pop_mail(key)
            resume = max(proc.clock, msg.arrival)
            self.stats.idle_seconds += max(0.0, msg.arrival - proc.clock)
            self._mark(proc.rank, "idle", proc.clock, resume, req.tag)
            self._push(resume, proc.rank, msg.payload)
            return
        if self._pending_sends[key]:
            snd = self._pop_pending_send(key)
            wire, hops = self._wire(req.src, proc.rank, snd.nbytes)
            start = max(snd.ready + self.cost.t_setup, proc.clock)
            finish = start + wire
            self.stats.idle_seconds += max(0.0, start - proc.clock)
            self.stats.record_message(
                self.t0 + finish, req.src, proc.rank, snd.nbytes, hops, "send",
                depart=self.t0 + start,
            )
            self._observe_message(snd.nbytes, hops, req.tag or "send")
            self._mark(req.src, "send", snd.ready, finish, req.tag)
            self._mark(proc.rank, "recv", proc.clock, finish, req.tag)
            self._push(finish, req.src, None)
            self._push(finish, proc.rank, snd.payload)
            return
        self._pending_recvs[key].append(proc.clock)
        self._recv_waiters[key].append(proc.rank)
        proc.blocked = True

    def _recv_any(self, proc: _Proc, req: Recv) -> None:
        """Wildcard receive: earliest-arriving matching message wins
        (ties break toward the lowest sender rank, deterministically).

        The ``(dst, tag)`` indexes restrict the search to senders that
        actually have something queued for this receiver — not every
        channel the run ever touched."""
        anykey = (proc.rank, req.tag)
        best_src = None
        best_arrival = None
        for src in self._mail_index.get(anykey, ()):
            arrival = self._mail[(proc.rank, src, req.tag)][0].arrival
            if best_arrival is None or (arrival, src) < (best_arrival, best_src):
                best_src = src
                best_arrival = arrival
        if best_src is not None:
            msg = self._pop_mail((proc.rank, best_src, req.tag))
            resume = max(proc.clock, msg.arrival)
            self.stats.idle_seconds += max(0.0, msg.arrival - proc.clock)
            self._mark(proc.rank, "idle", proc.clock, resume, req.tag)
            self._push(resume, proc.rank, msg.payload)
            return
        # pending synchronous senders: earliest ready, lowest rank
        best_ssrc = None
        best_ready = None
        for src in self._send_index.get(anykey, ()):
            ready = self._pending_sends[(proc.rank, src, req.tag)][0].ready
            if best_ready is None or (ready, src) < (best_ready, best_ssrc):
                best_ssrc = src
                best_ready = ready
        if best_ssrc is not None:
            snd = self._pop_pending_send((proc.rank, best_ssrc, req.tag))
            wire, hops = self._wire(snd.src, proc.rank, snd.nbytes)
            start = max(snd.ready + self.cost.t_setup, proc.clock)
            finish = start + wire
            self.stats.idle_seconds += max(0.0, start - proc.clock)
            self.stats.record_message(
                self.t0 + finish, snd.src, proc.rank, snd.nbytes, hops, "send",
                depart=self.t0 + start,
            )
            self._observe_message(snd.nbytes, hops, req.tag or "send")
            self._mark(snd.src, "send", snd.ready, finish, req.tag)
            self._mark(proc.rank, "recv", proc.clock, finish, req.tag)
            self._push(finish, snd.src, None)
            self._push(finish, proc.rank, snd.payload)
            return
        self._any_waiters[(proc.rank, req.tag)].append((proc.rank, proc.clock))
        proc.blocked = True


def run_spmd(
    cost: CostModel,
    topo: VirtualTopology,
    program: Callable[[int, int], Generator],
    stats: TraceStats | None = None,
    timeline=None,
    metrics=None,
) -> float:
    """Run the same generator *program(rank, p)* on every processor.

    Returns the makespan.  This is the engine-level analogue of launching
    one SPMD binary per node under Parix.
    """
    eng = Engine(cost, topo, stats=stats, timeline=timeline, metrics=metrics)
    for r in range(topo.p):
        eng.spawn(r, program(r, topo.p))
    return eng.run()

"""Execution statistics and optional event tracing for simulated runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MessageRecord", "TraceStats"]


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """One recorded message (only kept when tracing is enabled).

    ``time`` is the arrival at the receiver; ``depart`` is when the
    message entered the wire on the sender side, so ``time - depart``
    is the transfer (wire) time.  Together the two timestamps give the
    send→recv *matching* that the happens-before DAG of
    :mod:`repro.obs.analysis` needs: a record is the message edge from
    the sender's activity ending at ``depart`` to the receiver's
    activity ending at ``time``.  Records written before this field
    existed carry ``depart < 0`` (unknown — treated as a zero-width
    wire at the arrival time).
    """

    time: float
    src: int
    dst: int
    nbytes: int
    hops: int
    tag: str
    depart: float = -1.0

    @property
    def wire_seconds(self) -> float:
        """Transfer time on the wire (0.0 when the departure is unknown)."""
        return self.time - self.depart if self.depart >= 0.0 else 0.0


@dataclass
class TraceStats:
    """Aggregated communication/computation statistics of one run.

    ``idle_seconds`` accumulates the time receivers spend waiting for
    senders (the difference the clock arithmetic smooths over); it is what
    grows when small partitions meet large networks and explains the
    efficiency drop the paper observes in that corner of Table 2.
    """

    messages: int = 0
    bytes_sent: int = 0
    hops_crossed: int = 0
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    idle_seconds: float = 0.0
    skeleton_calls: int = 0
    records: list[MessageRecord] = field(default_factory=list)
    keep_records: bool = False
    #: optional streaming consumer (:class:`repro.obs.stream.ObsSink`);
    #: every message — scalar or wave — is forwarded to it *in emission
    #: order*, so online aggregates see the exact event sequence that
    #: ``keep_records`` would have materialized.  Wiring, not state:
    #: :meth:`clear` leaves it attached.
    sink: "object | None" = None

    def record_message(
        self,
        time: float,
        src: int,
        dst: int,
        nbytes: int,
        hops: int,
        tag: str = "",
        depart: float = -1.0,
    ) -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        self.hops_crossed += hops
        if self.keep_records:
            self.records.append(
                MessageRecord(time, src, dst, nbytes, hops, tag, depart)
            )
        if self.sink is not None:
            self.sink.on_message(time, src, dst, nbytes, hops, tag, depart)

    def record_messages(
        self,
        times,
        srcs,
        dsts,
        nbytes,
        hops,
        tag: str = "",
        departs=None,
    ) -> None:
        """Batched :meth:`record_message` over parallel sequences.

        Counter totals are exact integer sums, so they match the
        per-message increments bit-for-bit; per-message records are
        appended in sequence order when ``keep_records`` is set.
        """
        k = len(srcs)
        self.messages += k
        if isinstance(nbytes, np.ndarray):
            self.bytes_sent += int(nbytes.sum(dtype=np.int64))
        else:
            self.bytes_sent += int(sum(int(nb) for nb in nbytes))
        if isinstance(hops, np.ndarray):
            self.hops_crossed += int(hops.sum(dtype=np.int64))
        else:
            self.hops_crossed += int(sum(int(h) for h in hops))
        if self.keep_records:
            if departs is None:
                departs = [-1.0] * k
            append = self.records.append
            for i in range(k):
                append(
                    MessageRecord(
                        float(times[i]),
                        int(srcs[i]),
                        int(dsts[i]),
                        int(nbytes[i]),
                        int(hops[i]),
                        tag,
                        float(departs[i]),
                    )
                )
        if self.sink is not None:
            self.sink.on_message_wave(times, srcs, dsts, nbytes, hops, tag, departs)

    def merge(self, other: "TraceStats") -> None:
        """Fold another stats object into this one (multi-phase runs).

        Records the other side already paid to keep are never dropped,
        even when this side was created with ``keep_records=False``.
        """
        self.messages += other.messages
        self.bytes_sent += other.bytes_sent
        self.hops_crossed += other.hops_crossed
        self.compute_seconds += other.compute_seconds
        self.comm_seconds += other.comm_seconds
        self.idle_seconds += other.idle_seconds
        self.skeleton_calls += other.skeleton_calls
        self.records.extend(other.records)

    def clear(self) -> None:
        """Zero all counters **in place**.

        :meth:`repro.machine.machine.Machine.reset` clears rather than
        replaces its stats so that every component that captured the
        object at construction time (the network, a long-lived
        :class:`~repro.machine.engine.Engine`, a span tracer) keeps
        observing the same accumulator.
        """
        self.messages = 0
        self.bytes_sent = 0
        self.hops_crossed = 0
        self.compute_seconds = 0.0
        self.comm_seconds = 0.0
        self.idle_seconds = 0.0
        self.skeleton_calls = 0
        self.records.clear()

    def summary(self) -> dict[str, float]:
        return {
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "hops": self.hops_crossed,
            "compute_s": self.compute_seconds,
            "comm_s": self.comm_seconds,
            "idle_s": self.idle_seconds,
            "skeleton_calls": self.skeleton_calls,
        }

"""Execution backends: ``Machine(p, backend="sim"|"threads"|"mp")``.

The analytic :class:`~repro.machine.network.Network` is the **only**
cost oracle — simulated seconds never depend on which backend runs the
kernels, and the ``backend`` conformance pillar asserts bit-identity of
pool contents, clocks, stats and metrics across all three.  What a
backend changes is *wall-clock*: where the numpy kernels of the fused
skeleton paths physically execute.

* :class:`SimBackend` — the historical single-process execution; the
  skeletons keep their fused whole-pool fast path.
* :class:`ThreadsBackend` — per-partition kernel calls dispatched to a
  thread pool.  The numpy ufunc inner loops release the GIL, so
  elementwise kernels over pooled block partitions scale with cores
  without any data movement (the pool is plain shared memory between
  threads).
* :class:`MpBackend` — worker *processes* (true parallelism, no GIL).
  Pool buffers are allocated in named shared memory
  (:class:`~repro.machine.workers.SharedArena`), kernels are shipped by
  safe closure passing (:func:`~repro.machine.workers.ship_kernel`),
  tasks and results travel through per-rank mailboxes.

The per-partition task decomposition is exactly the skeletons'
*per-rank* execution path, so results are bit-identical to sequential
execution by the same argument (and the same conformance pillars) that
already ties the per-rank and fused paths together.

Backend selection: ``Machine(backend=...)`` falls back to the process
default, settable with :func:`set_backend_default` or the
``REPRO_BACKEND`` environment variable (the CI backend matrix sets it).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import BackendError, MachineError

__all__ = [
    "ExecBackend",
    "SimBackend",
    "ThreadsBackend",
    "MpBackend",
    "make_backend",
    "backend_default",
    "set_backend_default",
    "BACKENDS",
    "default_workers",
]

BACKENDS = ("sim", "threads", "mp")


def _kernel_name(kernel) -> str:
    return getattr(kernel, "__name__", type(kernel).__name__)

_BACKEND_DEFAULT = os.environ.get("REPRO_BACKEND", "sim")


def backend_default() -> str:
    """The process-wide default backend consulted by new machines."""
    return _BACKEND_DEFAULT


def set_backend_default(name: str) -> None:
    """Set the process default (``python -m repro.eval ... --backend``)."""
    if name not in BACKENDS:
        raise BackendError(
            f"unknown backend {name!r} (choose from {', '.join(BACKENDS)})"
        )
    global _BACKEND_DEFAULT
    _BACKEND_DEFAULT = name


def default_workers(p: int) -> int:
    """Worker count: ``REPRO_WORKERS`` or min(p, available cores)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(p, cores))


class ExecBackend:
    """Where per-partition kernel work physically executes.

    ``run_blocks(kernel, tasks)`` evaluates ``kernel(*tasks[r])`` for
    every task and returns the results **in task order** — that ordering
    (not completion order) is what keeps parallel execution bit-identical
    to the sequential loop.  Implementations may raise
    :class:`~repro.skeletons.fuse.FusionFallback` through from kernels;
    callers fall back to sequential per-rank execution.
    """

    name = "sim"
    #: whether skeletons should decompose work into per-rank tasks for
    #: this backend (False: keep the single-process fused fast path)
    parallel = False
    #: the attached :class:`~repro.obs.prof.WallProfiler`, or ``None``
    #: (the default) — ``Machine(profile=True)`` sets it.  Wall-clock
    #: only; never consulted by any cost-charging code
    profiler = None

    def run_blocks(self, kernel: Callable, tasks: Sequence[tuple]) -> list:
        prof = self.profiler
        if prof is None:
            return [kernel(*t) for t in tasks]
        # profiled inline execution: the main thread is "worker 0"
        d = prof.dispatch_begin(self.name, _kernel_name(kernel), len(tasks))
        prof.note_post(d)
        try:
            out = []
            for t in tasks:
                t0 = prof.clock()
                r = kernel(*t)
                prof.block(d, 0, t0, t0, prof.clock())
                out.append(r)
            return out
        finally:
            prof.dispatch_end(d)

    def alloc_pool(self, shape, dtype) -> np.ndarray:
        """Allocate a pooled array buffer visible to the backend's
        workers (plain process memory unless shared memory is needed)."""
        return np.zeros(shape, dtype=dtype)

    def free_pool(self, pool: np.ndarray) -> None:
        """Release a buffer from :meth:`alloc_pool` (no-op unless the
        backend tracks segments)."""

    def reset(self, seed: int = 0) -> None:
        """Clear worker-side state so back-to-back trials in one process
        are deterministic (``Machine.reset`` calls this)."""

    def close(self) -> None:
        """Tear down workers and shared resources (idempotent)."""

    @property
    def workers(self) -> int:
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SimBackend(ExecBackend):
    """Single-process execution (the default; pure simulation)."""


class ThreadsBackend(ExecBackend):
    """Kernel tasks on a thread pool over the shared pool storage."""

    name = "threads"
    parallel = True

    def __init__(self, n_workers: int):
        if n_workers <= 0:
            raise MachineError(f"need at least one worker, got {n_workers}")
        self._n = n_workers
        self._pool = None  # created lazily: machines are cheap to build

    @property
    def workers(self) -> int:
        return self._n

    def _executor(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self._n, thread_name_prefix="repro-exec"
            )
        return self._pool

    def run_blocks(self, kernel, tasks):
        if self.profiler is not None:
            return self._run_blocks_profiled(kernel, tasks)
        if len(tasks) <= 1:
            return [kernel(*t) for t in tasks]
        futures = [self._executor().submit(kernel, *t) for t in tasks]
        # collect in task order; exceptions (FusionFallback included)
        # propagate to the caller exactly as in the sequential loop
        return [f.result() for f in futures]

    def _run_blocks_profiled(self, kernel, tasks):
        import threading

        prof = self.profiler
        d = prof.dispatch_begin("threads", _kernel_name(kernel), len(tasks))

        def timed(task, t_enq):
            slot = prof.worker_slot(threading.get_ident())
            t0 = prof.clock()
            try:
                return kernel(*task)
            finally:
                # stamped even when the kernel raises (FusionFallback):
                # the wall time was really spent
                prof.block(d, slot, t_enq, t0, prof.clock())

        prof.note_post(d)
        try:
            if len(tasks) <= 1:
                return [timed(t, prof.clock()) for t in tasks]
            ex = self._executor()
            futures = [(ex.submit(timed, t, prof.clock())) for t in tasks]
            return [f.result() for f in futures]
        finally:
            prof.dispatch_end(d)

    def reset(self, seed: int = 0) -> None:
        # thread workers hold no kernel caches or RNG state; nothing to
        # reseed, but a crashed executor must not poison later trials
        if self._pool is not None and getattr(self._pool, "_broken", False):
            self._pool.shutdown(wait=False)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class MpBackend(ExecBackend):
    """Worker processes + shared-memory pools + shipped closures."""

    name = "mp"
    parallel = True

    def __init__(self, n_workers: int, start_method: str | None = None):
        if n_workers <= 0:
            raise MachineError(f"need at least one worker, got {n_workers}")
        self._n = n_workers
        self._start_method = start_method
        self._pool = None  # WorkerPool, created lazily
        from repro.machine.workers import SharedArena

        self.arena = SharedArena()
        # id(kernel) -> (fingerprint, shipped bytes, weakref guard)
        self._ship_cache: dict[int, tuple] = {}
        self._seed = 0

    @property
    def workers(self) -> int:
        return self._n

    def _worker_pool(self):
        if self._pool is None:
            from repro.machine.workers import WorkerPool

            self._pool = WorkerPool(self._n, start_method=self._start_method)
        return self._pool

    # ------------------------------------------------------------------ pools
    def alloc_pool(self, shape, dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        if dtype.hasobject:
            # object dtypes cannot live in raw shared memory; plain
            # buffers are correct (such arrays never reach workers)
            return np.zeros(shape, dtype=dtype)
        return self.arena.allocate(shape, dtype)

    def free_pool(self, pool: np.ndarray) -> None:
        self.arena.release(pool)

    # ------------------------------------------------------------------ ship
    def _ship(self, kernel: Callable) -> tuple[str, bytes]:
        """Ship *kernel* (cached per object identity while it is alive).

        Raises :class:`BackendError` naming the offending free variable
        when the kernel cannot cross the process boundary — no silent
        fallback (the caller decides whether a fallback is legal).
        """
        from repro.machine.workers import kernel_fingerprint, ship_kernel

        cached = self._ship_cache.get(id(kernel))
        if cached is not None and cached[2]() is kernel:
            if self.profiler is not None:
                self.profiler.ship_cache_hit()
            return cached[0], cached[1]
        data = ship_kernel(kernel)
        kid = kernel_fingerprint(data)
        import weakref

        try:
            ref = weakref.ref(kernel)
        except TypeError:  # pragma: no cover - unweakrefable callable
            ref = lambda: kernel  # noqa: E731
        self._ship_cache[id(kernel)] = (kid, data, ref)
        if self.profiler is not None:
            self.profiler.ship_cache_miss(len(data))
        return kid, data

    def _describe(self, value) -> tuple:
        """Task argument -> shippable descriptor.

        Arena-backed views go as ``("shm", descriptor)`` (zero-copy);
        everything else small is pickled by the transport.
        """
        if isinstance(value, np.ndarray):
            desc = self.arena.descriptor(value)
            if desc is not None:
                return ("shm", desc)
        return ("val", value)

    def run_blocks(self, kernel, tasks):
        if not tasks:
            return []
        prof = self.profiler
        if prof is None:
            kid, data = self._ship(kernel)
            pool = self._worker_pool()
            pool.ensure_kernel(kid, data)
            arg_descs = [[self._describe(a) for a in t] for t in tasks]
            try:
                return pool.run_tasks(kid, arg_descs)
            except MachineError as exc:
                if getattr(exc, "worker_exc", None) == "FusionFallback":
                    # a worker-side fallback is the same control flow as
                    # a local one: the caller reverts to the sequential
                    # loop
                    from repro.skeletons.fuse import FusionFallback

                    raise FusionFallback(str(exc)) from None
                raise
        # profiled path: same calls, plus wall stamps.  ship_s covers
        # kernel shipping and argument description (the main-process
        # cost of getting the batch to the process boundary)
        t_enter = prof.clock()
        kid, data = self._ship(kernel)
        pool = self._worker_pool()
        n_sent = pool.ensure_kernel(kid, data)
        if n_sent:
            prof.worker_sends(n_sent, n_sent * len(data))
        arg_descs = [[self._describe(a) for a in t] for t in tasks]
        d = prof.dispatch_begin(
            "mp", _kernel_name(kernel), len(tasks),
            ship_s=prof.clock() - t_enter,
        )
        prof.note_post(d)
        try:
            results, stamps = pool.run_tasks(kid, arg_descs, profiler=prof)
            for stamp in stamps:
                if stamp is not None:
                    worker, t0, t1 = stamp
                    # enqueue == post time: tasks go on worker queues
                    # immediately after note_post
                    prof.block(d, worker, d.t_post, t0, t1)
            return results
        except MachineError as exc:
            if getattr(exc, "worker_exc", None) == "FusionFallback":
                from repro.skeletons.fuse import FusionFallback

                raise FusionFallback(str(exc)) from None
            raise
        finally:
            prof.dispatch_end(d)

    def reset(self, seed: int = 0) -> None:
        self._seed = seed
        if self._pool is not None:
            self._pool.reset(seed)
        self._ship_cache.clear()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self.arena.close()
        self._ship_cache.clear()


def make_backend(
    spec: "str | ExecBackend | None",
    p: int,
    workers: int | None = None,
) -> ExecBackend:
    """Build (or pass through) the backend for a machine of *p* ranks."""
    if isinstance(spec, ExecBackend):
        return spec
    name = spec if spec is not None else backend_default()
    n = workers if workers is not None else default_workers(p)
    if name == "sim":
        return SimBackend()
    if name == "threads":
        return ThreadsBackend(n)
    if name == "mp":
        return MpBackend(n)
    raise BackendError(
        f"unknown backend {name!r} (choose from {', '.join(BACKENDS)})"
    )

"""Simulated distributed-memory machine (the paper's Parsytec/Parix substrate).

See DESIGN.md §2 for why and how the hardware is simulated.
"""

from repro.machine.backend import (
    BACKENDS,
    ExecBackend,
    MpBackend,
    SimBackend,
    ThreadsBackend,
    backend_default,
    make_backend,
    set_backend_default,
)
from repro.machine.costmodel import (
    DPFL,
    PARIX_C,
    PARIX_C_OLD,
    PROFILES,
    SKIL,
    SKIL_CLOSURES,
    T800_PARSYTEC,
    CostModel,
    LanguageProfile,
)
from repro.machine.engine import Compute, Engine, ISend, Recv, Send, run_spmd
from repro.machine.machine import DISTR_DEFAULT, DISTR_RING, DISTR_TORUS2D, Machine
from repro.machine.network import Network
from repro.machine.topology import (
    BinomialTree,
    DefaultMapping,
    Mesh2D,
    Ring,
    Torus2D,
    VirtualTopology,
    square_grid,
)
from repro.machine.trace import MessageRecord, TraceStats
from repro.machine.workers import ANY, Mailbox, Message, SharedArena, WorkerPool

__all__ = [
    "BACKENDS",
    "ExecBackend",
    "SimBackend",
    "ThreadsBackend",
    "MpBackend",
    "make_backend",
    "backend_default",
    "set_backend_default",
    "ANY",
    "Mailbox",
    "Message",
    "SharedArena",
    "WorkerPool",
    "CostModel",
    "LanguageProfile",
    "T800_PARSYTEC",
    "PARIX_C",
    "PARIX_C_OLD",
    "SKIL",
    "SKIL_CLOSURES",
    "DPFL",
    "PROFILES",
    "Machine",
    "Network",
    "TraceStats",
    "MessageRecord",
    "Mesh2D",
    "VirtualTopology",
    "DefaultMapping",
    "Ring",
    "Torus2D",
    "BinomialTree",
    "square_grid",
    "Engine",
    "run_spmd",
    "Compute",
    "Send",
    "ISend",
    "Recv",
    "DISTR_DEFAULT",
    "DISTR_RING",
    "DISTR_TORUS2D",
]

"""``array_create``, ``array_destroy`` and ``array_copy``.

Signatures follow Section 3 of the paper:

.. code-block:: c

   array<$t> array_create (int dim, Size size, Size blocksize,
                           Index lowerbd, $t init_elem (Index), int distr);
   void array_destroy (array<$t> a);
   void array_copy (array<$t> from, array<$t> to);

``array_create`` returns the new array ("the return-solution is however
used in array_create, since this skeleton allocates the new array
anyway"); a zero *blocksize* component asks the skeleton to "fill in an
appropriate value depending on the network topology" and a negative
*lowerbd* component derives the local lower bound.  ``array_copy``
exists because "array partitions are internally represented as
contiguous memory areas, [so] copying can be done very efficiently" —
it is charged at memcpy speed with no per-element function calls.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arrays.darray import DistArray, default_grid
from repro.arrays.distribution import BlockDistribution
from repro.errors import SkeletonError
from repro.skeletons import fuse
from repro.skeletons.base import MapEnv, ops_of, skeleton_span
from repro.skeletons.map import apply_fused

__all__ = ["array_create", "array_create_uninit", "array_destroy", "array_copy"]


@skeleton_span("array_create")
def array_create(
    ctx,
    dim: int,
    size,
    blocksize,
    lowerbd,
    init_elem: Callable,
    distr: str | None = None,
    dtype=np.float64,
) -> DistArray:
    """Create a block-distributed array and initialize it elementwise.

    *init_elem(Index)* computes each element from its global index; a
    vectorized kernel (``init_elem.vectorized(index_grids, env)``) is
    used when provided.  *dtype* has no counterpart in the paper (the C
    element type is carried by the ``$t`` instantiation); here it
    selects the numpy element type.
    """
    distr = distr if distr is not None else ctx.default_distr
    grid = default_grid(ctx.machine, dim, distr)
    dist = BlockDistribution.from_pardata_args(dim, size, blocksize, lowerbd, grid)
    arr = DistArray(ctx.machine, dist, dtype, distr)

    t_elem = ctx.elem_time(ops_of(init_elem))
    fenv = fuse.FusedEnv(ctx.p)
    blocks = fuse.dispatch_blocks(
        ctx,
        getattr(init_elem, "vectorized", None),
        [(arr.index_grids(r), fenv) for r in range(ctx.p)],
    )
    if blocks is not None:
        for r in range(ctx.p):
            arr.local(r)[...] = np.broadcast_to(
                np.asarray(blocks[r], dtype=arr.dtype), arr.local(r).shape
            )
        ctx.net.compute(dist.part_sizes() * t_elem)
        return arr
    out = apply_fused(ctx, init_elem, (), arr.shape, dist)
    if out is not None:
        arr.pool[...] = np.asarray(out, dtype=arr.dtype)
        ctx.net.compute(dist.part_sizes() * t_elem)
        return arr

    per_rank = np.zeros(ctx.p)
    vec = getattr(init_elem, "vectorized", None)
    for r in range(ctx.p):
        ctx.current_rank = r
        b = arr.part_bounds(r)
        if vec is not None:
            env = MapEnv(ctx, r, b)
            block = vec(arr.index_grids(r), env)
            arr.local(r)[...] = np.broadcast_to(
                np.asarray(block, dtype=arr.dtype), arr.local(r).shape
            )
        else:
            block = arr.local(r)
            for local_ix, gix in arr.iter_local_indices(r):
                block[local_ix] = init_elem(gix)
        per_rank[r] = b.size * t_elem
    ctx.current_rank = None
    ctx.net.compute(per_rank)
    return arr


def array_create_uninit(
    ctx,
    dim: int,
    size,
    blocksize,
    lowerbd,
    distr: str | None = None,
    dtype=np.float64,
) -> DistArray:
    """Allocate like :func:`array_create` but skip the initialization.

    The fusion pass (:mod:`repro.lang.fusion`) rewrites creates whose
    initial values are provably overwritten before any read — the
    allocation stays, but the per-element init work *and* the skeleton
    round disappear from the simulated schedule.  Accordingly this is
    not a collective: no ``skeleton_span``, no time charged.  Element
    values are unspecified until the first full overwrite.
    """
    distr = distr if distr is not None else ctx.default_distr
    grid = default_grid(ctx.machine, dim, distr)
    dist = BlockDistribution.from_pardata_args(dim, size, blocksize, lowerbd, grid)
    return DistArray(ctx.machine, dist, dtype, distr)


@skeleton_span("array_destroy")
def array_destroy(ctx, a: DistArray) -> None:
    """Deallocate *a*; using it afterwards raises."""
    a.destroy()


@skeleton_span("array_copy")
def array_copy(ctx, from_arr: DistArray, to_arr: DistArray) -> None:
    """Copy *from_arr* into the previously created *to_arr*.

    Pure local memcpy per partition — no communication, no per-element
    calls (this is why the paper implemented it "instead of using a
    correspondingly parameterized array_map").
    """
    ctx.check_same_shape("array_copy", from_arr, to_arr)
    if from_arr is to_arr:
        raise SkeletonError("array_copy: source and target are the same array")
    per_rank = np.zeros(ctx.p)
    t_mem = ctx.machine.cost.t_mem
    src_itemsize = from_arr.dtype.itemsize
    if ctx.fused and from_arr.pool is not None and to_arr.pool is not None:
        # one memcpy over the pool; src.nbytes == b.size * itemsize exactly
        to_arr.pool[...] = from_arr.pool.astype(to_arr.dtype, copy=False)
        ctx.net.compute(
            (from_arr.dist.part_sizes() * src_itemsize) * t_mem
        )
        return
    for r in range(ctx.p):
        src = from_arr.local(r)
        to_arr.local(r)[...] = src.astype(to_arr.dtype, copy=False)
        per_rank[r] = src.nbytes * t_mem
    ctx.net.compute(per_rank)

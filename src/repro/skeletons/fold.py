"""``array_fold`` (and the ``array_scan`` extension).

.. code-block:: c

   $t2 array_fold ($t2 conv_f ($t1, Index), $t2 fold_f ($t2, $t2),
                   array<$t1> a);

Three phases, exactly as in the paper:

1. every processor converts the elements of its partition with *conv_f*
   ("in a map-like way ... but our solution is more efficient" than a
   preliminary ``array_map`` — no temporary array is materialised);
2. each processor folds its converted partition locally with *fold_f*;
3. the per-partition results are folded together "along the edges of a
   virtual tree topology, with the result finally collected at the root"
   and then "broadcasted from the root along the tree edges to all other
   processors" — so every processor returns the same value.

*fold_f* must be associative and commutative, "otherwise the result is
non-deterministic"; the library emits a :class:`UserWarning` when a
folding function does not carry that promise (see
:func:`repro.skeletons.functional.skil_fn`).
"""

from __future__ import annotations

import warnings
from functools import reduce
from typing import Callable

import numpy as np

from repro.arrays.darray import DistArray
from repro.errors import SkeletonError
from repro.skeletons import fuse
from repro.skeletons.base import MapEnv, ops_of, skeleton_span
from repro.skeletons.map import apply_fused

__all__ = ["array_fold", "array_scan"]


def _converted_partition(ctx, conv_f, a: DistArray, rank: int) -> np.ndarray:
    b = a.part_bounds(rank)
    vec = getattr(conv_f, "vectorized", None)
    if vec is not None:
        env = MapEnv(ctx, rank, b)
        out = np.asarray(vec(a.local(rank), a.index_grids(rank), env))
        return np.broadcast_to(out, a.local(rank).shape)
    src = a.local(rank)
    vals = []
    for local_ix, gix in a.iter_local_indices(rank):
        vals.append(conv_f(src[local_ix], gix))
    arr = np.empty(len(vals), dtype=object)
    arr[:] = vals
    return arr


def _local_fold(fold_f, values: np.ndarray):
    flat = values.ravel()
    reducer = getattr(fold_f, "reduce_all", None)
    if reducer is not None:
        return reducer(flat)
    np_reduce = getattr(fold_f, "np_reduce", None)
    if np_reduce is not None and flat.dtype != object:
        return np_reduce(flat)
    return reduce(fold_f, flat.tolist())


@skeleton_span("array_fold")
def array_fold(ctx, conv_f: Callable, fold_f: Callable, a: DistArray):
    """Fold all elements of *a* into one value, known on all processors."""
    if not getattr(fold_f, "commutative_associative", False):
        warnings.warn(
            "array_fold: the folding function does not declare itself "
            "associative and commutative; the result is non-deterministic "
            "on a real machine (annotate it with skil_fn(...))",
            UserWarning,
            stacklevel=2,
        )

    t_conv = ctx.elem_time(ops_of(conv_f))
    t_fold = ctx.elem_time(ops_of(fold_f))
    per_rank = np.zeros(ctx.p)
    partials = []
    with ctx.phase("fold:local"):
        # fused fast path: run the conversion kernel once over the pool,
        # then fold each partition's slice of the converted whole —
        # ravel order inside a block matches the per-rank path, so the
        # local fold sees the elements in the identical sequence
        # real backends convert the partitions in parallel (the local
        # folds stay in the main process: cheap, and fold order must be
        # the sequential left-to-right reduce)
        fenv = fuse.FusedEnv(ctx.p)
        converted = fuse.dispatch_blocks(
            ctx,
            getattr(conv_f, "vectorized", None),
            [(a.local(r), a.index_grids(r), fenv) for r in range(ctx.p)],
        )
        conv_global = (
            None
            if converted is not None
            else apply_fused(ctx, conv_f, (a.pool,), a.shape, a.dist)
        )
        if converted is not None:
            for r in range(ctx.p):
                vals = np.broadcast_to(
                    np.asarray(converted[r]), a.local(r).shape
                )
                partials.append(_local_fold(fold_f, vals))
            sizes = a.dist.part_sizes()
            per_rank = sizes * t_conv + np.maximum(0, sizes - 1) * t_fold
        elif conv_global is not None:
            dist = a.dist
            for r in range(ctx.p):
                partials.append(
                    _local_fold(fold_f, conv_global[dist.part_slices(r)])
                )
            # the per-rank formula below, vectorized — elementwise IEEE
            # ops, so the charged vector is bit-identical
            sizes = dist.part_sizes()
            per_rank = sizes * t_conv + np.maximum(0, sizes - 1) * t_fold
        else:
            for r in range(ctx.p):
                ctx.current_rank = r
                vals = _converted_partition(ctx, conv_f, a, r)
                partials.append(_local_fold(fold_f, vals))
                n = vals.size
                per_rank[r] = n * t_conv + max(0, n - 1) * t_fold
            ctx.current_rank = None
        ctx.net.compute(per_rank)

    # combine along the binomial tree and broadcast the result back
    with ctx.phase("fold:tree"):
        result = reduce(fold_f, partials)
        probe = np.asarray(partials[0])
        nbytes = probe.nbytes if probe.dtype != object else 64
        topo = ctx.machine.topology(a.distr)
        ctx.net.allreduce(
            ctx.wire_bytes(nbytes), topo, combine_seconds=t_fold, sync=ctx.sync()
        )
    return result


@skeleton_span("array_scan")
def array_scan(ctx, scan_f: Callable, a: DistArray, to_arr: DistArray) -> None:
    """Extension skeleton: inclusive prefix combination along dimension 0.

    For 1-D arrays distributed block-wise: ``to[i] = scan_f(a[0], ...,
    a[i])``.  Local scan, exclusive tree-propagated offsets, local
    correction — the textbook distributed scan.  *scan_f* must be
    associative (commutativity is not required).
    """
    if a.dim != 1:
        raise SkeletonError("array_scan currently supports 1-D arrays")
    ctx.check_same_shape("array_scan", a, to_arr)
    ctx.check_block_distribution("array_scan", a, to_arr)

    t_fold = ctx.elem_time(ops_of(scan_f))
    np_op = getattr(scan_f, "np_op", None)
    # fused fast path (see docs/PERFORMANCE.md): with equal pooled
    # partitions the p local scans are one batched accumulate over the
    # (p, block) pool view — each row is scanned in the identical
    # left-to-right element order, so contents are bit-identical
    fused = (
        ctx.fused
        and np_op is not None
        and a.pool is not None
        and to_arr.pool is not None
        and a.pool.dtype != object
        and a.shape[0] % ctx.p == 0
    )
    if fused:
        rows = a.pool.reshape(ctx.p, -1)
        scanned_all = np_op.accumulate(rows, axis=1)
        sizes = a.dist.part_sizes()
        # the per-rank formula below, vectorized — elementwise IEEE ops
        per_rank = np.maximum(0, sizes - 1) * t_fold
        locals_ = list(scanned_all)
    else:
        per_rank = np.zeros(ctx.p)
        locals_ = []
        for r in range(ctx.p):
            src = a.local(r)
            if np_op is not None and src.dtype != object:
                scanned = np_op.accumulate(src)
            else:
                out = list(src)
                for i in range(1, len(out)):
                    out[i] = scan_f(out[i - 1], out[i])
                scanned = np.asarray(out, dtype=to_arr.dtype)
            locals_.append(scanned)
            per_rank[r] = max(0, src.size - 1) * t_fold
    ctx.net.compute(per_rank)

    # exclusive offsets: fold of the last local elements of lower ranks
    offsets = [None] * ctx.p
    running = None
    for r in range(ctx.p):
        offsets[r] = running
        last = locals_[r][-1]
        running = last if running is None else scan_f(running, last)
    # communication: a (log p)-round tree carrying one element up+down,
    # modelled with the same allreduce pattern as fold
    probe = np.asarray(locals_[0][:1])
    topo = ctx.machine.topology(a.distr)
    ctx.net.allreduce(
        ctx.wire_bytes(probe.nbytes), topo, combine_seconds=t_fold, sync=ctx.sync()
    )

    off_col = None
    if fused and ctx.p > 1:
        off_col = np.asarray(offsets[1:])
        if off_col.dtype != scanned_all.dtype or off_col.shape != (ctx.p - 1,):
            # mixed promotion could differ from the per-rank scalar case
            off_col = None
    if fused and (ctx.p == 1 or off_col is not None):
        to_rows = to_arr.pool.reshape(ctx.p, -1)
        to_rows[0] = scanned_all[0]
        if ctx.p > 1:
            to_rows[1:] = np_op(off_col[:, None], scanned_all[1:])
        ctx.net.compute(sizes * t_fold)
        return
    for r in range(ctx.p):
        if offsets[r] is None:
            to_arr.local(r)[...] = locals_[r]
        elif np_op is not None and locals_[r].dtype != object:
            to_arr.local(r)[...] = np_op(offsets[r], locals_[r])
        else:
            to_arr.local(r)[...] = [scan_f(offsets[r], v) for v in locals_[r]]
    # correction pass costs one op per element
    ctx.net.compute(
        np.array([a.local(r).size * t_fold for r in range(ctx.p)])
    )

"""Skeletons for dynamic (pointer-based) element types — ref. [2].

Section 2.3 of the paper: "some problems may appear if dynamic (i.e.
pointer-based) data types are used.  In this case, skeletons that move
elements of the pardata from one processor to another should not move
the pointer as such, but the data pointed to by it.  For that, they get
additional functional arguments which account for the
'flattening'/'unflattening' of data.  This issue is addressed in [2]."

This module implements that extension: a distributed array of arbitrary
Python objects (:class:`DynArray`, standing in for linked lists / trees
per element) and the communication skeletons that take explicit
``flatten``/``unflatten`` functional arguments.  Flattening costs both
*computation* (walking the structure, charged per flattened byte) and
determines the *message size*; unflattening is charged on the receiver.

Purely local skeletons (:func:`dyn_map`, :func:`dyn_fold`'s conversion
phase) need no flattening — exactly why the paper's simplified syntax
omits the extra arguments for them.
"""

from __future__ import annotations

from functools import reduce
from typing import Any, Callable

import numpy as np

from repro.arrays.distribution import BlockDistribution, Bounds
from repro.errors import SkeletonError
from repro.machine.machine import Machine
from repro.skeletons.base import ops_of, skeleton_span

__all__ = ["DynArray", "dyn_create", "dyn_map", "dyn_fold", "dyn_rotate",
           "dyn_gather"]


class DynArray:
    """A 1-D block-distributed array of dynamic (boxed) elements."""

    def __init__(self, machine: Machine, n: int):
        if n < machine.p:
            raise SkeletonError(
                f"need at least one element per processor ({n} < {machine.p})"
            )
        self.machine = machine
        self.n = n
        self.dist = BlockDistribution((n,), (machine.p,))
        self._blocks: list[list[Any]] = [
            [None] * self.dist.local_shape(r)[0] for r in range(machine.p)
        ]

    @property
    def p(self) -> int:
        return self.machine.p

    def part_bounds(self, rank: int) -> Bounds:
        return self.dist.bounds(rank)

    def local(self, rank: int) -> list:
        return self._blocks[rank]

    def to_list(self) -> list:
        out: list = []
        for blk in self._blocks:
            out.extend(blk)
        return out

    def from_list(self, values: list) -> None:
        if len(values) != self.n:
            raise SkeletonError(f"expected {self.n} values, got {len(values)}")
        pos = 0
        for r in range(self.p):
            m = len(self._blocks[r])
            self._blocks[r] = list(values[pos : pos + m])
            pos += m


@skeleton_span("dyn_create")
def dyn_create(ctx, n: int, init_f: Callable[[int], Any]) -> DynArray:
    """Create a distributed dynamic array, ``a[i] = init_f(i)``."""
    arr = DynArray(ctx.machine, n)
    per_rank = np.zeros(ctx.p)
    t_elem = ctx.elem_time(ops_of(init_f))
    for r in range(ctx.p):
        ctx.current_rank = r
        b = arr.part_bounds(r)
        arr._blocks[r] = [init_f(i) for i in range(b.lower[0], b.upper[0])]
        per_rank[r] = b.size * t_elem
    ctx.current_rank = None
    ctx.net.compute(per_rank)
    return arr


@skeleton_span("dyn_map")
def dyn_map(ctx, f: Callable[[Any, int], Any], src: DynArray, dst: DynArray) -> None:
    """Elementwise map — local, no flattening needed."""
    if src.n != dst.n:
        raise SkeletonError("dyn_map: arrays must have the same length")
    per_rank = np.zeros(ctx.p)
    t_elem = ctx.elem_time(ops_of(f))
    results = []
    for r in range(ctx.p):
        ctx.current_rank = r
        b = src.part_bounds(r)
        results.append(
            [f(v, i) for v, i in zip(src.local(r), range(b.lower[0], b.upper[0]))]
        )
        per_rank[r] = b.size * t_elem
    ctx.current_rank = None
    for r in range(ctx.p):
        dst._blocks[r] = results[r]
    ctx.net.compute(per_rank)


@skeleton_span("dyn_fold")
def dyn_fold(ctx, conv_f: Callable, fold_f: Callable, a: DynArray):
    """Fold with local conversion; the combine travels flattened scalars."""
    t_conv = ctx.elem_time(ops_of(conv_f))
    t_fold = ctx.elem_time(ops_of(fold_f))
    partials = []
    per_rank = np.zeros(ctx.p)
    for r in range(ctx.p):
        ctx.current_rank = r
        b = a.part_bounds(r)
        vals = [conv_f(v, i) for v, i in
                zip(a.local(r), range(b.lower[0], b.upper[0]))]
        partials.append(reduce(fold_f, vals))
        per_rank[r] = b.size * t_conv + max(0, b.size - 1) * t_fold
    ctx.current_rank = None
    ctx.net.compute(per_rank)
    topo = ctx.machine.topology(ctx.default_distr)
    ctx.net.allreduce(ctx.wire_bytes(64), topo, combine_seconds=t_fold,
                      sync=ctx.sync())
    return reduce(fold_f, partials)


@skeleton_span("dyn_rotate")
def dyn_rotate(
    ctx,
    a: DynArray,
    shift: int,
    flatten: Callable[[Any], int],
    unflatten: Callable[[Any], Any] | None = None,
) -> None:
    """Rotate elements by *shift* positions, flattening boxed data.

    *flatten(elem)* returns the number of bytes the element occupies in
    contiguous form (and may also canonicalise it); *unflatten* rebuilds
    the boxed structure on the receiver (identity by default).  Both the
    wire bytes and per-byte flatten/unflatten compute time come from the
    flattened sizes — the pointer itself is never sent.
    """
    if unflatten is None:
        unflatten = lambda x: x  # noqa: E731
    values = a.to_list()
    rotated = values[-shift % a.n :] + values[: -shift % a.n]

    # bytes leaving each rank: elements whose destination rank differs
    topo = ctx.machine.topology(ctx.default_distr)
    t_mem = ctx.machine.cost.t_mem
    pair_bytes: dict[tuple[int, int], int] = {}
    flatten_cost = np.zeros(ctx.p)
    for i, v in enumerate(values):
        src_rank = a.dist.owner((i,))
        j = (i + shift) % a.n
        dst_rank = a.dist.owner((j,))
        if src_rank == dst_rank:
            continue
        nbytes = int(flatten(v))
        pair_bytes[(src_rank, dst_rank)] = (
            pair_bytes.get((src_rank, dst_rank), 0) + nbytes
        )
        # flattening walks the structure once on each side
        flatten_cost[src_rank] += nbytes * t_mem
        flatten_cost[dst_rank] += nbytes * t_mem
    ctx.net.compute(flatten_cost)
    for (s, d), nbytes in sorted(pair_bytes.items()):
        ctx.net.p2p(s, d, ctx.wire_bytes(nbytes), topo, sync=ctx.sync(),
                    tag="dyn-rotate")

    a.from_list([unflatten(v) for v in rotated])


@skeleton_span("dyn_gather")
def dyn_gather(
    ctx, a: DynArray, flatten: Callable[[Any], int], root: int = 0
) -> list:
    """Collect all (flattened) elements at *root*; returns the list."""
    topo = ctx.machine.topology(ctx.default_distr)
    t_mem = ctx.machine.cost.t_mem
    for r in range(ctx.p):
        if r == root:
            continue
        nbytes = sum(int(flatten(v)) for v in a.local(r))
        ctx.net.compute_at(r, nbytes * t_mem)
        ctx.net.p2p(r, root, ctx.wire_bytes(nbytes), topo, sync=ctx.sync(),
                    tag="dyn-gather")
    return a.to_list()

"""The ``farm`` skeleton — process-parallel task farming.

``farm`` is one of the "classical examples of skeletons" the paper's
introduction lists next to ``map`` and ``divide&conquer``.  A master
processor hands independent tasks to worker processors on demand and
collects the results; dynamic (demand-driven) distribution makes it
robust against irregular task costs, which block-wise data parallelism
handles poorly.

Like ``divide&conquer`` this is process-parallel with data-dependent
scheduling, so it runs on the message-granularity engine
(:mod:`repro.machine.engine`), using its ``ANY_SOURCE`` wildcard receive
for the master's completion queue.  Processor 0 is the master; with one
processor the farm degenerates to a sequential loop.

Cost accounting matches the other skeletons: the worker function's
``.ops`` annotation is charged per task scaled by ``size_of(task)``;
task payload bytes default to ``16 * size_of(task)``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import SkeletonError
from repro.machine.engine import ANY_SOURCE, Compute, Engine, ISend, Recv
from repro.skeletons.base import ops_of, skeleton_span

__all__ = ["farm"]

_STOP = ("__farm_stop__",)


@skeleton_span("farm")
def farm(
    ctx,
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    size_of: Callable[[Any], int] = len,
    nbytes_of: Callable[[Any], int] | None = None,
) -> list:
    """Apply *worker* to every task, demand-driven across the machine.

    Returns the results in task order (collected at the master).
    """
    tasks = list(tasks)
    if nbytes_of is None:
        nbytes_of = lambda t: 16 * max(1, _size(size_of, t))  # noqa: E731

    def task_cost(t: Any) -> float:
        return ops_of(worker) * ctx.elem_time() * max(1, _size(size_of, t))

    filled = [False] * len(tasks)
    results: list = [None] * len(tasks)

    if ctx.p == 1 or not tasks:
        total = 0.0
        for i, t in enumerate(tasks):
            results[i] = worker(t)
            total += task_cost(t)
        if total:
            ctx.net.compute(total)
        return results

    def master(rank: int, p: int):
        pending = list(enumerate(tasks))
        outstanding = 0
        for w in range(1, p):
            if not pending:
                break
            i, t = pending.pop(0)
            yield ISend(w, payload=(i, t), nbytes=nbytes_of(t), tag="task")
            outstanding += 1
        while outstanding:
            w, i, res = yield Recv(ANY_SOURCE, tag="done")
            results[i] = res
            filled[i] = True
            outstanding -= 1
            if pending:
                j, t = pending.pop(0)
                yield ISend(w, payload=(j, t), nbytes=nbytes_of(t), tag="task")
                outstanding += 1
        for w in range(1, p):
            yield ISend(w, payload=_STOP, nbytes=8, tag="task")

    def worker_proc(rank: int, p: int):
        while True:
            msg = yield Recv(0, tag="task")
            if msg == _STOP:
                return
            i, t = msg
            yield Compute(task_cost(t))
            res = worker(t)
            yield ISend(0, payload=(rank, i, res), nbytes=64, tag="done")

    eng = Engine(
        ctx.machine.cost,
        ctx.machine.topology(ctx.default_distr),
        stats=ctx.machine.stats,
        timeline=ctx.machine.obs_timeline,
        metrics=ctx.machine.metrics,
        t0=ctx.machine.time,
    )
    eng.spawn(0, master(0, ctx.p))
    for r in range(1, ctx.p):
        eng.spawn(r, worker_proc(r, ctx.p))
    makespan = eng.run()
    ctx.net.compute(makespan)

    if not all(filled):
        missing = [i for i, f in enumerate(filled) if not f]
        raise SkeletonError(f"farm lost results for tasks {missing}")
    return results


def _size(size_of, t) -> int:
    try:
        return int(size_of(t))
    except TypeError:
        return 1

"""Future-work skeletons implemented as extensions (DESIGN.md §5).

The paper's conclusions name two directions we implement here:

* overlapping partition areas "in order to reduce communication in
  operations which require more than one element at a time", used in PDE
  solvers and image processing → :func:`array_map_overlap`;
* further distributions (cyclic, block-cyclic) live in
  :mod:`repro.arrays.distribution`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arrays.darray import DistArray
from repro.errors import SkeletonError
from repro.skeletons.base import MapEnv, ops_of, skeleton_span

__all__ = ["array_map_overlap"]


@skeleton_span("array_map_overlap")
def array_map_overlap(
    ctx,
    stencil_f: Callable,
    from_arr: DistArray,
    to_arr: DistArray,
    overlap: int = 1,
) -> None:
    """Map with access to a neighbourhood of radius *overlap*.

    ``to[ix] = stencil_f(get, ix)`` where ``get(*offsets)`` reads the
    element at ``ix + offsets``, clamped to the array border.  Before the
    local sweeps, ghost areas of width *overlap* are exchanged between
    grid-neighbouring partitions (two shifts per distributed dimension);
    without this skeleton every neighbour access would be a remote read,
    the exact inefficiency the paper's locality rule forbids.

    A vectorized kernel has signature ``kernel(padded_block, pad_widths,
    index_grids, env)`` and must return the *owned* block; ``padded_block``
    is the partition extended by the (clamped) halo.
    """
    ctx.check_same_shape("array_map_overlap", from_arr, to_arr)
    if from_arr is to_arr:
        raise SkeletonError(
            "array_map_overlap: in-situ operation would let the stencil "
            "observe half-updated neighbours; use distinct arrays"
        )
    if overlap < 1:
        raise SkeletonError(f"overlap must be >= 1, got {overlap}")
    dim = from_arr.dim
    if dim not in (1, 2):
        raise SkeletonError("array_map_overlap supports 1-D and 2-D arrays")

    # ---- halo exchange cost: per distributed dimension, both directions
    topo = ctx.machine.topology(from_arr.distr)
    itemsize = from_arr.dtype.itemsize
    grid = from_arr.dist.grid
    sync = ctx.sync()
    for d in range(dim):
        if grid[d] == 1:
            continue
        fwd, bwd = [], []
        slab_bytes = {}
        for r in range(ctx.p):
            coords = from_arr.dist.grid_coords(r)
            b = from_arr.part_bounds(r)
            other = [u - l for i, (l, u) in enumerate(zip(b.lower, b.upper)) if i != d]
            slab = overlap * int(np.prod(other)) * itemsize if other else overlap * itemsize
            slab_bytes[r] = ctx.wire_bytes(slab)
            nxt = list(coords)
            nxt[d] += 1
            if nxt[d] < grid[d]:
                fwd.append((r, from_arr.dist.grid_rank(nxt)))
            prv = list(coords)
            prv[d] -= 1
            if prv[d] >= 0:
                bwd.append((r, from_arr.dist.grid_rank(prv)))
        if fwd:
            ctx.net.shift(fwd, {s: slab_bytes[s] for s, _ in fwd}, topo,
                          sync=sync, tag=f"halo+{d}")
        if bwd:
            ctx.net.shift(bwd, {s: slab_bytes[s] for s, _ in bwd}, topo,
                          sync=sync, tag=f"halo-{d}")

    # ---- local sweeps over the (halo-extended) partitions
    global_data = from_arr.global_view()  # simulation shortcut for halo data
    shape = from_arr.shape
    t_elem = ctx.elem_time(ops_of(stencil_f))
    per_rank = np.zeros(ctx.p)
    results = []
    vec = getattr(stencil_f, "vectorized", None)
    for r in range(ctx.p):
        ctx.current_rank = r
        b = from_arr.part_bounds(r)
        lo = [max(0, l - overlap) for l in b.lower]
        hi = [min(s, u + overlap) for s, u in zip(shape, b.upper)]
        padded = global_data[tuple(slice(l, h) for l, h in zip(lo, hi))]
        pad = tuple(bl - l for bl, l in zip(b.lower, lo))
        if vec is not None:
            env = MapEnv(ctx, r, b)
            out = np.asarray(vec(padded, pad, from_arr.index_grids(r), env))
            results.append(np.broadcast_to(out, b.shape))
        else:
            out = np.empty(b.shape, dtype=object)
            for local_ix in np.ndindex(*b.shape):
                gix = tuple(l + i for l, i in zip(b.lower, local_ix))

                def get(*offsets, _gix=gix):
                    if len(offsets) != dim:
                        raise SkeletonError(
                            f"stencil get() expects {dim} offsets"
                        )
                    tgt = [
                        min(max(g + o, 0), s - 1)
                        for g, o, s in zip(_gix, offsets, shape)
                    ]
                    if any(abs(o) > overlap for o in offsets):
                        raise SkeletonError(
                            f"stencil access {offsets} exceeds overlap {overlap}"
                        )
                    return global_data[tuple(tgt)]

                out[local_ix] = stencil_f(get, gix)
            results.append(out)
        per_rank[r] = b.size * t_elem
    ctx.current_rank = None
    for r in range(ctx.p):
        to_arr.local(r)[...] = np.asarray(results[r], dtype=to_arr.dtype)
    ctx.net.compute(per_rank)

"""Communication skeletons: ``array_broadcast_part`` and
``array_permute_rows`` (plus an ``array_rotate_rows`` convenience).

.. code-block:: c

   void array_broadcast_part (array<$t> a, Index ix);
   void array_permute_rows (array<$t> from, int perm_f (int), array<$t> to);

``array_broadcast_part`` broadcasts the partition containing element
*ix*; "each processor overwrites his partition with the broadcasted one".
The paper's Gaussian elimination shapes the ``piv`` array as ``p x (n+1)``
so each partition is exactly one row, turning row broadcast into
partition broadcast.

``array_permute_rows`` applies only to 2-dimensional arrays and requires
a *bijective* function on ``{0, ..., n-1}``, "otherwise a run-time error
occurs" — reproduced here as :class:`~repro.errors.SkeletonError`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

import numpy as np

from repro.arrays.darray import DistArray
from repro.errors import SkeletonError
from repro.skeletons.base import ops_of, skeleton_span

__all__ = ["array_broadcast_part", "array_permute_rows", "array_rotate_rows"]


@skeleton_span("array_broadcast_part")
def array_broadcast_part(ctx, a: DistArray, ix) -> None:
    """Broadcast the partition owning element *ix* to all processors."""
    ctx.check_block_distribution("array_broadcast_part", a)
    owner = a.owner(tuple(int(i) for i in ix))
    block = a.local(owner)
    for r in range(ctx.p):
        if r == owner:
            continue
        if a.local(r).shape != block.shape:
            raise SkeletonError(
                "array_broadcast_part requires equally sized partitions "
                f"(rank {r} holds {a.local(r).shape}, owner holds {block.shape})"
            )
        a.local(r)[...] = block
    topo = ctx.machine.topology(a.distr)
    ctx.net.broadcast(
        owner, ctx.wire_bytes(block.nbytes), topo, sync=ctx.sync(), tag="bcast-part"
    )


def _row_segment_owner(arr: DistArray, row: int, col_lo: int) -> int:
    """Rank owning the segment of *row* starting at column *col_lo*."""
    return arr.owner((row, col_lo))


@skeleton_span("array_permute_rows")
def array_permute_rows(
    ctx, from_arr: DistArray, perm_f: Callable[[int], int], to_arr: DistArray
) -> None:
    """Permute the rows of a 2-D array: ``to[perm_f(i), :] = from[i, :]``."""
    if from_arr.dim != 2:
        raise SkeletonError("array_permute_rows applies only to 2-dimensional arrays")
    ctx.check_same_shape("array_permute_rows", from_arr, to_arr)
    ctx.check_block_distribution("array_permute_rows", from_arr, to_arr)
    if from_arr is to_arr:
        raise SkeletonError("array_permute_rows: source and target must differ")

    n_rows = from_arr.shape[0]
    perm = [int(perm_f(i)) for i in range(n_rows)]
    if sorted(perm) != list(range(n_rows)):
        raise SkeletonError(
            "array_permute_rows: the permutation function is not a bijection "
            f"on {{0,...,{n_rows - 1}}} (run-time error, as in the paper)"
        )
    # evaluating the permutation function costs one application per row
    # it is evaluated on (at least) the processors whose rows move
    ctx.net.compute(n_rows / ctx.p * ctx.elem_time(ops_of(perm_f)))

    # group row segments into per-(src,dst) messages
    itemsize = from_arr.dtype.itemsize
    pair_bytes: dict[tuple[int, int], int] = defaultdict(int)
    for src_rank in range(ctx.p):
        b = from_arr.part_bounds(src_rank)
        col_lo, col_hi = b.lower[1], b.upper[1]
        seg_bytes = (col_hi - col_lo) * itemsize
        for row in range(b.lower[0], b.upper[0]):
            dst_rank = _row_segment_owner(to_arr, perm[row], col_lo)
            segment = from_arr.local(src_rank)[row - b.lower[0], :]
            db = to_arr.part_bounds(dst_rank)
            to_arr.local(dst_rank)[perm[row] - db.lower[0], :] = segment
            pair_bytes[(src_rank, dst_rank)] += seg_bytes

    topo = ctx.machine.topology(from_arr.distr)
    t_mem = ctx.machine.cost.t_mem
    for (s, d), nbytes in sorted(pair_bytes.items()):
        if s == d:
            ctx.net.compute_at(s, nbytes * t_mem)
        else:
            ctx.net.p2p(
                s, d, ctx.wire_bytes(nbytes), topo, sync=ctx.sync(), tag="permute-rows"
            )


def array_rotate_rows(ctx, from_arr: DistArray, shift: int, to_arr: DistArray) -> None:
    """Rotate rows downward by *shift* (negative: upward).

    Convenience wrapper over :func:`array_permute_rows` with the rotation
    bijection ``i -> (i + shift) mod n``.
    """
    n = from_arr.shape[0]

    def rot(i: int) -> int:
        return (i + shift) % n

    rot.ops = 1.0
    array_permute_rows(ctx, from_arr, rot, to_arr)

"""Communication skeletons: ``array_broadcast_part`` and
``array_permute_rows`` (plus an ``array_rotate_rows`` convenience).

.. code-block:: c

   void array_broadcast_part (array<$t> a, Index ix);
   void array_permute_rows (array<$t> from, int perm_f (int), array<$t> to);

``array_broadcast_part`` broadcasts the partition containing element
*ix*; "each processor overwrites his partition with the broadcasted one".
The paper's Gaussian elimination shapes the ``piv`` array as ``p x (n+1)``
so each partition is exactly one row, turning row broadcast into
partition broadcast.

``array_permute_rows`` applies only to 2-dimensional arrays and requires
a *bijective* function on ``{0, ..., n-1}``, "otherwise a run-time error
occurs" — reproduced here as :class:`~repro.errors.SkeletonError`.

Fused data movement (see docs/PERFORMANCE.md): on pooled block arrays
the broadcast is one broadcasting slice assignment over the
grid-interleaved pool view, and the row permutation is one fancy-index
gather ``to.pool[perm] = from.pool`` with the per-(src, dst) message
sizes histogrammed vectorized.  Both charge the identical analytic cost
(same pair order, same arithmetic) through ``Network.p2p_batch``, so
simulated seconds, per-rank clocks and trace spans are bit-identical to
the per-rank loops.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

import numpy as np

from repro.arrays.darray import DistArray
from repro.errors import SkeletonError
from repro.skeletons.base import ops_of, skeleton_span
from repro.skeletons.fuse import interleaved_view

__all__ = ["array_broadcast_part", "array_permute_rows", "array_rotate_rows"]


@skeleton_span("array_broadcast_part")
def array_broadcast_part(ctx, a: DistArray, ix) -> None:
    """Broadcast the partition owning element *ix* to all processors."""
    ctx.check_block_distribution("array_broadcast_part", a)
    owner = a.owner(tuple(int(i) for i in ix))
    block = a.local(owner)
    view = None
    if ctx.fused and a.pool is not None:
        # equal partitions iff every dimension divides evenly over the
        # grid, which is exactly when the interleaved view exists
        view = interleaved_view(a.pool, a.dist.grid)
    if view is not None:
        src = block.copy()  # the owner slot is part of the target view
        expand = tuple(
            s for b in src.shape for s in (1, b)
        )
        view[...] = src.reshape(expand)
    else:
        for r in range(ctx.p):
            if r == owner:
                continue
            if a.local(r).shape != block.shape:
                raise SkeletonError(
                    "array_broadcast_part requires equally sized partitions "
                    f"(rank {r} holds {a.local(r).shape}, owner holds {block.shape})"
                )
            a.local(r)[...] = block
    topo = ctx.machine.topology(a.distr)
    ctx.net.broadcast(
        owner, ctx.wire_bytes(block.nbytes), topo, sync=ctx.sync(), tag="bcast-part"
    )


def _row_segment_owner(arr: DistArray, row: int, col_lo: int) -> int:
    """Rank owning the segment of *row* starting at column *col_lo*."""
    return arr.owner((row, col_lo))


def _evaluate_perm(ctx, perm_f, n_rows: int) -> np.ndarray:
    """Evaluate the permutation function over every row index.

    Functions may opt into vectorized evaluation by carrying a
    ``perm_vectorized`` attribute (an array→array version of
    themselves); plain functions are applied row by row exactly as
    before.  The bijection check is the same either way.
    """
    pv = getattr(perm_f, "perm_vectorized", None)
    if ctx.fused and pv is not None:
        perm = np.asarray(pv(np.arange(n_rows)), dtype=np.intp)
        if perm.shape != (n_rows,):
            raise SkeletonError(
                "array_permute_rows: perm_vectorized returned shape "
                f"{perm.shape}, expected ({n_rows},)"
            )
    else:
        perm = np.fromiter(
            (int(perm_f(i)) for i in range(n_rows)), dtype=np.intp, count=n_rows
        )
    if not np.array_equal(np.sort(perm), np.arange(n_rows)):
        raise SkeletonError(
            "array_permute_rows: the permutation function is not a bijection "
            f"on {{0,...,{n_rows - 1}}} (run-time error, as in the paper)"
        )
    return perm


def _pair_bytes_fused(
    from_arr: DistArray, to_arr: DistArray, perm: np.ndarray, p: int
) -> list[tuple[tuple[int, int], int]]:
    """Vectorized per-(src, dst) message-byte histogram.

    Reproduces the per-row accumulation loop exactly: every
    ``(row, source column block)`` segment contributes its byte count to
    the pair ``(owner of the source segment, owner of the permuted
    destination segment)``.  Integer sums are order-free, so the totals
    —and the set of pairs, including zero-byte ones — match the scalar
    dict bit for bit.
    """
    g1f = from_arr.dist.grid[1]
    g1t = to_arr.dist.grid[1]
    from_ov0 = from_arr.dist.owner_vectors()[0]
    to_ov0, to_ov1 = to_arr.dist.owner_vectors()
    col_lo = np.empty(g1f, dtype=np.int64)
    col_hi = np.empty(g1f, dtype=np.int64)
    for b in range(g1f):
        bb = from_arr.part_bounds(b)  # grid coords (0, b) -> rank b
        col_lo[b] = bb.lower[1]
        col_hi[b] = bb.upper[1]
    seg_bytes = (col_hi - col_lo) * from_arr.dtype.itemsize
    blocks = np.arange(g1f)
    src = np.asarray(from_ov0, dtype=np.int64)[:, None] * g1f + blocks[None, :]
    dst = (
        np.asarray(to_ov0, dtype=np.int64)[perm][:, None] * g1t
        + np.asarray(to_ov1, dtype=np.int64)[col_lo][None, :]
    )
    # compact the (src, dst) pairs through one sorted unique pass — an
    # O(segments log segments) histogram instead of dense (p, p)
    # scatter/argwhere arrays (32 GiB at p = 65536).  np.unique sorts,
    # so the pair order is the same (src, dst)-lexicographic order the
    # dense row-major argwhere produced, and the integer byte sums are
    # order-free — outputs match the dense version bit for bit.
    keys = (src * np.int64(p) + dst).ravel()
    uniq, inv = np.unique(keys, return_inverse=True)
    sums = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(
        sums, inv.ravel(), np.broadcast_to(seg_bytes[None, :], src.shape).ravel()
    )
    return uniq // p, uniq % p, sums


def _charge_pairs_fused(ctx, srcs, dsts, nbs, topo) -> None:
    """Array variant of :func:`_charge_pairs`.

    Identical charging sequence: the sorted pair list is cut at every
    local (src == dst) pair — a memory copy on the owner — and each
    remote stretch goes through ``Network.p2p_batch`` in one call, the
    same flush boundaries the list loop produces.
    """
    t_mem = ctx.machine.cost.t_mem
    sync = ctx.sync()
    # int() truncation of the scalar wire_bytes == astype toward zero
    factor = ctx.profile.comm_byte_factor
    wire_nb = (nbs * factor).astype(np.int64)
    loc = np.flatnonzero(srcs == dsts)
    start = 0
    for li in loc.tolist():
        if li > start:
            ctx.net.p2p_batch(
                srcs[start:li], dsts[start:li], wire_nb[start:li],
                topo, sync=sync, tag="permute-rows",
            )
        ctx.net.compute_at(int(srcs[li]), int(nbs[li]) * t_mem)
        start = li + 1
    if start < int(srcs.size):
        ctx.net.p2p_batch(
            srcs[start:], dsts[start:], wire_nb[start:],
            topo, sync=sync, tag="permute-rows",
        )


def _charge_pairs(ctx, pair_items, topo) -> None:
    """Charge the sorted (src, dst) message list.

    Local pairs are memory copies on the owner; consecutive runs of
    remote pairs are charged through ``Network.p2p_batch``, which is
    bit-identical to the historical per-pair ``p2p`` loop.
    """
    t_mem = ctx.machine.cost.t_mem
    sync = ctx.sync()
    run_s: list[int] = []
    run_d: list[int] = []
    run_nb: list[int] = []

    def flush() -> None:
        if run_s:
            ctx.net.p2p_batch(
                np.asarray(run_s, dtype=np.int64),
                np.asarray(run_d, dtype=np.int64),
                np.asarray(run_nb, dtype=np.int64),
                topo,
                sync=sync,
                tag="permute-rows",
            )
            run_s.clear()
            run_d.clear()
            run_nb.clear()

    for (s, d), nbytes in pair_items:
        if s == d:
            flush()
            ctx.net.compute_at(s, nbytes * t_mem)
        else:
            run_s.append(s)
            run_d.append(d)
            run_nb.append(ctx.wire_bytes(nbytes))
    flush()


@skeleton_span("array_permute_rows")
def array_permute_rows(
    ctx, from_arr: DistArray, perm_f: Callable[[int], int], to_arr: DistArray
) -> None:
    """Permute the rows of a 2-D array: ``to[perm_f(i), :] = from[i, :]``."""
    if from_arr.dim != 2:
        raise SkeletonError("array_permute_rows applies only to 2-dimensional arrays")
    ctx.check_same_shape("array_permute_rows", from_arr, to_arr)
    ctx.check_block_distribution("array_permute_rows", from_arr, to_arr)
    if from_arr is to_arr:
        raise SkeletonError("array_permute_rows: source and target must differ")

    n_rows = from_arr.shape[0]
    perm_arr = _evaluate_perm(ctx, perm_f, n_rows)
    # evaluating the permutation function costs one application per row
    # it is evaluated on (at least) the processors whose rows move
    ctx.net.compute(n_rows / ctx.p * ctx.elem_time(ops_of(perm_f)))

    fused = (
        ctx.fused and from_arr.pool is not None and to_arr.pool is not None
    )
    if fused:
        # whole-array gather on the pools + vectorized byte histogram
        to_arr.pool[perm_arr] = from_arr.pool
        psrcs, pdsts, pnbs = _pair_bytes_fused(from_arr, to_arr, perm_arr, ctx.p)
        topo = ctx.machine.topology(from_arr.distr)
        _charge_pairs_fused(ctx, psrcs, pdsts, pnbs, topo)
        return
    else:
        # group row segments into per-(src,dst) messages
        perm = perm_arr.tolist()
        itemsize = from_arr.dtype.itemsize
        pair_bytes: dict[tuple[int, int], int] = defaultdict(int)
        for src_rank in range(ctx.p):
            b = from_arr.part_bounds(src_rank)
            col_lo, col_hi = b.lower[1], b.upper[1]
            seg_bytes = (col_hi - col_lo) * itemsize
            for row in range(b.lower[0], b.upper[0]):
                dst_rank = _row_segment_owner(to_arr, perm[row], col_lo)
                segment = from_arr.local(src_rank)[row - b.lower[0], :]
                db = to_arr.part_bounds(dst_rank)
                to_arr.local(dst_rank)[perm[row] - db.lower[0], :] = segment
                pair_bytes[(src_rank, dst_rank)] += seg_bytes
        pair_items = sorted(pair_bytes.items())

    topo = ctx.machine.topology(from_arr.distr)
    _charge_pairs(ctx, pair_items, topo)


def array_rotate_rows(ctx, from_arr: DistArray, shift: int, to_arr: DistArray) -> None:
    """Rotate rows downward by *shift* (negative: upward).

    Convenience wrapper over :func:`array_permute_rows` with the rotation
    bijection ``i -> (i + shift) mod n``.
    """
    n = from_arr.shape[0]

    def rot(i: int) -> int:
        return (i + shift) % n

    rot.ops = 1.0
    rot.perm_vectorized = rot
    array_permute_rows(ctx, from_arr, rot, to_arr)

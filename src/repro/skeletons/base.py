"""Skeleton execution context.

A :class:`SkilContext` binds a :class:`~repro.machine.machine.Machine`
to a :class:`~repro.machine.costmodel.LanguageProfile` and exposes the
paper's skeletons as methods.  The same skeleton *semantics* runs under
every profile — what changes between ``skil``, ``dpfl`` and ``parix-c``
is only how much simulated time the same abstract work costs (DESIGN.md
§2), which is exactly the comparison the paper's evaluation makes.

Execution model: skeletons are *collective operations*.  Within one
skeleton the context iterates over the logical processors, applying the
customizing argument functions to each partition (vectorized when the
function provides a kernel, elementwise otherwise) and charging each
processor's clock for the work; the communication pattern of the
skeleton is then charged through :class:`repro.machine.network.Network`.
User argument functions that need processor context (the paper's
``procId`` or ``array_part_bounds``) read it from :attr:`current_rank` /
:meth:`proc_id` while they are being mapped.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

import functools

from repro.arrays.darray import DistArray
from repro.errors import SkeletonError
from repro.machine.costmodel import SKIL, LanguageProfile
from repro.machine.machine import DISTR_DEFAULT, Machine
from repro.skeletons.fuse import fusion_default, program_fusion_default

__all__ = ["SkilContext", "MapEnv", "ops_of", "current_context", "skeleton_span"]


def skeleton_span(name: str) -> Callable:
    """Decorator for skeleton entry points ``f(ctx, ...)``.

    Wraps the whole body in a paired ``begin_skeleton``/``end_skeleton``
    — the span closes even when the body raises (argument validation
    errors, singular matrices, deadlocks), so no begin is ever left
    without its end.
    """

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(ctx, *args, **kwargs):
            span = ctx.begin_skeleton(name)
            try:
                return fn(ctx, *args, **kwargs)
            finally:
                ctx.end_skeleton(span)

        return wrapper

    return deco

#: the context whose skeleton is currently executing; lets user argument
#: functions reach processor context (procId, partition bounds) the way
#: the paper's C functions call the array macros directly
_CURRENT: "SkilContext | None" = None


def current_context() -> "SkilContext":
    """The context of the skeleton currently executing.

    Only valid while a skeleton applies user argument functions; the
    paper's equivalents are the ``procId`` variable and the
    ``array_part_bounds`` macro available inside argument functions.
    """
    if _CURRENT is None:
        raise SkeletonError("current_context() is only defined inside a skeleton")
    return _CURRENT


def ops_of(f: Callable, default: float = 1.0) -> float:
    """Abstract operation count per element of a user function.

    Argument functions may annotate themselves with ``.ops`` (see
    :func:`repro.skeletons.functional.skil_fn`); the cost model charges
    ``ops * elem_time`` per element.
    """
    return float(getattr(f, "ops", default))


@dataclass
class MapEnv:
    """Per-rank environment handed to vectorized kernels."""

    ctx: "SkilContext"
    rank: int
    bounds: Any  # repro.arrays.distribution.Bounds


class SkilContext:
    """Machine + language profile + the skeleton API.

    The individual skeleton implementations live in sibling modules
    (:mod:`repro.skeletons.create`, ``map``, ``fold``, ``comm``,
    ``genmult``, ``extensions``); this class wires them together and
    owns the shared bookkeeping (overhead charging, current-rank
    tracking, skeleton-call statistics).
    """

    def __init__(
        self,
        machine: Machine,
        profile: LanguageProfile = SKIL,
        default_distr: str = DISTR_DEFAULT,
        fused: bool | None = None,
        fusion: bool | None = None,
    ):
        self.machine = machine
        self.profile = profile
        self.default_distr = default_distr
        #: whether skeletons may take the fused whole-array fast path
        #: (:mod:`repro.skeletons.fuse`); simulated seconds are identical
        #: either way, only wall-clock changes.  ``None`` = process default.
        self.fused = fusion_default() if fused is None else bool(fused)
        #: whether *compiler-level* skeleton fusion is on for this run:
        #: ``compile_skil`` consults it via the process default, and the
        #: hand-written drivers mirror the pass's rewrites when set (fewer
        #: skeleton rounds, elided intermediates; values stay bit-equal).
        self.fusion = program_fusion_default() if fusion is None else bool(fusion)
        #: rank whose partition is currently being processed by a
        #: skeleton; user argument functions may read it (``procId``).
        self.current_rank: int | None = None

    # ------------------------------------------------------------------ infra
    @property
    def net(self):
        return self.machine.network

    @property
    def p(self) -> int:
        return self.machine.p

    def proc_id(self) -> int:
        """The paper's ``procId`` — only valid inside argument functions."""
        if self.current_rank is None:
            raise SkeletonError("proc_id() is only defined inside a skeleton")
        return self.current_rank

    def elem_time(self, ops: float = 1.0) -> float:
        return self.profile.elem_time(self.machine.cost, ops)

    def begin_skeleton(self, name: str):
        """Open one skeleton invocation: charge the fixed per-invocation
        overhead on every processor and (when tracing) open a span.

        Returns the span (or ``None`` with tracing off); every call must
        be paired with :meth:`end_skeleton` — use the :meth:`skeleton`
        context manager, which guarantees the pairing on error paths.
        """
        global _CURRENT
        _CURRENT = self
        self.machine.stats.skeleton_calls += 1
        prof = self.machine.profiler
        if prof is not None:
            prof.skeleton_begin(name)
        tracer = self.machine.tracer
        span = tracer.begin(name, category="skeleton") if tracer is not None else None
        if self.profile.skeleton_overhead:
            self.net.compute(self.profile.skeleton_overhead)
        return span

    def end_skeleton(self, span=None) -> None:
        """Close the span opened by :meth:`begin_skeleton` (plus any
        phase spans an error path left open beneath it)."""
        prof = self.machine.profiler
        if prof is not None:
            # before the tracer early-out: wall stamps are taken even at
            # trace_level=0 (begin/end are strictly paired by callers)
            prof.skeleton_end()
        tracer = self.machine.tracer
        if tracer is None:
            return
        if span is not None:
            tracer.end_through(span)
        elif tracer.open_depth:
            tracer.end()

    @contextmanager
    def skeleton(self, name: str) -> Iterator[None]:
        """``with ctx.skeleton("array_map"): ...`` — begin/end pairing
        that survives exceptions (no begin-without-end paths)."""
        span = self.begin_skeleton(name)
        try:
            yield
        finally:
            self.end_skeleton(span)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """A nested sub-span inside a composite skeleton (e.g. the
        rotate/multiply phases of ``array_gen_mult``).  No overhead is
        charged and nothing is counted; with tracing off this is a no-op.
        """
        tracer = self.machine.tracer
        if tracer is None:
            yield
            return
        with tracer.span(name, category="phase"):
            yield

    def sync(self) -> bool:
        """Whether communication should use synchronous sends."""
        return not self.profile.async_comm

    def wire_bytes(self, nbytes: int) -> int:
        """Effective bytes a message costs under this language.

        Functional hosts flatten boxed elements into a send buffer and
        re-box on receipt, inflating the per-byte wire cost
        (``comm_byte_factor``); imperative partitions go out as-is.
        """
        return int(nbytes * self.profile.comm_byte_factor)

    def check_distinct(self, name: str, *arrays: DistArray) -> None:
        seen: list[DistArray] = []
        for a in arrays:
            for s in seen:
                if a is s:
                    raise SkeletonError(
                        f"{name}: array arguments must be distinct "
                        "(the paper forbids aliased arguments here)"
                    )
            seen.append(a)

    def check_same_shape(self, name: str, a: DistArray, b: DistArray) -> None:
        if a.shape != b.shape or a.dist.grid != b.dist.grid:
            raise SkeletonError(
                f"{name}: arrays must share shape and distribution, got "
                f"{a.shape}/{a.dist.grid} vs {b.shape}/{b.dist.grid}"
            )

    def check_block_distribution(self, name: str, *arrays: DistArray) -> None:
        """Skeletons whose data movement is expressed in contiguous
        partition coordinates (scan offsets, row segments, whole-block
        broadcasts) silently corrupt strided layouts — reject them.
        Surfaced by the ``repro.check`` skeleton oracle."""
        from repro.arrays.distribution import BlockDistribution

        for a in arrays:
            if type(a.dist) is not BlockDistribution:
                raise SkeletonError(
                    f"{name}: requires a block distribution, got "
                    f"{type(a.dist).__name__}"
                )

    # ------------------------------------------------------------------ API
    # The skeleton entry points are attached below to keep each
    # implementation in its own module (many small modules, one concern
    # each); see the bottom of this file.


def _attach_api() -> None:
    """Bind the skeleton implementations as SkilContext methods."""
    from repro.skeletons import comm, create, dc, extensions, farm, fold, genmult
    from repro.skeletons import map as map_mod

    SkilContext.array_create = create.array_create
    SkilContext.array_create_uninit = create.array_create_uninit
    SkilContext.array_destroy = create.array_destroy
    SkilContext.array_copy = create.array_copy
    SkilContext.array_map = map_mod.array_map
    SkilContext.array_zip = map_mod.array_zip
    SkilContext.array_fold = fold.array_fold
    SkilContext.array_scan = fold.array_scan
    SkilContext.array_broadcast_part = comm.array_broadcast_part
    SkilContext.array_permute_rows = comm.array_permute_rows
    SkilContext.array_rotate_rows = comm.array_rotate_rows
    SkilContext.array_gen_mult = genmult.array_gen_mult
    SkilContext.array_gen_mult_square = genmult.array_gen_mult_square
    SkilContext.array_map_overlap = extensions.array_map_overlap
    SkilContext.divide_and_conquer = dc.divide_and_conquer
    SkilContext.farm = farm.farm


_attach_api()

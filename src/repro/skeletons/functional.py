"""Functional plumbing for skeleton argument functions.

The paper parameterizes skeletons with *functions*: customizing argument
functions, operator sections like ``(+)``, and partial applications such
as ``copy_pivot(b, k)``.  This module is the Python-side equivalent:

* :func:`skil_fn` — annotate a scalar argument function with its
  abstract per-element operation count (for the cost model) and an
  optional numpy-vectorized kernel (what the Skil compiler's
  instantiation+optimisation achieves for generated code);
* :func:`section` — the ``(op)`` bracket conversion: turn a named
  operator into a curried function object;
* :func:`papply` — explicit partial application that preserves the
  cost annotations (Python's ``functools.partial`` drops attributes);
* ready-made operator sections (:data:`PLUS`, :data:`TIMES`,
  :data:`MIN`, :data:`MAX`) carrying their numpy reduction equivalents,
  used by ``array_fold`` and ``array_gen_mult``.
"""

from __future__ import annotations

import functools
import operator
from typing import Any, Callable

import numpy as np

from repro.errors import SkeletonError

__all__ = [
    "skil_fn",
    "section",
    "papply",
    "PLUS",
    "TIMES",
    "MIN",
    "MAX",
    "OPERATOR_SECTIONS",
]


def skil_fn(
    ops: float = 1.0,
    vectorized: Callable | None = None,
    commutative_associative: bool = False,
    fused: Callable | None = None,
):
    """Decorator annotating a skeleton argument function.

    Parameters
    ----------
    ops:
        Abstract scalar operations one application performs (charged as
        ``ops * elem_time`` by the cost model).
    vectorized:
        Optional numpy kernel.  For map-functions the signature is
        ``kernel(block, index_grids, env)`` returning the new block; for
        fold conversion functions ``kernel(block, index_grids, env)``
        returning the converted values.
    commutative_associative:
        Promise required of ``array_fold`` folding functions ("the user
        should provide an associative and commutative folding function,
        otherwise the result is non-deterministic").
    fused:
        Optional whole-array kernel ``kernel(pool(s), global_grids,
        fenv)`` evaluated once over the pooled buffer instead of per
        rank (:mod:`repro.skeletons.fuse`).  Must compute bit-identical
        values to the per-rank path; raise
        :class:`~repro.skeletons.fuse.FusionFallback` when its layout
        assumptions do not hold for the given arrays.
    """

    def deco(f):
        f.ops = float(ops)
        if vectorized is not None:
            f.vectorized = vectorized
        if fused is not None:
            f.fused = fused
        f.commutative_associative = commutative_associative
        return f

    return deco


#: sentinel distinguishing "partially applied" from "called with None"
_MISSING = object()


class Section:
    """A curried binary operator — the paper's ``(op)`` conversion.

    Calling with one argument partially applies (``(*)(2)`` multiplies
    by two); calling with two applies fully.  Carries numpy equivalents
    so skeletons can vectorize and reduce without Python-level loops.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Any, Any], Any],
        np_op: Callable | None = None,
        np_reduce: Callable | None = None,
        ops: float = 1.0,
        commutative_associative: bool = False,
    ):
        self.name = name
        self.fn = fn
        self.np_op = np_op
        self.np_reduce = np_reduce
        self.ops = float(ops)
        self.commutative_associative = commutative_associative

    def __call__(self, x, y=_MISSING):
        if y is _MISSING:
            return papply(self, x)
        return self.fn(x, y)

    def __repr__(self) -> str:
        return f"({self.name})"


def section(op: str) -> Section:
    """Look up the operator section for *op* (e.g. ``section('+')``)."""
    try:
        return OPERATOR_SECTIONS[op]
    except KeyError:
        raise SkeletonError(f"no operator section defined for {op!r}") from None


class _Papply:
    """Partial application preserving skeleton cost annotations."""

    def __init__(self, f: Callable, *args):
        self._f = f
        self._args = args
        self.ops = float(getattr(f, "ops", 1.0))
        self.commutative_associative = getattr(f, "commutative_associative", False)
        base_vec = getattr(f, "vectorized", None)
        if base_vec is not None:
            self.vectorized = lambda *rest: base_vec(*args, *rest)
            env_free = getattr(base_vec, "env_free", None)
            if env_free is not None:
                self.vectorized.env_free = env_free
        base_fused = getattr(f, "fused", None)
        if base_fused is not None:
            self.fused = lambda *rest: base_fused(*args, *rest)

    def __call__(self, *rest):
        return self._f(*self._args, *rest)

    def __repr__(self) -> str:
        inner = getattr(self._f, "__name__", repr(self._f))
        return f"{inner}({', '.join(map(repr, self._args))}, ...)"


def papply(f: Callable, *args) -> _Papply:
    """Partially apply *f* to leading arguments (annotation-preserving)."""
    return _Papply(f, *args)


PLUS = Section("+", operator.add, np_op=np.add, np_reduce=np.add.reduce,
               commutative_associative=True)
TIMES = Section("*", operator.mul, np_op=np.multiply,
                np_reduce=np.multiply.reduce, commutative_associative=True)
MIN = Section("min", min, np_op=np.minimum, np_reduce=np.minimum.reduce,
              commutative_associative=True)
MAX = Section("max", max, np_op=np.maximum, np_reduce=np.maximum.reduce,
              commutative_associative=True)
_MINUS = Section("-", operator.sub, np_op=np.subtract)
_DIV = Section("/", operator.truediv, np_op=np.divide)

OPERATOR_SECTIONS: dict[str, Section] = {
    "+": PLUS,
    "*": TIMES,
    "-": _MINUS,
    "/": _DIV,
    "min": MIN,
    "max": MAX,
}

"""The paper's algorithmic skeletons for distributed arrays.

Use through a :class:`~repro.skeletons.base.SkilContext`:

>>> from repro import Machine, SKIL, DISTR_TORUS2D
>>> from repro.skeletons import SkilContext, PLUS, skil_fn
>>> ctx = SkilContext(Machine(4), SKIL)
>>> init = skil_fn(ops=1)(lambda ix: ix[0] * 8 + ix[1])
>>> a = ctx.array_create(2, (8, 8), (0, 0), (-1, -1), init, DISTR_TORUS2D)
>>> int(ctx.array_fold(skil_fn(ops=0)(lambda v, ix: v), PLUS, a))
2016
"""

from repro.skeletons.base import MapEnv, SkilContext, ops_of
from repro.skeletons.dc import divide_and_conquer
from repro.skeletons.farm import farm
from repro.skeletons.functional import (
    MAX,
    MIN,
    OPERATOR_SECTIONS,
    PLUS,
    TIMES,
    Section,
    papply,
    section,
    skil_fn,
)
from repro.skeletons.genmult import semiring_block_product

__all__ = [
    "SkilContext",
    "MapEnv",
    "ops_of",
    "divide_and_conquer",
    "farm",
    "skil_fn",
    "section",
    "papply",
    "Section",
    "PLUS",
    "TIMES",
    "MIN",
    "MAX",
    "OPERATOR_SECTIONS",
    "semiring_block_product",
]

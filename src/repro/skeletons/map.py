"""``array_map`` (and the ``array_zip`` extension).

.. code-block:: c

   void array_map ($t2 map_f ($t1, Index), array<$t1> from, array<$t2> to);

The result is *placed* into an existing array instead of returned, "since
in the second case a temporary data structure would have to be created"
— an efficiency trick the paper points out is impossible in functional
hosts.  We reproduce that asymmetry in the cost model: under a profile
with ``copy_on_update`` (DPFL) every map additionally pays for the
temporary allocation and copy-back.

``from`` and ``to`` may be the same array (in-situ replacement) but must
share shape and distribution.  The map function sees the element and its
global ``Index``; the order of application is unspecified, so functions
must not rely on other elements being already updated (the paper's
Gaussian elimination uses two arrays for exactly this reason).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arrays.darray import DistArray
from repro.errors import SkeletonError
from repro.skeletons import fuse
from repro.skeletons.base import MapEnv, ops_of, skeleton_span

__all__ = ["array_map", "array_zip"]


def _apply_block(ctx, f, src_arr: DistArray, rank: int, blocks=None):
    """Compute the mapped values of one partition (no clock charging)."""
    b = src_arr.part_bounds(rank)
    vec = getattr(f, "vectorized", None)
    src = src_arr.local(rank) if blocks is None else blocks[rank]
    if vec is not None:
        env = MapEnv(ctx, rank, b)
        out = vec(src, src_arr.index_grids(rank), env)
        return np.broadcast_to(np.asarray(out), src.shape)
    out = np.empty(src.shape, dtype=object)
    for local_ix, gix in src_arr.iter_local_indices(rank):
        out[local_ix] = f(src[local_ix], gix)
    return out


def apply_fused(ctx, f, pools: tuple, shape, dist) -> np.ndarray | None:
    """Evaluate *f* once over the whole pooled buffer(s), or ``None``.

    *pools* are the input pool(s) the kernel consumes (one for map/fold
    conversion, two for zip; empty for create).  Raises nothing: every
    reason not to fuse — no kernel, unpooled array, env-reading kernel —
    yields ``None``, and the caller runs the per-rank loop.
    """
    if not ctx.fused or any(p is None for p in pools):
        return None
    fused_k = getattr(f, "fused", None)
    vec = getattr(f, "vectorized", None)
    grids = dist.global_index_grids()
    fenv = fuse.FusedEnv(ctx.p)
    if fused_k is not None:
        # explicit whole-array kernel; its own guards (e.g. a partner
        # array that is not pooled) raise FusionFallback
        try:
            out = fused_k(*pools, grids, fenv)
        except fuse.FusionFallback:
            return None
        return np.broadcast_to(np.asarray(out), shape)
    if vec is None:
        return None
    ok = fuse.kernel_fusability(vec)
    if ok is False:
        return None
    try:
        out = vec(*pools, grids, fenv)
    except fuse.FusionFallback:
        if ok is None:
            fuse.remember_fusability(vec, False)
        return None
    if ok is None:
        fuse.remember_fusability(vec, True)
    return np.broadcast_to(np.asarray(out), shape)


def write_pool(to_arr: DistArray, out: np.ndarray) -> None:
    """Write a fused result into the target pool (with dtype conversion,
    matching the per-rank write-back)."""
    pool = to_arr.pool
    if out is not pool and np.may_share_memory(out, pool):
        # e.g. an identity kernel returning a view of the target pool;
        # materialise before the overlapping assignment
        out = np.array(out, dtype=to_arr.dtype)
    pool[...] = out


def _map_cost_vector(ctx, from_arr: DistArray, to_arr: DistArray, t_elem: float):
    """The per-rank cost vector of a map-shaped skeleton — shared by the
    fused and per-rank paths so simulated seconds are bit-identical.

    ``nbytes`` of the converted partition is ``b.size * itemsize`` exactly
    (the per-rank path reads it off the materialised block).  Vectorized
    over ranks with the same elementwise IEEE ops as the scalar formula,
    so the charged vector is bit-identical.
    """
    sizes = from_arr.dist.part_sizes()
    per_rank = sizes * t_elem
    if ctx.profile.copy_on_update:
        # functional host: build a fresh array, then (conceptually)
        # replace the old one — charge allocation+copy traffic
        per_rank = per_rank + (
            sizes * to_arr.dtype.itemsize
        ) * ctx.machine.cost.t_mem
    return per_rank


def dispatch_blocks(ctx, f, srcs: tuple, to_arr: DistArray) -> bool:
    """Per-rank parallel execution on a real backend (threads/mp).

    ``srcs`` are the input array(s); each rank's task is the same
    ``vec(block(s), grids, env)`` call the sequential loop makes, with a
    :class:`~repro.skeletons.fuse.FusedEnv` standing in for the per-rank
    env (only known env-free kernels are dispatched, so the env is never
    read).  Writes the target and returns ``True``, or returns ``False``
    when the work stayed sequential.  No clocks are touched here — the
    caller charges the same cost vector as the sequential paths.
    """
    vec = getattr(f, "vectorized", None)
    lead = srcs[0]
    fenv = fuse.FusedEnv(ctx.p)
    tasks = [
        tuple(s.local(r) for s in srcs) + (lead.index_grids(r), fenv)
        for r in range(ctx.p)
    ]
    outs = fuse.dispatch_blocks(ctx, vec, tasks)
    if outs is None:
        return False
    results = [
        np.asarray(
            np.broadcast_to(np.asarray(out), lead.local(r).shape),
            dtype=to_arr.dtype,
        )
        for r, out in enumerate(outs)
    ]
    # deferred write-back, exactly like the sequential per-rank loop
    for r in range(ctx.p):
        to_arr.local(r)[...] = results[r]
    return True


@skeleton_span("array_map")
def array_map(ctx, map_f: Callable, from_arr: DistArray, to_arr: DistArray) -> None:
    """Apply *map_f* to every element of *from_arr*, writing *to_arr*."""
    ctx.check_same_shape("array_map", from_arr, to_arr)

    t_elem = ctx.elem_time(ops_of(map_f))
    if dispatch_blocks(ctx, map_f, (from_arr,), to_arr):
        ctx.net.compute(_map_cost_vector(ctx, from_arr, to_arr, t_elem))
        return
    out = apply_fused(ctx, map_f, (from_arr.pool,), from_arr.shape, from_arr.dist)
    if out is not None:
        per_rank = _map_cost_vector(ctx, from_arr, to_arr, t_elem)
        write_pool(to_arr, out)
        ctx.net.compute(per_rank)
        return

    per_rank = np.zeros(ctx.p)
    t_mem = ctx.machine.cost.t_mem
    results = []
    for r in range(ctx.p):
        ctx.current_rank = r
        vals = _apply_block(ctx, map_f, from_arr, r)
        results.append(np.asarray(vals, dtype=to_arr.dtype))
        b = from_arr.part_bounds(r)
        cost = b.size * t_elem
        if ctx.profile.copy_on_update:
            # functional host: build a fresh array, then (conceptually)
            # replace the old one — charge allocation+copy traffic
            cost += results[-1].nbytes * t_mem
        per_rank[r] = cost
    ctx.current_rank = None
    # write-back after all partitions are computed so that in-situ maps
    # cannot observe partially updated data even across partitions
    for r in range(ctx.p):
        to_arr.local(r)[...] = results[r]
    ctx.net.compute(per_rank)


@skeleton_span("array_zip")
def array_zip(
    ctx,
    zip_f: Callable,
    a: DistArray,
    b: DistArray,
    to_arr: DistArray,
) -> None:
    """Extension skeleton: elementwise combination of two arrays.

    ``to[i] = zip_f(a[i], b[i], i)``; *to_arr* may alias either input.
    A vectorized kernel has signature ``kernel(block_a, block_b,
    index_grids, env)``.
    """
    ctx.check_same_shape("array_zip", a, b)
    ctx.check_same_shape("array_zip", a, to_arr)

    t_elem = ctx.elem_time(ops_of(zip_f))
    if dispatch_blocks(ctx, zip_f, (a, b), to_arr):
        ctx.net.compute(_map_cost_vector(ctx, a, to_arr, t_elem))
        return
    out = apply_fused(ctx, zip_f, (a.pool, b.pool), a.shape, a.dist)
    if out is not None:
        per_rank = _map_cost_vector(ctx, a, to_arr, t_elem)
        write_pool(to_arr, out)
        ctx.net.compute(per_rank)
        return

    t_mem = ctx.machine.cost.t_mem
    per_rank = np.zeros(ctx.p)
    results = []
    vec = getattr(zip_f, "vectorized", None)
    for r in range(ctx.p):
        ctx.current_rank = r
        bounds = a.part_bounds(r)
        if vec is not None:
            env = MapEnv(ctx, r, bounds)
            vals = vec(a.local(r), b.local(r), a.index_grids(r), env)
            vals = np.broadcast_to(np.asarray(vals), a.local(r).shape)
        else:
            ba, bb = a.local(r), b.local(r)
            vals = np.empty(ba.shape, dtype=object)
            for local_ix, gix in a.iter_local_indices(r):
                vals[local_ix] = zip_f(ba[local_ix], bb[local_ix], gix)
        results.append(np.asarray(vals, dtype=to_arr.dtype))
        cost = bounds.size * t_elem
        if ctx.profile.copy_on_update:
            cost += results[-1].nbytes * t_mem
        per_rank[r] = cost
    ctx.current_rank = None
    for r in range(ctx.p):
        to_arr.local(r)[...] = results[r]
    ctx.net.compute(per_rank)

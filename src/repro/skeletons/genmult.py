"""``array_gen_mult`` — generic matrix multiplication (Gentleman).

.. code-block:: c

   void array_gen_mult (array<$t> a, array<$t> b,
                        $t gen_add ($t, $t), $t gen_mult ($t, $t),
                        array<$t> c);

For each element of the result matrix the skeleton computes the "dot
product" of the corresponding row of *a* and column of *b*, with scalar
multiplication replaced by *gen_mult* and scalar addition by *gen_add* —
the classical multiplication with ``(+), (*)``, shortest paths with
``min, (+)`` (Section 4.1).

The implementation is "Gentleman's distributed matrix multiplication
algorithm, in which local partition multiplications alternate with
partition rotations among the processors; these rotations are done
horizontally for the first matrix and vertically for the second one,
while the mapping of the result matrix remains unchanged."  Concretely
(Cannon/Gentleman on a ``g x g`` torus):

1. skew: the *a*-partition of grid position ``(i, j)`` is replaced by the
   one from ``(i, (j + i) mod g)``, the *b*-partition by the one from
   ``((i + j) mod g, j)``;
2. ``g`` rounds of: local generic block multiply accumulated into *c*,
   then rotate *a* one step west and *b* one step north (skipped after
   the last round);
3. unskew, so the argument arrays are observably unchanged (the paper's
   shortest-paths program reuses ``a`` right after the call).

Because the skeleton cannot know the neutral element of *gen_add*, the
**initial contents of c seed the accumulation** — this is why the
shortest-paths program creates ``c`` filled with "infinity" (the neutral
element of ``min``) and the classical use case fills it with zero.

The matrices must be distinct ("calls of the form array_gen_mult(a, a,
...) and array_gen_mult(a, ..., a) are not allowed") and distributed on
a square torus grid with equal square partitions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arrays.darray import DistArray
from repro.errors import SkeletonError
from repro.machine.topology import Torus2D
from repro.skeletons.base import ops_of, skeleton_span

__all__ = ["array_gen_mult", "semiring_block_product"]

#: cap on the temporary ``(m, k_chunk, n)`` tensor built by the generic
#: vectorized path, in elements
_CHUNK_ELEMS = 1 << 21


def semiring_block_product(gen_add, gen_mult, A: np.ndarray, B: np.ndarray,
                           acc: np.ndarray) -> np.ndarray:
    """Accumulate the generic product of two local blocks into *acc*.

    Uses ``A @ B`` for the classical ``(+), (*)`` case, a chunked
    broadcast-reduce when both operators carry numpy kernels, and a
    Python triple loop otherwise (tiny test problems only).
    """
    add_np = getattr(gen_add, "np_op", None)
    add_reduce = getattr(gen_add, "np_reduce", None)
    mul_np = getattr(gen_mult, "np_op", None)

    if add_np is np.add and mul_np is np.multiply and A.dtype.kind in "fiu":
        return add_np(acc, A @ B)

    if add_np is not None and add_reduce is not None and mul_np is not None:
        m, k = A.shape
        n = B.shape[1]
        chunk = max(1, _CHUNK_ELEMS // max(1, m * n))
        out = acc
        for k0 in range(0, k, chunk):
            part = mul_np(A[:, k0 : k0 + chunk, None], B[None, k0 : k0 + chunk, :])
            out = add_np(out, add_reduce(part, axis=1))
        return out

    m, k = A.shape
    n = B.shape[1]
    out = acc.copy()
    for i in range(m):
        for j in range(n):
            v = out[i, j]
            for kk in range(k):
                v = gen_add(v, gen_mult(A[i, kk], B[kk, j]))
            out[i, j] = v
    return out


def _require_square_torus(ctx, arr: DistArray, name: str) -> Torus2D:
    topo = ctx.machine.topology(arr.distr)
    if not isinstance(topo, Torus2D):
        raise SkeletonError(
            f"{name}: arrays must be distributed onto DISTR_TORUS2D "
            f"(got {arr.distr})"
        )
    if topo.grid_rows != topo.grid_cols:
        raise SkeletonError(
            f"{name}: Gentleman's algorithm needs a square processor grid, "
            f"got {topo.grid_rows}x{topo.grid_cols}"
        )
    return topo


@skeleton_span("array_gen_mult")
def array_gen_mult(
    ctx,
    a: DistArray,
    b: DistArray,
    gen_add: Callable,
    gen_mult: Callable,
    c: DistArray,
) -> None:
    """Compose *a* and *b* with the matrix-multiplication pattern into *c*."""
    ctx.check_distinct("array_gen_mult", a, b, c)
    for arr in (a, b, c):
        if arr.dim != 2:
            raise SkeletonError("array_gen_mult applies only to 2-dimensional arrays")
    if a.shape[1] != b.shape[0] or c.shape != (a.shape[0], b.shape[1]):
        raise SkeletonError(
            f"array_gen_mult: incompatible shapes {a.shape} x {b.shape} -> {c.shape}"
        )
    topo = _require_square_torus(ctx, a, "array_gen_mult")
    g = topo.grid_rows
    if a.dist.grid != (g, g) or b.dist.grid != (g, g) or c.dist.grid != (g, g):
        raise SkeletonError("array_gen_mult: arrays must live on the torus grid")
    shapes = {a.local(r).shape for r in range(ctx.p)}
    shapes |= {b.local(r).shape for r in range(ctx.p)}
    if len(shapes) != 1:
        raise SkeletonError(
            "array_gen_mult: partitions must be equally sized (pad the matrix "
            "up to a multiple of the grid, as the paper does)"
        )

    # working copies: the real machine rotates partitions in place and
    # re-aligns afterwards; we keep a/b untouched and charge the
    # alignment communication explicitly below
    ablk = [a.local(r).copy() for r in range(ctx.p)]
    bblk = [b.local(r).copy() for r in range(ctx.p)]
    accum = [c.local(r).astype(c.dtype, copy=True) for r in range(ctx.p)]

    nbytes_a = ctx.wire_bytes(ablk[0].nbytes)
    nbytes_b = ctx.wire_bytes(bblk[0].nbytes)
    sync = ctx.sync()

    def skew_pairs(kind: str, direction: int) -> list[tuple[int, int]]:
        """(src, dst) logical pairs moving blocks by their skew distance."""
        pairs = []
        for r in range(ctx.p):
            i, j = topo.grid_coords(r)
            if kind == "a":
                dst = topo.grid_rank(i, j - direction * i)
            else:
                dst = topo.grid_rank(i - direction * j, j)
            if dst != r:
                pairs.append((r, dst))
        return pairs

    def apply_block_perm(blocks: list[np.ndarray], pairs: list[tuple[int, int]]):
        moved = {d: blocks[s] for s, d in pairs}
        for d, blk in moved.items():
            blocks[d] = blk

    # -- 1. skew ---------------------------------------------------------
    with ctx.phase("genmult:skew"):
        pa = skew_pairs("a", +1)
        pb = skew_pairs("b", +1)
        if pa:
            ctx.net.shift(pa, nbytes_a, topo, sync=sync, tag="genmult-skew-a")
            apply_block_perm(ablk, pa)
        if pb:
            ctx.net.shift(pb, nbytes_b, topo, sync=sync, tag="genmult-skew-b")
            apply_block_perm(bblk, pb)

    # -- 2. multiply / rotate rounds --------------------------------------
    m_loc, k_loc = ablk[0].shape
    n_loc = bblk[0].shape[1]
    t_round = (
        m_loc
        * n_loc
        * k_loc
        * (ctx.elem_time(ops_of(gen_mult)) + ctx.elem_time(ops_of(gen_add)))
    )
    west_pairs = [(r, topo.west(r)) for r in range(ctx.p) if topo.west(r) != r]
    north_pairs = [(r, topo.north(r)) for r in range(ctx.p) if topo.north(r) != r]
    for step in range(g):
        with ctx.phase("genmult:multiply"):
            for r in range(ctx.p):
                ctx.current_rank = r
                accum[r] = semiring_block_product(
                    gen_add, gen_mult, ablk[r], bblk[r], accum[r]
                )
            ctx.current_rank = None
            ctx.net.compute(t_round)
        if step < g - 1:
            with ctx.phase("genmult:rotate"):
                ctx.net.shift(
                    west_pairs, nbytes_a, topo, sync=sync, tag="genmult-rot-a"
                )
                apply_block_perm(ablk, west_pairs)
                ctx.net.shift(
                    north_pairs, nbytes_b, topo, sync=sync, tag="genmult-rot-b"
                )
                apply_block_perm(bblk, north_pairs)

    # -- 3. unskew (restore a and b on the real machine) ------------------
    # after the initial skew and g-1 unit rotations the blocks sit one
    # position past their skew origin; realignment is one permutation
    # shift per matrix, same cost class as the skew
    if g > 1:
        with ctx.phase("genmult:unskew"):
            ctx.net.shift(
                skew_pairs("a", -1), nbytes_a, topo, sync=sync, tag="genmult-unskew-a"
            )
            ctx.net.shift(
                skew_pairs("b", -1), nbytes_b, topo, sync=sync, tag="genmult-unskew-b"
            )

    for r in range(ctx.p):
        c.local(r)[...] = accum[r].astype(c.dtype, copy=False)

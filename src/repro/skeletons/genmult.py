"""``array_gen_mult`` — generic matrix multiplication (Gentleman).

.. code-block:: c

   void array_gen_mult (array<$t> a, array<$t> b,
                        $t gen_add ($t, $t), $t gen_mult ($t, $t),
                        array<$t> c);

For each element of the result matrix the skeleton computes the "dot
product" of the corresponding row of *a* and column of *b*, with scalar
multiplication replaced by *gen_mult* and scalar addition by *gen_add* —
the classical multiplication with ``(+), (*)``, shortest paths with
``min, (+)`` (Section 4.1).

The implementation is "Gentleman's distributed matrix multiplication
algorithm, in which local partition multiplications alternate with
partition rotations among the processors; these rotations are done
horizontally for the first matrix and vertically for the second one,
while the mapping of the result matrix remains unchanged."  Concretely
(Cannon/Gentleman on a ``g x g`` torus):

1. skew: the *a*-partition of grid position ``(i, j)`` is replaced by the
   one from ``(i, (j + i) mod g)``, the *b*-partition by the one from
   ``((i + j) mod g, j)``;
2. ``g`` rounds of: local generic block multiply accumulated into *c*,
   then rotate *a* one step west and *b* one step north (skipped after
   the last round);
3. unskew, so the argument arrays are observably unchanged (the paper's
   shortest-paths program reuses ``a`` right after the call).

Because the skeleton cannot know the neutral element of *gen_add*, the
**initial contents of c seed the accumulation** — this is why the
shortest-paths program creates ``c`` filled with "infinity" (the neutral
element of ``min``) and the classical use case fills it with zero.

The matrices must be distinct ("calls of the form array_gen_mult(a, a,
...) and array_gen_mult(a, ..., a) are not allowed") and distributed on
a square torus grid with equal square partitions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arrays.darray import DistArray
from repro.errors import SkeletonError
from repro.machine.topology import Torus2D
from repro.skeletons.base import ops_of, skeleton_span
from repro.skeletons.fuse import interleaved_view, stacked_blocks

__all__ = ["array_gen_mult", "array_gen_mult_square", "semiring_block_product"]

#: cap on the temporary ``(m, k_chunk, n)`` tensor built by the generic
#: vectorized path, in elements
_CHUNK_ELEMS = 1 << 21

#: cap on the batched ``(ranks, m, k_chunk, n)`` temporary of the fused
#: path; the k-chunking must stay identical to the per-rank path (it
#: decides reduction boundaries), so the fused path sub-batches over
#: ranks instead when the whole stack would not fit
_BATCH_ELEMS = 1 << 24


def semiring_block_product(gen_add, gen_mult, A: np.ndarray, B: np.ndarray,
                           acc: np.ndarray) -> np.ndarray:
    """Accumulate the generic product of two local blocks into *acc*.

    Uses ``A @ B`` for the classical ``(+), (*)`` case, a chunked
    broadcast-reduce when both operators carry numpy kernels, and a
    Python triple loop otherwise (tiny test problems only).
    """
    add_np = getattr(gen_add, "np_op", None)
    add_reduce = getattr(gen_add, "np_reduce", None)
    mul_np = getattr(gen_mult, "np_op", None)

    if add_np is np.add and mul_np is np.multiply and A.dtype.kind in "fiu":
        return add_np(acc, A @ B)

    if add_np is not None and add_reduce is not None and mul_np is not None:
        m, k = A.shape
        n = B.shape[1]
        chunk = max(1, _CHUNK_ELEMS // max(1, m * n))
        out = acc
        for k0 in range(0, k, chunk):
            part = mul_np(A[:, k0 : k0 + chunk, None], B[None, k0 : k0 + chunk, :])
            out = add_np(out, add_reduce(part, axis=1))
        return out

    m, k = A.shape
    n = B.shape[1]
    out = acc.copy()
    for i in range(m):
        for j in range(n):
            v = out[i, j]
            for kk in range(k):
                v = gen_add(v, gen_mult(A[i, kk], B[kk, j]))
            out[i, j] = v
    return out


def _can_batch_products(gen_add, gen_mult, dtype) -> bool:
    """Whether the stacked-block product path applies (numpy kernels)."""
    add_np = getattr(gen_add, "np_op", None)
    add_reduce = getattr(gen_add, "np_reduce", None)
    mul_np = getattr(gen_mult, "np_op", None)
    if add_np is np.add and mul_np is np.multiply and dtype.kind in "fiu":
        return True
    return add_np is not None and add_reduce is not None and mul_np is not None


def _semiring_block_product_batched(gen_add, gen_mult, SA, SB, SC):
    """All-ranks :func:`semiring_block_product` over stacked blocks.

    ``SA``/``SB``/``SC`` stack every rank's block along axis 0.  The
    result is bit-identical per block to the per-rank function: the
    classical case is the same per-slice gemm, and the generic case uses
    the *same k-chunk boundaries* (they decide the reduce partitioning),
    only sub-batching over ranks — elementwise multiplies and the
    per-output reductions over the same axis length are unaffected by
    how many ranks share a numpy call.
    """
    add_np = getattr(gen_add, "np_op", None)
    add_reduce = getattr(gen_add, "np_reduce", None)
    mul_np = getattr(gen_mult, "np_op", None)

    if add_np is np.add and mul_np is np.multiply and SA.dtype.kind in "fiu":
        return add_np(SC, SA @ SB)

    ranks, m, k = SA.shape
    n = SB.shape[2]

    if (
        add_np in (np.minimum, np.maximum)
        and isinstance(mul_np, np.ufunc)
        and k > 0
    ):
        # min/max reductions are sequential left folds (ufunc.reduce does
        # no pairwise regrouping for them), so an in-place fold over k in
        # index order reproduces the chunked reduce bit for bit — ties
        # between signed zeros and NaN propagation included — while the
        # (ranks, m, n) temporaries stay cache-resident instead of
        # materialising the (ranks, m, k, n) tensor
        SA_t = np.ascontiguousarray(SA.transpose(0, 2, 1))
        term = np.empty((ranks, m, n), dtype=np.result_type(SA, SB))
        mul_np(SA_t[:, 0, :, None], SB[:, 0, None, :], out=term)
        out = add_np(SC, term)
        for kk in range(1, k):
            mul_np(SA_t[:, kk, :, None], SB[:, kk, None, :], out=term)
            add_np(out, term, out=out)
        return out
    chunk = max(1, _CHUNK_ELEMS // max(1, m * n))  # same as per-rank
    per_rank_tmp = m * min(chunk, k) * n
    rank_chunk = max(1, _BATCH_ELEMS // max(1, per_rank_tmp))
    out = SC
    for k0 in range(0, k, chunk):
        pieces = []
        for r0 in range(0, ranks, rank_chunk):
            r1 = r0 + rank_chunk
            part = mul_np(
                SA[r0:r1, :, k0 : k0 + chunk, None],
                SB[r0:r1, None, k0 : k0 + chunk, :],
            )
            pieces.append(add_reduce(part, axis=2))
        red = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)
        out = add_np(out, red)
    return out


def _uniform_partition_shape(arr: DistArray) -> tuple[int, ...] | None:
    """Common partition shape of *arr*, ``None`` if partitions differ.

    Block distributions answer closed-form from their split points
    (O(grid) instead of an O(p) per-rank shape walk); anything else
    falls back to walking the local blocks.
    """
    probe = getattr(arr.dist, "uniform_block_shape", None)
    if probe is not None:
        return probe()
    shapes = {arr.local(r).shape for r in range(arr.dist.p)}
    return shapes.pop() if len(shapes) == 1 else None


def _require_square_torus(ctx, arr: DistArray, name: str) -> Torus2D:
    topo = ctx.machine.topology(arr.distr)
    if not isinstance(topo, Torus2D):
        raise SkeletonError(
            f"{name}: arrays must be distributed onto DISTR_TORUS2D "
            f"(got {arr.distr})"
        )
    if topo.grid_rows != topo.grid_cols:
        raise SkeletonError(
            f"{name}: Gentleman's algorithm needs a square processor grid, "
            f"got {topo.grid_rows}x{topo.grid_cols}"
        )
    return topo


@skeleton_span("array_gen_mult")
def array_gen_mult(
    ctx,
    a: DistArray,
    b: DistArray,
    gen_add: Callable,
    gen_mult: Callable,
    c: DistArray,
) -> None:
    """Compose *a* and *b* with the matrix-multiplication pattern into *c*."""
    ctx.check_distinct("array_gen_mult", a, b, c)
    _gen_mult_impl(ctx, a, b, gen_add, gen_mult, c)


@skeleton_span("array_gen_mult_square")
def array_gen_mult_square(
    ctx,
    a: DistArray,
    gen_add: Callable,
    gen_mult: Callable,
    c: DistArray,
) -> None:
    """Generic product of *a* with itself, accumulated into *c*.

    The paper forbids ``array_gen_mult(a, a, ...)`` because the real
    machine rotates the argument partitions in place; this entry point is
    the fusion pass's target for the ``array_copy(a, b);
    array_gen_mult(a, b, ...)`` idiom (shortest paths squares the
    adjacency matrix every iteration).  It is safe here because the
    implementation only ever reads private copies of the argument blocks,
    so ``b is a`` observes exactly the values the fresh copy would — the
    copy's round and the second matrix vanish from the schedule while the
    result stays bit-equal.
    """
    ctx.check_distinct("array_gen_mult_square", a, c)
    _gen_mult_impl(ctx, a, a, gen_add, gen_mult, c)


def _gen_mult_impl(
    ctx,
    a: DistArray,
    b: DistArray,
    gen_add: Callable,
    gen_mult: Callable,
    c: DistArray,
) -> None:
    for arr in (a, b, c):
        if arr.dim != 2:
            raise SkeletonError("array_gen_mult applies only to 2-dimensional arrays")
    if a.shape[1] != b.shape[0] or c.shape != (a.shape[0], b.shape[1]):
        raise SkeletonError(
            f"array_gen_mult: incompatible shapes {a.shape} x {b.shape} -> {c.shape}"
        )
    topo = _require_square_torus(ctx, a, "array_gen_mult")
    g = topo.grid_rows
    if a.dist.grid != (g, g) or b.dist.grid != (g, g) or c.dist.grid != (g, g):
        raise SkeletonError("array_gen_mult: arrays must live on the torus grid")
    ua = _uniform_partition_shape(a)
    ub = _uniform_partition_shape(b)
    if ua is None or ua != ub:
        raise SkeletonError(
            "array_gen_mult: partitions must be equally sized (pad the matrix "
            "up to a multiple of the grid, as the paper does)"
        )

    # fused fast path (see docs/PERFORMANCE.md): stack every rank's
    # block into contiguous (p, ·, ·) arrays, run the semiring products
    # batched, and realise rotations as np.roll on the (g, g, ·, ·)
    # views — same charging calls in the same order as the per-rank path
    fused = (
        ctx.fused
        and a.pool is not None
        and b.pool is not None
        and c.pool is not None
        and _can_batch_products(gen_add, gen_mult, a.pool.dtype)
    )
    grid = (g, g)
    if fused:
        # stacked copies of the blocks — the fused equivalent of the
        # per-rank working copies below
        sa = stacked_blocks(a.pool, grid)
        sb = stacked_blocks(b.pool, grid)
        sc = stacked_blocks(c.pool, grid)
        ablk = bblk = accum = None
        nbytes_a = ctx.wire_bytes(sa[0].nbytes)
        nbytes_b = ctx.wire_bytes(sb[0].nbytes)
    else:
        # working copies: the real machine rotates partitions in place and
        # re-aligns afterwards; we keep a/b untouched and charge the
        # alignment communication explicitly below
        ablk = [a.local(r).copy() for r in range(ctx.p)]
        bblk = [b.local(r).copy() for r in range(ctx.p)]
        accum = [c.local(r).astype(c.dtype, copy=True) for r in range(ctx.p)]
        nbytes_a = ctx.wire_bytes(ablk[0].nbytes)
        nbytes_b = ctx.wire_bytes(bblk[0].nbytes)
    sync = ctx.sync()

    ranks = np.arange(ctx.p, dtype=np.int64)
    row_of, col_of = np.divmod(ranks, g)

    def skew_pairs(kind: str, direction: int) -> tuple[np.ndarray, np.ndarray]:
        """(srcs, dsts) rank arrays moving blocks by their skew distance
        (vectorized ``grid_coords``/``grid_rank`` arithmetic, same rank
        order and self-pair filter as the scalar loop)."""
        if kind == "a":
            dst = row_of * g + (col_of - direction * row_of) % g
        else:
            dst = ((row_of - direction * col_of) % g) * g + col_of
        keep = dst != ranks
        return ranks[keep], dst[keep]

    def apply_block_perm(blocks: list[np.ndarray], pairs):
        srcs, dsts = pairs
        moved = {d: blocks[s] for s, d in zip(srcs.tolist(), dsts.tolist())}
        for d, blk in moved.items():
            blocks[d] = blk

    def perm_order(pairs) -> np.ndarray:
        """``order[d] = s`` gather indices equivalent to apply_block_perm."""
        srcs, dsts = pairs
        order = np.arange(ctx.p)
        order[dsts] = srcs
        return order

    # -- 1. skew ---------------------------------------------------------
    with ctx.phase("genmult:skew"):
        pa = skew_pairs("a", +1)
        pb = skew_pairs("b", +1)
        if pa[0].size:
            ctx.net.shift_batch(
                pa[0], pa[1], nbytes_a, topo, sync=sync, tag="genmult-skew-a"
            )
            if fused:
                sa = sa[perm_order(pa)]
            else:
                apply_block_perm(ablk, pa)
        if pb[0].size:
            ctx.net.shift_batch(
                pb[0], pb[1], nbytes_b, topo, sync=sync, tag="genmult-skew-b"
            )
            if fused:
                sb = sb[perm_order(pb)]
            else:
                apply_block_perm(bblk, pb)

    # -- 2. multiply / rotate rounds --------------------------------------
    if fused:
        m_loc, k_loc = sa.shape[1:]
        n_loc = sb.shape[2]
    else:
        m_loc, k_loc = ablk[0].shape
        n_loc = bblk[0].shape[1]
    t_round = (
        m_loc
        * n_loc
        * k_loc
        * (ctx.elem_time(ops_of(gen_mult)) + ctx.elem_time(ops_of(gen_add)))
    )
    west_dst = row_of * g + (col_of - 1) % g
    north_dst = ((row_of - 1) % g) * g + col_of
    west_pairs = (ranks[west_dst != ranks], west_dst[west_dst != ranks])
    north_pairs = (ranks[north_dst != ranks], north_dst[north_dst != ranks])
    for step in range(g):
        with ctx.phase("genmult:multiply"):
            if fused:
                sc = _semiring_block_product_batched(
                    gen_add, gen_mult, sa, sb, sc
                )
            else:
                for r in range(ctx.p):
                    ctx.current_rank = r
                    accum[r] = semiring_block_product(
                        gen_add, gen_mult, ablk[r], bblk[r], accum[r]
                    )
                ctx.current_rank = None
            ctx.net.compute(t_round)
        if step < g - 1:
            with ctx.phase("genmult:rotate"):
                ctx.net.shift_batch(
                    west_pairs[0], west_pairs[1], nbytes_a, topo, sync=sync,
                    tag="genmult-rot-a",
                )
                if fused:
                    # dst (i, j-1) takes the block of (i, j): one column roll
                    sag = sa.reshape(g, g, m_loc, k_loc)
                    sa = np.concatenate(
                        (sag[:, 1:], sag[:, :1]), axis=1
                    ).reshape(ctx.p, m_loc, k_loc)
                else:
                    apply_block_perm(ablk, west_pairs)
                ctx.net.shift_batch(
                    north_pairs[0], north_pairs[1], nbytes_b, topo, sync=sync,
                    tag="genmult-rot-b",
                )
                if fused:
                    # dst (i-1, j) takes the block of (i, j): one row roll
                    sbg = sb.reshape(g, g, k_loc, n_loc)
                    sb = np.concatenate(
                        (sbg[1:], sbg[:1]), axis=0
                    ).reshape(ctx.p, k_loc, n_loc)
                else:
                    apply_block_perm(bblk, north_pairs)

    # -- 3. unskew (restore a and b on the real machine) ------------------
    # after the initial skew and g-1 unit rotations the blocks sit one
    # position past their skew origin; realignment is one permutation
    # shift per matrix, same cost class as the skew
    if g > 1:
        with ctx.phase("genmult:unskew"):
            ua = skew_pairs("a", -1)
            ub = skew_pairs("b", -1)
            ctx.net.shift_batch(
                ua[0], ua[1], nbytes_a, topo, sync=sync, tag="genmult-unskew-a"
            )
            ctx.net.shift_batch(
                ub[0], ub[1], nbytes_b, topo, sync=sync, tag="genmult-unskew-b"
            )

    if fused:
        m_c, n_c = sc.shape[1:]
        c_view = interleaved_view(c.pool, grid)
        c_view[...] = sc.reshape(g, g, m_c, n_c).transpose(0, 2, 1, 3)
    else:
        for r in range(ctx.p):
            c.local(r)[...] = accum[r].astype(c.dtype, copy=False)

"""The task-parallel ``divide&conquer`` skeleton.

This is the skeleton the paper uses to *introduce* skeletons (Section 1):

.. code-block:: c

   $b d&c (int is_trivial ($a), $b solve ($a), list<$a> split ($a),
           $b join (list<$b>), $a problem);

The data-parallel array skeletons use the fast analytic clock layer;
``d&c`` is process-parallel with data-dependent control flow, so it runs
on the message-granularity engine (:mod:`repro.machine.engine`).

Parallelisation strategy (the classical one): the problem starts at
processor 0; at every level of a binary processor tree the current
*bundle* of sub-problems is split in half (by total size) and one half is
shipped to the other processor sub-group.  A bundle that has narrowed to
a single non-trivial problem is expanded with ``split`` before being
distributed further.  Groups of one processor solve their bundle
sequentially (ordinary recursive d&c, whose time is charged to their
clock); ``join`` recombines results in original split order on the way
back up.

Cost accounting: the user functions carry ``.ops`` annotations (see
:func:`repro.skeletons.functional.skil_fn`); each application is charged
``ops * elem_time * size_of(problem)``.  Message payload bytes default to
``16 * size_of(problem)``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SkeletonError
from repro.machine.engine import Compute, Engine, ISend, Recv
from repro.skeletons.base import ops_of, skeleton_span

__all__ = ["divide_and_conquer"]


@skeleton_span("divide_and_conquer")
def divide_and_conquer(
    ctx,
    is_trivial: Callable[[Any], bool],
    solve: Callable[[Any], Any],
    split: Callable[[Any], list],
    join: Callable[[list], Any],
    problem: Any,
    size_of: Callable[[Any], int] = len,
    nbytes_of: Callable[[Any], int] | None = None,
) -> Any:
    """Solve *problem* with the d&c pattern across all processors.

    Returns the solution (held by processor 0 on the real machine);
    simulated time is charged to the machine the context is bound to.
    """
    if nbytes_of is None:
        nbytes_of = lambda pb: 16 * max(1, size_of(pb))  # noqa: E731

    def cost(f: Callable, pb: Any) -> float:
        return ops_of(f) * ctx.elem_time() * max(1, size_of(pb))

    def solve_seq(pb: Any) -> tuple[Any, float]:
        """Sequential d&c of one problem: (result, abstract seconds)."""
        t = cost(is_trivial, pb)
        if is_trivial(pb):
            return solve(pb), t + cost(solve, pb)
        parts = split(pb)
        if not parts:
            raise SkeletonError("d&c: split returned no sub-problems")
        t += cost(split, pb)
        subs = []
        for part in parts:
            r, dt = solve_seq(part)
            subs.append(r)
            t += dt
        return join(subs), t + cost(join, pb)

    def halve(bundle: list) -> tuple[list, list]:
        """Order-preserving split of a bundle into two size-balanced halves."""
        if len(bundle) == 1:
            return bundle, []
        total = sum(max(1, size_of(p)) for p in bundle)
        acc = 0
        for i, p in enumerate(bundle):
            acc += max(1, size_of(p))
            if acc * 2 >= total and i + 1 < len(bundle):
                return bundle[: i + 1], bundle[i + 1 :]
        return bundle[:-1], bundle[-1:]

    results: dict[int, list] = {}

    def node(rank: int, lo: int, hi: int, bundle: list | None):
        """Run group [lo, hi); *bundle* is a list of problems at rank lo.

        Returns (at the group root) the list of results, one per problem.
        """
        tag = f"dc:{lo}:{hi}"
        if hi - lo == 1:
            if rank != lo or not bundle:
                return []
            out = []
            total = 0.0
            for pb in bundle:
                res, dt = solve_seq(pb)
                out.append(res)
                total += dt
            yield Compute(total)
            return out

        mid = (lo + hi) // 2
        if rank == lo:
            bundle = bundle or []
            wrap_join = False
            join_cost = 0.0
            if len(bundle) == 1:
                pb = bundle[0]
                yield Compute(cost(is_trivial, pb))
                if not is_trivial(pb):
                    bundle = split(pb)
                    if not bundle:
                        raise SkeletonError("d&c: split returned no sub-problems")
                    yield Compute(cost(split, pb))
                    wrap_join = True
                    join_cost = cost(join, pb)
            left, right = halve(bundle) if bundle else ([], [])
            yield ISend(
                mid,
                payload=right,
                nbytes=sum(nbytes_of(p) for p in right) or 8,
                tag=tag,
            )
            mine = yield from node(rank, lo, mid, left)
            theirs = yield Recv(mid, tag=tag + ":up")
            allres = list(mine) + list(theirs)
            if wrap_join:
                yield Compute(join_cost)
                return [join(allres)]
            return allres
        if rank == mid:
            sub = yield Recv(lo, tag=tag)
            res = yield from node(rank, mid, hi, sub)
            yield ISend(
                lo,
                payload=res,
                nbytes=64 * max(1, len(res)),
                tag=tag + ":up",
            )
            return []
        if rank < mid:
            return (yield from node(rank, lo, mid, None))
        return (yield from node(rank, mid, hi, None))

    def program(rank: int, p: int):
        res = yield from node(rank, 0, p, [problem] if rank == 0 else None)
        if rank == 0:
            results[0] = res

    eng = Engine(
        ctx.machine.cost,
        ctx.machine.topology(ctx.default_distr),
        stats=ctx.machine.stats,
        timeline=ctx.machine.obs_timeline,
        metrics=ctx.machine.metrics,
        t0=ctx.machine.time,
    )
    for r in range(ctx.p):
        eng.spawn(r, program(r, ctx.p))
    makespan = eng.run()
    # the engine ran relative to t=0; append its makespan to the clocks
    ctx.net.compute(makespan)

    out = results.get(0)
    if not out:
        raise SkeletonError("d&c: no result produced at processor 0")
    return out[0]

"""Fused whole-array skeleton execution.

The per-rank execution loop (``for r in range(ctx.p): vec(block_r, ...)``)
charges the right *simulated* seconds but costs ``p`` Python-level kernel
dispatches of wall-clock per skeleton call.  For block-distributed arrays
all partitions are views into one contiguous pool
(:attr:`repro.arrays.darray.DistArray.pool`), so an elementwise kernel
can run **once** over the whole buffer with global index grids — the
fused fast path.  Simulated seconds stay bit-identical because the
per-rank cost vector is computed from the same partition geometry with
the same arithmetic as the per-rank loop.

Which kernels may fuse
----------------------

A vectorized kernel ``vec(block, grids, env)`` is *fusable* when its
result per element does not depend on which rank evaluates it, i.e. it
never reads the per-rank :class:`~repro.skeletons.base.MapEnv`.  Three
sources of that knowledge:

* generated kernels (``lang/codegen.py``) carry ``env_free`` — the
  vectorizer knows statically whether the Skil source used ``procId``,
  ``array_part_bounds`` or ``array_get_elem``;
* hand-written kernels are probed: the fused path calls them with a
  :class:`FusedEnv` whose rank-specific attributes raise
  :class:`FusionFallback`, and the outcome is memoized on the kernel;
* rank-*dependent* kernels can still fuse by providing an explicit
  whole-array kernel via ``skil_fn(fused=...)`` (signature
  ``fused(pool, global_grids, fenv)``) — see the Gaussian-elimination
  kernels in :mod:`repro.apps.gauss`.

Everything else — strided distributions, scalar-only kernels, kernels
that read the env — falls back to the per-rank loop, whose results the
fused path reproduces bit-for-bit (enforced by ``tests/check`` and the
``repro.check`` pillars).
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

__all__ = [
    "FusionFallback",
    "FusedEnv",
    "fusion_default",
    "set_fusion_default",
    "program_fusion_default",
    "set_program_fusion_default",
    "kernel_fusability",
    "remember_fusability",
    "dispatch_blocks",
    "interleaved_view",
    "stacked_blocks",
]


class FusionFallback(Exception):
    """Raised when a kernel cannot run fused; callers fall back to the
    per-rank loop.  Also raised *by* FusedEnv when a probed kernel turns
    out to read rank-specific state."""


#: process-wide default for ``SkilContext(fused=...)``; the environment
#: variable lets ``REPRO_FUSED=0 python -m repro.eval ...`` A/B the paths
_FUSION_DEFAULT = os.environ.get("REPRO_FUSED", "1").lower() not in (
    "0", "false", "no", "off",
)


def fusion_default() -> bool:
    return _FUSION_DEFAULT


def set_fusion_default(enabled: bool) -> None:
    """Set the process-wide default consulted by new contexts (the bench
    harness toggles this between timed runs)."""
    global _FUSION_DEFAULT
    _FUSION_DEFAULT = bool(enabled)


#: process-wide default for *compiler-level* skeleton fusion
#: (``SkilContext(fusion=...)`` / ``compile_skil(fusion=...)``, see
#: :mod:`repro.lang.fusion`).  Unlike the wall-clock-only fused execution
#: path above, program fusion changes the *simulated* schedule (fewer
#: skeleton rounds, no intermediate arrays) while keeping values
#: bit-equal — it therefore defaults OFF so that baseline artefacts stay
#: reproducible; ``REPRO_FUSION=1`` (or ``--fusion``) opts in.
_PROGRAM_FUSION_DEFAULT = os.environ.get("REPRO_FUSION", "0").lower() in (
    "1", "true", "yes", "on",
)


def program_fusion_default() -> bool:
    return _PROGRAM_FUSION_DEFAULT


def set_program_fusion_default(enabled: bool) -> None:
    """Set the process-wide default for compiler-level skeleton fusion
    consulted by ``compile_skil`` and new contexts (``--fusion``)."""
    global _PROGRAM_FUSION_DEFAULT
    _PROGRAM_FUSION_DEFAULT = bool(enabled)


class FusedEnv:
    """The environment handed to kernels on the fused path.

    Unlike :class:`~repro.skeletons.base.MapEnv` there is no single rank:
    the kernel sees the whole array.  Accessing any rank-specific
    attribute raises :class:`FusionFallback`, which is what makes probing
    hand-written kernels safe — an env-reading kernel aborts before its
    result is used, and the caller re-runs it per rank.
    """

    __slots__ = ("p",)

    def __init__(self, p: int):
        self.p = p

    @property
    def rank(self):
        raise FusionFallback("kernel reads env.rank")

    @property
    def bounds(self):
        raise FusionFallback("kernel reads env.bounds")

    @property
    def ctx(self):
        raise FusionFallback("kernel reads env.ctx")


def kernel_fusability(vec: Callable) -> bool | None:
    """``True``/``False`` when known, ``None`` when the kernel must be
    probed.  Generated kernels carry ``env_free`` from the vectorizer;
    probe outcomes are memoized as ``_fused_ok``."""
    env_free = getattr(vec, "env_free", None)
    if env_free is not None:
        return bool(env_free)
    return getattr(vec, "_fused_ok", None)


def remember_fusability(vec: Callable, ok: bool) -> None:
    """Memoize a probe outcome on the kernel object (best effort — some
    callables reject attributes, then every call probes again).

    ``False`` only suppresses future *attempts*; ``True`` never forces
    fusion, because the fused caller still catches FusionFallback at run
    time — so a kernel whose env use is conditional stays correct either
    way.
    """
    try:
        vec._fused_ok = bool(ok)
    except (AttributeError, TypeError):
        pass


def dispatch_blocks(ctx, vec: Callable | None, tasks: list[tuple]) -> list | None:
    """Run *vec* over per-rank task tuples on the machine's real backend.

    ``tasks[r]`` is the argument tuple of rank *r* — exactly what the
    sequential per-rank loop would pass, except the env slot holds a
    :class:`FusedEnv` (parallel workers must not see a per-rank
    ``MapEnv``; this is the env_free audit).  Returns the raw kernel
    outputs in rank order, or ``None`` when the work stays sequential:

    * the backend is ``sim`` (``backend.parallel`` is false),
    * the kernel is not *known* env-free (``kernel_fusability`` is not
      ``True`` — unknown kernels get probed by the fused path first and
      dispatch from their next call on),
    * the kernel's env use turns out to be conditional and it raises
      :class:`FusionFallback` (locally or inside a worker).

    A :class:`~repro.errors.BackendError` from the mp closure-shipping
    path **propagates** — an unshippable kernel is an error the caller
    must hear about, never a silent fallback.

    Bit-identity: the backend returns results in task (= rank) order and
    every kernel call receives the same block, grids and element
    arithmetic as the sequential loop, so the values written back are
    the sequential values; simulated seconds are charged by the caller
    from partition geometry alone and never touch the backend.
    """
    backend = getattr(ctx.machine, "backend", None)
    if backend is None or not backend.parallel or vec is None:
        return None
    if kernel_fusability(vec) is not True:
        return None
    try:
        return backend.run_blocks(vec, tasks)
    except FusionFallback:
        return None


def interleaved_view(pool: np.ndarray, grid: tuple[int, ...]) -> np.ndarray | None:
    """Grid-interleaved reshape of a pooled global buffer.

    For a pool of global shape ``(n0, n1, ...)`` block-distributed over
    ``grid = (g0, g1, ...)``, returns the **view** of shape
    ``(g0, b0, g1, b1, ...)`` with ``b_d = n_d // g_d``, so that
    ``view[c0, :, c1, :]`` is exactly the partition of grid coordinate
    ``(c0, c1)``.  Returns ``None`` when any dimension does not divide
    evenly (unequal partitions — callers fall back to per-rank loops).
    """
    if pool.ndim != len(grid):
        return None
    inter: list[int] = []
    for n_d, g_d in zip(pool.shape, grid):
        if g_d <= 0 or n_d % g_d != 0:
            return None
        inter.extend((g_d, n_d // g_d))
    return pool.reshape(inter)


def stacked_blocks(pool: np.ndarray, grid: tuple[int, ...]) -> np.ndarray | None:
    """Contiguous ``(P, b0, b1, ...)`` **copy** of all partitions.

    Partition ``r`` (row-major rank over *grid*) lands at ``out[r]``,
    matching ``DistArray.local(r)`` element for element.  ``None`` when
    the partitions are unequal.
    """
    view = interleaved_view(pool, grid)
    if view is None:
        return None
    nd = len(grid)
    # (g0, b0, g1, b1, ...) -> (g0, g1, ..., b0, b1, ...)
    axes = tuple(range(0, 2 * nd, 2)) + tuple(range(1, 2 * nd, 2))
    blocks = view.transpose(axes)
    block_shape = tuple(n_d // g_d for n_d, g_d in zip(pool.shape, grid))
    p = int(np.prod(grid)) if grid else 1
    return np.ascontiguousarray(blocks).reshape((p, *block_shape))

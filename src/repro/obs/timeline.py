"""Per-rank activity timelines.

Both time layers fill the same structure: the analytic clock arithmetic
(:mod:`repro.machine.network`) records coarse intervals around each
collective operation, the discrete-event engine
(:mod:`repro.machine.engine`) records them at message granularity.  The
Chrome trace exporter turns each rank's intervals into one track.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Interval", "Timeline", "COMPUTE", "SEND", "RECV", "IDLE"]

COMPUTE = "compute"
SEND = "send"
RECV = "recv"
IDLE = "idle"


@dataclass(frozen=True, slots=True)
class Interval:
    """One contiguous activity of one rank, in simulated seconds."""

    rank: int
    kind: str  # compute | send | recv | idle
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Append-only list of per-rank intervals."""

    def __init__(self) -> None:
        self.intervals: list[Interval] = []

    def add(
        self, rank: int, kind: str, start: float, end: float, detail: str = ""
    ) -> None:
        """Record one interval; zero/negative-length intervals are dropped."""
        if end > start:
            self.intervals.append(Interval(rank, kind, start, end, detail))

    def for_rank(self, rank: int) -> list[Interval]:
        return [iv for iv in self.intervals if iv.rank == rank]

    def ranks(self) -> list[int]:
        return sorted({iv.rank for iv in self.intervals})

    def busy_seconds(self, rank: int) -> float:
        return sum(iv.duration for iv in self.for_rank(rank) if iv.kind != IDLE)

    # ------------------------------------------------------------ occupancy
    def span(self, rank: int) -> tuple[float, float] | None:
        """Earliest start and latest end of the rank's intervals (any
        kind), or ``None`` when the rank never appears."""
        ivs = self.for_rank(rank)
        if not ivs:
            return None
        return min(iv.start for iv in ivs), max(iv.end for iv in ivs)

    def busy_segments(self, rank: int) -> list[tuple[float, float]]:
        """Union of the rank's non-idle intervals as disjoint, sorted
        ``(start, end)`` segments.  Overlapping intervals (a rank that
        both sends and receives in one synchronous shift) are merged, so
        the segment lengths never double-count a simulated second the
        way :meth:`busy_seconds` can."""
        segs = sorted(
            (iv.start, iv.end) for iv in self.for_rank(rank) if iv.kind != IDLE
        )
        merged: list[tuple[float, float]] = []
        for a, b in segs:
            if merged and a <= merged[-1][1]:
                if b > merged[-1][1]:
                    merged[-1] = (merged[-1][0], b)
            else:
                merged.append((a, b))
        return merged

    def coverage(self, rank: int) -> float:
        """Total non-idle time of the rank, overlaps merged."""
        return sum(b - a for a, b in self.busy_segments(rank))

    def idle_gaps(self, rank: int) -> list[tuple[float, float]]:
        """Maximal idle segments within the rank's own span.

        A gap is any part of ``[span start, span end]`` not covered by a
        non-idle interval — explicit idle intervals and untracked holes
        alike.  By construction ``sum(gap lengths) + coverage(rank)``
        equals the span length; the empty timeline has no gaps.
        """
        sp = self.span(rank)
        if sp is None:
            return []
        lo, hi = sp
        gaps: list[tuple[float, float]] = []
        cur = lo
        for a, b in self.busy_segments(rank):
            if a > cur:
                gaps.append((cur, a))
            cur = max(cur, b)
        if hi > cur:
            gaps.append((cur, hi))
        return gaps

    def busy_fraction(self, rank: int, horizon: float | None = None) -> float:
        """Fraction of *horizon* the rank spent non-idle (overlaps
        merged).  *horizon* defaults to the rank's own span; pass the
        run's makespan to compare ranks on a common denominator.  Ranks
        with no activity (or a zero horizon) report 0.0.
        """
        if horizon is None:
            sp = self.span(rank)
            if sp is None:
                return 0.0
            horizon = sp[1] - sp[0]
        if horizon <= 0.0:
            return 0.0
        return self.coverage(rank) / horizon

    def clear(self) -> None:
        self.intervals.clear()

    def __len__(self) -> int:
        return len(self.intervals)

"""Per-rank activity timelines.

Both time layers fill the same structure: the analytic clock arithmetic
(:mod:`repro.machine.network`) records coarse intervals around each
collective operation, the discrete-event engine
(:mod:`repro.machine.engine`) records them at message granularity.  The
Chrome trace exporter turns each rank's intervals into one track.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Interval", "Timeline", "COMPUTE", "SEND", "RECV", "IDLE"]

COMPUTE = "compute"
SEND = "send"
RECV = "recv"
IDLE = "idle"


@dataclass(frozen=True)
class Interval:
    """One contiguous activity of one rank, in simulated seconds."""

    rank: int
    kind: str  # compute | send | recv | idle
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Append-only list of per-rank intervals."""

    def __init__(self) -> None:
        self.intervals: list[Interval] = []

    def add(
        self, rank: int, kind: str, start: float, end: float, detail: str = ""
    ) -> None:
        """Record one interval; zero/negative-length intervals are dropped."""
        if end > start:
            self.intervals.append(Interval(rank, kind, start, end, detail))

    def for_rank(self, rank: int) -> list[Interval]:
        return [iv for iv in self.intervals if iv.rank == rank]

    def ranks(self) -> list[int]:
        return sorted({iv.rank for iv in self.intervals})

    def busy_seconds(self, rank: int) -> float:
        return sum(iv.duration for iv in self.for_rank(rank) if iv.kind != IDLE)

    def clear(self) -> None:
        self.intervals.clear()

    def __len__(self) -> int:
        return len(self.intervals)

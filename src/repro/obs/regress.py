"""Noise-aware performance-regression gate: ``python -m repro.obs.regress``.

Compares two performance snapshots — either ``repro-bench/1`` files
(``BENCH_baseline.json`` / ``BENCH_perf.json`` from ``repro.eval
bench``) or ``repro-analyze/1`` files (``repro.eval analyze
--json-out``) — and exits nonzero when the newer one regressed.  The
gating rules respect what is deterministic and what is noisy:

* **simulated seconds are deterministic.**  The analytic clocks charge
  identical costs on every host, so any per-entry ``sim_seconds`` (or
  analyze ``makespan_s``) increase beyond a small float tolerance is a
  real slowdown of the modelled machine and is always gated — this is
  the check that catches a 10 % makespan regression dead.
* **wall-clock is noisy.**  Absolute wall times vary across hosts and
  runs far beyond any useful threshold (the committed baseline/perf
  pair differs by 2x on some microbenchmarks), so absolute wall times
  are *reported* but never gated by default.  What is gated is the
  fused/unfused **speedup ratio** — self-normalising against host speed
  — and only for entries where the baseline demonstrated a real win
  (speedup above a noise floor): those may not give back more than a
  configurable fraction of it.
* **booleans are contracts.**  ``sim_identical`` (fused and per-rank
  paths agree bit-for-bit) may never flip from true to false, and
  entries present in the baseline may not disappear.
* **new entries are additions, not failures.**  Entries present only in
  the *current* snapshot (e.g. freshly added ``scale`` micros, or a new
  section entirely) are reported informationally and never gate — a
  growing benchmark surface must not trip the regression gate.

Usage::

    python -m repro.obs.regress BENCH_baseline.json BENCH_perf.json
    python -m repro.obs.regress old_analyze.json new_analyze.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

__all__ = [
    "Regression",
    "compare_bench",
    "compare_analyze",
    "compare_snapshots",
    "snapshot_additions",
    "format_regressions",
    "format_additions",
    "main",
    "BENCH_DICT_SECTIONS",
    "BENCH_SECTIONS",
    "SIM_TOLERANCE",
    "SPEEDUP_GIVEBACK",
    "SPEEDUP_NOISE_FLOOR",
]

#: entry-list sections of a ``repro-bench/1`` snapshot, in report order
#: (``fusion`` entries carry no ``speedup`` key on purpose: their gates
#: — rounds ratio, value equality — live in the bench harness itself)
BENCH_SECTIONS = ("microbench", "end_to_end", "scale", "fusion")

#: single-dict sections reported by :func:`snapshot_additions` when new.
#: Never gated here: ``obs_overhead`` and ``profile_overhead`` carry
#: host-dependent wall-clock factors whose hard ceilings live in the
#: bench harness itself (``repro.eval.bench main``), not in the
#: cross-snapshot gate.
BENCH_DICT_SECTIONS = ("obs_overhead", "profile_overhead")

#: relative tolerance on deterministic simulated seconds
SIM_TOLERANCE = 0.02

#: a gated speedup may lose at most this fraction of the baseline win
SPEEDUP_GIVEBACK = 0.25

#: baseline speedups at or below this are treated as noise, not wins
SPEEDUP_NOISE_FLOOR = 1.05


@dataclass(frozen=True)
class Regression:
    """One gated quantity that got worse."""

    entry: str  # e.g. "microbench/map p=16"
    metric: str  # e.g. "sim_seconds"
    baseline: float
    current: float
    detail: str = ""

    def __str__(self) -> str:
        line = (
            f"{self.entry}: {self.metric} regressed "
            f"{self.baseline:g} -> {self.current:g}"
        )
        if self.detail:
            line += f" ({self.detail})"
        return line


def _entry_key(section: str, e: dict) -> str:
    key = f"{section}/{e.get('name', '?')}"
    if "p" in e:
        key += f" p={e['p']}"
    return key


def compare_bench(
    baseline: dict,
    current: dict,
    sim_tolerance: float = SIM_TOLERANCE,
    speedup_giveback: float = SPEEDUP_GIVEBACK,
) -> list[Regression]:
    """Gate a ``repro-bench/1`` pair; returns the regressions found."""
    out: list[Regression] = []
    for section in BENCH_SECTIONS:
        base_entries = {
            _entry_key(section, e): e for e in baseline.get(section, [])
        }
        cur_entries = {
            _entry_key(section, e): e for e in current.get(section, [])
        }
        for key, be in sorted(base_entries.items()):
            ce = cur_entries.get(key)
            if ce is None:
                out.append(
                    Regression(key, "coverage", 1.0, 0.0,
                               "entry present in baseline, missing now")
                )
                continue
            # deterministic simulated time: tight gate
            bs, cs = be.get("sim_seconds"), ce.get("sim_seconds")
            if bs and cs and cs > bs * (1.0 + sim_tolerance):
                out.append(
                    Regression(key, "sim_seconds", bs, cs,
                               f"deterministic; tolerance {sim_tolerance:.0%}")
                )
            # bit-equivalence contract
            if be.get("sim_identical") and not ce.get("sim_identical", True):
                out.append(
                    Regression(key, "sim_identical", 1.0, 0.0,
                               "fused/per-rank paths no longer bit-identical")
                )
            # wall-clock: gate only demonstrated speedups, as ratios
            bsp, csp = be.get("speedup"), ce.get("speedup")
            if (
                baseline.get("fusion_available", True)
                and current.get("fusion_available", True)
                and bsp is not None
                and csp is not None
                and bsp > SPEEDUP_NOISE_FLOOR
            ):
                floor = 1.0 + (bsp - 1.0) * (1.0 - speedup_giveback)
                if csp < floor:
                    out.append(
                        Regression(
                            key, "speedup", bsp, csp,
                            f"floor {floor:.3f} = keep "
                            f"{1 - speedup_giveback:.0%} of the win",
                        )
                    )
    return out


def compare_analyze(
    baseline: dict,
    current: dict,
    sim_tolerance: float = SIM_TOLERANCE,
) -> list[Regression]:
    """Gate a ``repro-analyze/1`` pair (same app/p assumed).

    Everything in an analyze snapshot is simulated, hence
    deterministic: the makespan and each attribution component get the
    tight tolerance.  Components that were ~zero in the baseline are
    gated against a floor of *sim_tolerance* x makespan instead of a
    ratio (a ratio over zero is meaningless).
    """
    out: list[Regression] = []
    label = f"analyze/{baseline.get('app', '?')} p={baseline.get('p', '?')}"
    bm, cm = baseline.get("makespan_s"), current.get("makespan_s")
    if bm and cm and cm > bm * (1.0 + sim_tolerance):
        out.append(
            Regression(label, "makespan_s", bm, cm,
                       f"deterministic; tolerance {sim_tolerance:.0%}")
        )
    bc = baseline.get("components", {})
    cc = current.get("components", {})
    for comp in sorted(set(bc) | set(cc)):
        b, c = bc.get(comp, 0.0), cc.get(comp, 0.0)
        floor = sim_tolerance * (bm or 0.0)
        if c > max(b * (1.0 + sim_tolerance), b + floor):
            out.append(
                Regression(label, f"components.{comp}", b, c,
                           "critical-path attribution grew")
            )
    return out


def snapshot_additions(baseline: dict, current: dict) -> list[str]:
    """Entry keys present only in the *current* snapshot.

    These are informational — a freshly added benchmark (say, the
    ``scale`` collective micros) has nothing in the baseline to regress
    against, so it must never gate.  Only meaningful for bench
    snapshots; analyze snapshots compare a fixed component set and
    return an empty list.
    """
    if not baseline.get("schema", "").startswith("repro-bench/"):
        return []
    out: list[str] = []
    for section in BENCH_SECTIONS:
        base_keys = {
            _entry_key(section, e) for e in baseline.get(section, [])
        }
        for e in current.get(section, []):
            key = _entry_key(section, e)
            if key not in base_keys:
                out.append(key)
    for section in BENCH_DICT_SECTIONS:
        ce = current.get(section)
        if isinstance(ce, dict) and not isinstance(
            baseline.get(section), dict
        ):
            out.append(_entry_key(section, ce))
    return sorted(out)


def compare_snapshots(baseline: dict, current: dict, **kw) -> list[Regression]:
    """Dispatch on the snapshots' ``schema`` field."""
    bschema = baseline.get("schema", "")
    cschema = current.get("schema", "")
    if bschema != cschema:
        return [
            Regression("schema", "schema", 0.0, 0.0,
                       f"cannot compare {bschema!r} with {cschema!r}")
        ]
    if bschema.startswith("repro-analyze/"):
        kw.pop("speedup_giveback", None)
        return compare_analyze(baseline, current, **kw)
    return compare_bench(baseline, current, **kw)


def format_regressions(regs: list[Regression]) -> str:
    if not regs:
        return "no regressions"
    lines = [f"{len(regs)} regression(s):"]
    lines += [f"  - {r}" for r in regs]
    return "\n".join(lines)


def format_additions(added: list[str]) -> str:
    """Informational report of entries new in the current snapshot."""
    if not added:
        return ""
    lines = [f"{len(added)} new entr{'y' if len(added) == 1 else 'ies'} "
             "(informational, not gated):"]
    lines += [f"  + {key}" for key in added]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="compare two performance snapshots; exit 1 on regression",
    )
    parser.add_argument("baseline", help="older snapshot (JSON)")
    parser.add_argument("current", help="newer snapshot (JSON)")
    parser.add_argument(
        "--sim-tolerance", type=float, default=SIM_TOLERANCE,
        help="relative tolerance on deterministic simulated seconds "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--speedup-giveback", type=float, default=SPEEDUP_GIVEBACK,
        help="fraction of a baseline speedup win that may be lost "
             "(default %(default)s)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.current, encoding="utf-8") as fh:
        current = json.load(fh)
    regs = compare_snapshots(
        baseline, current,
        sim_tolerance=args.sim_tolerance,
        speedup_giveback=args.speedup_giveback,
    )
    added = snapshot_additions(baseline, current)
    if added:
        print(format_additions(added))
    print(f"{args.baseline} -> {args.current}: {format_regressions(regs)}")
    return 1 if regs else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())

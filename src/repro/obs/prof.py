"""Wall-clock worker-plane profiler: ``Machine(p, profile=True)``.

Everything else in :mod:`repro.obs` measures *simulated* seconds — the
analytic cost model's clocks.  The real execution backends
(:mod:`repro.machine.backend`) additionally run kernels on actual cores,
and this module measures *that* plane: dispatch latency, in-worker
kernel wall time, ship-cache behaviour, shared-memory occupancy, result
mailbox depth and per-worker utilization.

Two invariants shape the design:

* **Zero cost when off.**  Every instrumented hot path checks one
  ``profiler is None`` and does nothing else; an unprofiled run
  executes exactly the historical code.
* **Never touch the cost model.**  The profiler owns its *own*
  :class:`~repro.obs.metrics.MetricsRegistry` (same class, same
  Prometheus exposition, separate instance) and only ever reads
  ``time.monotonic()`` — simulated clocks, :class:`TraceStats`, records
  and the machine's metrics stay bitwise identical with profiling on or
  off, across every backend (the extended ``backend`` pillar asserts
  this).

Clock: ``time.monotonic()`` is ``CLOCK_MONOTONIC``, which on Linux is
system-wide — stamps taken *inside worker processes* are directly
comparable to main-process stamps.  Residual cross-process skew is
guarded by clamping every derived duration at zero and by the
attribution-sum tolerance (:data:`ATTRIBUTION_TOL`).

Attribution partitions the **skeleton wall** (the summed wall time of
depth-0 skeleton invocations) into four components:

* ``ship``     — main-process kernel shipping + argument description
  (mp only; measured directly);
* ``dispatch`` — per-dispatch start lag: first in-worker block start
  minus the post timestamp (queue + wakeup latency);
* ``kernel``   — the union of in-worker busy intervals, clipped to each
  dispatch window (dispatches are sequential, so windows are disjoint);
* ``idle``     — the residual: main-process orchestration, cost
  charging, communication skeletons (which move data in the main
  process) and wait-side gaps.

With no dispatches at all (the ``sim`` backend inlines every kernel on
the main thread) the whole skeleton wall is the ``kernel`` component by
definition.  ``idle`` is clamped at zero, so the components can only
sum *above* the measured wall when stamps overlap or clocks skew —
exactly what ``attribution_ok`` (±2 %) catches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "WallProfiler",
    "DispatchRecord",
    "BlockStamp",
    "SkeletonWall",
    "PROFILE_SCHEMA",
    "ATTRIBUTION_TOL",
    "SECONDS_BUCKETS",
    "DEPTH_BUCKETS",
]

#: schema tag of :meth:`WallProfiler.snapshot` (and the ``eval profile``
#: JSON built on top of it)
PROFILE_SCHEMA = "repro-profile/1"

#: the attribution components may miss the measured skeleton wall by at
#: most this fraction (guards double counting and cross-process skew)
ATTRIBUTION_TOL = 0.02

#: power-of-two second buckets, ~1 µs .. ~128 s — wall durations
SECONDS_BUCKETS = tuple(2.0 ** k for k in range(-20, 8))

#: power-of-two depth buckets — mailbox queue depths
DEPTH_BUCKETS = tuple(float(1 << k) for k in range(11))


def kernel_name(kernel) -> str:
    """Display name of a dispatched kernel callable."""
    return getattr(kernel, "__name__", type(kernel).__name__)


@dataclass
class BlockStamp:
    """One per-block execution: enqueue (main side) and start/end
    (taken **inside** the worker, returned with the result)."""

    worker: int
    enqueue: float
    start: float
    end: float

    @property
    def kernel_s(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def latency_s(self) -> float:
        return max(0.0, self.start - self.enqueue)


@dataclass
class DispatchRecord:
    """One ``run_blocks`` call: a batch of per-rank kernel tasks."""

    backend: str
    kernel: str
    skeleton: str
    n_tasks: int
    t_begin: float
    t_post: float = 0.0
    t_done: float = 0.0
    ship_s: float = 0.0
    blocks: list[BlockStamp] = field(default_factory=list)
    ok: bool = True

    @property
    def window_s(self) -> float:
        return max(0.0, self.t_done - self.t_post)


@dataclass
class SkeletonWall:
    """Wall interval of one skeleton invocation (depth 0 = outermost)."""

    name: str
    depth: int
    t0: float
    t1: float

    @property
    def wall_s(self) -> float:
        return max(0.0, self.t1 - self.t0)


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    if not intervals:
        return 0.0
    total = 0.0
    cur_a = cur_b = None
    for a, b in sorted(intervals):
        if b <= a:
            continue
        if cur_b is None or a > cur_b:
            if cur_b is not None:
                total += cur_b - cur_a
            cur_a, cur_b = a, b
        elif b > cur_b:
            cur_b = b
    if cur_b is not None:
        total += cur_b - cur_a
    return total


class WallProfiler:
    """Collects wall-clock stamps and counters from the worker plane.

    Thread-safety: skeleton begin/end and dispatch begin/end happen on
    the main thread only; :meth:`block` and :meth:`worker_slot` may be
    called from executor threads (``list.append`` is atomic under the
    GIL, the slot map takes a lock).  Worker *processes* never hold a
    profiler — their stamps travel back inside result payloads.
    """

    def __init__(self, clock=time.monotonic):
        self.clock = clock
        #: the profiler's own registry — never the machine's, so the
        #: machine's metrics exposition stays bitwise identical with
        #: profiling on or off
        self.metrics = MetricsRegistry()
        self.skeleton_walls: list[SkeletonWall] = []
        self.dispatches: list[DispatchRecord] = []
        self._stack: list[tuple[str, float]] = []
        self._lock = threading.Lock()
        self._worker_slots: dict[int, int] = {}
        self.t_origin = clock()

    # ------------------------------------------------------------- skeletons
    def skeleton_begin(self, name: str) -> None:
        self._stack.append((name, self.clock()))

    def skeleton_end(self) -> None:
        if not self._stack:
            return
        name, t0 = self._stack.pop()
        t1 = self.clock()
        sw = SkeletonWall(name, len(self._stack), t0, t1)
        self.skeleton_walls.append(sw)
        self.metrics.observe(
            f"wall.skeleton_s.{name}", sw.wall_s, buckets=SECONDS_BUCKETS
        )

    def current_skeleton(self) -> str:
        return self._stack[-1][0] if self._stack else "<none>"

    # ------------------------------------------------------------ dispatches
    def dispatch_begin(
        self, backend: str, kernel: str, n_tasks: int, ship_s: float = 0.0
    ) -> DispatchRecord:
        return DispatchRecord(
            backend=backend,
            kernel=kernel,
            skeleton=self.current_skeleton(),
            n_tasks=n_tasks,
            t_begin=self.clock(),
            ship_s=max(0.0, ship_s),
        )

    def note_post(self, d: DispatchRecord) -> None:
        """Stamp the moment the batch is handed to the workers."""
        d.t_post = self.clock()

    def block(
        self, d: DispatchRecord, worker: int,
        enqueue: float, start: float, end: float,
    ) -> None:
        """Record one block execution (callable from executor threads)."""
        d.blocks.append(BlockStamp(worker, enqueue, start, end))

    def dispatch_end(self, d: DispatchRecord, ok: bool = True) -> None:
        d.t_done = self.clock()
        d.ok = ok
        self.dispatches.append(d)
        m = self.metrics
        m.inc("wall.dispatch.calls")
        m.inc("wall.dispatch.blocks", len(d.blocks))
        skel = d.skeleton
        for b in d.blocks:
            m.observe(
                f"wall.dispatch_latency_s.{skel}", b.latency_s,
                buckets=SECONDS_BUCKETS,
            )
            m.observe(
                f"wall.kernel_s.{skel}", b.kernel_s, buckets=SECONDS_BUCKETS
            )
        if d.ship_s:
            m.observe(
                f"wall.ship_s.{skel}", d.ship_s, buckets=SECONDS_BUCKETS
            )

    def worker_slot(self, ident: int) -> int:
        """Stable small worker index for a thread ident (threads backend)."""
        with self._lock:
            slot = self._worker_slots.get(ident)
            if slot is None:
                slot = self._worker_slots[ident] = len(self._worker_slots)
            return slot

    # ------------------------------------------------- counters and gauges
    def ship_cache_hit(self) -> None:
        self.metrics.inc("wall.ship.cache_hits")

    def ship_cache_miss(self, nbytes: int) -> None:
        self.metrics.inc("wall.ship.cache_misses")
        self.metrics.inc("wall.ship.serialized_bytes", nbytes)

    def worker_sends(self, n_workers: int, nbytes: int) -> None:
        """Kernel bytes actually crossing the process boundary."""
        self.metrics.inc("wall.ship.worker_sends", n_workers)
        self.metrics.inc("wall.ship.shipped_bytes", nbytes)

    def shm_alloc(self, nbytes: int) -> None:
        self.metrics.gauge("wall.shm.segments").inc()
        self.metrics.gauge("wall.shm.bytes_live").inc(nbytes)
        self.metrics.inc("wall.shm.allocated_bytes", nbytes)

    def shm_free(self, nbytes: int) -> None:
        self.metrics.gauge("wall.shm.segments").dec()
        self.metrics.gauge("wall.shm.bytes_live").dec(nbytes)

    def mailbox_depth(self, depth: int) -> None:
        """Result-mailbox depth sample (wired as the Mailbox probe)."""
        self.metrics.gauge("wall.mailbox.result_depth").set(depth)
        self.metrics.observe(
            "wall.mailbox.depth", float(depth), buckets=DEPTH_BUCKETS
        )

    # -------------------------------------------------------------- analysis
    def skeleton_wall_s(self) -> float:
        """Summed wall of depth-0 skeleton invocations (the measured
        wall that :meth:`attribution` decomposes)."""
        return sum(sw.wall_s for sw in self.skeleton_walls if sw.depth == 0)

    def per_skeleton_wall(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for sw in self.skeleton_walls:
            if sw.depth != 0:
                continue
            agg = out.setdefault(sw.name, {"calls": 0, "wall_s": 0.0})
            agg["calls"] += 1
            agg["wall_s"] += sw.wall_s
        return out

    def attribution(self) -> dict[str, float]:
        """Ship / dispatch / kernel / idle decomposition of the skeleton
        wall (see the module docstring for exact component semantics)."""
        measured = self.skeleton_wall_s()
        ship = sum(d.ship_s for d in self.dispatches)
        lag = 0.0
        kernel = 0.0
        for d in self.dispatches:
            if not d.blocks:
                continue
            first = min(b.start for b in d.blocks)
            lag += min(max(0.0, first - d.t_post), d.window_s)
            clipped = [
                (max(b.start, d.t_post), min(b.end, d.t_done))
                for b in d.blocks
            ]
            kernel += _union_length(clipped)
        if not self.dispatches:
            # sim backend: the main thread inlines every kernel — the
            # whole skeleton wall is kernel work by definition
            kernel = measured
        idle = max(0.0, measured - ship - lag - kernel)
        return {
            "measured_wall_s": measured,
            "ship_s": ship,
            "dispatch_s": lag,
            "kernel_s": kernel,
            "idle_s": idle,
        }

    def attribution_ok(self, attr: dict[str, float] | None = None) -> bool:
        """Whether the components sum to the measured wall within
        :data:`ATTRIBUTION_TOL` (idle is a clamped residual, so only
        over-attribution — overlap or clock skew — can break this)."""
        a = attr if attr is not None else self.attribution()
        total = a["ship_s"] + a["dispatch_s"] + a["kernel_s"] + a["idle_s"]
        measured = a["measured_wall_s"]
        return abs(total - measured) <= max(ATTRIBUTION_TOL * measured, 1e-9)

    def worker_stats(self) -> dict:
        """Per-worker busy seconds, utilization over the summed dispatch
        windows, and the max/mean busy imbalance factor."""
        busy: dict[int, float] = {}
        for d in self.dispatches:
            for b in d.blocks:
                busy[b.worker] = busy.get(b.worker, 0.0) + b.kernel_s
        window = sum(d.window_s for d in self.dispatches)
        workers = [
            {
                "worker": w,
                "busy_s": busy[w],
                "utilization": min(1.0, busy[w] / window) if window > 0 else 0.0,
            }
            for w in sorted(busy)
        ]
        imbalance = None
        if busy:
            mean = sum(busy.values()) / len(busy)
            if mean > 0:
                imbalance = max(busy.values()) / mean
        return {"workers": workers, "window_s": window, "imbalance": imbalance}

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """The versioned ``repro-profile/1`` JSON document."""
        attr = self.attribution()
        stats = self.worker_stats()
        return {
            "schema": PROFILE_SCHEMA,
            "clock": "monotonic",
            "attribution": {
                "ship_s": attr["ship_s"],
                "dispatch_s": attr["dispatch_s"],
                "kernel_s": attr["kernel_s"],
                "idle_s": attr["idle_s"],
            },
            "measured_wall_s": attr["measured_wall_s"],
            "attribution_sum_s": attr["ship_s"] + attr["dispatch_s"]
            + attr["kernel_s"] + attr["idle_s"],
            "attribution_ok": self.attribution_ok(attr),
            "skeletons": self.per_skeleton_wall(),
            "dispatch_calls": len(self.dispatches),
            "dispatch_blocks": sum(len(d.blocks) for d in self.dispatches),
            "workers": stats["workers"],
            "imbalance": stats["imbalance"],
            "metrics": self.metrics.snapshot(),
        }

    def render_text(self) -> str:
        """Prometheus exposition of the wall metrics (separate registry,
        so it never mixes into the machine's exposition)."""
        return self.metrics.render_text()

    def clear(self) -> None:
        """Drop every stamp and counter (``Machine.reset`` calls this)."""
        self.metrics.clear()
        self.skeleton_walls.clear()
        self.dispatches.clear()
        self._stack.clear()
        with self._lock:
            self._worker_slots.clear()
        self.t_origin = self.clock()

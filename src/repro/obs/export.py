"""Exporters: Chrome trace-event JSON and a flamegraph-style rollup.

The JSON follows the Trace Event Format (the ``traceEvents`` array of
complete ``"ph": "X"`` events plus ``"M"`` metadata records) and loads
directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Simulated seconds are exported as microseconds,
the unit the format expects.

Track layout: one process ("skil machine"), thread 0 carries the
skeleton spans (nested by stack discipline), threads ``1..p`` carry the
per-rank compute/send/recv/idle intervals, and threads ``1001..1000+p``
carry the derived **idle-wait** tracks — the maximal gaps of each rank
(explicit idle intervals and untracked holes merged, from
:meth:`~repro.obs.timeline.Timeline.idle_gaps`), the same quantity the
critical-path analysis attributes as ``idle``.

Every export path validates its own output
(:func:`validate_chrome_trace` inside :func:`write_chrome_trace`), so a
malformed trace fails at write time — in the CLI and in Engine-mode
(``divide_and_conquer``/``farm``) runs alike, not just under the tests.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.errors import SkilError
from repro.obs.span import Span, SpanTracer
from repro.obs.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.machine import Machine

__all__ = [
    "chrome_trace_events",
    "wall_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "flame_rollup",
]

_PID = 1
_SPAN_TID = 0
#: thread-id base for the derived per-rank idle-wait tracks
_IDLE_TID_BASE = 1000
#: dual-clock export: wall-clock tracks live in their own process row,
#: so Perfetto shows simulated and measured time side by side without
#: the two clock domains sharing an axis origin
_WALL_PID = 2


def _us(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace_events(
    tracer: SpanTracer | None = None,
    timeline: Timeline | None = None,
    label: str = "skil machine",
) -> list[dict[str, Any]]:
    """Build the ``traceEvents`` list from a tracer and/or a timeline."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": label},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": _SPAN_TID,
            "args": {"name": "skeleton spans"},
        },
    ]
    if tracer is not None:
        for s in tracer.spans:
            if not s.closed:
                continue
            events.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": s.category,
                    "pid": _PID,
                    "tid": _SPAN_TID,
                    "ts": _us(s.begin_time),
                    "dur": _us(s.duration),
                    "args": {
                        "compute_s": s.compute_seconds,
                        "comm_s": s.comm_seconds,
                        "idle_s": s.idle_seconds,
                        "messages": s.messages,
                        "bytes": s.bytes_sent,
                        "ranks": list(s.ranks),
                    },
                }
            )
    if timeline is not None:
        for r in timeline.ranks():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": r + 1,
                    "args": {"name": f"rank {r}"},
                }
            )
        for iv in timeline.intervals:
            events.append(
                {
                    "ph": "X",
                    "name": iv.detail or iv.kind,
                    "cat": iv.kind,
                    "pid": _PID,
                    "tid": iv.rank + 1,
                    "ts": _us(iv.start),
                    "dur": _us(iv.duration),
                    "args": {},
                }
            )
        # derived idle-wait tracks: one per rank, maximal gaps only
        for r in timeline.ranks():
            gaps = timeline.idle_gaps(r)
            if not gaps:
                continue
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": _IDLE_TID_BASE + r + 1,
                    "args": {"name": f"rank {r} idle-wait"},
                }
            )
            for a, b in gaps:
                events.append(
                    {
                        "ph": "X",
                        "name": "idle-wait",
                        "cat": "idle-wait",
                        "pid": _PID,
                        "tid": _IDLE_TID_BASE + r + 1,
                        "ts": _us(a),
                        "dur": _us(b - a),
                        "args": {"seconds": b - a},
                    }
                )
    return events


def wall_trace_events(
    profiler, label: str = "wall clock (worker plane)"
) -> list[dict[str, Any]]:
    """Wall-clock tracks from a :class:`~repro.obs.prof.WallProfiler`.

    Everything is shifted so the earliest recorded stamp is ``ts = 0``
    (monotonic origins are arbitrary; the validator requires
    non-negative timestamps).  Thread 0 carries the skeleton wall
    intervals; threads ``1..w`` carry the per-worker kernel blocks, one
    track per worker that executed anything.
    """
    stamps = [sw.t0 for sw in profiler.skeleton_walls]
    stamps += [d.t_begin for d in profiler.dispatches]
    if not stamps:
        return []
    origin = min(stamps)

    def ts(t: float) -> float:
        return _us(max(0.0, t - origin))

    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _WALL_PID,
            "tid": 0,
            "args": {"name": label},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _WALL_PID,
            "tid": _SPAN_TID,
            "args": {"name": "skeleton wall"},
        },
    ]
    for sw in profiler.skeleton_walls:
        events.append(
            {
                "ph": "X",
                "name": sw.name,
                "cat": "skeleton-wall",
                "pid": _WALL_PID,
                "tid": _SPAN_TID,
                "ts": ts(sw.t0),
                "dur": _us(sw.wall_s),
                "args": {"depth": sw.depth},
            }
        )
    workers_seen: set[int] = set()
    for d in profiler.dispatches:
        for b in d.blocks:
            if b.worker not in workers_seen:
                workers_seen.add(b.worker)
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": _WALL_PID,
                        "tid": b.worker + 1,
                        "args": {"name": f"worker {b.worker}"},
                    }
                )
            events.append(
                {
                    "ph": "X",
                    "name": f"{d.skeleton}:{d.kernel}",
                    "cat": "kernel-wall",
                    "pid": _WALL_PID,
                    "tid": b.worker + 1,
                    "ts": ts(b.start),
                    "dur": _us(b.kernel_s),
                    "args": {
                        "backend": d.backend,
                        "dispatch_latency_s": b.latency_s,
                    },
                }
            )
    return events


def write_chrome_trace(path, machine: "Machine") -> dict[str, Any]:
    """Write a machine's trace to *path*; returns the JSON object.

    Dual-clock: with a wall profiler attached
    (``Machine(profile=True)``), the wall-clock tracks are appended as a
    second process row alongside the simulated ones.
    """
    events = chrome_trace_events(machine.tracer, machine.timeline)
    profiler = getattr(machine, "profiler", None)
    if profiler is not None:
        events += wall_trace_events(profiler)
    obj = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "p": machine.p,
            "makespan_s": machine.time,
        },
    }
    problems = validate_chrome_trace(obj)
    if problems:
        raise SkilError(
            f"refusing to write an invalid Chrome trace to {path}: "
            + "; ".join(problems[:5])
        )
    with open(path, "w") as fh:
        json.dump(obj, fh)
    return obj


def validate_chrome_trace(obj: Any) -> list[str]:
    """Check *obj* against the trace-event schema; returns problems.

    An empty list means the trace is structurally valid: a
    ``traceEvents`` array whose entries carry ``ph``/``name``/``pid``/
    ``tid``, with numeric non-negative ``ts``/``dur`` on complete
    events.  Used by the tests and the CI smoke job.
    """
    problems: list[str] = []
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' array"]
    for i, ev in enumerate(obj["traceEvents"]):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("ph", "name", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph == "X":
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)):
                    problems.append(f"event {i}: {key!r} must be a number")
                elif v < 0:
                    problems.append(f"event {i}: {key!r} is negative")
        elif ph == "M":
            if not isinstance(ev.get("args"), dict):
                problems.append(f"event {i}: metadata without args")
        elif ph is not None:
            problems.append(f"event {i}: unsupported phase {ph!r}")
    return problems


def flame_rollup(
    tracer: SpanTracer,
    min_share: float = 0.0,
    timeline: Timeline | None = None,
) -> str:
    """Flamegraph-style plain-text rollup of the span tree.

    Spans are aggregated by their root-to-leaf name path; every line
    shows inclusive simulated busy seconds (compute+comm+idle summed
    over the participating processors), call count and the compute /
    comm / idle split.  Children are indented under their parents and
    sorted by busy time.  With a *timeline*, a per-rank idle-wait
    section follows — gap counts and totals from
    :meth:`~repro.obs.timeline.Timeline.idle_gaps`, worst rank first.
    """
    agg: dict[tuple[str, ...], dict[str, float]] = {}
    for s in tracer.closed_spans():
        key = tracer.path(s)
        a = agg.setdefault(
            key,
            {"calls": 0, "busy": 0.0, "compute": 0.0, "comm": 0.0, "idle": 0.0},
        )
        a["calls"] += 1
        a["busy"] += s.busy_total
        a["compute"] += s.compute_seconds
        a["comm"] += s.comm_seconds
        a["idle"] += s.idle_seconds

    total = sum(a["busy"] for p, a in agg.items() if len(p) == 1) or 1.0
    lines = [
        f"{'span':<44}{'busy [s]':>10}{'share':>7}{'calls':>7}"
        f"{'compute':>9}{'comm':>7}{'idle':>7}"
    ]

    def emit(prefix: tuple[str, ...]) -> None:
        children = sorted(
            (p for p in agg if len(p) == len(prefix) + 1 and p[: len(prefix)] == prefix),
            key=lambda p: -agg[p]["busy"],
        )
        for p in children:
            a = agg[p]
            share = a["busy"] / total
            if share < min_share:
                continue
            busy = a["busy"] or 1.0
            indent = "  " * (len(p) - 1)
            lines.append(
                f"{indent + p[-1]:<44}{a['busy']:>10.4f}{share:>7.1%}"
                f"{int(a['calls']):>7}"
                f"{a['compute'] / busy:>8.0%}{a['comm'] / busy:>7.0%}"
                f"{a['idle'] / busy:>7.0%}"
            )
            emit(p)

    emit(())

    if timeline is not None and timeline.ranks():
        rows = []
        for r in timeline.ranks():
            gaps = timeline.idle_gaps(r)
            rows.append((sum(b - a for a, b in gaps), len(gaps), r))
        rows.sort(reverse=True)
        lines.append("")
        lines.append(
            f"{'per-rank idle-wait':<44}{'idle [s]':>10}{'gaps':>7}"
            f"{'busy':>9}"
        )
        for idle, ngaps, r in rows:
            lines.append(
                f"{f'rank {r}':<44}{idle:>10.4f}{ngaps:>7}"
                f"{timeline.busy_fraction(r):>9.1%}"
            )
    return "\n".join(lines)

"""A small metrics registry: counters, gauges and histograms.

Modelled on the Prometheus client conventions but in-process and
allocation-light: instruments are created on first use and held by name
in a :class:`MetricsRegistry`.  The machine owns a registry when
``trace_level >= 1``; layers without a machine at hand (the compiler
front end) report into the process-wide :func:`global_metrics` registry.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_metrics",
    "POW2_BUCKETS",
]

#: power-of-two byte buckets, 1 B .. 16 MB — message sizes
POW2_BUCKETS = tuple(float(1 << k) for k in range(25))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (e.g. bytes currently allocated)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Bucketed distribution with sum/count/min/max.

    *buckets* are inclusive upper bounds; values above the last bound
    land in the implicit overflow bucket.
    """

    name: str
    buckets: tuple[float, ...] = POW2_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect.bisect_left(self.buckets, v)] += 1
        self.total += v
        self.count += 1
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def nonzero_buckets(self) -> list[tuple[str, int]]:
        """(upper-bound label, count) for buckets that saw any value."""
        out = []
        for i, c in enumerate(self.counts):
            if not c:
                continue
            label = f"<={self.buckets[i]:g}" if i < len(self.buckets) else (
                f">{self.buckets[-1]:g}"
            )
            out.append((label, c))
        return out


class MetricsRegistry:
    """Named instruments, created on demand."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ accessors
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, buckets: tuple[float, ...] = POW2_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets=buckets)
        return h

    # ------------------------------------------------------------ shortcuts
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] = POW2_BUCKETS
    ) -> None:
        self.histogram(name, buckets=buckets).observe(value)

    # ------------------------------------------------------------ output
    def snapshot(self) -> dict[str, dict]:
        """Plain-dict dump (stable key order) for JSON export and tests."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            out["counters"][name] = self._counters[name].value
        for name in sorted(self._gauges):
            out["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            out["histograms"][name] = {
                "count": h.count,
                "sum": h.total,
                "mean": h.mean,
                "min": h.min,
                "max": h.max,
                "buckets": dict(h.nonzero_buckets()),
            }
        return out

    def format(self) -> str:
        """Human-readable dump, one instrument per line."""
        lines: list[str] = []
        for name in sorted(self._counters):
            lines.append(f"{name:<40}{self._counters[name].value:>14g}")
        for name in sorted(self._gauges):
            lines.append(f"{name:<40}{self._gauges[name].value:>14g}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            lines.append(
                f"{name:<40}{h.count:>8} obs  mean={h.mean:g} "
                f"min={h.min if h.min is not None else '-'} "
                f"max={h.max if h.max is not None else '-'}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """Process-wide registry for layers with no machine in scope
    (the compiler front end); tests may :meth:`~MetricsRegistry.clear` it."""
    return _GLOBAL

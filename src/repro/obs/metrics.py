"""A small metrics registry: counters, gauges and histograms.

Modelled on the Prometheus client conventions but in-process and
allocation-light: instruments are created on first use and held by name
in a :class:`MetricsRegistry`.  The machine owns a registry when
``trace_level >= 1``; layers without a machine at hand (the compiler
front end) report into the process-wide :func:`global_metrics` registry.
"""

from __future__ import annotations

import bisect
import math
import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_metrics",
    "isolated_metrics",
    "POW2_BUCKETS",
]

#: power-of-two byte buckets, 1 B .. 16 MB — message sizes
POW2_BUCKETS = tuple(float(1 << k) for k in range(25))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (e.g. bytes currently allocated)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Bucketed distribution with sum/count/min/max.

    *buckets* are inclusive upper bounds; values above the last bound
    land in the implicit overflow bucket.
    """

    name: str
    buckets: tuple[float, ...] = POW2_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect.bisect_left(self.buckets, v)] += 1
        self.total += v
        self.count += 1
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    def observe_many(self, values) -> None:
        """Vectorized :meth:`observe` over a sequence of values.

        Bit-identical to observing the values one at a time in order:
        bucketing uses ``searchsorted`` (same semantics as
        ``bisect_left``), and the running ``total`` is folded with a
        seeded left-to-right ``np.add.accumulate`` so the float rounding
        matches the scalar ``+=`` loop exactly.  Min/max are order-free.
        """
        vals = np.asarray(values, dtype=np.float64)
        k = int(vals.size)
        if k == 0:
            return
        idx = np.searchsorted(np.asarray(self.buckets), vals, side="left")
        for i, c in zip(*np.unique(idx, return_counts=True)):
            self.counts[int(i)] += int(c)
        buf = np.empty(k + 1, dtype=np.float64)
        buf[0] = self.total
        buf[1:] = vals
        self.total = float(np.add.accumulate(buf)[-1])
        self.count += k
        lo = float(vals.min())
        hi = float(vals.max())
        self.min = lo if self.min is None else min(self.min, lo)
        self.max = hi if self.max is None else max(self.max, hi)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs.

        One pair per configured bound plus the terminal ``+Inf`` bucket;
        counts are running totals, so the last equals :attr:`count`.
        """
        out: list[tuple[float, int]] = []
        cum = 0
        for i, bound in enumerate(self.buckets):
            cum += self.counts[i]
            out.append((bound, cum))
        out.append((math.inf, cum + self.counts[len(self.buckets)]))
        return out

    def quantile(self, q: float) -> float:
        """Approximate *q*-quantile from the bucket counts.

        Linear interpolation inside the winning bucket (Prometheus
        ``histogram_quantile`` semantics), clamped to the observed
        min/max so q=0 and q=1 are exact.  Returns 0.0 with no
        observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0 or self.min is None or self.max is None:
            return 0.0
        target = q * self.count
        cum = 0
        lo = 0.0
        for i, bound in enumerate(self.buckets):
            c = self.counts[i]
            if cum + c >= target and c > 0:
                frac = (target - cum) / c
                lo_eff = max(lo, self.min)
                hi_eff = min(bound, self.max)
                if hi_eff < lo_eff:
                    hi_eff = lo_eff
                return min(max(lo_eff + frac * (hi_eff - lo_eff), self.min),
                           self.max)
            cum += c
            lo = bound
        return self.max

    def nonzero_buckets(self) -> list[tuple[str, int]]:
        """(upper-bound label, count) for buckets that saw any value."""
        out = []
        for i, c in enumerate(self.counts):
            if not c:
                continue
            label = f"<={self.buckets[i]:g}" if i < len(self.buckets) else (
                f">{self.buckets[-1]:g}"
            )
            out.append((label, c))
        return out


class MetricsRegistry:
    """Named instruments, created on demand."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ accessors
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, buckets: tuple[float, ...] = POW2_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets=buckets)
        return h

    # ------------------------------------------------------------ shortcuts
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] = POW2_BUCKETS
    ) -> None:
        self.histogram(name, buckets=buckets).observe(value)

    def observe_many(
        self, name: str, values, buckets: tuple[float, ...] = POW2_BUCKETS
    ) -> None:
        """Vectorized :meth:`observe`; see :meth:`Histogram.observe_many`."""
        self.histogram(name, buckets=buckets).observe_many(values)

    # ------------------------------------------------------------ output
    def snapshot(self) -> dict[str, dict]:
        """Plain-dict dump (stable key order) for JSON export and tests."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            out["counters"][name] = self._counters[name].value
        for name in sorted(self._gauges):
            out["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            out["histograms"][name] = {
                "count": h.count,
                "sum": h.total,
                "mean": h.mean,
                "min": h.min,
                "max": h.max,
                "buckets": dict(h.nonzero_buckets()),
            }
        return out

    def format(self) -> str:
        """Human-readable dump, one instrument per line."""
        lines: list[str] = []
        for name in sorted(self._counters):
            lines.append(f"{name:<40}{self._counters[name].value:>14g}")
        for name in sorted(self._gauges):
            lines.append(f"{name:<40}{self._gauges[name].value:>14g}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            lines.append(
                f"{name:<40}{h.count:>8} obs  mean={h.mean:g} "
                f"min={h.min if h.min is not None else '-'} "
                f"max={h.max if h.max is not None else '-'}"
            )
        return "\n".join(lines)

    def render_text(self, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry.

        Counters render as ``<name>_total``, histograms with cumulative
        ``_bucket{le="..."}`` series ending in ``+Inf`` plus ``_sum`` /
        ``_count``, and — as gauges, since the exposition format has no
        native quantile series for histograms — the requested
        approximate quantiles as ``<name>{quantile="..."}``.  Metric
        names are sanitised to the Prometheus charset; the output is
        sorted and ends with a newline, scrape-ready for a file-based
        textfile collector.
        """
        lines: list[str] = []
        for name in sorted(self._counters):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_prom_value(self._counters[name].value)}")
        for name in sorted(self._gauges):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_value(self._gauges[name].value)}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} histogram")
            for bound, cum in h.cumulative_buckets():
                le = "+Inf" if math.isinf(bound) else _prom_value(bound)
                lines.append(f'{pname}_bucket{{le="{le}"}} {cum}')
            lines.append(f"{pname}_sum {_prom_value(h.total)}")
            lines.append(f"{pname}_count {h.count}")
            if h.count:
                lines.append(f"# TYPE {pname}_quantile gauge")
                for q in quantiles:
                    lines.append(
                        f'{pname}_quantile{{quantile="{_prom_value(q)}"}} '
                        f"{_prom_value(h.quantile(q))}"
                    )
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitise to the Prometheus metric-name charset."""
    out = _NAME_BAD.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(v: float) -> str:
    """Render a sample value: integers without the trailing ``.0``."""
    f = float(v)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """Process-wide registry for layers with no machine in scope
    (the compiler front end); tests may :meth:`~MetricsRegistry.clear` it.
    Code that must not leak observations into (or observe leakage from)
    other work should use :func:`isolated_metrics` instead of clearing."""
    return _GLOBAL


@contextmanager
def isolated_metrics() -> Iterator[MetricsRegistry]:
    """Swap in a fresh process-wide registry for the duration of the block.

    Everything that calls :func:`global_metrics` inside the ``with``
    observes (and pollutes) only the temporary registry, which is
    yielded for inspection; the previous registry — with its
    accumulated values intact — is restored on exit, even on error.
    ``repro.check`` wraps each trial in this so fuzz/oracle/diff trials
    cannot leak counters into each other or into the host test process.
    """
    global _GLOBAL
    prev = _GLOBAL
    fresh = MetricsRegistry()
    _GLOBAL = fresh
    try:
        yield fresh
    finally:
        _GLOBAL = prev

"""Observability for the simulated Skil machine.

The paper's whole evaluation is an argument about *where time goes* —
compute vs. communication vs. idle as partitions shrink.  This package
makes that attribution first-class instead of a single global counter
set:

* :mod:`repro.obs.span` — paired ``begin``/``end`` **spans** around
  skeleton invocations (nested spans for composite skeletons), each
  recording the compute/comm/idle seconds, messages, bytes and
  participating ranks that accrued while it was open;
* :mod:`repro.obs.timeline` — a per-rank **timeline** of
  compute/send/recv/idle intervals, filled in by both the analytic
  clock layer (:mod:`repro.machine.network`) and the discrete-event
  engine (:mod:`repro.machine.engine`);
* :mod:`repro.obs.metrics` — a **metrics registry** of counters,
  gauges and histograms (message sizes, hop counts, instantiation
  cache behaviour);
* :mod:`repro.obs.export` — **exporters**: Chrome trace-event JSON
  (open in Perfetto or ``chrome://tracing``; one track per rank, a
  skeleton-span track and per-rank idle-wait tracks) and a
  flamegraph-style plain-text rollup;
* :mod:`repro.obs.analysis` — the **happens-before DAG** of a traced
  run, its **critical path** with exact compute/latency/bandwidth/idle
  attribution, per-rank straggler metrics and what-if cost replays
  (``python -m repro.eval analyze``);
* :mod:`repro.obs.regress` — the noise-aware **performance-regression
  gate** over committed benchmark/analysis snapshots
  (``python -m repro.obs.regress``);
* :mod:`repro.obs.stream` — the **streaming sinks** behind
  ``Machine(trace_mode="stream")``: exact O(p) online aggregates,
  seeded reservoir sampling of message records, a ring of recent
  spans and a rotating JSONL spill, keeping observability memory
  O(p + samples) at extreme scale (docs/OBSERVABILITY.md, "Streaming
  mode");
* :mod:`repro.obs.prof` — the **wall-clock worker-plane profiler**
  behind ``Machine(profile=True)``: dispatch latency, in-worker kernel
  wall time, ship-cache and shm counters, per-worker utilization, the
  ship/dispatch/kernel/idle attribution and the ``repro-profile/1``
  snapshot (``python -m repro.eval profile``).  Wall-clock only — it
  never touches the cost model (docs/OBSERVABILITY.md, "Wall-clock
  profiling").

Everything is opt-in through ``Machine(trace_level=...)`` and costs a
single ``is None`` check per operation when off, so the simulated
makespans are bit-identical with tracing disabled.
"""

from repro.obs.analysis import (
    CriticalPath,
    HappensBeforeDag,
    PathStep,
    RunAnalysis,
    StreamAnalysis,
    analyze_machine,
    analyze_stream,
    build_dag,
    critical_path,
    format_stream_analysis,
)
from repro.obs.stream import (
    ObsSink,
    ProgressReporter,
    StreamConfig,
    StreamObserver,
    StreamSpanTracer,
    StreamTimeline,
    compare_observers,
    fold_recorded,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_metrics,
    isolated_metrics,
)
from repro.obs.prof import (
    ATTRIBUTION_TOL,
    PROFILE_SCHEMA,
    WallProfiler,
)
from repro.obs.span import Span, SpanTracer
from repro.obs.timeline import Interval, Timeline
from repro.obs.export import (
    chrome_trace_events,
    flame_rollup,
    validate_chrome_trace,
    wall_trace_events,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_metrics",
    "isolated_metrics",
    "Span",
    "SpanTracer",
    "Interval",
    "Timeline",
    "chrome_trace_events",
    "flame_rollup",
    "validate_chrome_trace",
    "wall_trace_events",
    "write_chrome_trace",
    "ATTRIBUTION_TOL",
    "PROFILE_SCHEMA",
    "WallProfiler",
    "CriticalPath",
    "HappensBeforeDag",
    "PathStep",
    "RunAnalysis",
    "analyze_machine",
    "build_dag",
    "critical_path",
    "StreamAnalysis",
    "analyze_stream",
    "format_stream_analysis",
    "ObsSink",
    "ProgressReporter",
    "StreamConfig",
    "StreamObserver",
    "StreamSpanTracer",
    "StreamTimeline",
    "compare_observers",
    "fold_recorded",
]

"""Critical-path analysis over the happens-before DAG of a traced run.

A traced run (``Machine(p, trace_level=2)``) leaves behind everything a
happens-before DAG needs: per-rank **program order** from the
:class:`~repro.obs.timeline.Timeline` intervals, and **message edges**
from the send→recv matching the
:class:`~repro.machine.trace.MessageRecord` stream now carries (each
record names the wire window ``[depart, time]`` between the sender's
and the receiver's activities).  This module materialises that DAG and
answers the question the aggregate counters cannot: *which* chain of
activities determined the makespan, and what is each component's share
of it.

Three layers:

* :func:`critical_path` — walks backward from the makespan through the
  binding constraints (program order, message arrivals, rendezvous
  partners) and returns a list of :class:`PathStep` segments that
  **tile ``[0, makespan]`` exactly** (each step starts precisely where
  its predecessor ends, the first at 0.0, the last at the makespan).
  Every step splits its duration into four components:

  - ``compute`` — local computation,
  - ``latency`` — per-message software setup (``t_setup``) and per-hop
    routing latency (``hops * t_hop``),
  - ``bandwidth`` — the byte-proportional part of the wire time,
  - ``idle`` — waiting (blocked receives, rendezvous waits, untracked
    gaps).

  Because the steps tile the makespan, the component totals sum to it
  — the attribution identity the invariant checks and the tests pin
  down.

* :func:`analyze_machine` / :class:`RunAnalysis` — the DAG, the
  critical path, per-skeleton exclusive attribution (innermost
  skeleton span wins, like ``trace_report``), per-rank load/straggler
  metrics, and the top-k *blocking edges* (the message transfers on
  the critical path, largest first).

* :func:`whatif_scenarios` / :func:`run_whatif` — analytic **what-if
  replays**: the same application re-run with perturbed cost
  parameters (latency→0 via ``t_setup = t_hop = 0``, bandwidth→∞ via
  ``t_byte = 0``, perfectly balanced compute via
  :attr:`~repro.machine.network.Network.balance_compute`).  For a
  fixed dependence structure, removing a component everywhere can
  shorten the makespan by **at most** that component's share of the
  old critical path (the old path is still a path, and its new length
  is the old length minus exactly what was removed along it), so each
  replay's improvement is cross-checked against the DAG attribution:
  ``delta <= bound + slack``.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import SkilError
from repro.machine.costmodel import CostModel
from repro.machine.trace import MessageRecord
from repro.obs.timeline import IDLE, Interval, Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.machine import Machine
    from repro.obs.span import SpanTracer

__all__ = [
    "AnalysisError",
    "COMPONENTS",
    "PathStep",
    "CriticalPath",
    "DagEdge",
    "HappensBeforeDag",
    "build_dag",
    "critical_path",
    "RankLoad",
    "rank_loads",
    "SkeletonImbalance",
    "skeleton_imbalance",
    "RunAnalysis",
    "analyze_machine",
    "StreamAnalysis",
    "analyze_stream",
    "format_stream_analysis",
    "WhatIf",
    "whatif_scenarios",
    "run_whatif",
    "invariant_problems",
    "format_analysis",
]

#: attribution components, in reporting order
COMPONENTS = ("compute", "latency", "bandwidth", "idle")

#: label used when a critical-path step falls outside every skeleton span
OUTSIDE_SPANS = "(outside skeletons)"


class AnalysisError(SkilError):
    """The trace cannot support the requested analysis."""


def _eps_for(makespan: float) -> float:
    # event times come out of identical float expressions on both the
    # record and the timeline side, so the tolerance only has to absorb
    # non-identical associations (e.g. ``arrival - wire`` vs ``depart``)
    return 1e-12 + 1e-9 * abs(makespan)


# ---------------------------------------------------------------------------
# the DAG itself
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DagEdge:
    """One happens-before edge between two timeline intervals."""

    kind: str  # "program" | "message"
    src_node: int  # index into HappensBeforeDag.nodes
    dst_node: int
    record: MessageRecord | None = None


@dataclass
class HappensBeforeDag:
    """Timeline intervals as nodes, program order + messages as edges."""

    nodes: list[Interval]
    edges: list[DagEdge]
    makespan: float
    #: message records that could not be matched to a send and a recv
    #: interval (zero-length intervals are dropped by the timeline)
    unmatched_records: int = 0

    def validate(self) -> list[str]:
        """Structural problems (empty list = a valid happens-before DAG).

        Every edge must point forward in time — program edges from an
        earlier-starting to a later-starting interval of one rank,
        message edges from a wire departure to a no-earlier arrival.
        Forward-in-time edges make time a topological order, so the
        graph is acyclic by construction; a violation here is a
        corrupted trace.
        """
        problems: list[str] = []
        eps = _eps_for(self.makespan)
        for e in self.edges:
            u, v = self.nodes[e.src_node], self.nodes[e.dst_node]
            if e.kind == "program":
                if u.rank != v.rank:
                    problems.append(
                        f"program edge crosses ranks {u.rank}->{v.rank}"
                    )
                if u.start > v.start + eps:
                    problems.append(
                        f"program edge goes backward on rank {u.rank}: "
                        f"{u.start} -> {v.start}"
                    )
            else:
                r = e.record
                assert r is not None
                if r.depart > r.time + eps:
                    problems.append(
                        f"message {r.src}->{r.dst} departs after it arrives: "
                        f"{r.depart} > {r.time}"
                    )
                if u.rank != r.src or v.rank != r.dst:
                    problems.append(
                        f"message edge endpoints disagree with its record: "
                        f"nodes {u.rank}->{v.rank}, record {r.src}->{r.dst}"
                    )
        for iv in self.nodes:
            if iv.end > self.makespan + eps or iv.start < -eps:
                problems.append(
                    f"interval {iv.kind} [{iv.start}, {iv.end}] on rank "
                    f"{iv.rank} escapes [0, {self.makespan}]"
                )
        return problems


def build_dag(
    timeline: Timeline,
    records: Sequence[MessageRecord],
    makespan: float | None = None,
) -> HappensBeforeDag:
    """Materialise the happens-before DAG of one traced run."""
    nodes = sorted(timeline.intervals, key=lambda iv: (iv.rank, iv.start, iv.end))
    if makespan is None:
        makespan = max((iv.end for iv in nodes), default=0.0)
    eps = _eps_for(makespan)
    index = {id(iv): i for i, iv in enumerate(nodes)}
    edges: list[DagEdge] = []

    by_rank: dict[int, list[Interval]] = {}
    for iv in nodes:
        by_rank.setdefault(iv.rank, []).append(iv)
    for ivs in by_rank.values():
        for u, v in zip(ivs, ivs[1:]):
            edges.append(DagEdge("program", index[id(u)], index[id(v)]))

    # message edges: sender interval ending at (or spanning) the wire
    # departure -> receiver interval ending at the arrival
    ends: dict[int, list[float]] = {
        r: [iv.end for iv in ivs] for r, ivs in by_rank.items()
    }
    unmatched = 0
    for rec in records:
        if rec.depart < 0.0 or rec.src == rec.dst:
            unmatched += 1
            continue
        u = _interval_at(by_rank, ends, rec.src, rec.depart, eps)
        v = _interval_at(by_rank, ends, rec.dst, rec.time, eps)
        if u is None or v is None:
            unmatched += 1
            continue
        edges.append(DagEdge("message", index[id(u)], index[id(v)], rec))
    return HappensBeforeDag(nodes, edges, makespan, unmatched)


def _interval_at(
    by_rank: dict[int, list[Interval]],
    ends: dict[int, list[float]],
    rank: int,
    t: float,
    eps: float,
) -> Interval | None:
    """The rank's interval ending at *t* (preferred) or spanning it."""
    ivs = by_rank.get(rank)
    if not ivs:
        return None
    i = bisect.bisect_left(ends[rank], t - eps)
    if i < len(ivs) and abs(ivs[i].end - t) <= eps:
        return ivs[i]
    for iv in ivs[max(0, i - 2): i + 2]:
        if iv.start - eps <= t <= iv.end + eps:
            return iv
    return None


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PathStep:
    """One time segment of the critical path.

    Steps are produced in forward time order and tile ``[0, makespan]``
    exactly: ``steps[i].end == steps[i+1].start`` bit-for-bit.  The
    four component fields partition the duration.
    """

    rank: int
    kind: str  # compute | send | recv | transfer | idle | gap | startup
    start: float
    end: float
    detail: str = ""
    skeleton: str = OUTSIDE_SPANS
    compute: float = 0.0
    latency: float = 0.0
    bandwidth: float = 0.0
    idle: float = 0.0
    record: MessageRecord | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def components(self) -> dict[str, float]:
        return {
            "compute": self.compute,
            "latency": self.latency,
            "bandwidth": self.bandwidth,
            "idle": self.idle,
        }


@dataclass
class CriticalPath:
    """The makespan-determining chain, as tiling segments."""

    steps: list[PathStep]
    makespan: float

    def component_totals(self) -> dict[str, float]:
        return {
            c: math.fsum(getattr(s, c) for s in self.steps) for c in COMPONENTS
        }

    def by_skeleton(self) -> dict[str, dict[str, float]]:
        """Exclusive per-skeleton attribution of the critical path."""
        out: dict[str, dict[str, float]] = {}
        for s in self.steps:
            row = out.setdefault(s.skeleton, dict.fromkeys(COMPONENTS, 0.0))
            for c in COMPONENTS:
                row[c] += getattr(s, c)
        return out

    def blocking_edges(self, k: int = 10) -> list[PathStep]:
        """The top-*k* cross-rank message transfers on the critical
        path — the segments where the makespan was waiting on a wire.
        (send/recv steps also carry their record for the component
        split, but they are program order, not blocking edges.)"""
        edges = [s for s in self.steps
                 if s.kind == "transfer" and s.record is not None]
        edges.sort(key=lambda s: -s.duration)
        return edges[:k]

    def validate(self) -> list[str]:
        """Tiling and attribution identities (empty list = consistent)."""
        problems: list[str] = []
        if not self.steps:
            if self.makespan > 0.0:
                problems.append("empty path for a positive makespan")
            return problems
        if self.steps[0].start != 0.0:
            problems.append(f"path starts at {self.steps[0].start}, not 0.0")
        if self.steps[-1].end != self.makespan:
            problems.append(
                f"path ends at {self.steps[-1].end}, not the makespan "
                f"{self.makespan}"
            )
        for a, b in zip(self.steps, self.steps[1:]):
            if a.end != b.start:
                problems.append(
                    f"tiling broken at {a.end!r} -> {b.start!r} "
                    f"({a.kind} on rank {a.rank} -> {b.kind} on {b.rank})"
                )
        eps = _eps_for(self.makespan)
        for s in self.steps:
            parts = math.fsum(s.components().values())
            if abs(parts - s.duration) > eps:
                problems.append(
                    f"step {s.kind}@{s.start}: components sum to {parts}, "
                    f"duration is {s.duration}"
                )
        total = math.fsum(self.component_totals().values())
        if abs(total - self.makespan) > eps:
            problems.append(
                f"components sum to {total}, makespan is {self.makespan}"
            )
        return problems


class _RankIndex:
    """Per-rank interval lookups for the backward walk."""

    def __init__(self, timeline: Timeline):
        self.by_rank: dict[int, list[Interval]] = {}
        for iv in timeline.intervals:
            self.by_rank.setdefault(iv.rank, []).append(iv)
        for ivs in self.by_rank.values():
            ivs.sort(key=lambda iv: (iv.end, iv.start))
        self.ends = {r: [iv.end for iv in ivs] for r, ivs in self.by_rank.items()}

    def ending_at(self, rank: int, t: float, eps: float) -> list[Interval]:
        ivs = self.by_rank.get(rank, [])
        ends = self.ends.get(rank, [])
        lo = bisect.bisect_left(ends, t - eps)
        hi = bisect.bisect_right(ends, t + eps)
        return [iv for iv in ivs[lo:hi] if iv.start < t - eps]

    def containing(self, rank: int, t: float, eps: float) -> Interval | None:
        """Latest-starting interval strictly containing *t*."""
        best = None
        for iv in self.by_rank.get(rank, []):
            if iv.start < t - eps and iv.end > t + eps:
                if best is None or iv.start > best.start:
                    best = iv
        return best

    def latest_end_before(self, rank: int, t: float) -> float | None:
        ends = self.ends.get(rank, [])
        i = bisect.bisect_left(ends, t)
        return ends[i - 1] if i else None


class _RecordIndex:
    """Message arrivals per receiver, for the backward walk."""

    def __init__(self, records: Sequence[MessageRecord]):
        self.by_dst: dict[int, list[MessageRecord]] = {}
        for rec in records:
            if rec.depart >= 0.0 and rec.src != rec.dst:
                self.by_dst.setdefault(rec.dst, []).append(rec)
        for recs in self.by_dst.values():
            recs.sort(key=lambda r: r.time)
        self.times = {
            d: [r.time for r in recs] for d, recs in self.by_dst.items()
        }
        self._used: set[int] = set()

    def arrival_at(self, rank: int, t: float, eps: float) -> MessageRecord | None:
        """The unconsumed record arriving at *t*; ties prefer the
        latest-departing transfer (the tightest constraint), then the
        lowest sender rank, deterministically."""
        recs = self.by_dst.get(rank, [])
        times = self.times.get(rank, [])
        lo = bisect.bisect_left(times, t - eps)
        hi = bisect.bisect_right(times, t + eps)
        best = None
        for rec in recs[lo:hi]:
            if id(rec) in self._used:
                continue
            if best is None or (rec.depart, -rec.src) > (best.depart, -best.src):
                best = rec
        if best is not None:
            self._used.add(id(best))
        return best

    def sent_ending_at(
        self, records: Sequence[MessageRecord], rank: int, t: float, eps: float
    ) -> MessageRecord | None:
        """A record sent by *rank* whose arrival or departure is *t*
        (used to split a send interval into setup/wire parts)."""
        best = None
        for rec in records:
            if rec.src != rank or rec.depart < 0.0:
                continue
            if abs(rec.time - t) <= eps or abs(rec.depart - t) <= eps:
                if best is None or rec.depart > best.depart:
                    best = rec
        return best


def _split_wire(
    rec: MessageRecord, a: float, b: float, cost: CostModel
) -> tuple[float, float]:
    """Split the wire sub-segment ``[a, b]`` into (latency, bandwidth).

    The per-hop routing latency (``hops * t_hop``) is latency, the rest
    of the actual wire time (byte transfer, and any contention
    serialization) is bandwidth; a partial overlap splits
    proportionally.
    """
    d = b - a
    if d <= 0.0:
        return 0.0, 0.0
    wire = rec.time - rec.depart
    if wire <= 0.0:
        return d, 0.0
    lat_full = min(wire, rec.hops * cost.t_hop) if rec.hops > 0 else 0.0
    frac = lat_full / wire
    return d * frac, d * (1.0 - frac)


def _classified(
    rank: int,
    kind: str,
    a: float,
    b: float,
    cost: CostModel,
    rec: MessageRecord | None = None,
    detail: str = "",
) -> PathStep:
    """Build a PathStep for ``[a, b]`` with its component split."""
    d = b - a
    compute = latency = bandwidth = idle = 0.0
    if kind == "compute":
        compute = d
    elif kind in ("idle", "gap", "startup"):
        idle = d
    elif kind == "transfer":
        assert rec is not None
        latency, bandwidth = _split_wire(rec, a, b, cost)
    elif kind == "send":
        if rec is not None:
            # [a, b] may cover setup/waiting before the wire, part of
            # the wire, and (rendezvous bookkeeping aside) nothing after
            wire_lo = min(max(rec.depart, a), b)
            wire_hi = min(max(rec.time, a), b)
            pre = wire_lo - a
            latency += min(pre, cost.t_setup)
            idle += max(0.0, pre - cost.t_setup)
            lat, bw = _split_wire(rec, wire_lo, wire_hi, cost)
            latency += lat
            bandwidth += bw
            idle += max(0.0, b - wire_hi)
        else:
            latency = min(d, cost.t_setup)
            bandwidth = d - latency
    elif kind == "recv":
        if rec is not None:
            wire_lo = min(max(rec.depart, a), b)
            wire_hi = min(max(rec.time, a), b)
            idle += wire_lo - a
            lat, bw = _split_wire(rec, wire_lo, wire_hi, cost)
            latency += lat
            bandwidth += bw
            idle += max(0.0, b - wire_hi)
        else:
            idle = d
    else:
        idle = d
    # fold the split's rounding residual into the largest part so the
    # four components partition the duration as tightly as floats allow
    residual = d - math.fsum((compute, latency, bandwidth, idle))
    if residual != 0.0:
        parts = {"compute": compute, "latency": latency,
                 "bandwidth": bandwidth, "idle": idle}
        big = max(parts, key=lambda k: parts[k])
        parts[big] += residual
        compute, latency = parts["compute"], parts["latency"]
        bandwidth, idle = parts["bandwidth"], parts["idle"]
    return PathStep(
        rank=rank,
        kind=kind,
        start=a,
        end=b,
        detail=detail,
        compute=compute,
        latency=latency,
        bandwidth=bandwidth,
        idle=idle,
        record=rec if kind in ("transfer", "send", "recv") else None,
    )


def critical_path(
    timeline: Timeline,
    records: Sequence[MessageRecord],
    cost: CostModel,
    makespan: float | None = None,
    tracer: "SpanTracer | None" = None,
) -> CriticalPath:
    """Extract the critical path of a traced run.

    Walks backward from the makespan: at each point the binding
    constraint is either the interval ending there (program order), a
    message arriving there (jump to the sender at its wire departure),
    or — across a gap — the globally latest activity before it.  The
    returned steps tile ``[0, makespan]`` exactly; see the module
    docstring for the component semantics.
    """
    if makespan is None:
        makespan = max((iv.end for iv in timeline.intervals), default=0.0)
    if makespan <= 0.0 or not timeline.intervals:
        return CriticalPath([], max(makespan, 0.0))
    eps = _eps_for(makespan)
    ridx = _RankIndex(timeline)
    recidx = _RecordIndex(records)

    # start on the rank whose activity ends last
    rank = max(
        ridx.by_rank, key=lambda r: (ridx.ends[r][-1], -r)
    )
    t = makespan
    rev: list[PathStep] = []
    stalls = 0
    limit = 4 * (len(timeline.intervals) + len(records)) + 64

    def emit(step: PathStep) -> None:
        if step.end - step.start > 0.0:
            rev.append(step)

    while t > 0.0:
        if len(rev) + stalls > limit:
            raise AnalysisError(
                f"critical-path walk did not converge after {limit} steps "
                f"(stuck near t={t} on rank {rank})"
            )
        ending = ridx.ending_at(rank, t, eps)
        wait_like = [iv for iv in ending if iv.kind in ("recv", IDLE)]
        rec = recidx.arrival_at(rank, t, eps) if (wait_like or not ending) else None
        if rec is not None and rec.depart < t - eps:
            # the binding constraint is a message: cross the wire to the
            # sender; the receiver's pre-wire waiting is slack, not path
            detail = wait_like[0].detail if wait_like else rec.tag
            emit(_classified(rank, "transfer", rec.depart, t, cost, rec, detail))
            rank, t = rec.src, rec.depart
            stalls = 0
            continue
        if ending:
            # program order: prefer the longest-reaching interval
            v = min(ending, key=lambda iv: (iv.start, _KIND_ORDER.get(iv.kind, 9)))
            srec = None
            if v.kind == "send":
                srec = recidx.sent_ending_at(records, rank, t, eps)
                if (
                    srec is not None
                    and srec.depart > v.start + cost.t_setup + eps
                    and abs(srec.time - t) <= eps
                ):
                    # rendezvous where the receiver was the late party:
                    # the path crosses to the receiver's program order
                    emit(
                        _classified(
                            rank, "transfer", srec.depart, t, cost, srec, v.detail
                        )
                    )
                    rank, t = srec.dst, srec.depart
                    stalls = 0
                    continue
            elif v.kind == "recv":
                srec = recidx.arrival_at(rank, t, eps)
            emit(_classified(rank, v.kind, v.start, t, cost, srec, v.detail))
            t = v.start
            stalls = 0
            continue
        spanning = ridx.containing(rank, t, eps)
        if spanning is not None:
            srec = None
            if spanning.kind == "send":
                srec = recidx.sent_ending_at(
                    records, rank, spanning.end, eps
                )
            emit(
                _classified(
                    rank, spanning.kind, spanning.start, t, cost, srec,
                    spanning.detail,
                )
            )
            t = spanning.start
            stalls = 0
            continue
        # gap: hand over to the globally latest activity at or before t
        best_rank, best_end = None, None
        for r2 in ridx.by_rank:
            e = ridx.latest_end_before(r2, t + eps)
            if e is not None and (best_end is None or e > best_end):
                best_rank, best_end = r2, e
        if best_end is None:
            emit(_classified(rank, "startup", 0.0, t, cost))
            t = 0.0
            break
        if best_end >= t - eps and best_rank != rank and stalls < len(ridx.by_rank):
            # another rank's activity ends exactly here — continue there
            rank = best_rank
            stalls += 1
            continue
        cut = min(best_end, t)
        if cut >= t:  # defensive: force progress
            cut = ridx.latest_end_before(rank, t) or 0.0
            cut = min(cut, t)
        emit(_classified(rank, "gap", cut, t, cost))
        rank, t = (best_rank if best_rank is not None else rank), cut
        stalls = 0

    rev.reverse()
    steps = rev
    # force the exact tiling contract: the walk's arithmetic is exact,
    # so these fixes are no-ops unless a boundary came out of a jump
    if steps:
        fixed: list[PathStep] = []
        prev_end = 0.0
        for i, s in enumerate(steps):
            start = prev_end
            end = s.end if i < len(steps) - 1 else makespan
            if end <= start:
                continue
            if start != s.start or end != s.end:
                s = _reclip(s, start, end, cost)
            fixed.append(s)
            prev_end = end
        steps = fixed
    cp = CriticalPath(steps, makespan)
    if tracer is not None:
        _attribute_spans(cp, tracer)
    return cp


_KIND_ORDER = {"compute": 0, "send": 1, "recv": 2, IDLE: 3}


def _reclip(step: PathStep, start: float, end: float, cost: CostModel) -> PathStep:
    return _classified(
        step.rank, step.kind, start, end, cost, step.record, step.detail
    )


def _attribute_spans(cp: CriticalPath, tracer: "SpanTracer") -> None:
    """Assign each step to the innermost skeleton span covering it."""
    spans = [
        s for s in tracer.closed_spans() if s.category == "skeleton"
    ]
    spans.sort(key=lambda s: (s.begin_time, s.depth))
    begins = [s.begin_time for s in spans]
    eps = _eps_for(cp.makespan)

    def owner(mid: float) -> str:
        i = bisect.bisect_right(begins, mid + eps)
        for s in reversed(spans[:i]):
            if s.end_time + eps >= mid:
                return s.name
        return OUTSIDE_SPANS

    cp.steps = [
        _with_skeleton(s, owner((s.start + s.end) / 2.0)) for s in cp.steps
    ]


def _with_skeleton(step: PathStep, name: str) -> PathStep:
    if step.skeleton == name:
        return step
    return PathStep(
        rank=step.rank,
        kind=step.kind,
        start=step.start,
        end=step.end,
        detail=step.detail,
        skeleton=name,
        compute=step.compute,
        latency=step.latency,
        bandwidth=step.bandwidth,
        idle=step.idle,
        record=step.record,
    )


# ---------------------------------------------------------------------------
# straggler / load-imbalance metrics
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RankLoad:
    """One rank's occupancy over the whole run."""

    rank: int
    busy_seconds: float  # union of non-idle intervals
    idle_seconds: float  # makespan - busy
    busy_fraction: float  # busy / makespan


def rank_loads(timeline: Timeline, makespan: float) -> list[RankLoad]:
    """Per-rank busy/idle occupancy against the run's makespan."""
    loads = []
    for r in timeline.ranks():
        busy = timeline.coverage(r)
        frac = busy / makespan if makespan > 0 else 0.0
        loads.append(RankLoad(r, busy, max(0.0, makespan - busy), frac))
    return loads


@dataclass(frozen=True)
class SkeletonImbalance:
    """Load skew across ranks within one skeleton's span windows."""

    name: str
    calls: int
    max_busy: float
    median_busy: float
    mean_busy: float
    straggler_rank: int

    @property
    def skew(self) -> float:
        """max/median busy ratio; 1.0 is perfectly balanced."""
        if self.median_busy > 0.0:
            return self.max_busy / self.median_busy
        return float("inf") if self.max_busy > 0.0 else 1.0


def skeleton_imbalance(
    timeline: Timeline, tracer: "SpanTracer", p: int
) -> list[SkeletonImbalance]:
    """Per-skeleton straggler metrics: clip each rank's non-idle
    intervals to the (merged) time windows of the skeleton's spans and
    compare the per-rank busy totals.  Sorted by skew, worst first."""
    windows: dict[str, list[tuple[float, float]]] = {}
    calls: dict[str, int] = {}
    for s in tracer.closed_spans():
        if s.category != "skeleton":
            continue
        windows.setdefault(s.name, []).append((s.begin_time, s.end_time))
        calls[s.name] = calls.get(s.name, 0) + 1
    out: list[SkeletonImbalance] = []
    segs_by_rank = {
        r: timeline.busy_segments(r) for r in range(p)
    }
    for name, wins in windows.items():
        wins.sort()
        merged: list[tuple[float, float]] = []
        for a, b in wins:
            if merged and a <= merged[-1][1]:
                if b > merged[-1][1]:
                    merged[-1] = (merged[-1][0], b)
            else:
                merged.append((a, b))
        busy = []
        for r in range(p):
            tot = 0.0
            for wa, wb in merged:
                for sa, sb in segs_by_rank[r]:
                    lo, hi = max(sa, wa), min(sb, wb)
                    if hi > lo:
                        tot += hi - lo
            busy.append(tot)
        srt = sorted(busy)
        n = len(srt)
        median = (
            srt[n // 2] if n % 2 else 0.5 * (srt[n // 2 - 1] + srt[n // 2])
        )
        mx = max(busy)
        out.append(
            SkeletonImbalance(
                name=name,
                calls=calls[name],
                max_busy=mx,
                median_busy=median,
                mean_busy=math.fsum(busy) / n if n else 0.0,
                straggler_rank=busy.index(mx),
            )
        )
    out.sort(key=lambda s: -(s.skew if math.isfinite(s.skew) else 1e18))
    return out


# ---------------------------------------------------------------------------
# whole-run analysis handle
# ---------------------------------------------------------------------------
@dataclass
class RunAnalysis:
    """Everything the ``analyze`` report needs from one traced run."""

    makespan: float
    path: CriticalPath
    dag: HappensBeforeDag
    loads: list[RankLoad]
    imbalance: list[SkeletonImbalance]
    p: int

    def component_totals(self) -> dict[str, float]:
        return self.path.component_totals()

    def snapshot(self) -> dict:
        """JSON-able summary for ``repro.obs.regress`` comparisons."""
        return {
            "schema": "repro-analyze/1",
            "p": self.p,
            "makespan_s": self.makespan,
            "components": self.component_totals(),
            "by_skeleton": self.path.by_skeleton(),
            "rank_busy_fraction": {
                str(l.rank): l.busy_fraction for l in self.loads
            },
            "blocking_edges": [
                {
                    "src": s.record.src,
                    "dst": s.record.dst,
                    "bytes": s.record.nbytes,
                    "tag": s.record.tag,
                    "seconds": s.duration,
                    "skeleton": s.skeleton,
                }
                for s in self.path.blocking_edges()
                if s.record is not None
            ],
        }


def analyze_machine(machine: "Machine") -> RunAnalysis:
    """Run the critical-path/straggler analysis on a traced machine.

    Requires ``trace_level=2`` (timeline + message records + spans).
    """
    if machine.timeline is None or machine.tracer is None:
        raise AnalysisError(
            "analysis needs Machine(trace_level=2): timeline and spans "
            "are not being recorded"
        )
    if not machine.stats.keep_records:
        raise AnalysisError(
            "analysis needs individual message records "
            "(Machine(trace_level=2) keeps them)"
        )
    makespan = machine.time
    path = critical_path(
        machine.timeline,
        machine.stats.records,
        machine.cost,
        makespan=makespan,
        tracer=machine.tracer,
    )
    dag = build_dag(machine.timeline, machine.stats.records, makespan)
    return RunAnalysis(
        makespan=makespan,
        path=path,
        dag=dag,
        loads=rank_loads(machine.timeline, makespan),
        imbalance=skeleton_imbalance(machine.timeline, machine.tracer, machine.p),
        p=machine.p,
    )


# ---------------------------------------------------------------------------
# aggregated-mode analysis (trace_mode="stream")
# ---------------------------------------------------------------------------
@dataclass
class StreamAnalysis:
    """Load/straggler/imbalance report computed from streamed aggregates.

    The streaming counterpart of :class:`RunAnalysis`: no DAG, no
    critical path (those need the full record), but exact per-rank and
    per-skeleton attribution at O(p + samples) memory.  ``loads`` uses
    summed per-kind seconds rather than record-mode's overlap-merged
    coverage, so a rank that sends and receives simultaneously can
    exceed a busy fraction of 1 — documented in docs/OBSERVABILITY.md.
    """

    makespan: float
    p: int
    stats: dict
    loads: list[RankLoad]
    skeletons: list  # list[repro.obs.stream.SkeletonAgg], busiest first
    straggler_rank: int
    skew: float
    tags: list[tuple[str, int, int]]  # (tag, messages, bytes)
    accounting: dict
    sampled_records: int

    def component_totals(self) -> dict[str, float]:
        """Bounded compute/comm/idle attribution from the exact stats
        counters (the latency/bandwidth split needs per-message records
        and stays record-mode only)."""
        return {
            "compute": self.stats["compute_s"],
            "comm": self.stats["comm_s"],
            "idle": self.stats["idle_s"],
        }

    def snapshot(self) -> dict:
        """JSON-able summary (schema ``repro-stream-analyze/1``)."""
        return {
            "schema": "repro-stream-analyze/1",
            "p": self.p,
            "makespan_s": self.makespan,
            "components": self.component_totals(),
            "by_skeleton": {
                agg.name: {
                    "calls": agg.calls,
                    "busy_s": agg.busy_total,
                    "compute_s": agg.compute_seconds,
                    "comm_s": agg.comm_seconds,
                    "idle_s": agg.idle_seconds,
                    "messages": agg.messages,
                    "bytes": agg.bytes_sent,
                    "duration_p50": agg.durations.quantile(0.5),
                    "duration_p99": agg.durations.quantile(0.99),
                }
                for agg in self.skeletons
            },
            "rank_busy_fraction": {
                str(l.rank): l.busy_fraction for l in self.loads
            },
            "straggler": {"rank": self.straggler_rank, "skew": self.skew},
            "tags": {t: {"messages": m, "bytes": b} for t, m, b in self.tags},
            "accounting": dict(self.accounting),
        }


def analyze_stream(machine: "Machine") -> StreamAnalysis:
    """Aggregated-mode analysis of a ``trace_mode="stream"`` run.

    Works entirely from the O(p) streamed aggregates — no DAG is built
    and nothing is replayed, so it is safe at any p.  Requires
    ``Machine(trace_level=2, trace_mode="stream")`` (the stream
    timeline feeds the per-rank numbers).
    """
    obs = getattr(machine, "stream_obs", None)
    if obs is None or machine.trace_level < 2:
        raise AnalysisError(
            "stream analysis needs Machine(trace_level=2, "
            'trace_mode="stream") — use analyze_machine for record mode'
        )
    makespan = machine.time
    busy = obs.timeline.busy_seconds_by_rank()
    loads = [
        RankLoad(
            rank=r,
            busy_seconds=float(busy[r]),
            idle_seconds=max(0.0, makespan - float(busy[r])),
            busy_fraction=float(busy[r]) / makespan if makespan > 0 else 0.0,
        )
        for r in range(machine.p)
    ]
    srt = sorted(busy.tolist())
    n = len(srt)
    median = srt[n // 2] if n % 2 else 0.5 * (srt[n // 2 - 1] + srt[n // 2])
    mx = float(busy.max()) if n else 0.0
    if median > 0.0:
        skew = mx / median
    else:
        skew = float("inf") if mx > 0.0 else 1.0
    skeletons = sorted(
        (agg for (cat, _), agg in obs.span_aggs.items() if cat == "skeleton"),
        key=lambda a: -a.busy_total,
    )
    tags = sorted(
        (
            (t, obs.tag_messages[t], obs.tag_bytes.get(t, 0))
            for t in obs.tag_messages
        ),
        key=lambda row: -row[2],
    )
    return StreamAnalysis(
        makespan=makespan,
        p=machine.p,
        stats=machine.stats.summary(),
        loads=loads,
        skeletons=skeletons,
        straggler_rank=int(busy.argmax()) if n else 0,
        skew=skew,
        tags=tags,
        accounting=obs.accounting(),
        sampled_records=len(obs.reservoir),
    )


def format_stream_analysis(sa: StreamAnalysis, top: int = 8) -> str:
    """Plain-text report of a streamed run's aggregates."""
    lines: list[str] = []
    lines.append(
        f"streamed aggregates: p={sa.p}, makespan {sa.makespan:.6f}s "
        f"({sa.stats['messages']} messages, "
        f"{sa.stats['skeleton_calls']} skeleton calls)"
    )
    totals = sa.component_totals()
    busy_total = math.fsum(totals.values()) or 1.0
    lines.append(f"{'component':<14}{'seconds':>12}{'share':>8}")
    for c, v in totals.items():
        lines.append(f"{c:<14}{v:>12.6f}{v / busy_total:>8.1%}")

    lines.append("")
    lines.append("per-skeleton aggregates (inclusive of nested skeletons):")
    lines.append(
        f"{'skeleton':<26}{'calls':>6}{'busy [s]':>11}{'compute':>9}"
        f"{'comm':>7}{'idle':>7}{'p50 [s]':>10}{'p99 [s]':>10}"
    )
    for agg in sa.skeletons[:top]:
        b = agg.busy_total or 1.0
        lines.append(
            f"{agg.name:<26}{agg.calls:>6}{agg.busy_total:>11.6f}"
            f"{agg.compute_seconds / b:>8.0%}{agg.comm_seconds / b:>7.0%}"
            f"{agg.idle_seconds / b:>7.0%}"
            f"{agg.durations.quantile(0.5):>10.2e}"
            f"{agg.durations.quantile(0.99):>10.2e}"
        )

    lines.append("")
    lines.append("rank loads (summed busy seconds / makespan):")
    if sa.loads:
        worst = min(sa.loads, key=lambda l: l.busy_fraction)
        best = max(sa.loads, key=lambda l: l.busy_fraction)
        mean = math.fsum(l.busy_fraction for l in sa.loads) / len(sa.loads)
        skew = f"{sa.skew:.2f}" if math.isfinite(sa.skew) else "inf"
        lines.append(
            f"  mean {mean:.1%}   busiest rank {best.rank} "
            f"{best.busy_fraction:.1%}   idlest rank {worst.rank} "
            f"{worst.busy_fraction:.1%}   straggler rank "
            f"{sa.straggler_rank} (skew {skew})"
        )

    lines.append("")
    lines.append("message traffic by tag:")
    lines.append(f"{'tag':<20}{'messages':>10}{'bytes':>14}")
    for t, msgs, nbytes in sa.tags[:top]:
        lines.append(f"{t:<20}{msgs:>10}{nbytes:>14}")

    acc = sa.accounting
    lines.append("")
    lines.append(
        f"memory: {acc['per_rank_cells']} per-rank cells, "
        f"{acc['records_retained']}/{acc['records_cap']} sampled records "
        f"(of {acc['messages_seen']} seen), "
        f"{acc['spans_retained']}/{acc['spans_cap']} ringed spans "
        f"(of {acc['spans_seen']} seen), "
        f"{acc['intervals_retained']} retained intervals "
        f"(of {acc['intervals_seen']} seen)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# what-if replays
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WhatIf:
    """One counterfactual replay against the DAG-attribution bound."""

    scenario: str
    makespan: float
    delta: float  # baseline makespan - scenario makespan
    bound: float | None  # critical-path attribution of the removed part
    within_bound: bool | None  # None when the scenario has no bound


def whatif_scenarios(cost: CostModel) -> list[tuple[str, CostModel, bool]]:
    """(name, perturbed cost model, balance_compute) triples."""
    return [
        ("latency->0", cost.with_(t_setup=0.0, t_hop=0.0), False),
        ("bandwidth->inf", cost.with_(t_byte=0.0), False),
        ("balanced-compute", cost, True),
    ]


def run_whatif(
    baseline: RunAnalysis,
    cost: CostModel,
    runner: Callable[[CostModel, bool], float],
    slack_frac: float = 0.02,
) -> list[WhatIf]:
    """Replay the run under each counterfactual and check the bounds.

    *runner(cost, balance_compute)* must re-run the same application on
    a fresh machine and return its makespan.  The stated bound: a
    replay that removes one component everywhere can gain at most that
    component's critical-path attribution, plus *slack_frac* of the
    makespan for walk approximations (gap handling, proportional wire
    splits).  Balanced compute redistributes rather than removes work,
    so it carries no bound.
    """
    totals = baseline.component_totals()
    bounds = {
        "latency->0": totals["latency"],
        "bandwidth->inf": totals["bandwidth"],
        "balanced-compute": None,
    }
    slack = slack_frac * baseline.makespan + 1e-9
    out: list[WhatIf] = []
    for name, cm, balance in whatif_scenarios(cost):
        ms = runner(cm, balance)
        delta = baseline.makespan - ms
        bound = bounds.get(name)
        out.append(
            WhatIf(
                scenario=name,
                makespan=ms,
                delta=delta,
                bound=bound,
                within_bound=(delta <= bound + slack) if bound is not None else None,
            )
        )
    return out


# ---------------------------------------------------------------------------
# invariants (used by repro.check's dag pillar and the tests)
# ---------------------------------------------------------------------------
def invariant_problems(machine: "Machine") -> list[str]:
    """All structural invariants of one traced run's analysis.

    * the happens-before DAG is acyclic (every edge forward in time);
    * the critical path tiles ``[0, makespan]`` exactly and its
      component attribution sums to the makespan;
    * the path's busy (non-idle) share cannot exceed the makespan, and
      the makespan cannot exceed the total busy+idle over the path
      (they are equal — the two inequalities bound it from both sides);
    * per-rank busy fractions stay within [0, 1].
    """
    problems: list[str] = []
    analysis = analyze_machine(machine)
    problems += [f"dag: {p}" for p in analysis.dag.validate()]
    problems += [f"path: {p}" for p in analysis.path.validate()]
    totals = analysis.component_totals()
    eps = _eps_for(analysis.makespan)
    busy = totals["compute"] + totals["latency"] + totals["bandwidth"]
    if busy > analysis.makespan + eps:
        problems.append(
            f"critical-path busy {busy} exceeds makespan {analysis.makespan}"
        )
    if analysis.makespan > busy + totals["idle"] + eps:
        problems.append(
            f"makespan {analysis.makespan} exceeds the path's busy+idle "
            f"{busy + totals['idle']}"
        )
    for load in analysis.loads:
        if not (-1e-9 <= load.busy_fraction <= 1.0 + 1e-9):
            problems.append(
                f"rank {load.rank} busy fraction {load.busy_fraction} "
                "outside [0, 1]"
            )
    return problems


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------
def format_analysis(
    analysis: RunAnalysis,
    whatifs: list[WhatIf] | None = None,
    top: int = 8,
) -> str:
    """Plain-text report: attribution, stragglers, blocking edges."""
    lines: list[str] = []
    totals = analysis.component_totals()
    ms = analysis.makespan or 1.0
    lines.append(f"critical path over {len(analysis.path.steps)} step(s), "
                 f"makespan {analysis.makespan:.6f}s")
    lines.append(
        f"{'component':<14}{'seconds':>12}{'share':>8}"
    )
    for c in COMPONENTS:
        lines.append(f"{c:<14}{totals[c]:>12.6f}{totals[c] / ms:>8.1%}")

    lines.append("")
    lines.append("per-skeleton critical-path attribution (exclusive):")
    lines.append(
        f"{'skeleton':<26}{'on-path [s]':>12}{'compute':>9}{'latency':>9}"
        f"{'bandw':>7}{'idle':>7}"
    )
    rows = sorted(
        analysis.path.by_skeleton().items(),
        key=lambda kv: -math.fsum(kv[1].values()),
    )
    for name, comp in rows:
        tot = math.fsum(comp.values()) or 1.0
        lines.append(
            f"{name:<26}{math.fsum(comp.values()):>12.6f}"
            f"{comp['compute'] / tot:>8.0%}{comp['latency'] / tot:>9.0%}"
            f"{comp['bandwidth'] / tot:>7.0%}{comp['idle'] / tot:>7.0%}"
        )

    lines.append("")
    lines.append("rank loads (busy fraction of makespan):")
    loads = analysis.loads
    if loads:
        worst = min(loads, key=lambda l: l.busy_fraction)
        best = max(loads, key=lambda l: l.busy_fraction)
        mean = math.fsum(l.busy_fraction for l in loads) / len(loads)
        lines.append(
            f"  mean {mean:.1%}   busiest rank {best.rank} {best.busy_fraction:.1%}"
            f"   idlest rank {worst.rank} {worst.busy_fraction:.1%}"
        )
    lines.append("")
    lines.append("per-skeleton imbalance (max/median busy across ranks):")
    lines.append(
        f"{'skeleton':<26}{'calls':>6}{'skew':>8}{'straggler':>10}"
        f"{'max busy [s]':>14}"
    )
    for im in analysis.imbalance[:top]:
        skew = f"{im.skew:.2f}" if math.isfinite(im.skew) else "inf"
        lines.append(
            f"{im.name:<26}{im.calls:>6}{skew:>8}{im.straggler_rank:>10}"
            f"{im.max_busy:>14.6f}"
        )

    lines.append("")
    n_transfers = sum(
        1 for s in analysis.path.steps if s.kind == "transfer"
    )
    lines.append("top blocking edges on the critical path "
                 f"(of {n_transfers} transfers):")
    lines.append(
        f"{'src->dst':<10}{'bytes':>8}{'seconds':>12}{'tag':>14}"
        f"  skeleton"
    )
    for s in analysis.path.blocking_edges(top):
        r = s.record
        assert r is not None
        lines.append(
            f"{f'{r.src}->{r.dst}':<10}{r.nbytes:>8}{s.duration:>12.6f}"
            f"{r.tag:>14}  {s.skeleton}"
        )

    if whatifs:
        lines.append("")
        lines.append("what-if replays (perturbed analytic re-runs):")
        lines.append(
            f"{'scenario':<18}{'makespan [s]':>13}{'delta':>10}{'bound':>10}"
            f"{'ok':>5}"
        )
        for w in whatifs:
            bound = f"{w.bound:.4f}" if w.bound is not None else "-"
            ok = "-" if w.within_bound is None else ("yes" if w.within_bound else "NO")
            lines.append(
                f"{w.scenario:<18}{w.makespan:>13.6f}{w.delta:>10.4f}"
                f"{bound:>10}{ok:>5}"
            )
    return "\n".join(lines)

"""Paired begin/end spans over the simulated clocks.

A span brackets one skeleton invocation (or one phase of a composite
skeleton, e.g. ``array_gen_mult``'s skew/multiply/rotate phases) and
attributes to it everything that accrued while it was open: simulated
compute/comm/idle seconds, message and byte counts, and the set of
ranks whose clocks moved.  Attribution works by snapshotting the shared
:class:`~repro.machine.trace.TraceStats` counters and the per-processor
clock vector at ``begin`` and diffing at ``end`` — no per-message
bookkeeping, so the tracer itself is cheap even on long runs.

Spans nest by stack discipline; a span's numbers are *inclusive* of its
children (the exporters compute exclusive values where needed).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import SkilError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.network import Network
    from repro.machine.trace import TraceStats

__all__ = ["Span", "SpanTracer", "SpanError"]


class SpanError(SkilError):
    """begin/end pairing was violated (end without begin, wrong order)."""


@dataclass
class Span:
    """One closed (or still-open) traced interval."""

    name: str
    category: str  # "skeleton" | "phase"
    index: int  # position in SpanTracer.spans
    parent: int | None  # index of the enclosing span, if any
    depth: int
    begin_time: float
    end_time: float | None = None
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    idle_seconds: float = 0.0
    messages: int = 0
    bytes_sent: int = 0
    ranks: tuple[int, ...] = ()

    @property
    def closed(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> float:
        """Simulated makespan advance while the span was open."""
        return (self.end_time or self.begin_time) - self.begin_time

    @property
    def busy_total(self) -> float:
        return self.compute_seconds + self.comm_seconds + self.idle_seconds


@dataclass
class _Snapshot:
    compute: float
    comm: float
    idle: float
    messages: int
    bytes_sent: int
    clocks: "object"  # np.ndarray copy


class SpanTracer:
    """Records a tree of spans against a stats object and a clock vector."""

    def __init__(self, stats: "TraceStats", network: "Network"):
        self.stats = stats
        self.network = network
        self.spans: list[Span] = []
        self._stack: list[tuple[Span, _Snapshot]] = []

    # ------------------------------------------------------------------ core
    def begin(self, name: str, category: str = "skeleton") -> Span:
        parent = self._stack[-1][0].index if self._stack else None
        span = Span(
            name=name,
            category=category,
            index=self._issue_index(),
            parent=parent,
            depth=len(self._stack),
            begin_time=self.network.time,
        )
        snap = _Snapshot(
            compute=self.stats.compute_seconds,
            comm=self.stats.comm_seconds,
            idle=float(self.stats.idle_seconds),
            messages=self.stats.messages,
            bytes_sent=self.stats.bytes_sent,
            clocks=self.network.clocks.copy(),
        )
        self._register(span)
        self._stack.append((span, snap))
        return span

    # -------------------------------------------------------------- hooks
    # Retention policy is factored into three overridable hooks so the
    # streaming tracer (:class:`repro.obs.stream.StreamSpanTracer`) can
    # keep only the open stack: indices stay monotone, closed spans flow
    # to an observer instead of accumulating in :attr:`spans`.  ``begin``
    # reads the parent index off the stacked Span object and ``end``
    # never indexes :attr:`spans`, so subclasses may drop retention
    # entirely without breaking the pairing logic.
    def _issue_index(self) -> int:
        """Index for the span about to begin."""
        return len(self.spans)

    def _register(self, span: Span) -> None:
        """A span began; default retains it in :attr:`spans`."""
        self.spans.append(span)

    def _finalize(self, span: Span) -> None:
        """A span closed with its attribution filled in; default no-op."""

    def end(self, span: Span | None = None) -> Span:
        """Close the innermost span (or *span*, which must be innermost)."""
        if not self._stack:
            raise SpanError("end() without a matching begin()")
        top, snap = self._stack[-1]
        if span is not None and span is not top:
            raise SpanError(
                f"out-of-order end(): innermost open span is {top.name!r}, "
                f"got {span.name!r}"
            )
        self._stack.pop()
        top.end_time = self.network.time
        top.compute_seconds = self.stats.compute_seconds - snap.compute
        top.comm_seconds = self.stats.comm_seconds - snap.comm
        top.idle_seconds = float(self.stats.idle_seconds) - snap.idle
        top.messages = self.stats.messages - snap.messages
        top.bytes_sent = self.stats.bytes_sent - snap.bytes_sent
        moved = self.network.clocks != snap.clocks
        top.ranks = tuple(int(r) for r in moved.nonzero()[0])
        self._finalize(top)
        return top

    def end_through(self, span: Span) -> Span:
        """Close every open span down to and including *span*.

        Used by error paths: a failing skeleton body may leave nested
        phase spans open; this closes them innermost-first so no begin
        is left dangling.
        """
        if all(s is not span for s, _ in self._stack):
            raise SpanError(f"span {span.name!r} is not open")
        while self._stack[-1][0] is not span:
            self.end()
        return self.end(span)

    @contextmanager
    def span(self, name: str, category: str = "phase") -> Iterator[Span]:
        s = self.begin(name, category=category)
        try:
            yield s
        finally:
            self.end_through(s)

    # ------------------------------------------------------------------ query
    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def closed_spans(self) -> list[Span]:
        return [s for s in self.spans if s.closed]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.index]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent is None]

    def path(self, span: Span) -> tuple[str, ...]:
        """Names from the root down to *span* (flamegraph path)."""
        names: list[str] = []
        cur: Span | None = span
        while cur is not None:
            names.append(cur.name)
            cur = self.spans[cur.parent] if cur.parent is not None else None
        return tuple(reversed(names))

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()

"""Streaming, memory-bounded observability (``trace_mode="stream"``).

The record-mode trace layers (:mod:`repro.machine.trace`,
:mod:`repro.obs.timeline`, :mod:`repro.obs.span`) materialize every
message record, per-rank interval and span in Python lists — O(messages)
memory, which makes a traced run at p=16384 infeasible.  This module
replaces "record everything, analyze later" with *sinks* that consume
the same event stream online:

* exact per-rank/per-kind aggregates (:class:`StreamTimeline`) and
  per-rank message counters (:class:`StreamObserver`) — O(p) memory,
  updated one vectorized wave at a time on the batched charging paths;
* exact per-skeleton aggregates with duration histograms
  (p50/p99 via :meth:`repro.obs.metrics.Histogram.quantile`);
* a seeded reservoir sample of message records and a ring buffer of
  recent spans — O(samples) memory;
* an optional rotating JSONL spill writer
  (:class:`JsonlSpillWriter`) that streams full detail to disk using
  the Chrome trace-event schema of :mod:`repro.obs.export`, one event
  per line — O(1) memory, unbounded disk only on request.

**Bit-identity contract.**  The aggregates are not approximations: every
scalar cell is updated with the same IEEE-754 additions, in the same
order, as a left-to-right fold over the corresponding record-mode lists.
Within one wave each (rank, kind) cell receives its contributions
through ``np.add.at``, which applies element-by-element in index order —
the order the record-mode loop appends intervals.  The ``stream`` pillar
of :mod:`repro.check` holds this line: it folds a full ``trace_level=2``
recording through :func:`fold_recorded` and compares every array
bitwise against a live streamed run.

Only the *reservoir contents* are exempt: retention is a seeded,
deterministic function of the (seed, event sequence, wave grouping), so
a record-mode fold (scalar offers) and a live batched run (wave offers)
draw their uniforms in a different order and may retain different —
always valid — samples of the same stream.
"""

from __future__ import annotations

import json
import os
import sys
import time as _walltime
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro.errors import SkilError
from repro.machine.trace import MessageRecord
from repro.obs.export import _PID, _SPAN_TID, _us
from repro.obs.metrics import Histogram
from repro.obs.span import Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.machine import Machine
    from repro.machine.network import Network
    from repro.machine.trace import TraceStats

__all__ = [
    "ObsSink",
    "StreamConfig",
    "StreamTimeline",
    "StreamObserver",
    "StreamSpanTracer",
    "ReservoirSampler",
    "SpanRing",
    "JsonlSpillWriter",
    "SkeletonAgg",
    "ProgressReporter",
    "fold_recorded",
    "compare_observers",
    "KINDS",
    "DURATION_BUCKETS",
]

#: activity kinds with pre-allocated per-rank aggregate slots; unknown
#: kinds get their own arrays on first sight.
KINDS = ("compute", "send", "recv", "idle")

#: span-duration buckets in simulated seconds: powers of two from ~1 ns
#: to ~17 min, fine enough for p50/p99 interpolation on any profile.
DURATION_BUCKETS = tuple(2.0 ** k for k in range(-30, 11))


@runtime_checkable
class ObsSink(Protocol):
    """Consumer of the trace event stream.

    :class:`~repro.machine.trace.TraceStats` forwards every message to
    its ``sink`` (scalar or as a vectorized wave, matching how the
    charging path emitted it); the span tracer forwards every *closed*
    span.  Interval emission flows through a timeline object installed
    as ``network.timeline`` — :class:`StreamTimeline` here — rather
    than through this protocol, because the Network/Engine already
    speak the ``timeline.add`` interface.
    """

    def on_message(
        self,
        time: float,
        src: int,
        dst: int,
        nbytes: int,
        hops: int,
        tag: str,
        depart: float,
    ) -> None: ...

    def on_message_wave(
        self, times, srcs, dsts, nbytes, hops, tag: str, departs
    ) -> None: ...

    def on_span(self, span: Span) -> None: ...


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming layer; the defaults keep a run at
    p=16384 in a few MB of trace state."""

    #: reservoir capacity — how many message records are retained
    sample_size: int = 1024
    #: ring capacity — how many recent closed spans are retained
    ring_size: int = 256
    #: seed of the reservoir's RNG (retention is deterministic per path)
    seed: int = 0
    #: when set, stream full-detail Chrome events (intervals, messages,
    #: spans) to this JSONL file, rotating at :attr:`spill_max_bytes`
    spill_path: str | None = None
    spill_max_bytes: int = 8 << 20
    #: rotated files kept as ``<path>.1 .. <path>.N`` (oldest dropped)
    spill_keep: int = 4
    #: wall-clock seconds between heartbeat lines when a
    #: :class:`ProgressReporter` is attached
    heartbeat_every: float = 5.0


# ---------------------------------------------------------------- samplers
class ReservoirSampler:
    """Algorithm-R reservoir over the message stream.

    Every offered message beyond the fill phase draws one uniform from
    a seeded PCG64 generator (plus one more to pick the slot when it is
    accepted), so retention is a pure function of the seed and the
    offer sequence.  Wave offers draw the same underlying stream as
    scalar offers but in vectorized order; see the module docstring for
    why reservoir *contents* are outside the bit-identity contract.
    """

    def __init__(self, capacity: int, seed: int = 0):
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.seen = 0
        self.items: list[MessageRecord] = []
        self._rng = np.random.Generator(np.random.PCG64(self.seed))

    def offer(
        self,
        time: float,
        src: int,
        dst: int,
        nbytes: int,
        hops: int,
        tag: str,
        depart: float,
    ) -> None:
        self.seen += 1
        if self.capacity <= 0:
            return
        if len(self.items) < self.capacity:
            self.items.append(
                MessageRecord(
                    float(time), int(src), int(dst), int(nbytes), int(hops),
                    tag, float(depart),
                )
            )
            return
        if float(self._rng.random()) * self.seen < self.capacity:
            slot = int(self._rng.random() * self.capacity)
            self.items[slot] = MessageRecord(
                float(time), int(src), int(dst), int(nbytes), int(hops),
                tag, float(depart),
            )

    def offer_wave(self, times, srcs, dsts, nbytes, hops, tag: str, departs) -> None:
        k = len(srcs)
        if self.capacity <= 0:
            self.seen += k
            return
        fill = min(max(self.capacity - len(self.items), 0), k)
        for i in range(fill):
            self.items.append(
                MessageRecord(
                    float(times[i]), int(srcs[i]), int(dsts[i]),
                    int(nbytes[i]), int(hops[i]), tag, float(departs[i]),
                )
            )
        rest = k - fill
        if rest:
            # item ordinals (1-based count including the item itself),
            # continuing from everything seen before this wave
            ordinals = self.seen + fill + 1 + np.arange(rest, dtype=np.float64)
            accept = self._rng.random(rest) * ordinals < self.capacity
            for j in np.nonzero(accept)[0].tolist():
                slot = int(self._rng.random() * self.capacity)
                i = fill + j
                self.items[slot] = MessageRecord(
                    float(times[i]), int(srcs[i]), int(dsts[i]),
                    int(nbytes[i]), int(hops[i]), tag, float(departs[i]),
                )
        self.seen += k

    def __len__(self) -> int:
        return len(self.items)

    def clear(self) -> None:
        self.seen = 0
        self.items.clear()
        self._rng = np.random.Generator(np.random.PCG64(self.seed))


class SpanRing:
    """Ring buffer of the most recent closed spans."""

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self.seen = 0
        self._buf: deque[Span] = deque(maxlen=max(self.capacity, 0))

    def append(self, span: Span) -> None:
        self.seen += 1
        if self.capacity > 0:
            self._buf.append(span)

    def items(self) -> list[Span]:
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def clear(self) -> None:
        self.seen = 0
        self._buf.clear()


# ---------------------------------------------------------------- spilling
class JsonlSpillWriter:
    """Rotating JSONL writer of Chrome trace events, one per line.

    Reuses the event schema of :mod:`repro.obs.export` (complete
    ``"ph": "X"`` events with µs timestamps), so a spill file converts
    to a loadable trace by wrapping the lines in a ``traceEvents``
    array.  Rotation renames ``path`` → ``path.1`` → … → ``path.N``
    (``spill_keep``) and truncates, bounding disk per file while the
    writer itself stays O(1) memory.
    """

    def __init__(self, path: str, max_bytes: int = 8 << 20, keep: int = 4):
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.keep = int(keep)
        self.events_written = 0
        self.rotations = 0
        self._bytes = 0
        self._fh = open(self.path, "w", encoding="utf-8")

    def write_event(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":")) + "\n"
        if self._bytes and self._bytes + len(line) > self.max_bytes:
            self.rotate()
        self._fh.write(line)
        self._bytes += len(line)
        self.events_written += 1

    def rotate(self) -> None:
        self._fh.close()
        for i in range(self.keep - 1, 0, -1):
            older = f"{self.path}.{i}"
            if os.path.exists(older):
                os.replace(older, f"{self.path}.{i + 1}")
        if self.keep > 0:
            os.replace(self.path, f"{self.path}.1")
        self._fh = open(self.path, "w", encoding="utf-8")
        self._bytes = 0
        self.rotations += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSpillWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _interval_event(rank, kind, start, end, detail: str = "") -> dict[str, Any]:
    return {
        "ph": "X",
        "name": detail or kind,
        "cat": kind,
        "pid": _PID,
        "tid": int(rank) + 1,
        "ts": _us(float(start)),
        "dur": _us(float(end) - float(start)),
        "args": {},
    }


def _span_event(span: Span) -> dict[str, Any]:
    return {
        "ph": "X",
        "name": span.name,
        "cat": span.category,
        "pid": _PID,
        "tid": _SPAN_TID,
        "ts": _us(span.begin_time),
        "dur": _us(span.duration),
        "args": {
            "compute_s": span.compute_seconds,
            "comm_s": span.comm_seconds,
            "idle_s": span.idle_seconds,
            "messages": span.messages,
            "bytes": span.bytes_sent,
            "ranks": list(span.ranks),
        },
    }


def _message_event(time, src, dst, nbytes, hops, tag, depart) -> dict[str, Any]:
    t = float(time)
    d = float(depart)
    ts = d if d >= 0.0 else t
    return {
        "ph": "X",
        "name": tag or "message",
        "cat": "message",
        "pid": _PID,
        "tid": int(dst) + 1,
        "ts": _us(ts),
        "dur": _us(max(t - ts, 0.0)),
        "args": {"src": int(src), "nbytes": int(nbytes), "hops": int(hops)},
    }


# ---------------------------------------------------------------- timeline
class StreamTimeline:
    """O(p) stand-in for :class:`repro.obs.timeline.Timeline`.

    Speaks the same ``add(rank, kind, start, end, detail)`` interface
    (including the drop of zero/negative-length intervals), so the
    Network's scalar paths and the Engine emit into it unchanged; the
    batched charging paths detect :attr:`wave_api` and push one
    vectorized :meth:`add_many` per wave instead.  Per (rank, kind) it
    keeps exact total seconds and interval counts; per rank the
    earliest start / latest end over all kinds (the record-mode
    ``span()`` query).
    """

    #: batched emitters branch on this to use :meth:`add_many`
    wave_api = True

    def __init__(self, p: int, observer: "StreamObserver | None" = None):
        self.p = int(p)
        self.seconds: dict[str, np.ndarray] = {
            k: np.zeros(self.p, dtype=np.float64) for k in KINDS
        }
        self.counts: dict[str, np.ndarray] = {
            k: np.zeros(self.p, dtype=np.int64) for k in KINDS
        }
        self.first_start = np.full(self.p, np.inf, dtype=np.float64)
        self.last_end = np.full(self.p, -np.inf, dtype=np.float64)
        self.intervals_seen = 0
        self._observer = observer

    def _slot(self, kind: str) -> tuple[np.ndarray, np.ndarray]:
        sec = self.seconds.get(kind)
        if sec is None:
            sec = self.seconds[kind] = np.zeros(self.p, dtype=np.float64)
            self.counts[kind] = np.zeros(self.p, dtype=np.int64)
        return sec, self.counts[kind]

    def add(
        self, rank: int, kind: str, start: float, end: float, detail: str = ""
    ) -> None:
        """Scalar interval; bit-identical to the record-mode fold."""
        if not end > start:
            return
        sec, cnt = self._slot(kind)
        r = int(rank)
        sec[r] += float(end) - float(start)
        cnt[r] += 1
        if start < self.first_start[r]:
            self.first_start[r] = start
        if end > self.last_end[r]:
            self.last_end[r] = end
        self.intervals_seen += 1
        obs = self._observer
        if obs is not None and obs.spill is not None:
            obs.spill.write_event(_interval_event(r, kind, start, end, detail))

    def add_many(self, ranks, kind: str, starts, ends, detail: str = "") -> None:
        """One vectorized wave of same-kind intervals.

        Equivalent — cell for cell, bit for bit — to calling
        :meth:`add` per entry in index order: ``np.add.at`` applies its
        updates element-by-element, and the drop mask reproduces the
        ``end > start`` guard.
        """
        rs = np.asarray(ranks)
        ss = np.asarray(starts, dtype=np.float64)
        es = np.asarray(ends, dtype=np.float64)
        mask = es > ss
        if not mask.any():
            return
        rs, ss, es = rs[mask], ss[mask], es[mask]
        sec, cnt = self._slot(kind)
        np.add.at(sec, rs, es - ss)
        np.add.at(cnt, rs, 1)
        np.minimum.at(self.first_start, rs, ss)
        np.maximum.at(self.last_end, rs, es)
        self.intervals_seen += int(rs.size)
        obs = self._observer
        if obs is not None and obs.spill is not None:
            for i in range(rs.size):
                obs.spill.write_event(
                    _interval_event(rs[i], kind, ss[i], es[i], detail)
                )

    # ------------------------------------------------------------- queries
    def kinds(self) -> list[str]:
        return sorted(k for k, c in self.counts.items() if c.any())

    def busy_seconds_by_rank(self) -> np.ndarray:
        """Per-rank non-idle seconds (sum over kinds; overlaps not
        merged — the streaming layer has no interval endpoints left to
        merge, which is the documented difference from record-mode
        :meth:`~repro.obs.timeline.Timeline.coverage`)."""
        busy = np.zeros(self.p, dtype=np.float64)
        for kind, sec in self.seconds.items():
            if kind != "idle":
                busy += sec
        return busy

    def idle_seconds_by_rank(self) -> np.ndarray:
        return self.seconds["idle"].copy()

    def span(self, rank: int) -> tuple[float, float] | None:
        r = int(rank)
        if not np.isfinite(self.first_start[r]):
            return None
        return float(self.first_start[r]), float(self.last_end[r])

    def __len__(self) -> int:
        """Intervals *seen* (none are retained)."""
        return self.intervals_seen

    def clear(self) -> None:
        for arr in self.seconds.values():
            arr.fill(0.0)
        for arr in self.counts.values():
            arr.fill(0)
        self.first_start.fill(np.inf)
        self.last_end.fill(-np.inf)
        self.intervals_seen = 0


# ---------------------------------------------------------------- span aggs
@dataclass
class SkeletonAgg:
    """Online aggregate over the closed spans of one (category, name).

    Attribution is *inclusive* of nested spans, matching
    :attr:`repro.obs.span.Span` semantics; the exclusive breakdown of
    ``repro.eval.trace_report`` needs the full span tree and remains a
    record-mode feature.
    """

    name: str
    category: str
    calls: int = 0
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    idle_seconds: float = 0.0
    messages: int = 0
    bytes_sent: int = 0
    duration_seconds: float = 0.0
    durations: Histogram = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.durations is None:
            self.durations = Histogram(
                f"span.duration.{self.name}", buckets=DURATION_BUCKETS
            )

    def fold(self, span: Span) -> None:
        self.calls += 1
        self.compute_seconds += span.compute_seconds
        self.comm_seconds += span.comm_seconds
        self.idle_seconds += span.idle_seconds
        self.messages += span.messages
        self.bytes_sent += span.bytes_sent
        self.duration_seconds += span.duration
        self.durations.observe(span.duration)

    @property
    def busy_total(self) -> float:
        return self.compute_seconds + self.comm_seconds + self.idle_seconds


# ---------------------------------------------------------------- observer
class StreamObserver:
    """Composite :class:`ObsSink`: exact aggregates + bounded samples.

    Owns the :class:`StreamTimeline` that ``Machine`` installs as the
    network's timeline, the reservoir/ring samplers, and the optional
    spill writer.  Memory is O(p + sample_size + ring_size) by
    construction; :meth:`accounting` exposes the exact footprint and
    :meth:`assert_bounded` turns it into a hard invariant.
    """

    def __init__(self, p: int, config: StreamConfig | None = None):
        self.p = int(p)
        self.config = config or StreamConfig()
        self.spill = (
            JsonlSpillWriter(
                self.config.spill_path,
                max_bytes=self.config.spill_max_bytes,
                keep=self.config.spill_keep,
            )
            if self.config.spill_path
            else None
        )
        self.timeline = StreamTimeline(self.p, observer=self)
        self.reservoir = ReservoirSampler(
            self.config.sample_size, seed=self.config.seed
        )
        self.ring = SpanRing(self.config.ring_size)
        # exact per-rank message aggregates
        self.sent_count = np.zeros(self.p, dtype=np.int64)
        self.recv_count = np.zeros(self.p, dtype=np.int64)
        self.sent_bytes = np.zeros(self.p, dtype=np.int64)
        self.recv_bytes = np.zeros(self.p, dtype=np.int64)
        self.sent_hops = np.zeros(self.p, dtype=np.int64)
        # exact per-tag totals
        self.tag_messages: dict[str, int] = {}
        self.tag_bytes: dict[str, int] = {}
        self.messages_seen = 0
        self.spans_seen = 0
        #: exact per-(category, name) span aggregates
        self.span_aggs: dict[tuple[str, str], SkeletonAgg] = {}
        #: optional heartbeat, ticked on span closes
        self.heartbeat: "ProgressReporter | None" = None

    # ----------------------------------------------------------- messages
    def on_message(
        self,
        time: float,
        src: int,
        dst: int,
        nbytes: int,
        hops: int,
        tag: str,
        depart: float,
    ) -> None:
        s, d, nb = int(src), int(dst), int(nbytes)
        self.sent_count[s] += 1
        self.recv_count[d] += 1
        self.sent_bytes[s] += nb
        self.recv_bytes[d] += nb
        self.sent_hops[s] += int(hops)
        key = tag or "untagged"
        self.tag_messages[key] = self.tag_messages.get(key, 0) + 1
        self.tag_bytes[key] = self.tag_bytes.get(key, 0) + nb
        self.messages_seen += 1
        self.reservoir.offer(time, src, dst, nbytes, hops, tag, depart)
        if self.spill is not None:
            self.spill.write_event(
                _message_event(time, src, dst, nbytes, hops, tag, depart)
            )

    def on_message_wave(
        self, times, srcs, dsts, nbytes, hops, tag: str, departs
    ) -> None:
        k = len(srcs)
        if k == 0:
            return
        ss = np.asarray(srcs)
        ds = np.asarray(dsts)
        nbs = np.asarray(nbytes, dtype=np.int64)
        hps = np.asarray(hops, dtype=np.int64)
        if departs is None:
            departs = np.full(k, -1.0)
        np.add.at(self.sent_count, ss, 1)
        np.add.at(self.recv_count, ds, 1)
        np.add.at(self.sent_bytes, ss, nbs)
        np.add.at(self.recv_bytes, ds, nbs)
        np.add.at(self.sent_hops, ss, hps)
        key = tag or "untagged"
        self.tag_messages[key] = self.tag_messages.get(key, 0) + k
        self.tag_bytes[key] = self.tag_bytes.get(key, 0) + int(nbs.sum(dtype=np.int64))
        self.messages_seen += k
        self.reservoir.offer_wave(times, srcs, dsts, nbs, hps, tag, departs)
        if self.spill is not None:
            for i in range(k):
                self.spill.write_event(
                    _message_event(
                        times[i], ss[i], ds[i], nbs[i], hps[i], tag, departs[i]
                    )
                )

    # -------------------------------------------------------------- spans
    def on_span(self, span: Span) -> None:
        key = (span.category, span.name)
        agg = self.span_aggs.get(key)
        if agg is None:
            agg = self.span_aggs[key] = SkeletonAgg(span.name, span.category)
        agg.fold(span)
        self.ring.append(span)
        self.spans_seen += 1
        if self.spill is not None:
            self.spill.write_event(_span_event(span))
        if self.heartbeat is not None:
            self.heartbeat.maybe_report()

    # ---------------------------------------------------------- accounting
    def accounting(self) -> dict[str, int]:
        """Exact footprint counters of everything this observer retains.

        ``per_rank_cells`` counts array elements across all per-rank
        aggregates (O(p)); the ``*_retained`` counters are capped by
        configuration while the ``*_seen`` counters grow with the run —
        their ratio is the memory the streaming layer saved.
        """
        cells = 5 * self.p + 2 * self.p  # message arrays + first/last
        for arr in self.timeline.seconds.values():
            cells += arr.size
        for arr in self.timeline.counts.values():
            cells += arr.size
        return {
            "p": self.p,
            "per_rank_cells": cells,
            "messages_seen": self.messages_seen,
            "intervals_seen": self.timeline.intervals_seen,
            "spans_seen": self.spans_seen,
            "records_retained": len(self.reservoir),
            "records_cap": self.reservoir.capacity,
            "spans_retained": len(self.ring),
            "spans_cap": self.ring.capacity,
            "intervals_retained": 0,
            "span_agg_keys": len(self.span_aggs),
            "tag_keys": len(self.tag_messages),
            "spill_events": self.spill.events_written if self.spill else 0,
        }

    def assert_bounded(self) -> dict[str, int]:
        """Raise unless retained state is within the O(p + samples) bound."""
        acc = self.accounting()
        problems: list[str] = []
        if acc["records_retained"] > acc["records_cap"]:
            problems.append(
                f"reservoir over capacity: {acc['records_retained']} > "
                f"{acc['records_cap']}"
            )
        if acc["spans_retained"] > max(acc["spans_cap"], 0):
            problems.append(
                f"span ring over capacity: {acc['spans_retained']} > "
                f"{acc['spans_cap']}"
            )
        # per-rank state: two arrays per activity kind plus seven fixed
        # arrays; anything beyond 64 cells/rank means a retention leak
        if acc["per_rank_cells"] > 64 * self.p:
            problems.append(
                f"per-rank state grew past O(p): {acc['per_rank_cells']} "
                f"cells for p={self.p}"
            )
        if acc["intervals_retained"] != 0:
            problems.append("stream timeline retained intervals")
        if problems:
            raise SkilError(
                "stream observability exceeded its memory bound: "
                + "; ".join(problems)
            )
        return acc

    def clear(self) -> None:
        self.timeline.clear()
        self.reservoir.clear()
        self.ring.clear()
        for arr in (
            self.sent_count,
            self.recv_count,
            self.sent_bytes,
            self.recv_bytes,
            self.sent_hops,
        ):
            arr.fill(0)
        self.tag_messages.clear()
        self.tag_bytes.clear()
        self.messages_seen = 0
        self.spans_seen = 0
        self.span_aggs.clear()

    def close(self) -> None:
        if self.spill is not None:
            self.spill.close()


# ---------------------------------------------------------------- tracer
class StreamSpanTracer(SpanTracer):
    """Span tracer that retains only the open stack.

    Indices stay monotone in begin order (identical to record mode), so
    ``parent``/``index`` fields of streamed spans match the record-mode
    tracer field for field; closed spans flow to the observer instead
    of accumulating in :attr:`spans` (which stays empty — query helpers
    that need the full tree are record-mode only).
    """

    def __init__(self, stats: "TraceStats", network: "Network", observer: StreamObserver):
        super().__init__(stats, network)
        self.observer = observer
        self._next_index = 0

    def _issue_index(self) -> int:
        return self._next_index

    def _register(self, span: Span) -> None:
        self._next_index += 1

    def _finalize(self, span: Span) -> None:
        self.observer.on_span(span)

    def clear(self) -> None:
        super().clear()
        self._next_index = 0


# ---------------------------------------------------------------- progress
class ProgressReporter:
    """Wall-clock heartbeat for long runs.

    Emits at most one line every ``interval`` wall-seconds (unless
    forced): elapsed wall time, simulated time, message/skeleton
    counters, a straggler flag from the per-rank busy aggregates, and —
    when the caller knows the target simulated time — an ETA.  Also
    usable as a plain step logger via :meth:`note` (``eval all
    --progress``).
    """

    def __init__(
        self,
        machine: "Machine | None" = None,
        out=None,
        interval: float = 5.0,
        total_sim_hint: float | None = None,
        clock=_walltime.monotonic,
        straggler_skew: float = 1.5,
    ):
        self.machine = machine
        self.out = out if out is not None else sys.stderr
        self.interval = float(interval)
        self.total_sim_hint = total_sim_hint
        self.straggler_skew = float(straggler_skew)
        self._clock = clock
        self._t0 = clock()
        self._last = -np.inf
        self.lines_emitted = 0

    # ------------------------------------------------------------- emitters
    def note(self, label: str) -> None:
        """Unconditional progress line (one per evaluation step)."""
        self._emit(f"[{self._fmt_wall(self.elapsed())}] {label}")

    def maybe_report(self, force: bool = False) -> bool:
        now = self._clock()
        if not force and now - self._last < self.interval:
            return False
        self._last = now
        self._emit(self.format_line())
        return True

    def _emit(self, line: str) -> None:
        print(line, file=self.out, flush=True)
        self.lines_emitted += 1

    # ------------------------------------------------------------- content
    def elapsed(self) -> float:
        return self._clock() - self._t0

    def format_line(self) -> str:
        m = self.machine
        wall = self._fmt_wall(self.elapsed())
        if m is None:
            return f"[{wall}] heartbeat"
        stats = m.stats
        parts = [
            f"[{wall}]",
            f"sim={m.time:.6g}s",
            f"msgs={stats.messages}",
            f"skeletons={stats.skeleton_calls}",
        ]
        obs = getattr(m, "stream_obs", None)
        if obs is not None:
            busy = obs.timeline.busy_seconds_by_rank()
            med = float(np.median(busy))
            if med > 0.0:
                worst = int(np.argmax(busy))
                skew = float(busy[worst]) / med
                if skew >= self.straggler_skew:
                    parts.append(f"straggler=r{worst}(x{skew:.2f})")
                else:
                    parts.append("balanced")
        if self.total_sim_hint and m.time > 0.0:
            frac = min(m.time / self.total_sim_hint, 1.0)
            if frac > 0.0:
                eta = self.elapsed() * (1.0 - frac) / frac
                parts.append(f"~{frac:.0%}")
                parts.append(f"eta={self._fmt_wall(eta)}")
        return " ".join(parts)

    @staticmethod
    def _fmt_wall(seconds: float) -> str:
        s = max(float(seconds), 0.0)
        if s < 60.0:
            return f"{s:.1f}s"
        mnt, sec = divmod(int(s), 60)
        hrs, mnt = divmod(mnt, 60)
        return f"{hrs}h{mnt:02d}m" if hrs else f"{mnt}m{sec:02d}s"


# ---------------------------------------------------------------- folding
def _close_order(tracer: SpanTracer) -> list[Span]:
    """Closed spans of a record-mode tracer in the order they closed.

    Under stack discipline the close sequence is exactly the post-order
    of the span forest with children visited in begin (index) order —
    do *not* sort by ``end_time``, which ties for spans closing at the
    same simulated instant.
    """
    children: dict[int | None, list[Span]] = {}
    for s in tracer.spans:
        children.setdefault(s.parent, []).append(s)
    out: list[Span] = []

    def visit(span: Span) -> None:
        for c in children.get(span.index, []):
            visit(c)
        if span.closed:
            out.append(span)

    for root in children.get(None, []):
        visit(root)
    return out


def fold_recorded(
    machine: "Machine", config: StreamConfig | None = None
) -> StreamObserver:
    """Fold a full ``trace_level=2`` recording into stream aggregates.

    Replays the recorded timeline intervals (append order), message
    records (append order) and closed spans (close order) through a
    fresh :class:`StreamObserver` using the same scalar update
    arithmetic as live streaming.  Everything except reservoir
    *contents* is bit-identical to running the same workload under
    ``trace_mode="stream"`` — the equality the ``stream`` check pillar
    asserts via :func:`compare_observers`.
    """
    timeline = machine.timeline
    tracer = machine.tracer
    if timeline is None or tracer is None or not machine.stats.keep_records:
        raise SkilError(
            "fold_recorded needs a full recording: "
            "Machine(trace_level=2) in the default record mode"
        )
    obs = StreamObserver(machine.p, config)
    for iv in timeline.intervals:
        obs.timeline.add(iv.rank, iv.kind, iv.start, iv.end, iv.detail)
    for rec in machine.stats.records:
        obs.on_message(
            rec.time, rec.src, rec.dst, rec.nbytes, rec.hops, rec.tag, rec.depart
        )
    for span in _close_order(tracer):
        obs.on_span(span)
    return obs


def _diff_arrays(name: str, a: np.ndarray, b: np.ndarray, problems: list[str]) -> None:
    if a.shape != b.shape:
        problems.append(f"{name}: shape {a.shape} vs {b.shape}")
        return
    if not np.array_equal(a, b):
        idx = int(np.argmax(a != b))
        problems.append(f"{name}: first diff at [{idx}]: {a[idx]!r} vs {b[idx]!r}")


def compare_observers(a: StreamObserver, b: StreamObserver) -> list[str]:
    """Bitwise comparison of two observers' exact state.

    Returns human-readable problems (empty list = identical).  The
    reservoir is compared by ``seen`` count only — its contents depend
    on wave grouping (module docstring) — and the spill writer is not
    compared at all.
    """
    problems: list[str] = []
    if a.p != b.p:
        return [f"p: {a.p} vs {b.p}"]
    ta, tb = a.timeline, b.timeline
    if set(ta.seconds) != set(tb.seconds):
        problems.append(
            f"timeline kinds: {sorted(ta.seconds)} vs {sorted(tb.seconds)}"
        )
    else:
        for kind in sorted(ta.seconds):
            _diff_arrays(f"timeline.seconds[{kind}]", ta.seconds[kind],
                         tb.seconds[kind], problems)
            _diff_arrays(f"timeline.counts[{kind}]", ta.counts[kind],
                         tb.counts[kind], problems)
    _diff_arrays("timeline.first_start", ta.first_start, tb.first_start, problems)
    _diff_arrays("timeline.last_end", ta.last_end, tb.last_end, problems)
    if ta.intervals_seen != tb.intervals_seen:
        problems.append(
            f"intervals_seen: {ta.intervals_seen} vs {tb.intervals_seen}"
        )
    for name in ("sent_count", "recv_count", "sent_bytes", "recv_bytes", "sent_hops"):
        _diff_arrays(name, getattr(a, name), getattr(b, name), problems)
    for name in ("tag_messages", "tag_bytes"):
        da, db = getattr(a, name), getattr(b, name)
        if da != db:
            problems.append(f"{name}: {da} vs {db}")
    if a.messages_seen != b.messages_seen:
        problems.append(f"messages_seen: {a.messages_seen} vs {b.messages_seen}")
    if a.reservoir.seen != b.reservoir.seen:
        problems.append(
            f"reservoir.seen: {a.reservoir.seen} vs {b.reservoir.seen}"
        )
    if a.spans_seen != b.spans_seen:
        problems.append(f"spans_seen: {a.spans_seen} vs {b.spans_seen}")
    if set(a.span_aggs) != set(b.span_aggs):
        problems.append(
            f"span agg keys: {sorted(a.span_aggs)} vs {sorted(b.span_aggs)}"
        )
    else:
        for key in sorted(a.span_aggs):
            ga, gb = a.span_aggs[key], b.span_aggs[key]
            for fname in (
                "calls",
                "compute_seconds",
                "comm_seconds",
                "idle_seconds",
                "messages",
                "bytes_sent",
                "duration_seconds",
            ):
                va, vb = getattr(ga, fname), getattr(gb, fname)
                if va != vb:
                    problems.append(f"span_aggs[{key}].{fname}: {va!r} vs {vb!r}")
            ha, hb = ga.durations, gb.durations
            if (ha.counts, ha.total, ha.count, ha.min, ha.max) != (
                hb.counts, hb.total, hb.count, hb.min, hb.max
            ):
                problems.append(f"span_aggs[{key}].durations histogram differs")
    if a.ring.items() != b.ring.items():
        problems.append("span ring contents differ")
    return problems

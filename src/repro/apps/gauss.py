"""Gaussian elimination — paper §4.2.

Solves ``A x = b`` by Gauss-Jordan transformation of the extended
``n x (n+1)`` matrix, written purely with skeletons:

* the matrix is divided into ``p`` row blocks ("each containing n/p
  rows; we assume for simplicity that p divides n");
* the pivot row is found by ``array_fold`` over ``elemrec`` records with
  ``max_abs_in_col(k)`` (complete version only);
* pivot-row exchange is ``array_permute_rows`` with ``switch_rows``;
* the pivot row travels to everyone through an auxiliary ``piv`` array of
  shape ``p x (n+1)`` — one row per processor — so that row broadcast is
  partition broadcast: ``array_map(copy_pivot(b, k), piv, piv)`` followed
  by ``array_broadcast_part(piv, {k/(n/p), 0})``;
* the elimination itself is ``array_map(eliminate(k, b, piv), b, a)``,
  alternating between the two arrays because the order in which map
  applies its function "cannot be imposed";
* finally ``array_map(normalize(a), a, b)`` divides the last column by
  the diagonal.

Two variants, matching the paper's measurements:

* :func:`gauss_simple` — "implemented without the search and the
  exchange of the pivot row", the version compared against DPFL and
  Parix-C in Table 2;
* :func:`gauss_full` — the complete program of §4.2, measured to cost
  "about twice as long" (ablation A2).
"""

from __future__ import annotations

import numpy as np

from repro.apps.shortest_paths import RunReport
from repro.errors import SkilError, SkilRuntimeError
from repro.machine.machine import DISTR_DEFAULT
from repro.skeletons import SkilContext, papply, skil_fn
from repro.skeletons.base import current_context
from repro.skeletons.fuse import FusionFallback

__all__ = ["gauss_simple", "gauss_full", "ELEMREC", "random_system"]

#: the paper's ``struct _elemrec {float val; int row; int col;}``
ELEMREC = np.dtype([("val", "f8"), ("row", "i8"), ("col", "i8")])


def random_system(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A well-conditioned random system (diagonally dominant)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a += np.eye(n) * (n + 1.0)
    b = rng.uniform(-1.0, 1.0, size=n)
    return a, b


# ---------------------------------------------------------------------------
# the paper's argument functions
# ---------------------------------------------------------------------------
def _make_elemrec_vec(block, grids, env):
    out = np.empty(block.shape, dtype=ELEMREC)
    out["val"] = block
    out["row"] = np.broadcast_to(grids[0], block.shape)
    out["col"] = np.broadcast_to(grids[1], block.shape)
    return out


@skil_fn(ops=1, vectorized=_make_elemrec_vec)
def make_elemrec(v, ix):
    """conv_f: wrap each element with its row and column."""
    rec = np.zeros((), dtype=ELEMREC)
    rec["val"], rec["row"], rec["col"] = float(v), ix[0], ix[1]
    return rec


class MaxAbsInCol:
    """fold_f: maximum |val| among the records of column *k*, rows >= *k*.

    Partial pivoting only considers rows that have not yet served as
    pivot; the paper states the column restriction explicitly and leaves
    the row restriction implicit (rows < k would re-select finished
    pivot rows and destroy the already-eliminated columns).  Ties break
    toward the smaller row so the distributed fold is deterministic
    (the paper merely requires associativity and commutativity; this
    function has both).
    """

    ops = 1.0
    commutative_associative = True

    def __init__(self, k: int):
        self.k = k

    def _eligible(self, rec) -> bool:
        return rec["col"] == self.k and rec["row"] >= self.k

    def __call__(self, x, y):
        if not self._eligible(x):
            return y
        if not self._eligible(y):
            return x
        ax, ay = abs(x["val"]), abs(y["val"])
        if ax != ay:
            return x if ax > ay else y
        return x if x["row"] <= y["row"] else y

    def reduce_all(self, flat: np.ndarray):
        mask = (flat["col"] == self.k) & (flat["row"] >= self.k)
        if not mask.any():
            rec = np.zeros((), dtype=ELEMREC)
            rec["col"] = -1  # neutral: loses against any real record
            return rec
        cand = flat[mask]
        absval = np.abs(cand["val"])
        best = absval.max()
        rows = cand["row"][absval == best]
        return cand[np.nonzero((absval == best) & (cand["row"] == rows.min()))[0][0]]


def switch_rows(r1: int, r2: int, i: int) -> int:
    """perm_f: exchange rows *r1* and *r2*, identity elsewhere."""
    if i == r1:
        return r2
    if i == r2:
        return r1
    return i


def _require_row_block(fenv, *arrays):
    """Fused gauss kernels assume pooled arrays distributed as contiguous
    row blocks over all p processors (grid ``(p, 1)``), which is how the
    paper lays the extended matrix and ``piv`` out.  Anything else falls
    back to the per-rank path."""
    for arr in arrays:
        if arr.pool is None or arr.dist.grid != (fenv.p,) + (1,) * (arr.dim - 1):
            raise FusionFallback("needs pooled row-block arrays")


def _copy_pivot_vec(a, k, block, grids, env):
    """Vectorized copy_pivot: partially applied to (a, k) like the paper."""
    bounds = a.part_bounds(env.rank)
    if bounds.lower[0] <= k < bounds.upper[0]:
        row = a.local(env.rank)[k - bounds.lower[0], :]
        return (row / row[k])[None, :]
    return block


def _copy_pivot_fused(a, k, pool, grids, fenv):
    """Whole-array copy_pivot: one row of ``piv`` changes — the one owned
    by the processor whose partition of *a* contains row *k*.  Same
    ``row / row[k]`` division as the per-rank kernel, so values are
    bit-identical."""
    _require_row_block(fenv, a)
    owner = a.owner((k,) + (0,) * (a.dim - 1))
    row = a.pool[k, :]
    out = pool.copy()
    out[owner, :] = row / row[k]
    return out


@skil_fn(ops=1, vectorized=_copy_pivot_vec, fused=_copy_pivot_fused)
def copy_pivot(a, k, v, ix):
    """Overwrite the piv element if this processor holds the pivot row.

    Mirrors the paper's function: returns ``a[k, j] / a[k, k]`` when row
    *k* lies within the local partition of *a*, the old value otherwise.
    """
    rank = current_context().proc_id()
    bounds = a.part_bounds(rank)
    if bounds.lower[0] <= k < bounds.upper[0]:
        return a.get_elem((k, ix[1]), rank) / a.get_elem((k, k), rank)
    return v


def _eliminate_vec(k, a, piv, block, grids, env):
    """Vectorized eliminate: out = v - a[i,k] * piv[procId, j] except for
    the pivot row and the columns left of the pivot."""
    bounds = a.part_bounds(env.rank)
    ablock = a.local(env.rank)
    col_k = ablock[:, k]
    piv_row = piv.local(env.rank)[0, :]
    out = block - col_k[:, None] * piv_row[None, :]
    out[:, :k] = block[:, :k]
    if bounds.lower[0] <= k < bounds.upper[0]:
        out[k - bounds.lower[0], :] = block[k - bounds.lower[0], :]
    return out


def _eliminate_fused(k, a, piv, pool, grids, fenv):
    """Whole-array eliminate: each row *i* subtracts ``a[i, k]`` times the
    pivot row its owner holds in ``piv``; the pivot row itself and the
    columns left of *k* are restored from the source, exactly like the
    per-rank kernel (elementwise numpy ops are per-element deterministic,
    so the values match bitwise)."""
    _require_row_block(fenv, a, piv)
    ranks = a.dist.owner_vectors()[0]  # owning rank per global row
    col_k = a.pool[:, k]
    piv_rows = piv.pool[ranks, :]
    out = pool - col_k[:, None] * piv_rows
    out[:, :k] = pool[:, :k]
    out[k, :] = pool[k, :]
    return out


@skil_fn(ops=2, vectorized=_eliminate_vec, fused=_eliminate_fused)
def eliminate(k, a, piv, v, ix):
    """The paper's eliminate, scalar path (tiny problems/tests only)."""
    if ix[0] == k or ix[1] < k:
        return v
    rank = current_context().proc_id()
    return v - a.get_elem((ix[0], k), rank) * piv.get_elem((rank, ix[1]), rank)


def _normalize_vec(a, block, grids, env):
    n_col = a.shape[1] - 1
    bounds = a.part_bounds(env.rank)
    rows = np.arange(bounds.lower[0], bounds.upper[0])
    ablock = a.local(env.rank)
    diag = ablock[np.arange(len(rows)), rows]
    out = block.copy()
    out[:, n_col] = block[:, n_col] / diag
    return out


def _normalize_fused(a, pool, grids, fenv):
    """Whole-array normalize: divide the last column by the diagonal."""
    _require_row_block(fenv, a)
    n_col = a.shape[1] - 1
    nrows = a.shape[0]
    diag = a.pool[np.arange(nrows), np.arange(nrows)]
    out = pool.copy()
    out[:, n_col] = pool[:, n_col] / diag
    return out


@skil_fn(ops=1, vectorized=_normalize_vec, fused=_normalize_fused)
def normalize(a, v, ix):
    """Divide the last column by the diagonal element of its row."""
    n_col = a.shape[1] - 1
    if ix[1] != n_col:
        return v
    rank = current_context().proc_id()
    return v / a.get_elem((ix[0], ix[0]), rank)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------
def _setup(ctx: SkilContext, a_mat: np.ndarray, rhs: np.ndarray):
    n = a_mat.shape[0]
    if a_mat.shape != (n, n) or rhs.shape != (n,):
        raise SkilError(f"need A (n x n) and b (n), got {a_mat.shape}, {rhs.shape}")
    if n % ctx.p != 0:
        raise SkilError(
            f"n={n} must be divisible by p={ctx.p} (the paper assumes p | n)"
        )
    ext = np.concatenate([a_mat, rhs[:, None]], axis=1)

    init_ext = skil_fn(
        ops=1, vectorized=lambda grids, env: ext[grids[0], grids[1]]
    )(lambda ix: ext[ix])
    zero = skil_fn(ops=1, vectorized=lambda grids, env: np.zeros(1))(lambda ix: 0.0)

    a = ctx.array_create(2, (n, n + 1), (0, 0), (-1, -1), init_ext, DISTR_DEFAULT)
    if ctx.fusion:
        # b's zero-init is provably dead: every iteration fully
        # overwrites b (array_copy or array_permute_rows from a) before
        # any read — the fusion pass's dead-init elision, mirrored here
        b = ctx.array_create_uninit(2, (n, n + 1), (0, 0), (-1, -1), DISTR_DEFAULT)
    else:
        b = ctx.array_create(2, (n, n + 1), (0, 0), (-1, -1), zero, DISTR_DEFAULT)
    piv = ctx.array_create(2, (ctx.p, n + 1), (0, 0), (-1, -1), zero, DISTR_DEFAULT)
    return n, a, b, piv


def _elimination_step(ctx, k: int, n: int, a, b, piv) -> None:
    """Shared tail of one iteration: pivot copy, broadcast, eliminate.

    On entry *b* holds the current matrix; on exit *a* does.
    """
    ctx.array_map(papply(copy_pivot, b, k), piv, piv)
    ctx.array_broadcast_part(piv, (k // (n // ctx.p), 0))
    ctx.array_map(papply(eliminate, k, b, piv), b, a)


def _finish(ctx, n: int, a, b, piv, start: float) -> tuple[np.ndarray, RunReport]:
    ctx.array_map(papply(normalize, a), a, b)
    x = b.global_view()[:, n].copy()
    report = RunReport(
        seconds=ctx.machine.time - start,
        stats=ctx.machine.stats,
        p=ctx.p,
        n=n,
        profile=ctx.profile.name,
    )
    ctx.array_destroy(a)
    ctx.array_destroy(b)
    ctx.array_destroy(piv)
    return x, report


def gauss_simple(
    ctx: SkilContext, a_mat: np.ndarray, rhs: np.ndarray
) -> tuple[np.ndarray, RunReport]:
    """Gaussian elimination *without* pivot search/exchange (Table 2).

    Requires a matrix whose leading pivots never vanish (e.g. diagonally
    dominant); a zero pivot raises :class:`SkilRuntimeError`.
    """
    start = ctx.machine.time
    n, a, b, piv = _setup(ctx, a_mat, rhs)
    for k in range(n):
        pivot_owner = a.owner((k, k))
        if float(a.get_elem((k, k), pivot_owner)) == 0.0:
            raise SkilRuntimeError(
                f"zero pivot at k={k}: gauss_simple needs gauss_full's pivoting"
            )
        ctx.array_copy(a, b)
        _elimination_step(ctx, k, n, a, b, piv)
    return _finish(ctx, n, a, b, piv, start)


def gauss_full(
    ctx: SkilContext, a_mat: np.ndarray, rhs: np.ndarray
) -> tuple[np.ndarray, RunReport]:
    """The complete program of §4.2, with partial pivoting."""
    start = ctx.machine.time
    n, a, b, piv = _setup(ctx, a_mat, rhs)
    for k in range(n):
        e = ctx.array_fold(make_elemrec, MaxAbsInCol(k), a)
        if float(e["val"]) == 0.0:
            raise SkilRuntimeError("Matrix is singular")
        if int(e["row"]) != k:
            ctx.array_permute_rows(
                a, papply(_switch_rows_fn, int(e["row"]), k), b
            )
        else:
            ctx.array_copy(a, b)
        _elimination_step(ctx, k, n, a, b, piv)
    return _finish(ctx, n, a, b, piv, start)


@skil_fn(ops=1)
def _switch_rows_fn(r1, r2, i):
    return switch_rows(r1, r2, i)


def main(argv: list[str] | None = None) -> int:
    """Run Gaussian elimination standalone, optionally writing a trace."""
    import argparse

    from repro.machine.costmodel import SKIL
    from repro.machine.machine import Machine
    from repro.skeletons import SkilContext

    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.gauss",
        description="Gaussian elimination on the simulated machine.",
    )
    parser.add_argument("--p", type=int, default=8, help="number of processors")
    parser.add_argument("--n", type=int, default=48, help="system size")
    parser.add_argument("--seed", type=int, default=0, help="system seed")
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the complete variant with partial pivoting (§4.2)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON (open in Perfetto)",
    )
    args = parser.parse_args(argv)
    if args.n % args.p != 0:
        args.n += args.p - args.n % args.p  # the paper assumes p | n

    machine = Machine(args.p, trace_level=2 if args.trace else 0)
    ctx = SkilContext(machine, SKIL)
    a_mat, rhs = random_system(args.n, seed=args.seed)
    driver = gauss_full if args.full else gauss_simple
    _, report = driver(ctx, a_mat, rhs)
    variant = "gauss-full" if args.full else "gauss"
    print(
        f"{variant} p={args.p} n={args.n}: {report.seconds:.3f} simulated s, "
        f"{machine.stats.messages} messages, "
        f"{machine.stats.bytes_sent / 1e6:.2f} MB sent"
    )
    if args.trace:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace, machine)
        print(f"trace written to {args.trace}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""The paper's sample programs as Skil **source code** (§4.1, §4.2).

These are compiled by :mod:`repro.lang` and executed on the simulated
machine; the test-suite checks that they compute the same results as
the hand-written skeleton drivers in :mod:`repro.apps`.  Differences
from the paper's listings are purely lexical:

* the identifier ``d&c`` is not a legal identifier; not used here;
* ``log2`` is provided by the host (as in the paper, where it comes
  from the C library);
* initialisation functions (``init_f``) are external prototypes bound
  at run time — the paper reads its input the same way;
* explicit loop-variable names are kept as in the paper (``i``, ``k``),
  relying on C-style implicit declaration.
"""

from __future__ import annotations

__all__ = ["SHPATHS_SKIL", "GAUSS_SKIL", "THRESHOLD_SKIL", "MATMUL_SKIL",
           "SAXPY_SCAN_SKIL"]

#: §4.1 — shortest paths via generic matrix multiplication
SHPATHS_SKIL = r"""
unsigned init_f (Index ix);

unsigned zero (Index ix) { return 0; }

unsigned int_max (Index ix) { return UINT_MAX; }

array<unsigned> shpaths (int n) {
  array<unsigned> a, b, c;

  a = array_create (2, {n,n}, {0,0}, {-1,-1}, init_f, DISTR_TORUS2D);
  b = array_create (2, {n,n}, {0,0}, {-1,-1}, zero, DISTR_TORUS2D);
  c = array_create (2, {n,n}, {0,0}, {-1,-1}, int_max, DISTR_TORUS2D);

  for (i = 0 ; i < log2 (n) ; i++) {
    array_copy (a, b) ;
    array_gen_mult (a, b, min, (+), c) ;
    array_copy (c, a) ;
  }

  array_destroy (b) ;
  array_destroy (c) ;
  /* the result matrix is returned to the host */
  return a ;
}
"""

#: §4.2 — complete Gaussian elimination with partial pivoting
GAUSS_SKIL = r"""
struct _elemrec {float val; int row; int col;};
typedef struct _elemrec elemrec;

float init_ext (Index ix);

float zerof (Index ix) { return 0.0; }

elemrec make_elemrec (float v, Index ix) {
  elemrec e;
  e.val = v;
  e.row = ix[0];
  e.col = ix[1];
  return e;
}

/* maximum absolute value within column k, rows >= k */
elemrec max_abs_in_col (int k, elemrec x, elemrec y) {
  if (x.col != k || x.row < k) return y;
  if (y.col != k || y.row < k) return x;
  if (abs (x.val) > abs (y.val)) return x;
  if (abs (y.val) > abs (x.val)) return y;
  if (x.row <= y.row) return x;
  else return y;
}

int switch_rows (int r1, int r2, int i) {
  if (i == r1) return r2;
  if (i == r2) return r1;
  return i;
}

$t copy_pivot (array<$t> a, int k, $t v, Index ix) {
  Bounds bds = array_part_bounds (a) ;

  if (bds->lowerBd[0] <= k && k <= bds->upperBd[0])
    return (array_get_elem (a, {k, ix[1]}) /
            array_get_elem (a, {k, k})) ;
  else
    return (v) ;
}

$t eliminate (int k, array<$t> a, array<$t> piv, $t v, Index ix) {
  if (ix[0] == k || ix[1] < k)
    return (v) ;
  else
    return (v - array_get_elem (a, {ix[0], k}) *
                array_get_elem (piv, {procId, ix[1]})) ;
}

$t normalize (array<$t> a, int n, $t v, Index ix) {
  if (ix[1] != n) return (v) ;
  return (v / array_get_elem (a, {ix[0], ix[0]})) ;
}

array<float> gauss (int n, int p) {
  array<float> a, b, piv ;
  elemrec e ;

  /* create arrays a and b (size n x (n+1)) */
  a = array_create (2, {n, n + 1}, {0,0}, {-1,-1}, init_ext, DISTR_DEFAULT) ;
  b = array_create (2, {n, n + 1}, {0,0}, {-1,-1}, zerof, DISTR_DEFAULT) ;
  /* create array piv (size p x (n+1)) */
  piv = array_create (2, {p, n + 1}, {0,0}, {-1,-1}, zerof, DISTR_DEFAULT) ;

  for (k = 0 ; k < n ; k++) {
    e = array_fold (make_elemrec, max_abs_in_col (k), a) ;
    if (e.val == 0.0)
      error ("Matrix is singular") ;
    if (e.row != k)
      array_permute_rows (a, switch_rows (e.row, k), b) ;
    else
      array_copy (a, b) ;
    array_map (copy_pivot (b, k), piv, piv) ;
    array_broadcast_part (piv, {k / (n / p), 0}) ;
    array_map (eliminate (k, b, piv), b, a) ;
  }

  array_map (normalize (a, n), a, b) ;
  array_destroy (a) ;
  array_destroy (piv) ;
  /* the transformed extended matrix is returned to the host */
  return b ;
}
"""

#: classical matrix multiplication — the workload of the "equally
#: optimized" comparison (§5.1, ref [3]); just a different pair of
#: customizing operators handed to the same skeleton as shpaths
MATMUL_SKIL = r"""
double init_a (Index ix);
double init_b (Index ix);

double zerod (Index ix) { return 0.0; }

array<double> matmul (int n) {
  array<double> a, b, c;
  a = array_create (2, {n,n}, {0,0}, {-1,-1}, init_a, DISTR_TORUS2D);
  b = array_create (2, {n,n}, {0,0}, {-1,-1}, init_b, DISTR_TORUS2D);
  c = array_create (2, {n,n}, {0,0}, {-1,-1}, zerod, DISTR_TORUS2D);
  array_gen_mult (a, b, (+), (*), c);
  array_destroy (a);
  array_destroy (b);
  return c;
}
"""

#: the extension skeletons (array_zip / array_scan) from Skil source:
#: fused saxpy followed by a prefix sum
SAXPY_SCAN_SKIL = r"""
float init_x (Index ix);
float init_y (Index ix);

float zerof (Index ix) { return 0.0; }

float saxpy (float alpha, float x, float y, Index ix) {
  return alpha * x + y;
}

array<float> saxpy_prefix (int n, float alpha) {
  array<float> x, y, z, s;
  x = array_create (1, {n}, {0}, {-1}, init_x, DISTR_DEFAULT);
  y = array_create (1, {n}, {0}, {-1}, init_y, DISTR_DEFAULT);
  z = array_create (1, {n}, {0}, {-1}, zerof, DISTR_DEFAULT);
  s = array_create (1, {n}, {0}, {-1}, zerof, DISTR_DEFAULT);
  array_zip (saxpy (alpha), x, y, z);
  array_scan ((+), z, s);
  array_destroy (x);
  array_destroy (y);
  array_destroy (z);
  return s;
}
"""

#: §2.4 — the above_thresh/array_map instantiation example
THRESHOLD_SKIL = r"""
float init_f (Index ix);

int zero (Index ix) { return 0; }

int above_thresh (float thresh, float elem, Index ix) {
  return (elem >= thresh) ;
}

void threshold (int n, float t) {
  array<float> A ;
  array<int> B ;
  A = array_create (2, {n,n}, {0,0}, {-1,-1}, init_f, DISTR_DEFAULT) ;
  B = array_create (2, {n,n}, {0,0}, {-1,-1}, zero, DISTR_DEFAULT) ;
  array_map (above_thresh (t), A, B) ;
}
"""

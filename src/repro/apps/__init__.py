"""The paper's sample applications, written against the skeleton API."""

from repro.apps.gauss import ELEMREC, gauss_full, gauss_simple, random_system
from repro.apps.matmul import matmul
from repro.apps.quicksort import quicksort
from repro.apps.shortest_paths import (
    SAT_PLUS,
    UINT_INF,
    RunReport,
    random_distance_matrix,
    round_up_to_grid,
    shortest_paths_oracle,
    shpaths,
)

__all__ = [
    "shpaths",
    "random_distance_matrix",
    "round_up_to_grid",
    "shortest_paths_oracle",
    "SAT_PLUS",
    "UINT_INF",
    "RunReport",
    "gauss_simple",
    "gauss_full",
    "random_system",
    "ELEMREC",
    "matmul",
    "quicksort",
]

"""Classical matrix multiplication via ``array_gen_mult``.

Not one of the paper's two showcase applications, but the workload of
the *equally optimized* Skil-vs-C comparison in §5.1 ("we have done the
comparison between equally optimized C and Skil versions of the matrix
multiplication algorithm, and obtained Skil times around 20% slower") —
ablation A1 in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.apps.shortest_paths import RunReport
from repro.errors import SkilError
from repro.machine.machine import DISTR_TORUS2D
from repro.skeletons import PLUS, TIMES, SkilContext, skil_fn

__all__ = ["matmul"]


def matmul(
    ctx: SkilContext, a_mat: np.ndarray, b_mat: np.ndarray
) -> tuple[np.ndarray, RunReport]:
    """Compute ``a_mat @ b_mat`` on the machine; returns (C, report)."""
    n = a_mat.shape[0]
    if a_mat.shape != (n, n) or b_mat.shape != (n, n):
        raise SkilError("matmul expects two square matrices of equal size")
    g = ctx.machine.mesh.rows
    if ctx.machine.mesh.rows != ctx.machine.mesh.cols:
        raise SkilError("matmul needs a square processor grid")
    if n % g != 0:
        raise SkilError(f"n={n} must be divisible by the torus side {g}")

    init_a = skil_fn(
        ops=1, vectorized=lambda grids, env: a_mat[grids[0], grids[1]]
    )(lambda ix: a_mat[ix])
    init_b = skil_fn(
        ops=1, vectorized=lambda grids, env: b_mat[grids[0], grids[1]]
    )(lambda ix: b_mat[ix])
    zero = skil_fn(ops=1, vectorized=lambda grids, env: np.zeros(1))(lambda ix: 0.0)

    start = ctx.machine.time
    a = ctx.array_create(2, (n, n), (0, 0), (-1, -1), init_a, DISTR_TORUS2D)
    b = ctx.array_create(2, (n, n), (0, 0), (-1, -1), init_b, DISTR_TORUS2D)
    c = ctx.array_create(2, (n, n), (0, 0), (-1, -1), zero, DISTR_TORUS2D)
    ctx.array_gen_mult(a, b, PLUS, TIMES, c)
    out = c.global_view()
    report = RunReport(
        seconds=ctx.machine.time - start,
        stats=ctx.machine.stats,
        p=ctx.p,
        n=n,
        profile=ctx.profile.name,
    )
    for arr in (a, b, c):
        ctx.array_destroy(arr)
    return out, report

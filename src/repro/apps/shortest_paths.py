"""All-pairs shortest paths via (min, +) matrix powers — paper §4.1.

The program is the paper's ``shpaths`` verbatim, expressed through the
skeleton API: create ``a`` (the distance matrix), ``b`` (scratch copy)
and ``c`` (initialised to "infinity", the neutral element of ``min``) on
a 2-D torus; then ``log2(n)`` times

.. code-block:: c

   array_copy (a, b);
   array_gen_mult (a, b, min, (+), c);
   array_copy (c, a);

so that ``a`` holds ``A^2, A^4, ...`` and finally ``A^n``, whose entry
``(i, j)`` is the length of the shortest path from ``v_i`` to ``v_j``.

The paper stores edge weights as ``unsigned int`` "in order to avoid an
overflow when adding a value to infinity"; plain modular wrap-around
would corrupt ``min``, so the honest equivalent is *saturating*
addition — provided here as :data:`SAT_PLUS` over ``uint32``.  The
default entry point uses ``float64`` with ``np.inf`` (mathematically
identical and numpy-native); a ``dtype=np.uint32`` run exercises the
saturating path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SkilError
from repro.machine.machine import DISTR_TORUS2D
from repro.machine.trace import TraceStats
from repro.skeletons import MIN, PLUS, Section, SkilContext, skil_fn

__all__ = [
    "SAT_PLUS",
    "UINT_INF",
    "RunReport",
    "random_distance_matrix",
    "round_up_to_grid",
    "shpaths",
    "shortest_paths_oracle",
]

#: the paper's "infinity" for unsigned 32-bit weights
UINT_INF = np.uint32(0xFFFFFFFF)


def _sat_add_u32(x, y):
    s = x.astype(np.uint64) + y.astype(np.uint64)
    return np.minimum(s, np.uint64(UINT_INF)).astype(np.uint32)


#: saturating (+) over uint32 — overflow clamps at "infinity"
SAT_PLUS = Section(
    "sat+",
    lambda x, y: np.uint32(min(int(x) + int(y), int(UINT_INF))),
    np_op=_sat_add_u32,
    commutative_associative=True,
)


@dataclass
class RunReport:
    """Outcome of one simulated application run."""

    seconds: float
    stats: TraceStats
    p: int
    n: int
    profile: str


def random_distance_matrix(
    n: int, density: float = 0.3, max_weight: int = 100, seed: int = 0
) -> np.ndarray:
    """A random non-negative integer distance matrix (paper §4.1 setup).

    ``a_ii = 0``; ``a_ij = w_ij`` for existing edges, "infinity"
    otherwise.  Returned as float64 with ``np.inf``.
    """
    rng = np.random.default_rng(seed)
    a = np.full((n, n), np.inf)
    edges = rng.random((n, n)) < density
    weights = rng.integers(1, max_weight + 1, size=(n, n)).astype(float)
    a[edges] = weights[edges]
    np.fill_diagonal(a, 0.0)
    return a


def round_up_to_grid(n: int, g: int) -> int:
    """The paper's problem-size rule: "in the cases where sqrt(p) did not
    divide n, the next highest value divisible by sqrt(p) was taken"."""
    return n if n % g == 0 else n + (g - n % g)


def shortest_paths_oracle(dist_matrix: np.ndarray) -> np.ndarray:
    """Sequential reference: repeated (min,+) squaring in numpy."""
    a = dist_matrix.copy()
    n = a.shape[0]
    for _ in range(max(1, math.ceil(math.log2(n)))):
        a = np.minimum(a, np.min(a[:, :, None] + a[None, :, :], axis=1))
    return a


def shpaths(
    ctx: SkilContext,
    dist_matrix: np.ndarray,
    dtype=np.float64,
) -> tuple[np.ndarray, RunReport]:
    """Run the paper's shpaths program; returns (result matrix, report).

    *dist_matrix* must be square with side divisible by the torus grid
    (use :func:`round_up_to_grid` and pad with infinity as the paper
    effectively does by enlarging the graph).
    """
    n = dist_matrix.shape[0]
    if dist_matrix.shape != (n, n):
        raise SkilError(f"distance matrix must be square, got {dist_matrix.shape}")
    g = ctx.machine.mesh.rows
    if ctx.machine.mesh.rows != ctx.machine.mesh.cols:
        raise SkilError("shpaths needs a square processor grid (p = g*g)")
    if n % g != 0:
        raise SkilError(
            f"n={n} not divisible by the torus side {g}; round it up with "
            "round_up_to_grid() as the paper does"
        )
    if np.any(np.diagonal(dist_matrix) != 0):
        raise SkilError(
            "shpaths expects a distance matrix with a_ii = 0 (paper §4.1); "
            "nonzero diagonals would invalidate reusing c across iterations"
        )

    if dtype == np.uint32:
        data = np.where(np.isinf(dist_matrix), float(UINT_INF), dist_matrix)
        data = data.astype(np.uint32)
        inf_val = UINT_INF
        add = SAT_PLUS
    else:
        data = dist_matrix.astype(dtype)
        inf_val = np.inf
        add = PLUS

    init_a = skil_fn(
        ops=1, vectorized=lambda grids, env: data[grids[0], grids[1]]
    )(lambda ix: data[ix])
    zero = skil_fn(ops=1, vectorized=lambda grids, env: np.zeros(1, dtype=dtype))(
        lambda ix: 0
    )
    int_max = skil_fn(
        ops=1, vectorized=lambda grids, env: np.full(1, inf_val, dtype=np.float64 if dtype != np.uint32 else np.uint32)
    )(lambda ix: inf_val)

    start = ctx.machine.time
    a = ctx.array_create(2, (n, n), (0, 0), (-1, -1), init_a, DISTR_TORUS2D, dtype=dtype)
    if not ctx.fusion:
        b = ctx.array_create(2, (n, n), (0, 0), (-1, -1), zero, DISTR_TORUS2D, dtype=dtype)
    c = ctx.array_create(2, (n, n), (0, 0), (-1, -1), int_max, DISTR_TORUS2D, dtype=dtype)

    for _ in range(max(1, math.ceil(math.log2(n)))):
        if ctx.fusion:
            # what the fusion pass makes of copy(a,b); gen_mult(a,b,...):
            # the scratch matrix and its copy round never exist
            ctx.array_gen_mult_square(a, MIN, add, c)
        else:
            ctx.array_copy(a, b)
            ctx.array_gen_mult(a, b, MIN, add, c)
        ctx.array_copy(c, a)
        # NOTE: like the paper, c is not re-seeded between iterations.
        # This is sound because a_ii = 0 makes the (min,+) powers
        # monotonically non-increasing, so the stale accumulator can
        # never win against the fresh product (checked on entry).

    result = a.global_view().astype(np.float64)
    if dtype == np.uint32:
        result[result == float(UINT_INF)] = np.inf

    report = RunReport(
        seconds=ctx.machine.time - start,
        stats=ctx.machine.stats,
        p=ctx.p,
        n=n,
        profile=ctx.profile.name,
    )
    ctx.array_destroy(a)
    if not ctx.fusion:
        ctx.array_destroy(b)
    ctx.array_destroy(c)
    return result, report


def main(argv: list[str] | None = None) -> int:
    """Run shpaths standalone, optionally writing a Chrome trace."""
    import argparse

    from repro.machine.costmodel import SKIL
    from repro.machine.machine import Machine
    from repro.skeletons import SkilContext

    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.shortest_paths",
        description="All-pairs shortest paths on the simulated machine.",
    )
    parser.add_argument("--p", type=int, default=9, help="number of processors")
    parser.add_argument("--n", type=int, default=48, help="graph size")
    parser.add_argument("--seed", type=int, default=0, help="matrix seed")
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON (open in Perfetto)",
    )
    args = parser.parse_args(argv)

    machine = Machine(args.p, trace_level=2 if args.trace else 0)
    ctx = SkilContext(machine, SKIL)
    n = round_up_to_grid(args.n, machine.mesh.rows)
    dist = random_distance_matrix(n, density=0.25, seed=args.seed)
    _, report = shpaths(ctx, dist)
    print(
        f"shpaths p={args.p} n={n}: {report.seconds:.3f} simulated s, "
        f"{machine.stats.messages} messages, "
        f"{machine.stats.bytes_sent / 1e6:.2f} MB sent"
    )
    if args.trace:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace, machine)
        print(f"trace written to {args.trace}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())



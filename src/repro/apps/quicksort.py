"""Quicksort through the divide&conquer skeleton — the paper's §1 example.

.. code-block:: haskell

   quicksort lst = d&c is_simple ident divide concat lst

``is_simple`` checks for empty/singleton lists, ``ident`` is the
identity, ``divide`` splits around a pivot into (smaller, pivot,
greater-or-equal), ``concat`` concatenates.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.shortest_paths import RunReport
from repro.skeletons import SkilContext, skil_fn

__all__ = ["quicksort", "is_simple", "ident", "divide", "concat"]


@skil_fn(ops=1)
def is_simple(lst):
    """True when the list is empty or a singleton."""
    return len(lst) <= 1


@skil_fn(ops=1)
def ident(lst):
    return lst


@skil_fn(ops=1)
def divide(lst):
    """Split into elements smaller than the pivot, the pivot itself, and
    the elements greater or equal (the paper's three-way divide)."""
    pivot = lst[0]
    return [
        [x for x in lst[1:] if x < pivot],
        [pivot],
        [x for x in lst[1:] if x >= pivot],
    ]


@skil_fn(ops=1)
def concat(parts):
    out: list = []
    for part in parts:
        out.extend(part)
    return out


def quicksort(ctx: SkilContext, data: Sequence) -> tuple[list, RunReport]:
    """Sort *data* with the d&c skeleton; returns (sorted list, report)."""
    start = ctx.machine.time
    result = ctx.divide_and_conquer(is_simple, ident, divide, concat, list(data))
    report = RunReport(
        seconds=ctx.machine.time - start,
        stats=ctx.machine.stats,
        p=ctx.p,
        n=len(data),
        profile=ctx.profile.name,
    )
    return result, report

"""Pretty-printer: AST back to Skil surface syntax.

Two uses:

* ``SkilModule.dump_instances()`` renders the *instantiated* program as
  Skil/C text — the human-readable counterpart of the paper's §2.4
  example, where the reader can see ``above_thresh`` inlined into
  ``array_map_1`` with the threshold lifted;
* round-trip property tests: ``parse(print(parse(src)))`` must agree
  with ``parse(src)``, which pins down printer and parser against each
  other.
"""

from __future__ import annotations

import io

from repro.lang import ast as A
from repro.lang.instantiate import KernelRef, SectionRef
from repro.lang.types import TArray, TFun, TPardata, TPointer, TPrim, TStruct, Type, TVar

__all__ = ["print_program", "print_function", "print_type"]


def print_type(t: Type) -> str:
    if isinstance(t, TPrim):
        return t.name
    if isinstance(t, TVar):
        return t.name
    if isinstance(t, TPointer):
        return f"{print_type(t.target)} *"
    if isinstance(t, TArray):
        return f"{print_type(t.elem)}[{t.size if t.size is not None else ''}]"
    if isinstance(t, TStruct):
        return f"struct {t.name}"
    if isinstance(t, TPardata):
        if t.args:
            return f"{t.name}<{', '.join(print_type(a) for a in t.args)}>"
        return t.name
    if isinstance(t, TFun):
        # only usable in parameter position; callers handle that case
        ps = ", ".join(print_type(p) for p in t.params)
        return f"{print_type(t.ret)} (*)({ps})"
    return "?"


class _Printer:
    def __init__(self) -> None:
        self.buf = io.StringIO()
        self.indent = 0

    def line(self, text: str = "") -> None:
        self.buf.write("  " * self.indent + text + "\n")

    # ------------------------------------------------------------------ decls
    def program(self, prog: A.Program) -> str:
        for d in prog.decls:
            self.decl(d)
            self.line()
        return self.buf.getvalue()

    def decl(self, d: A.Node) -> None:
        if isinstance(d, A.StructDecl):
            self.line(f"struct {d.name} {{")
            self.indent += 1
            for fname, ftype in d.fields:
                self.line(f"{print_type(ftype)} {fname};")
            self.indent -= 1
            self.line("};")
        elif isinstance(d, A.TypedefDecl):
            params = f"<{', '.join(d.type_params)}>" if d.type_params else ""
            self.line(f"typedef {print_type(d.target)} {d.name}{params};")
        elif isinstance(d, A.PardataHeader):
            params = f"<{', '.join(d.type_params)}>" if d.type_params else ""
            self.line(f"pardata {d.name} {params};")
        elif isinstance(d, A.FuncDecl):
            self.line(f"{print_type(d.ret)} {d.name} ({self._params(d.params)});")
        elif isinstance(d, A.FuncDef):
            self.function(d)
        else:
            self.line(f"/* unprintable decl {type(d).__name__} */")

    def _params(self, params) -> str:
        out = []
        for p in params:
            if isinstance(p.ty, TFun):
                inner = ", ".join(print_type(q) for q in p.ty.params)
                out.append(f"{print_type(p.ty.ret)} {p.name} ({inner})")
            else:
                out.append(f"{print_type(p.ty)} {p.name}".strip())
        return ", ".join(out)

    def function(self, f: A.FuncDef) -> None:
        self.line(f"{print_type(f.ret)} {f.name} ({self._params(f.params)})")
        self.block(f.body)

    # ------------------------------------------------------------------ stmts
    def block(self, b: A.Block) -> None:
        self.line("{")
        self.indent += 1
        for s in b.stmts:
            self.stmt(s)
        self.indent -= 1
        self.line("}")

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Block):
            self.block(s)
        elif isinstance(s, A.VarDecl):
            init = f" = {self.expr(s.init)}" if s.init is not None else ""
            self.line(f"{print_type(s.ty)} {s.name}{init};")
        elif isinstance(s, A.If):
            self.line(f"if ({self.expr(s.cond)})")
            self._substmt(s.then)
            if s.orelse is not None:
                self.line("else")
                self._substmt(s.orelse)
        elif isinstance(s, A.While):
            self.line(f"while ({self.expr(s.cond)})")
            self._substmt(s.body)
        elif isinstance(s, A.For):
            init = ""
            if isinstance(s.init, A.ExprStmt):
                init = self.expr(s.init.expr)
            elif isinstance(s.init, A.VarDecl):
                ini = f" = {self.expr(s.init.init)}" if s.init.init else ""
                init = f"{print_type(s.init.ty)} {s.init.name}{ini}"
            cond = self.expr(s.cond) if s.cond is not None else ""
            step = self.expr(s.step) if s.step is not None else ""
            self.line(f"for ({init} ; {cond} ; {step})")
            self._substmt(s.body)
        elif isinstance(s, A.Return):
            if s.value is None:
                self.line("return;")
            else:
                self.line(f"return {self.expr(s.value)};")
        elif isinstance(s, A.ExprStmt):
            self.line(f"{self.expr(s.expr)};")
        else:
            self.line(f"/* unprintable stmt {type(s).__name__} */")

    def _substmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Block):
            self.block(s)
        else:
            self.indent += 1
            self.stmt(s)
            self.indent -= 1

    # ------------------------------------------------------------------ exprs
    def expr(self, e: A.Expr) -> str:
        if isinstance(e, A.IntLit):
            return str(e.value)
        if isinstance(e, A.FloatLit):
            return repr(e.value)
        if isinstance(e, A.StringLit):
            escaped = e.value.replace("\\", "\\\\").replace('"', '\\"')
            escaped = escaped.replace("\n", "\\n")
            return f'"{escaped}"'
        if isinstance(e, A.CharLit):
            return f"'{e.value}'"
        if isinstance(e, A.Ident):
            return e.name
        if isinstance(e, A.OperatorSection):
            return f"({e.op})"
        if isinstance(e, SectionRef):
            return f"({e.op})"
        if isinstance(e, KernelRef):
            if e.bound:
                return f"{e.name} ({', '.join(self.expr(b) for b in e.bound)})"
            return e.name
        if isinstance(e, A.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{self.expr(e.func)} ({args})"
        if isinstance(e, A.BinOp):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, A.UnOp):
            return f"({e.op}{self.expr(e.operand)})"
        if isinstance(e, A.Assign):
            return f"{self.expr(e.target)} {e.op} {self.expr(e.value)}"
        if isinstance(e, A.IndexExpr):
            return f"{self.expr(e.base)}[{self.expr(e.index)}]"
        if isinstance(e, A.Member):
            op = "->" if e.arrow else "."
            return f"{self.expr(e.base)}{op}{e.name}"
        if isinstance(e, A.Cond):
            return (
                f"({self.expr(e.cond)} ? {self.expr(e.then)} : "
                f"{self.expr(e.orelse)})"
            )
        if isinstance(e, A.BraceList):
            return "{" + ", ".join(self.expr(x) for x in e.items) + "}"
        if isinstance(e, A.Cast):
            return f"(({print_type(e.target)}) {self.expr(e.operand)})"
        return f"/* unprintable {type(e).__name__} */"


def print_program(prog: A.Program) -> str:
    """Render a whole program as Skil surface syntax."""
    return _Printer().program(prog)


def print_function(f: A.FuncDef) -> str:
    """Render a single function definition."""
    p = _Printer()
    p.function(f)
    return p.buf.getvalue()

"""Polymorphic type checking of Skil programs.

Hindley-Milner-flavoured checking over the C subset: top-level function
declarations act as type *schemes* (their ``$``-variables are
universally quantified and instantiated freshly at every use), local
inference is plain unification.  Curried application is resolved here —
a call supplying fewer arguments than parameters types as a function
over the remaining parameters and is flagged ``partial`` for the
instantiation pass.

C-isms kept deliberately: numeric primitives inter-convert; an
assignment to an undeclared identifier implicitly declares it in the
current function (the paper's sample code writes ``for (i = 0; ...)``
without declaring ``i``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SkilTypeError
from repro.lang import ast as A
from repro.lang.builtins import BUILTIN_FUNCTIONS, BUILTIN_VALUES
from repro.lang.types import (
    BOUNDS,
    DOUBLE,
    INDEX,
    INT,
    STRING,
    VOID,
    Subst,
    TArray,
    TFun,
    TPardata,
    TPointer,
    TPrim,
    TStruct,
    TVar,
    Type,
    free_vars,
)

__all__ = ["TypeChecker", "CheckedProgram", "check"]


@dataclass
class CheckedProgram:
    program: A.Program
    subst: Subst
    functions: dict[str, A.FuncDef] = field(default_factory=dict)
    externals: dict[str, A.FuncDecl] = field(default_factory=dict)
    struct_decls: dict[str, A.StructDecl] = field(default_factory=dict)

    def resolved(self, t: Type) -> Type:
        return self.subst.apply(t)


class TypeChecker:
    def __init__(self, program: A.Program):
        self.program = program
        self.subst = Subst()
        self.functions: dict[str, A.FuncDef] = {}
        self.externals: dict[str, A.FuncDecl] = {}
        self.struct_decls: dict[str, A.StructDecl] = {}
        #: per-function local scopes (stack)
        self.scopes: list[dict[str, Type]] = []
        self.current_ret: Type = VOID

    # ------------------------------------------------------------------ driver
    def check(self) -> CheckedProgram:
        for d in self.program.decls:
            if isinstance(d, A.FuncDef):
                if d.name in self.functions or d.name in BUILTIN_FUNCTIONS:
                    raise SkilTypeError(f"function {d.name!r} redefined")
                self.functions[d.name] = d
            elif isinstance(d, A.FuncDecl):
                self.externals[d.name] = d
            elif isinstance(d, A.StructDecl):
                self.struct_decls[d.name] = d
        for d in self.program.decls:
            if isinstance(d, A.FuncDef):
                self._check_function(d)
        return CheckedProgram(
            self.program, self.subst, self.functions, self.externals,
            self.struct_decls,
        )

    # ------------------------------------------------------------------ scopes
    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, t: Type, line: int = 0) -> None:
        scope = self.scopes[-1]
        if name in scope:
            raise SkilTypeError(f"line {line}: {name!r} redeclared")
        scope[name] = t

    def lookup_local(self, name: str) -> Type | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------------ funcs
    def scheme_of(self, name: str) -> Type | None:
        """The (polymorphic) type of a top-level function or builtin."""
        if name in BUILTIN_FUNCTIONS:
            return BUILTIN_FUNCTIONS[name]
        if name in self.functions:
            f = self.functions[name]
            return TFun(tuple(p.ty for p in f.params), f.ret)
        if name in self.externals:
            f = self.externals[name]
            return TFun(tuple(p.ty for p in f.params), f.ret)
        return None

    def _check_function(self, f: A.FuncDef) -> None:
        self.push()
        for p in f.params:
            if not p.name:
                raise SkilTypeError(
                    f"line {f.line}: parameter of {f.name!r} lacks a name"
                )
            self.declare(p.name, p.ty, f.line)
        saved = self.current_ret
        self.current_ret = f.ret
        self.stmt(f.body)
        self.current_ret = saved
        self.pop()

    # ------------------------------------------------------------------ stmts
    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Block):
            self.push()
            for inner in s.stmts:
                self.stmt(inner)
            self.pop()
        elif isinstance(s, A.VarDecl):
            if s.init is not None:
                t = self.expr(s.init)
                self.subst.unify(s.ty, t)
            self.declare(s.name, s.ty, s.line)
        elif isinstance(s, A.If):
            self.expr(s.cond)
            self.stmt(s.then)
            if s.orelse is not None:
                self.stmt(s.orelse)
        elif isinstance(s, A.While):
            self.expr(s.cond)
            self.stmt(s.body)
        elif isinstance(s, A.For):
            self.push()
            if s.init is not None:
                self.stmt(s.init)
            if s.cond is not None:
                self.expr(s.cond)
            if s.step is not None:
                self.expr(s.step)
            self.stmt(s.body)
            self.pop()
        elif isinstance(s, A.Return):
            if s.value is None:
                self.subst.unify(self.current_ret, VOID)
            else:
                t = self.expr(s.value)
                self.subst.unify(self.current_ret, t)
        elif isinstance(s, A.ExprStmt):
            self.expr(s.expr)
        else:  # pragma: no cover - exhaustive
            raise SkilTypeError(f"unknown statement {type(s).__name__}")

    # ------------------------------------------------------------------ exprs
    def expr(self, e: A.Expr) -> Type:
        t = self._expr(e)
        e.ty = t
        return t

    def _expr(self, e: A.Expr) -> Type:
        if isinstance(e, A.IntLit):
            return INT
        if isinstance(e, A.FloatLit):
            return DOUBLE
        if isinstance(e, A.StringLit):
            return STRING
        if isinstance(e, A.CharLit):
            return TPrim("char")
        if isinstance(e, A.Ident):
            local = self.lookup_local(e.name)
            if local is not None:
                return local
            if e.name in BUILTIN_VALUES:
                return BUILTIN_VALUES[e.name]
            scheme = self.scheme_of(e.name)
            if scheme is not None:
                return self.subst.instantiate(scheme)
            raise SkilTypeError(f"line {e.line}: unknown identifier {e.name!r}")
        if isinstance(e, A.OperatorSection):
            a = self.subst.instantiate(TVar("$a"))
            if e.op in ("==", "!=", "<", ">", "<=", ">="):
                return TFun((a, a), INT)
            return TFun((a, a), a)
        if isinstance(e, A.Call):
            return self._call(e)
        if isinstance(e, A.BinOp):
            lt = self.expr(e.left)
            rt = self.expr(e.right)
            if e.op in ("&&", "||"):
                return INT
            self.subst.unify(lt, rt)
            if e.op in ("==", "!=", "<", ">", "<=", ">="):
                return INT
            return self.subst.apply(lt)
        if isinstance(e, A.UnOp):
            t = self.expr(e.operand)
            if e.op == "!":
                return INT
            return t
        if isinstance(e, A.Assign):
            vt = self.expr(e.value)
            if isinstance(e.target, A.Ident) and self.lookup_local(
                e.target.name
            ) is None and e.target.name not in BUILTIN_VALUES and self.scheme_of(
                e.target.name
            ) is None:
                # C-style implicit declaration (the paper's loop counters)
                self.scopes[-1][e.target.name] = self.subst.apply(vt)
                e.target.ty = vt
                return vt
            tt = self.expr(e.target)
            self.subst.unify(tt, vt)
            return self.subst.apply(tt)
        if isinstance(e, A.IndexExpr):
            bt = self.subst.resolve(self.expr(e.base))
            it = self.expr(e.index)
            self.subst.unify(it, INT)
            if isinstance(bt, TPrim) and bt.name in ("Index", "Size"):
                return INT
            if isinstance(bt, TArray):
                return bt.elem
            if isinstance(bt, TVar):
                elem = self.subst.instantiate(TVar("$e"))
                self.subst.unify(bt, TArray(elem))
                return elem
            raise SkilTypeError(
                f"line {e.line}: cannot index a value of type {bt.show()}"
            )
        if isinstance(e, A.Member):
            bt = self.subst.resolve(self.expr(e.base))
            if isinstance(bt, TPointer):
                bt = self.subst.resolve(bt.target)
            if isinstance(bt, TPrim) and bt.name == "Bounds":
                if e.name in ("lowerBd", "upperBd"):
                    return INDEX
                raise SkilTypeError(
                    f"line {e.line}: Bounds has no field {e.name!r} "
                    "(use lowerBd / upperBd)"
                )
            if isinstance(bt, TStruct):
                if not bt.fields and bt.name in self.struct_decls:
                    bt = TStruct(bt.name, tuple(self.struct_decls[bt.name].fields))
                return bt.field_type(e.name)
            raise SkilTypeError(
                f"line {e.line}: cannot access field {e.name!r} of {bt.show()}"
            )
        if isinstance(e, A.Cond):
            self.expr(e.cond)
            tt = self.expr(e.then)
            ot = self.expr(e.orelse)
            self.subst.unify(tt, ot)
            return self.subst.apply(tt)
        if isinstance(e, A.BraceList):
            for item in e.items:
                self.subst.unify(self.expr(item), INT)
            return INDEX
        if isinstance(e, A.Cast):
            self.expr(e.operand)
            return e.target
        raise SkilTypeError(f"unknown expression {type(e).__name__}")

    def _call(self, e: A.Call) -> Type:
        ft = self.subst.resolve(self.expr(e.func))
        arg_ts = [self.expr(a) for a in e.args]
        if isinstance(ft, TVar):
            ret = self.subst.instantiate(TVar("$r"))
            self.subst.unify(ft, TFun(tuple(arg_ts), ret))
            return ret
        if not isinstance(ft, TFun):
            raise SkilTypeError(
                f"line {e.line}: calling a non-function of type {ft.show()}"
            )
        nparams = len(ft.params)
        nargs = len(arg_ts)
        if nargs < nparams:
            # partial application (currying, §2.1)
            for pt, at in zip(ft.params, arg_ts):
                self.subst.unify(pt, at)
            e.partial = True
            return TFun(ft.params[nargs:], ft.ret)
        if nargs == nparams:
            for pt, at in zip(ft.params, arg_ts):
                self.subst.unify(pt, at)
            return self.subst.apply(ft.ret)
        # over-application: the result must itself be a function
        for pt, at in zip(ft.params, arg_ts[:nparams]):
            self.subst.unify(pt, at)
        rest = A.Call(e.func, e.args[nparams:], line=e.line)  # type check only
        ret = self.subst.resolve(ft.ret)
        if isinstance(ret, TVar):
            out = self.subst.instantiate(TVar("$r"))
            self.subst.unify(ret, TFun(tuple(arg_ts[nparams:]), out))
            return out
        if not isinstance(ret, TFun):
            raise SkilTypeError(
                f"line {e.line}: too many arguments "
                f"({nargs} for {nparams}-ary {ft.show()})"
            )
        for pt, at in zip(ret.params, arg_ts[nparams:]):
            self.subst.unify(pt, at)
        if len(ret.params) != nargs - nparams:
            raise SkilTypeError(
                f"line {e.line}: argument count mismatch in curried call"
            )
        del rest
        return self.subst.apply(ret.ret)

    # ------------------------------------------------------------------ final
    def finalize(self, prog: CheckedProgram) -> None:
        """Resolve all recorded expression types through the substitution."""

        def walk_expr(x: A.Expr) -> None:
            if x.ty is not None:
                x.ty = self.subst.apply(x.ty)
            for child in _expr_children(x):
                walk_expr(child)

        def walk_stmt(s: A.Stmt) -> None:
            if isinstance(s, A.Block):
                for inner in s.stmts:
                    walk_stmt(inner)
            elif isinstance(s, A.VarDecl):
                s.ty = self.subst.apply(s.ty)
                if s.init is not None:
                    walk_expr(s.init)
            elif isinstance(s, A.If):
                walk_expr(s.cond)
                walk_stmt(s.then)
                if s.orelse:
                    walk_stmt(s.orelse)
            elif isinstance(s, A.While):
                walk_expr(s.cond)
                walk_stmt(s.body)
            elif isinstance(s, A.For):
                if s.init:
                    walk_stmt(s.init)
                if s.cond:
                    walk_expr(s.cond)
                if s.step:
                    walk_expr(s.step)
                walk_stmt(s.body)
            elif isinstance(s, A.Return) and s.value is not None:
                walk_expr(s.value)
            elif isinstance(s, A.ExprStmt):
                walk_expr(s.expr)

        for f in prog.functions.values():
            walk_stmt(f.body)


def _expr_children(e: A.Expr) -> list[A.Expr]:
    if isinstance(e, A.Call):
        return [e.func, *e.args]
    if isinstance(e, A.BinOp):
        return [e.left, e.right]
    if isinstance(e, A.UnOp):
        return [e.operand]
    if isinstance(e, A.Assign):
        return [e.target, e.value]
    if isinstance(e, A.IndexExpr):
        return [e.base, e.index]
    if isinstance(e, A.Member):
        return [e.base]
    if isinstance(e, A.Cond):
        return [e.cond, e.then, e.orelse]
    if isinstance(e, A.BraceList):
        return list(e.items)
    if isinstance(e, A.Cast):
        return [e.operand]
    return []


def check(program: A.Program) -> CheckedProgram:
    """Type-check *program*; returns the checked program with resolved
    expression type annotations."""
    tc = TypeChecker(program)
    out = tc.check()
    tc.finalize(out)
    return out

"""Translation by instantiation (§2.4, ref. [1]).

This pass turns the checked, polymorphic, higher-order program into
**first-order monomorphic** functions, exactly as the Skil compiler
does before handing the code to its C back end:

* *functional arguments of HOFs are inlined into the definitions of
  these HOFs* — a call ``f(x)`` through a functional parameter becomes a
  direct call of the actual function (or, for operator sections, the
  operator expression itself);
* *partial applications are translated by inlining and lifting of their
  arguments* — the already-supplied arguments become extra leading
  parameters of the generated instance and travel through the call
  site;
* *a polymorphic function is translated to one or more monomorphic
  functions, as determined by the calls of this function* — instances
  are keyed by their resolved types and functional-argument shapes and
  memoized, so a d&c-style self-recursive HOF that passes its
  functional arguments through unchanged maps onto a single instance.

The paper restricts "a special class of recursively-defined HOFs" that
cannot be instantiated statically; we detect that class as an instance
explosion (more than :data:`MAX_INSTANCES_PER_FUNCTION` instances of one
source function) and raise :class:`~repro.errors.InstantiationError`.

Functional arguments of *builtin skeletons* are materialised the same
way: the skeleton call site ends up holding a :class:`KernelRef` — a
first-order generated function plus the lifted argument expressions —
or a :class:`SectionRef` for ``(+)``-style operator arguments, which the
code generator maps onto the runtime's annotated operator sections (so
``array_fold`` can still reduce with a numpy kernel).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.errors import InstantiationError, SkilTypeError
from repro.lang import ast as A
from repro.lang.builtins import BUILTIN_FUNCTIONS, BUILTIN_VALUES
from repro.lang.typecheck import CheckedProgram
from repro.lang.types import TFun, TVar, Type, free_vars
from repro.obs import global_metrics

__all__ = [
    "KernelRef",
    "SectionRef",
    "Instance",
    "InstantiatedProgram",
    "MAX_INSTANCES_PER_FUNCTION",
    "instantiate_program",
]

MAX_INSTANCES_PER_FUNCTION = 64


@dataclass
class KernelRef(A.Expr):
    """A first-order kernel + lifted arguments, as a skeleton argument."""

    name: str = ""
    bound: list[A.Expr] = field(default_factory=list)
    ops_estimate: float = 1.0


@dataclass
class SectionRef(A.Expr):
    """An operator section handed to a skeleton (kept symbolic so the
    runtime can use its annotated/vectorized form)."""

    op: str = ""


@dataclass
class Instance:
    """One generated monomorphic, first-order function."""

    name: str
    source: str  #: original function name
    func: A.FuncDef
    #: resolved types of the ORIGINAL parameters (before lifting)
    arg_types: tuple[Type, ...] = ()
    #: trailing element-value parameter count when used as a skeleton
    #: kernel (None when unknown; see builtins.KERNEL_KINDS)
    kernel_elems: "int | None" = None


@dataclass
class InstantiatedProgram:
    checked: CheckedProgram
    entries: dict[str, A.FuncDef] = field(default_factory=dict)
    instances: dict[str, Instance] = field(default_factory=dict)
    #: per source function, the instance names generated from it
    report: dict[str, list[str]] = field(default_factory=dict)

    def all_functions(self) -> list[A.FuncDef]:
        return [*self.entries.values(), *(i.func for i in self.instances.values())]


# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _FunDescriptor:
    """Static shape of a functional argument at a call site."""

    kind: str  # "user" | "builtin" | "section" | "param"
    name: str  # function name or operator text
    lifted: int = 0  # number of lifted (partially applied) arguments
    inner: tuple["_FunDescriptor", ...] = ()  # descriptors of *its* fn args


class _Instantiator:
    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.out = InstantiatedProgram(checked)
        self._memo: dict[tuple, str] = {}
        self._counter: dict[str, int] = {}

    # ------------------------------------------------------------------ utils
    def resolved(self, t: Type | None) -> Type:
        if t is None:
            raise InstantiationError("internal: untyped expression")
        return self.checked.resolved(t)

    def is_functional(self, t: Type | None) -> bool:
        return isinstance(self.resolved(t), TFun)

    def _mangle(self, source: str) -> str:
        self._counter[source] = self._counter.get(source, 0) + 1
        n = self._counter[source]
        if n > MAX_INSTANCES_PER_FUNCTION:
            raise InstantiationError(
                f"function {source!r} required more than "
                f"{MAX_INSTANCES_PER_FUNCTION} instances — this is the "
                "recursively-defined HOF class the paper's instantiation "
                "procedure excludes"
            )
        return f"{source}_{n}"

    # ------------------------------------------------------------------ driver
    def run(self) -> InstantiatedProgram:
        for name, f in self.checked.functions.items():
            if self._is_entry(f):
                clone = copy.deepcopy(f)
                self.out.entries[name] = clone
                self._process_body(clone, param_map={})
        return self.out

    def _is_entry(self, f: A.FuncDef) -> bool:
        types = [p.ty for p in f.params] + [f.ret]
        for t in types:
            rt = self.resolved(t)
            if isinstance(rt, TFun) or free_vars(rt):
                return False
        return True

    # ------------------------------------------------------------------ descriptors
    def _describe(self, e: A.Expr, param_map: dict) -> _FunDescriptor:
        """Classify a functional argument expression."""
        if isinstance(e, A.OperatorSection):
            return _FunDescriptor("section", e.op)
        if isinstance(e, A.Ident):
            if e.name in param_map:
                return param_map[e.name][0]
            if e.name in self.checked.functions or e.name in self.checked.externals:
                return _FunDescriptor("user", e.name)
            if e.name in BUILTIN_FUNCTIONS:
                return _FunDescriptor("builtin", e.name)
            raise InstantiationError(
                f"line {e.line}: functional argument {e.name!r} is not a "
                "statically known function — the instantiation procedure "
                "requires functional arguments to be resolvable at compile "
                "time"
            )
        if isinstance(e, A.Call) and e.partial:
            inner = self._describe(e.func, param_map)
            inner_descs = tuple(
                self._describe(a, param_map) if self.is_functional(a.ty) else None
                for a in e.args
            )
            return _FunDescriptor(
                inner.kind,
                inner.name,
                lifted=inner.lifted + len(e.args),
                inner=tuple(d for d in inner_descs if d is not None),
            )
        raise InstantiationError(
            f"line {e.line}: unsupported functional argument "
            f"({type(e).__name__}); pass a named function, an operator "
            "section, or a partial application of one"
        )

    def _flatten_fun_arg(
        self, e: A.Expr, param_map: dict
    ) -> tuple[_FunDescriptor, list[A.Expr]]:
        """Descriptor plus the lifted-value expressions, outermost last."""
        if isinstance(e, A.Call) and e.partial:
            desc_inner, lifted_inner = self._flatten_fun_arg(e.func, param_map)
            lifted = list(lifted_inner)
            plain_args: list[A.Expr] = []
            for a in e.args:
                if self.is_functional(a.ty):
                    continue  # functional sub-arguments live in the descriptor
                plain_args.append(a)
            desc = self._describe(e, param_map)
            return desc, lifted + plain_args
        if isinstance(e, A.Ident) and e.name in param_map:
            desc, lifted_params = param_map[e.name]
            return desc, [A.Ident(nm, ty=t) for nm, t in lifted_params]
        return self._describe(e, param_map), []

    # ------------------------------------------------------------------ body
    def _process_body(self, f: A.FuncDef, param_map: dict) -> None:
        """Rewrite all calls inside *f* (which is already first-order)."""
        f.body = self._stmt(f.body, param_map)

    def _stmt(self, s: A.Stmt, pm: dict) -> A.Stmt:
        if isinstance(s, A.Block):
            s.stmts = [self._stmt(x, pm) for x in s.stmts]
            return s
        if isinstance(s, A.VarDecl):
            if s.init is not None:
                s.init = self._expr(s.init, pm)
            return s
        if isinstance(s, A.If):
            s.cond = self._expr(s.cond, pm)
            s.then = self._stmt(s.then, pm)
            if s.orelse is not None:
                s.orelse = self._stmt(s.orelse, pm)
            return s
        if isinstance(s, A.While):
            s.cond = self._expr(s.cond, pm)
            s.body = self._stmt(s.body, pm)
            return s
        if isinstance(s, A.For):
            if s.init is not None:
                s.init = self._stmt(s.init, pm)
            if s.cond is not None:
                s.cond = self._expr(s.cond, pm)
            if s.step is not None:
                s.step = self._expr(s.step, pm)
            s.body = self._stmt(s.body, pm)
            return s
        if isinstance(s, A.Return):
            if s.value is not None:
                s.value = self._expr(s.value, pm)
            return s
        if isinstance(s, A.ExprStmt):
            s.expr = self._expr(s.expr, pm)
            return s
        return s

    def _expr(self, e: A.Expr, pm: dict) -> A.Expr:
        if isinstance(e, A.Call):
            return self._call(e, pm)
        for attr in ("left", "right", "operand", "target", "value", "base",
                     "index", "cond", "then", "orelse"):
            child = getattr(e, attr, None)
            if isinstance(child, A.Expr):
                setattr(e, attr, self._expr(child, pm))
        if isinstance(e, A.BraceList):
            e.items = [self._expr(x, pm) for x in e.items]
        if isinstance(e, A.Ident) and e.name in pm:
            raise InstantiationError(
                f"line {e.line}: functional parameter {e.name!r} escapes in a "
                "non-call position the instantiation procedure cannot lift"
            )
        return e

    # ------------------------------------------------------------------ calls
    def _call(self, e: A.Call, pm: dict) -> A.Expr:
        # flatten application of a partial application: g(a)(b) -> g(a, b)
        if isinstance(e.func, A.Call) and e.func.partial:
            merged = A.Call(
                e.func.func, e.func.args + e.args, line=e.line, ty=e.ty
            )
            return self._call(merged, pm)

        # call THROUGH a functional parameter: inline the actual function
        if isinstance(e.func, A.Ident) and e.func.name in pm:
            desc, lifted_params = pm[e.func.name]
            args = [self._expr(a, pm) for a in e.args]
            lifted_exprs = [A.Ident(nm, ty=t) for nm, t in lifted_params]
            return self._direct_call(desc, lifted_exprs + args, e, pm)

        if isinstance(e.func, A.OperatorSection):
            args = [self._expr(a, pm) for a in e.args]
            return self._apply_section(e.func.op, args, e)

        if not isinstance(e.func, A.Ident):
            raise InstantiationError(
                f"line {e.line}: cannot instantiate a call through "
                f"{type(e.func).__name__}"
            )

        name = e.func.name
        if e.partial:
            # a partial application in value position is consumed by the
            # surrounding call (as a functional argument); standalone
            # partial applications cannot exist in first-order code
            raise InstantiationError(
                f"line {e.line}: partial application of {name!r} used as a "
                "value outside a functional-argument position"
            )

        if name in BUILTIN_FUNCTIONS:
            return self._builtin_call(name, e, pm)
        if name in self.checked.externals:
            e.args = [self._expr(a, pm) for a in e.args]
            return e
        if name in self.checked.functions:
            return self._user_call(name, e, pm)
        raise InstantiationError(f"line {e.line}: unknown function {name!r}")

    def _apply_section(self, op: str, args: list[A.Expr], e: A.Call) -> A.Expr:
        if op in ("min", "max") and len(args) == 2:
            call = A.Call(A.Ident(op), args, line=e.line, ty=e.ty)
            return call
        if len(args) == 2:
            return A.BinOp(op, args[0], args[1], line=e.line, ty=e.ty)
        raise InstantiationError(
            f"line {e.line}: operator section ({op}) applied to "
            f"{len(args)} arguments"
        )

    def _direct_call(
        self, desc: _FunDescriptor, args: list[A.Expr], e: A.Call, pm: dict
    ) -> A.Expr:
        if desc.kind == "section":
            return self._apply_section(desc.name, args, e)
        if desc.kind == "builtin":
            return A.Call(A.Ident(desc.name), args, line=e.line, ty=e.ty)
        call = A.Call(A.Ident(desc.name), args, line=e.line, ty=e.ty)
        if desc.name in self.checked.functions:
            return self._user_call(desc.name, call, pm, forced_desc=desc)
        return call  # external

    # ------------------------------------------------------------------ user calls
    def _user_call(
        self,
        name: str,
        e: A.Call,
        pm: dict,
        forced_desc: _FunDescriptor | None = None,
    ) -> A.Expr:
        f = self.checked.functions[name]
        if len(e.args) != len(f.params):
            raise InstantiationError(
                f"line {e.line}: call of {name!r} with {len(e.args)} args "
                f"for {len(f.params)} parameters after flattening"
            )
        arg_types = tuple(self.resolved(a.ty) for a in e.args)

        # split arguments into plain values and functional descriptors
        fun_descs: list[_FunDescriptor | None] = []
        fun_lifted: list[list[A.Expr] | None] = []
        for p, a in zip(f.params, e.args):
            if self.is_functional(p.ty):
                desc, lifted = self._flatten_fun_arg(a, pm)
                fun_descs.append(desc)
                fun_lifted.append([self._expr(x, pm) for x in lifted])
            else:
                fun_descs.append(None)
                fun_lifted.append(None)

        needs_instance = any(d is not None for d in fun_descs) or any(
            free_vars(self.resolved(p.ty)) for p in f.params
        ) or free_vars(self.resolved(f.ret))

        if not needs_instance:
            if name not in self.out.entries and name not in self.out.instances:
                # plain monomorphic helper — emit as a (single) instance
                key = ("plain", name)
                if key not in self._memo:
                    inst_name = name  # keep the original name
                    clone = copy.deepcopy(f)
                    self._memo[key] = inst_name
                    global_metrics().inc("lang.instantiations")
                    self.out.instances[inst_name] = Instance(
                        inst_name, name, clone, arg_types
                    )
                    self.out.report.setdefault(name, []).append(inst_name)
                    self._process_body(clone, {})
            new_args = [self._expr(a, pm) for a in e.args]
            return A.Call(A.Ident(name), new_args, line=e.line, ty=e.ty)

        # ---- build / reuse a specialized instance --------------------------
        type_key = tuple(t.show() for t in arg_types)
        desc_key = tuple(fun_descs)
        key = (name, type_key, desc_key)
        if key in self._memo:
            global_metrics().inc("lang.specialize_cache_hits")
            inst_name = self._memo[key]
        else:
            inst_name = self._mangle(name)
            self._memo[key] = inst_name
            global_metrics().inc("lang.instantiations")
            # self-recursive calls inside the instance body see the
            # ORIGINAL (generic) parameter types; pre-register that key so
            # d&c-style recursion with unchanged functional arguments maps
            # back onto this very instance instead of spawning a new one
            generic_types = tuple(self.resolved(p.ty).show() for p in f.params)
            self._memo.setdefault((name, generic_types, desc_key), inst_name)
            clone = copy.deepcopy(f)
            new_params: list[A.FuncParam] = []
            inner_pm: dict[str, tuple[_FunDescriptor, list[tuple[str, Type]]]] = {}
            for p, desc, lifted in zip(clone.params, fun_descs, fun_lifted):
                if desc is None:
                    new_params.append(p)
                    continue
                lifted_params = []
                for i, lv in enumerate(lifted or []):
                    ln = f"_lift_{p.name}_{i}"
                    lt = self.resolved(lv.ty)
                    new_params.append(A.FuncParam(ln, lt, line=p.line))
                    lifted_params.append((ln, lt))
                inner_pm[p.name] = (desc, lifted_params)
            clone.params = tuple(new_params)
            clone.name = inst_name
            inst = Instance(inst_name, name, clone, arg_types)
            self.out.instances[inst_name] = inst
            self.out.report.setdefault(name, []).append(inst_name)
            self._process_body(clone, inner_pm)

        # ---- rewrite the call site -----------------------------------------
        new_args: list[A.Expr] = []
        for a, desc, lifted in zip(e.args, fun_descs, fun_lifted):
            if desc is None:
                new_args.append(self._expr(a, pm))
            else:
                new_args.extend(lifted or [])
        return A.Call(A.Ident(inst_name), new_args, line=e.line, ty=e.ty)

    # ------------------------------------------------------------------ builtins
    def _builtin_call(self, name: str, e: A.Call, pm: dict) -> A.Expr:
        from repro.lang.builtins import KERNEL_KINDS

        sig = BUILTIN_FUNCTIONS[name]
        new_args: list[A.Expr] = []
        for idx, (pt, a) in enumerate(zip(sig.params, e.args)):
            if isinstance(pt, TFun):
                n_elems = KERNEL_KINDS.get((name, idx))
                new_args.append(self._kernel_arg(a, pm, n_elems))
            else:
                new_args.append(self._expr(a, pm))
        e.args = new_args
        return e

    def _kernel_arg(
        self, a: A.Expr, pm: dict, n_elems: "int | None" = None
    ) -> A.Expr:
        """Materialise a skeleton's functional argument."""
        if isinstance(a, A.OperatorSection):
            return SectionRef(a.op, line=a.line, ty=a.ty)
        if isinstance(a, A.Ident) and a.name in ("min", "max"):
            return SectionRef(a.name, line=a.line, ty=a.ty)
        desc, lifted = self._flatten_fun_arg(a, pm)
        lifted = [self._expr(x, pm) for x in lifted]
        if desc.kind == "section":
            if lifted:
                raise InstantiationError(
                    f"line {a.line}: a partially applied operator section "
                    "does not match any skeleton argument signature"
                )
            return SectionRef(desc.name, line=a.line, ty=a.ty)
        if desc.kind == "user":
            if desc.name not in self.checked.functions:
                # external function linked in at run time
                return KernelRef(desc.name, lifted, 1.0, line=a.line, ty=a.ty)
            inst_name = self._kernel_instance(desc, a, lifted, pm)
            inst = self.out.instances[inst_name]
            if inst.kernel_elems is None:
                inst.kernel_elems = n_elems
            return KernelRef(inst_name, lifted, _estimate_ops(inst.func),
                             line=a.line, ty=a.ty)
        if desc.kind == "builtin":
            return KernelRef(desc.name, lifted, 1.0, line=a.line, ty=a.ty)
        raise InstantiationError(
            f"line {a.line}: cannot materialise functional argument "
            f"of kind {desc.kind!r}"
        )

    def _kernel_instance(
        self, desc: _FunDescriptor, a: A.Expr, lifted: list[A.Expr], pm: dict
    ) -> str:
        """Instance for a user function handed to a skeleton."""
        name = desc.name
        f = self.checked.functions.get(name)
        if f is None:
            # external function used directly as a kernel
            return name
        # reconstruct the full call type: lifted args bound, rest open
        arg_types: list[Type] = []
        for x in lifted:
            arg_types.append(self.resolved(x.ty))
        # remaining parameter types come from the use-site type of `a`
        use_t = self.resolved(a.ty)
        if isinstance(use_t, TFun):
            arg_types.extend(self.resolved(p) for p in use_t.params)
        type_key = tuple(t.show() for t in arg_types)
        key = ("kernel", name, type_key, desc.inner)
        if key in self._memo:
            global_metrics().inc("lang.specialize_cache_hits")
            return self._memo[key]
        inst_name = self._mangle(name)
        self._memo[key] = inst_name
        global_metrics().inc("lang.instantiations")
        clone = copy.deepcopy(f)
        clone.name = inst_name
        # parameters stay as declared: the lifted values are BOUND at the
        # call site via the KernelRef, and the generated python binds them
        # as leading parameters with default-argument lifting
        inst = Instance(inst_name, name, clone, tuple(arg_types))
        self.out.instances[inst_name] = inst
        self.out.report.setdefault(name, []).append(inst_name)
        self._process_body(clone, {})
        return inst_name


_ARITH_OPS = {"+", "-", "*", "/", "%", "<<", ">>"}


def _estimate_ops(f: A.FuncDef) -> float:
    """Abstract-op estimate of one kernel application.

    Arithmetic operators count 1.0, comparisons/logical glue 0.25 (they
    compile to cheap branch tests), minimum 1.0 total.  The goal is for
    compiled kernels to charge roughly what a hand-annotated driver
    (``skil_fn(ops=...)``) would, so compiled and native runs of the
    same program land on the same simulated times.
    """
    count = 0.0

    def walk_expr(e: A.Expr) -> None:
        nonlocal count
        if isinstance(e, A.BinOp):
            count += 1.0 if e.op in _ARITH_OPS else 0.25
        elif isinstance(e, A.UnOp):
            count += 0.5
        for attr in ("left", "right", "operand", "target", "value", "base",
                     "index", "cond", "then", "orelse", "func"):
            child = getattr(e, attr, None)
            if isinstance(child, A.Expr):
                walk_expr(child)
        if isinstance(e, A.Call):
            for x in e.args:
                walk_expr(x)
        if isinstance(e, A.BraceList):
            for x in e.items:
                walk_expr(x)

    def walk_stmt(s: A.Stmt) -> None:
        if isinstance(s, A.Block):
            for x in s.stmts:
                walk_stmt(x)
        elif isinstance(s, A.VarDecl) and s.init is not None:
            walk_expr(s.init)
        elif isinstance(s, A.If):
            walk_expr(s.cond)
            walk_stmt(s.then)
            if s.orelse:
                walk_stmt(s.orelse)
        elif isinstance(s, A.While):
            walk_expr(s.cond)
            walk_stmt(s.body)
        elif isinstance(s, A.For):
            if s.init:
                walk_stmt(s.init)
            if s.cond:
                walk_expr(s.cond)
            if s.step:
                walk_expr(s.step)
            walk_stmt(s.body)
        elif isinstance(s, A.Return) and s.value is not None:
            walk_expr(s.value)
        elif isinstance(s, A.ExprStmt):
            walk_expr(s.expr)

    walk_stmt(f.body)
    return float(max(1.0, count))


def instantiate_program(checked: CheckedProgram) -> InstantiatedProgram:
    """Run translation by instantiation over a checked program."""
    return _Instantiator(checked).run()

"""Abstract syntax tree of the Skil subset.

Nodes carry a ``ty`` slot filled in by the type checker and used by the
instantiation pass and the code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang.types import Type

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    "Program",
    "TypedefDecl",
    "StructDecl",
    "PardataHeader",
    "FuncParam",
    "FuncDecl",
    "FuncDef",
    "VarDecl",
    "Block",
    "If",
    "While",
    "For",
    "Return",
    "ExprStmt",
    "IntLit",
    "FloatLit",
    "StringLit",
    "CharLit",
    "Ident",
    "Call",
    "BinOp",
    "UnOp",
    "Assign",
    "IndexExpr",
    "Member",
    "Cond",
    "OperatorSection",
    "BraceList",
    "Cast",
]


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------- types
@dataclass
class Expr(Node):
    ty: Optional[Type] = field(default=None, kw_only=True)


@dataclass
class Stmt(Node):
    pass


# --------------------------------------------------------------------------- decls
@dataclass
class TypedefDecl(Node):
    name: str
    type_params: tuple[str, ...]
    target: Type


@dataclass
class StructDecl(Node):
    name: str
    type_params: tuple[str, ...]
    fields: tuple[tuple[str, Type], ...]


@dataclass
class PardataHeader(Node):
    """``pardata name <$t1,...> [implem] ;`` — implementation hidden."""

    name: str
    type_params: tuple[str, ...]
    has_implem: bool = False


@dataclass
class FuncParam(Node):
    name: str
    ty: Type


@dataclass
class FuncDecl(Node):
    """Prototype — used for externals (host-supplied functions)."""

    name: str
    params: tuple[FuncParam, ...]
    ret: Type


@dataclass
class FuncDef(Node):
    name: str
    params: tuple[FuncParam, ...]
    ret: Type
    body: "Block"


@dataclass
class Program(Node):
    decls: list[Node] = field(default_factory=list)

    def functions(self) -> dict[str, FuncDef]:
        return {d.name: d for d in self.decls if isinstance(d, FuncDef)}


# --------------------------------------------------------------------------- stmts
@dataclass
class VarDecl(Stmt):
    name: str
    ty: Type
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    orelse: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


# --------------------------------------------------------------------------- exprs
@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class CharLit(Expr):
    value: str = "\0"


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Call(Expr):
    func: Expr = None  # type: ignore[assignment]
    args: list[Expr] = field(default_factory=list)
    #: filled by the checker: True when fewer arguments than parameters
    #: were supplied and the call is a partial application
    partial: bool = False


@dataclass
class BinOp(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class UnOp(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Expr):
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]
    op: str = "="  # =, +=, -=, ...


@dataclass
class IndexExpr(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Member(Expr):
    base: Expr = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False  # True for '->'


@dataclass
class Cond(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    orelse: Expr = None  # type: ignore[assignment]


@dataclass
class OperatorSection(Expr):
    """``(+)``, ``(*)`` ... — an operator converted to a function."""

    op: str = ""


@dataclass
class BraceList(Expr):
    """``{a, b}`` — the paper's pseudo-code Index/Size literal."""

    items: list[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    target: Type = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]

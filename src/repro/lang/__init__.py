"""The Skil language front end: lexer, parser, polymorphic type checker,
translation by instantiation, and Python code generation."""

from repro.lang.compiler import SkilModule, compile_skil, compile_skil_file
from repro.lang.instantiate import (
    MAX_INSTANCES_PER_FUNCTION,
    InstantiatedProgram,
    instantiate_program,
)
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.typecheck import CheckedProgram, check

__all__ = [
    "compile_skil",
    "compile_skil_file",
    "SkilModule",
    "parse",
    "tokenize",
    "check",
    "CheckedProgram",
    "instantiate_program",
    "InstantiatedProgram",
    "MAX_INSTANCES_PER_FUNCTION",
]

"""Kernel vectorizer: compile map/init kernels to numpy.

The paper's back end compiles the instantiated first-order C with an
optimizing C compiler, so per-element kernels run at machine speed.  Our
back end is Python, where a per-element loop is slow *in wall-clock*
(simulated time is charged analytically either way) — this pass closes
that gap by translating kernels in a restricted-but-common subset into
numpy expressions over whole partitions:

* straight-line bodies of local declarations (uniform ones become
  Python scalars, per-element ones whole-block arrays), ``if``/
  ``return`` chains and a final ``return``;
* expressions over the element value, ``ix[...]`` components, lifted
  parameters, numeric literals, ``array_get_elem`` with in-partition
  indices, ``array_part_bounds`` results, ``procId``, ``abs``/``min``/
  ``max`` and casts;
* conditions that are *uniform* across the partition (no ``v``/``ix``
  dependence, e.g. ``copy_pivot``'s bounds test) become Python-level
  branches; varying conditions become masked ``np.where`` selections
  (both sides evaluated, so both sides must be total — division guards
  are wrapped in ``errstate``).

A kernel outside the subset simply stays scalar; correctness never
depends on this pass, and the test-suite checks scalar and vectorized
paths agree.
"""

from __future__ import annotations

import io

from repro.lang import ast as A
from repro.lang.instantiate import Instance
from repro.lang.types import INDEX, TFun, TPardata, TPrim, Type

__all__ = ["try_vectorize", "VectorizeFailure"]


class VectorizeFailure(Exception):
    """Internal: kernel is outside the vectorizable subset."""


def try_vectorize(inst: Instance, resolved) -> str | None:
    """Return Python source for ``_vec_<name>`` or None.

    *resolved* maps a ``Type | None`` to its substitution-resolved form
    (the checker's ``CheckedProgram.resolved``).
    """
    try:
        return _Vectorizer(inst, resolved).emit()
    except VectorizeFailure:
        return None


class _Vectorizer:
    def __init__(self, inst: Instance, resolved):
        self.inst = inst
        self.resolved = resolved
        f = inst.func
        params = list(f.params)
        if not params:
            raise VectorizeFailure("kernel without parameters")
        last = resolved(params[-1].ty)
        if not (isinstance(last, TPrim) and last.name in ("Index", "Size")):
            raise VectorizeFailure("kernel does not end in an Index parameter")
        self.ix_name = params[-1].name
        lead = params[:-1]
        # trailing element-value parameters bound to partition blocks;
        # the skeleton use site records how many (array_zip has two),
        # otherwise at most one trailing scalar is the element
        n_elems = inst.kernel_elems
        if n_elems is None:
            n_elems = 1 if (lead and _is_scalar_value(resolved(lead[-1].ty))) else 0
        self.elem_names: list[str] = []
        for _ in range(n_elems):
            if not lead or not _is_scalar_value(resolved(lead[-1].ty)):
                raise VectorizeFailure("kernel arity does not match its use")
            self.elem_names.insert(0, lead[-1].name)
            lead = lead[:-1]
        self.elem_name = self.elem_names[-1] if len(self.elem_names) == 1 else None
        self.lead_params = lead
        # names of parameters that hold distributed arrays (gatherable)
        self.array_params = {
            p.name for p in lead if isinstance(resolved(p.ty), TPardata)
        }
        self.scalar_params = {p.name for p in lead} - self.array_params
        self.uniform_locals: dict[str, str] = {}
        self.varying_locals: set[str] = set()
        self.prologue: list[str] = []
        # does the emitted code read __env (procId, part_bounds, gather)?
        # env-free kernels may run fused over the whole pooled array —
        # their result per element cannot depend on the executing rank
        self.uses_env = False

    # ------------------------------------------------------------------ emit
    def emit(self) -> str:
        body_expr = self._translate_stmts(list(self.inst.func.body.stmts))
        out = io.StringIO()
        args = [p.name for p in self.lead_params]
        args += [f"__block{i}" for i in range(len(self.elem_names))]
        args += ["__grids", "__env"]
        out.write(f"def _vec_{self.inst.name}({', '.join(args)}):\n")
        for i, name in enumerate(self.elem_names):
            out.write(f"    {name} = __block{i}\n")
        for line in self.prologue:
            out.write(f"    {line}\n")
        out.write(f"    return {body_expr}\n")
        out.write(f"_vec_{self.inst.name}.env_free = {not self.uses_env}\n")
        return out.getvalue()

    # ------------------------------------------------------------------ stmts
    def _translate_stmts(self, stmts: list[A.Stmt]) -> str:
        if not stmts:
            raise VectorizeFailure("falls off the end without a return")
        s, rest = stmts[0], stmts[1:]
        if isinstance(s, A.Block):
            return self._translate_stmts(list(s.stmts) + rest)
        if isinstance(s, A.VarDecl):
            if s.init is None:
                raise VectorizeFailure("uninitialised local")
            code, uniform = self._expr(s.init)
            self.prologue.append(f"{s.name} = {code}")
            if uniform:
                self.uniform_locals[s.name] = s.name
            else:
                # a per-element temporary (the fusion pass threads the
                # producer kernel's value through one); it simply becomes
                # a whole-block numpy array bound in the prologue
                self.varying_locals.add(s.name)
            return self._translate_stmts(rest)
        if isinstance(s, A.Return):
            if s.value is None:
                raise VectorizeFailure("void return in kernel")
            return self._expr(s.value)[0]
        if isinstance(s, A.If):
            cond_code, cond_uniform = self._expr(s.cond)
            then_expr = self._branch_expr(s.then)
            if s.orelse is not None:
                else_expr = self._branch_expr(s.orelse)
            else:
                else_expr = self._translate_stmts(rest)
            if cond_uniform:
                return f"(({then_expr}) if ({cond_code}) else ({else_expr}))"
            return f"_np.where({cond_code}, {then_expr}, {else_expr})"
        raise VectorizeFailure(f"statement {type(s).__name__} outside the subset")

    def _branch_expr(self, s: A.Stmt) -> str:
        if isinstance(s, A.Block):
            return self._translate_stmts(list(s.stmts))
        return self._translate_stmts([s])

    def _is_int(self, t: Type | None) -> bool:
        t = self.resolved(t) if t is not None else None
        return isinstance(t, TPrim) and t.name in ("int", "unsigned", "char")

    # ------------------------------------------------------------------ exprs
    def _expr(self, e: A.Expr) -> tuple[str, bool]:
        """Translate an expression; returns (code, is_uniform)."""
        if isinstance(e, A.IntLit):
            return repr(e.value), True
        if isinstance(e, A.FloatLit):
            return repr(e.value), True
        if isinstance(e, A.Ident):
            if e.name in self.elem_names:
                return e.name, False
            if e.name == self.ix_name:
                raise VectorizeFailure("whole-Index use outside indexing")
            if e.name in self.varying_locals:
                return e.name, False
            if e.name in self.scalar_params or e.name in self.uniform_locals:
                return e.name, True
            if e.name in self.array_params:
                raise VectorizeFailure("array used outside get_elem/bounds")
            if e.name == "procId":
                self.uses_env = True
                return "__env.rank", True
            if e.name in ("INT_MAX", "UINT_MAX", "FLT_MAX"):
                return f"_rt.{e.name}", True
            raise VectorizeFailure(f"unsupported identifier {e.name!r}")
        if isinstance(e, A.IndexExpr):
            if isinstance(e.base, A.Ident) and e.base.name == self.ix_name:
                d_code, d_uniform = self._expr(e.index)
                if not d_uniform:
                    raise VectorizeFailure("non-uniform Index component")
                return f"__grids[{d_code}]", False
            base_code, base_uniform = self._expr(e.base)
            idx_code, idx_uniform = self._expr(e.index)
            if not (base_uniform and idx_uniform):
                raise VectorizeFailure("varying indexing outside the subset")
            return f"{base_code}[{idx_code}]", True
        if isinstance(e, A.BinOp):
            lc, lu = self._expr(e.left)
            rc, ru = self._expr(e.right)
            uniform = lu and ru
            if e.op in ("&&", "||"):
                if uniform:
                    op = "and" if e.op == "&&" else "or"
                    return f"(({lc}) {op} ({rc}))", True
                op = "&" if e.op == "&&" else "|"
                return f"(({lc}) {op} ({rc}))", False
            if e.op in ("/", "%") and self._is_int(e.ty):
                # C's truncating semantics, same as the scalar code path
                # (numpy's / and % floor instead; the repro.check fuzzer
                # caught the two paths disagreeing on negative operands)
                fn = "_rt.c_div" if e.op == "/" else "_rt.c_mod"
                return f"{fn}({lc}, {rc})", uniform
            return f"({lc} {e.op} {rc})", uniform
        if isinstance(e, A.UnOp):
            c, u = self._expr(e.operand)
            if e.op == "!":
                return (f"(not {c})", True) if u else (f"(~({c}))", False)
            return f"(-{c})", u
        if isinstance(e, A.Cond):
            cc, cu = self._expr(e.cond)
            tc, tu = self._expr(e.then)
            ec, eu = self._expr(e.orelse)
            if cu:
                return f"(({tc}) if ({cc}) else ({ec}))", tu and eu
            return f"_np.where({cc}, {tc}, {ec})", False
        if isinstance(e, A.Member):
            # Bounds member through a uniform local
            base_code, base_uniform = self._expr(e.base)
            if not base_uniform:
                raise VectorizeFailure("varying member access")
            if e.name in ("lowerBd", "upperBd"):
                return f"{base_code}.{e.name}", True
            raise VectorizeFailure(f"member {e.name!r} outside the subset")
        if isinstance(e, A.Cast):
            c, u = self._expr(e.operand)
            target = e.target.show()
            if target in ("float", "double"):
                fn = "_np.float64" if u else "_np.asarray"
                return (f"float({c})", True) if u else (f"({c}).astype(float)", False)
            if target in ("int", "unsigned", "char"):
                return (f"int({c})", True) if u else (
                    f"_np.trunc({c}).astype(_np.int64)", False)
            raise VectorizeFailure(f"cast to {target} outside the subset")
        if isinstance(e, A.Call):
            return self._call(e)
        raise VectorizeFailure(f"expression {type(e).__name__} outside the subset")

    def _call(self, e: A.Call) -> tuple[str, bool]:
        if not isinstance(e.func, A.Ident):
            raise VectorizeFailure("computed call target")
        name = e.func.name
        if name == "array_get_elem":
            arr = e.args[0]
            if not (isinstance(arr, A.Ident) and arr.name in self.array_params):
                raise VectorizeFailure("get_elem on a non-parameter array")
            idx = e.args[1]
            if not isinstance(idx, A.BraceList) or len(idx.items) != 2:
                raise VectorizeFailure("get_elem index outside the subset")
            i0, u0 = self._expr(idx.items[0])
            i1, u1 = self._expr(idx.items[1])
            self.uses_env = True
            code = f"_rt.vec_gather({arr.name}, {i0}, {i1}, __env)"
            return code, u0 and u1
        if name == "array_part_bounds":
            arr = e.args[0]
            if not (isinstance(arr, A.Ident) and arr.name in self.array_params):
                raise VectorizeFailure("part_bounds on a non-parameter array")
            self.uses_env = True
            return f"{arr.name}.part_bounds(__env.rank)", True
        if name == "abs":
            c, u = self._expr(e.args[0])
            return (f"abs({c})", True) if u else (f"_np.abs({c})", False)
        if name in ("min", "max"):
            a, ua = self._expr(e.args[0])
            b, ub = self._expr(e.args[1])
            if ua and ub:
                return f"{name}({a}, {b})", True
            np_fn = "_np.minimum" if name == "min" else "_np.maximum"
            return f"{np_fn}({a}, {b})", False
        raise VectorizeFailure(f"call to {name!r} outside the subset")


def _is_scalar_value(t: Type) -> bool:
    if isinstance(t, (TFun, TPardata)):
        return False
    if isinstance(t, TPrim) and t.name in ("Index", "Size", "Bounds"):
        return False
    return True

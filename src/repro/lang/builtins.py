"""Builtin signatures visible to Skil programs.

These are the "headers" of the skeleton library (§3), the array access
macros, the ``DISTR_*`` constants and a couple of C stdlib helpers the
sample programs use.  Each entry is a polymorphic type *scheme*: its
type variables are instantiated freshly at every use site.
"""

from __future__ import annotations

from repro.lang.types import (
    BOUNDS,
    DOUBLE,
    INDEX,
    INT,
    SIZE,
    STRING,
    VOID,
    TFun,
    TPardata,
    TVar,
    Type,
)

__all__ = ["BUILTIN_FUNCTIONS", "BUILTIN_VALUES", "array_of"]


def array_of(t: Type) -> TPardata:
    return TPardata("array", (t,))


_T = TVar("$t")
_T1 = TVar("$t1")
_T2 = TVar("$t2")
_A = TVar("$a")

#: name -> type scheme (TFun); all are first-class and can be passed around
BUILTIN_FUNCTIONS: dict[str, TFun] = {
    # -- skeletons (§3) ------------------------------------------------------
    "array_create": TFun(
        (INT, SIZE, SIZE, INDEX, TFun((INDEX,), _T), INT), array_of(_T)
    ),
    "array_destroy": TFun((array_of(_T),), VOID),
    "array_map": TFun(
        (TFun((_T1, INDEX), _T2), array_of(_T1), array_of(_T2)), VOID
    ),
    "array_fold": TFun(
        (TFun((_T1, INDEX), _T2), TFun((_T2, _T2), _T2), array_of(_T1)), _T2
    ),
    "array_copy": TFun((array_of(_T), array_of(_T)), VOID),
    "array_broadcast_part": TFun((array_of(_T), INDEX), VOID),
    "array_permute_rows": TFun(
        (array_of(_T), TFun((INT,), INT), array_of(_T)), VOID
    ),
    "array_gen_mult": TFun(
        (
            array_of(_T),
            array_of(_T),
            TFun((_T, _T), _T),
            TFun((_T, _T), _T),
            array_of(_T),
        ),
        VOID,
    ),
    # -- extension skeletons (future work, DESIGN.md §5) -----------------------
    "array_zip": TFun(
        (
            TFun((_T1, _T2, INDEX), TVar("$t3")),
            array_of(_T1),
            array_of(_T2),
            array_of(TVar("$t3")),
        ),
        VOID,
    ),
    "array_scan": TFun(
        (TFun((_T, _T), _T), array_of(_T), array_of(_T)), VOID
    ),
    # -- access macros -------------------------------------------------------
    "array_part_bounds": TFun((array_of(_T),), BOUNDS),
    "array_get_elem": TFun((array_of(_T), INDEX), _T),
    "array_put_elem": TFun((array_of(_T), INDEX, _T), VOID),
    # -- named generic operators used as arguments (§4.1) ---------------------
    "min": TFun((_A, _A), _A),
    "max": TFun((_A, _A), _A),
    # -- host helpers ----------------------------------------------------------
    "log2": TFun((INT,), INT),
    "abs": TFun((_A,), _A),
    "sqrt": TFun((DOUBLE,), DOUBLE),
    "error": TFun((STRING,), VOID),
    "printf": TFun((STRING,), VOID),
}

#: constants: name -> type
BUILTIN_VALUES: dict[str, Type] = {
    "DISTR_DEFAULT": INT,
    "DISTR_RING": INT,
    "DISTR_TORUS2D": INT,
    "procId": INT,
    "nProcs": INT,
    "INT_MAX": INT,
    "UINT_MAX": INT,
    "FLT_MAX": DOUBLE,
}

#: builtins whose functional arguments the instantiation pass must
#: materialise as first-order kernels (the skeleton set)
SKELETON_NAMES = frozenset(
    {
        "array_create",
        "array_map",
        "array_fold",
        "array_permute_rows",
        "array_gen_mult",
        "array_zip",
        "array_scan",
    }
)

#: how many trailing element-value parameters a kernel in this builtin
#: argument position has (before its Index parameter) — used by the
#: vectorizer to bind partition blocks
KERNEL_KINDS: dict[tuple[str, int], int] = {
    ("array_create", 4): 0,
    ("array_map", 0): 1,
    ("array_fold", 0): 1,
    ("array_zip", 0): 2,
}

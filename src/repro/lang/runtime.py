"""Run-time support for compiled Skil programs.

The generated Python calls into this module for everything that the
paper's generated C gets from the skeleton library and the C standard
library: the skeletons themselves (dispatched through the executing
:class:`~repro.skeletons.base.SkilContext`), the array access macros
(which resolve the *current processor* through the skeleton execution
context), dtype mapping for ``$t`` instantiations, and small helpers
(``log2``, truncating division, ``error()``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SkeletonError, SkilRuntimeError
from repro.skeletons import MAX, MIN, OPERATOR_SECTIONS
from repro.skeletons.base import current_context

__all__ = [
    "INT_MAX",
    "UINT_MAX",
    "FLT_MAX",
    "proc_id",
    "array_part_bounds",
    "array_get_elem",
    "array_put_elem",
    "bounds_member",
    "make_kernel",
    "section",
    "array_create",
    "array_create_uninit",
    "array_destroy",
    "array_map",
    "array_fold",
    "array_copy",
    "array_broadcast_part",
    "array_permute_rows",
    "array_gen_mult",
    "array_gen_mult_square",
    "array_zip",
    "array_scan",
    "dtype_of",
    "struct_dtype",
    "register_struct",
    "new_struct",
    "log2",
    "sqrt",
    "c_div",
    "c_mod",
    "cast",
    "error",
    "printf",
    "min_fn",
    "max_fn",
]

INT_MAX = 2**31 - 1
UINT_MAX = 2**32 - 1
FLT_MAX = 3.402823466e38


# ---------------------------------------------------------------------------
# processor context (the paper's procId / array macros)
# ---------------------------------------------------------------------------
def proc_id() -> int:
    return current_context().proc_id()


def array_part_bounds(a):
    return a.part_bounds(current_context().proc_id())


def _frontend_rank(a, ix):
    """Owner rank for a front-end (outside-skeleton) element access.

    Inside a skeleton the access is the paper's local macro.  Outside,
    the program is the front end touching distributed data: the access
    resolves to the element's owner and costs one simulated message
    between the front end (modelled at rank 0) and the owner — which is
    exactly why the fusion pass rewrites element loops into skeletons.
    """
    owner = a.owner(ix)
    a.machine.network.p2p(
        owner,
        0,
        a.dtype.itemsize,
        a.machine.topology(a.distr),
        tag="frontend-elem",
    )
    return owner


def array_get_elem(a, ix):
    ix = tuple(int(i) for i in ix)
    try:
        rank = current_context().proc_id()
    except SkeletonError:
        rank = _frontend_rank(a, ix)
    return a.get_elem(ix, rank)


def array_put_elem(a, ix, value):
    ix = tuple(int(i) for i in ix)
    try:
        rank = current_context().proc_id()
    except SkeletonError:
        rank = _frontend_rank(a, ix)
    a.put_elem(ix, value, rank)


def bounds_member(b, name: str):
    if name == "lowerBd":
        return b.lowerBd
    if name == "upperBd":
        return b.upperBd
    raise SkilRuntimeError(f"Bounds has no member {name!r}")


# ---------------------------------------------------------------------------
# kernels (lifted partial applications) and operator sections
# ---------------------------------------------------------------------------
def make_kernel(fn, bound: tuple = (), ops: float = 1.0):
    """Bind lifted arguments to a generated first-order function.

    The default-argument binding below is the Python shape of the
    paper's argument lifting: no closure object is created per element
    application, the bound values are plain leading parameters.
    """
    vec = getattr(fn, "vectorized", None)
    if not bound:
        def kernel0(*rest, _fn=fn):
            return _fn(*rest)

        kernel0.ops = float(ops)
        kernel0.__name__ = getattr(fn, "__name__", "kernel")
        if vec is not None:
            kernel0.vectorized = vec
        return kernel0

    def kernel(*rest, _fn=fn, _bound=tuple(bound)):
        return _fn(*_bound, *rest)

    kernel.ops = float(ops)
    kernel.__name__ = getattr(fn, "__name__", "kernel") + "_lifted"
    if vec is not None:
        kernel.vectorized = lambda *rest, _v=vec, _b=tuple(bound): _v(*_b, *rest)
        env_free = getattr(vec, "env_free", None)
        if env_free is not None:
            kernel.vectorized.env_free = env_free
    return kernel


def min_fn(x, y):
    return x if x <= y else y


def max_fn(x, y):
    return x if x >= y else y


def section(op: str):
    if op == "min":
        return MIN
    if op == "max":
        return MAX
    if op in OPERATOR_SECTIONS:
        return OPERATOR_SECTIONS[op]
    raise SkilRuntimeError(f"no runtime section for operator {op!r}")


# ---------------------------------------------------------------------------
# skeleton dispatch
# ---------------------------------------------------------------------------
def array_create(ctx, dim, size, blocksize, lowerbd, init_f, distr, dtype):
    return ctx.array_create(dim, size, blocksize, lowerbd, init_f, distr,
                            dtype=dtype)


def array_create_uninit(ctx, dim, size, blocksize, lowerbd, distr, dtype):
    return ctx.array_create_uninit(dim, size, blocksize, lowerbd, distr,
                                   dtype=dtype)


def array_destroy(ctx, a):
    ctx.array_destroy(a)


def array_map(ctx, f, src, dst):
    ctx.array_map(f, src, dst)


def array_fold(ctx, conv_f, fold_f, a):
    return ctx.array_fold(conv_f, fold_f, a)


def array_copy(ctx, src, dst):
    ctx.array_copy(src, dst)


def array_broadcast_part(ctx, a, ix):
    ctx.array_broadcast_part(a, tuple(int(i) for i in ix))


def array_permute_rows(ctx, src, perm_f, dst):
    ctx.array_permute_rows(src, perm_f, dst)


def array_gen_mult(ctx, a, b, gen_add, gen_mult, c):
    ctx.array_gen_mult(a, b, gen_add, gen_mult, c)


def array_gen_mult_square(ctx, a, gen_add, gen_mult, c):
    ctx.array_gen_mult_square(a, gen_add, gen_mult, c)


def array_zip(ctx, f, a, b, dst):
    ctx.array_zip(f, a, b, dst)


def array_scan(ctx, op, a, dst):
    ctx.array_scan(op, a, dst)


# ---------------------------------------------------------------------------
# dtypes for $t instantiations
# ---------------------------------------------------------------------------
#: int is widened to 64 bits so that the paper's "add a weight to
#: INT_MAX" idiom cannot wrap around; unsigned likewise
_DTYPES = {
    "int": np.dtype(np.int64),
    "unsigned": np.dtype(np.uint64),
    "float": np.dtype(np.float32),
    "double": np.dtype(np.float64),
    "char": np.dtype(np.int8),
}

_STRUCT_DTYPES: dict[str, np.dtype] = {}

_FIELD_DTYPES = {
    "int": "i8",
    "unsigned": "u8",
    "float": "f4",
    "double": "f8",
    "char": "i1",
}


def dtype_of(name: str) -> np.dtype:
    try:
        return _DTYPES[name]
    except KeyError:
        raise SkilRuntimeError(f"no numpy dtype for Skil type {name!r}") from None


def register_struct(name: str, fields: list[tuple[str, str]]) -> None:
    """Register a struct declaration as a numpy structured dtype."""
    np_fields = []
    for fname, ftype in fields:
        if ftype not in _FIELD_DTYPES:
            raise SkilRuntimeError(
                f"struct {name}: field {fname!r} has unsupported type {ftype!r}"
            )
        np_fields.append((fname, _FIELD_DTYPES[ftype]))
    _STRUCT_DTYPES[name] = np.dtype(np_fields)


def struct_dtype(name: str) -> np.dtype:
    try:
        return _STRUCT_DTYPES[name]
    except KeyError:
        raise SkilRuntimeError(f"unknown struct type {name!r}") from None


def new_struct(name: str):
    return np.zeros((), dtype=struct_dtype(name))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def log2(n) -> int:
    """``log2`` as used by shpaths: iterations to reach A^n by squaring."""
    return max(1, math.ceil(math.log2(max(1, int(n)))))


def sqrt(x) -> float:
    return math.sqrt(x)


def c_div(a, b):
    """C's truncating integer division (elementwise on numpy arrays)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        # fdiv + correction instead of trunc(a/b): exact for all int64,
        # where the float path loses precision beyond 2**53
        q = a // b
        return q + ((a % b != 0) & ((a < 0) != (b < 0)))
    q = a / b
    return int(q) if q >= 0 else -int(-q)


def c_mod(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        return a - c_div(a, b) * b
    return int(a) - c_div(a, b) * int(b)


def cast(type_name: str, value):
    if type_name in ("int", "unsigned", "char"):
        return int(value)
    if type_name in ("float", "double"):
        return float(value)
    raise SkilRuntimeError(f"unsupported cast to {type_name!r}")


def vec_gather(arr, i, j, env):
    """Vectorized local ``array_get_elem`` over broadcastable indices.

    Emitted by the vectorizer for ``array_get_elem(a, {i_expr, j_expr})``
    inside a kernel; indices are global and must lie in the partition of
    the executing processor (the compiler's locality rule).
    """
    b = arr.part_bounds(env.rank)
    li = np.asarray(i) - b.lower[0]
    lj = np.asarray(j) - b.lower[1]
    return arr.local(env.rank)[li, lj]


def error(msg: str):
    """The paper's run-time ``error()`` builtin."""
    raise SkilRuntimeError(msg)


def printf(fmt: str, *args):  # pragma: no cover - debugging aid
    print(fmt % args if args else fmt, end="")

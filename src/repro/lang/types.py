"""Skil's polymorphic type system.

Types are C types extended with type variables (``$t``) and *pardata*
types (``array<$t>``).  Function types are kept uncurried internally
(parameter list + result) but **application is curried**: supplying the
first *k* arguments of an *n*-ary function yields a function over the
remaining ``n - k`` parameters — the semantics Section 2.1 introduces
for partial application.

Unification is standard first-order unification with an occurs check;
one Skil-specific restriction is enforced here: "type variables
appearing as components of other data types may not be instantiated
with types introduced by the pardata construct", and pardata type
arguments may not be pardatas themselves (no nesting).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import SkilTypeError

__all__ = [
    "Type",
    "TPrim",
    "TVar",
    "TFun",
    "TPointer",
    "TArray",
    "TStruct",
    "TPardata",
    "INT",
    "UNSIGNED",
    "FLOAT",
    "DOUBLE",
    "CHAR",
    "VOID",
    "INDEX",
    "SIZE",
    "BOUNDS",
    "STRING",
    "Subst",
    "fresh_var",
    "free_vars",
    "contains_pardata",
]


class Type:
    """Base class; concrete types below are immutable value objects."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.show()

    def show(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class TPrim(Type):
    name: str

    def show(self) -> str:
        return self.name


@dataclass(frozen=True)
class TVar(Type):
    name: str  # includes the leading '$'

    def show(self) -> str:
        return self.name


@dataclass(frozen=True)
class TFun(Type):
    params: tuple[Type, ...]
    ret: Type

    def show(self) -> str:
        ps = ", ".join(p.show() for p in self.params)
        return f"({ps}) -> {self.ret.show()}"


@dataclass(frozen=True)
class TPointer(Type):
    target: Type

    def show(self) -> str:
        return f"{self.target.show()}*"


@dataclass(frozen=True)
class TArray(Type):
    """A classical C array (not the distributed pardata array)."""

    elem: Type
    size: int | None = None

    def show(self) -> str:
        sz = "" if self.size is None else str(self.size)
        return f"{self.elem.show()}[{sz}]"


@dataclass(frozen=True)
class TStruct(Type):
    name: str
    fields: tuple[tuple[str, Type], ...] = ()

    def show(self) -> str:
        return f"struct {self.name}"

    def field_type(self, fname: str) -> Type:
        for f, t in self.fields:
            if f == fname:
                return t
        raise SkilTypeError(f"struct {self.name} has no field {fname!r}")


@dataclass(frozen=True)
class TPardata(Type):
    name: str
    args: tuple[Type, ...] = ()

    def show(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}<{', '.join(a.show() for a in self.args)}>"


INT = TPrim("int")
UNSIGNED = TPrim("unsigned")
FLOAT = TPrim("float")
DOUBLE = TPrim("double")
CHAR = TPrim("char")
VOID = TPrim("void")
STRING = TPrim("string")  # literals passed to error()
#: opaque builtins — "the types Index and Size are 'classical' arrays
#: with dim elements"; Bounds is the struct array_part_bounds returns
INDEX = TPrim("Index")
SIZE = TPrim("Size")
BOUNDS = TPrim("Bounds")

#: primitive types usable in arithmetic, and their joins
_NUMERIC = {INT.name, UNSIGNED.name, FLOAT.name, DOUBLE.name, CHAR.name}
_RANK = {CHAR.name: 0, INT.name: 1, UNSIGNED.name: 2, FLOAT.name: 3, DOUBLE.name: 4}

_fresh_counter = itertools.count()


def fresh_var(stem: str = "t") -> TVar:
    return TVar(f"${stem}%{next(_fresh_counter)}")


def is_numeric(t: Type) -> bool:
    return isinstance(t, TPrim) and t.name in _NUMERIC


def numeric_join(a: TPrim, b: TPrim) -> TPrim:
    return a if _RANK[a.name] >= _RANK[b.name] else b


def free_vars(t: Type, out: set[str] | None = None) -> set[str]:
    if out is None:
        out = set()
    if isinstance(t, TVar):
        out.add(t.name)
    elif isinstance(t, TFun):
        for p in t.params:
            free_vars(p, out)
        free_vars(t.ret, out)
    elif isinstance(t, TPointer):
        free_vars(t.target, out)
    elif isinstance(t, TArray):
        free_vars(t.elem, out)
    elif isinstance(t, TStruct):
        for _, ft in t.fields:
            free_vars(ft, out)
    elif isinstance(t, TPardata):
        for a in t.args:
            free_vars(a, out)
    return out


def contains_pardata(t: Type) -> bool:
    if isinstance(t, TPardata):
        return True
    if isinstance(t, TFun):
        return any(contains_pardata(p) for p in t.params) or contains_pardata(t.ret)
    if isinstance(t, TPointer):
        return contains_pardata(t.target)
    if isinstance(t, TArray):
        return contains_pardata(t.elem)
    if isinstance(t, TStruct):
        return any(contains_pardata(ft) for _, ft in t.fields)
    return False


@dataclass
class Subst:
    """A substitution: type-variable name -> type, with path resolution."""

    map: dict[str, Type] = field(default_factory=dict)

    # ------------------------------------------------------------------ core
    def resolve(self, t: Type) -> Type:
        """Follow variable bindings one level (cheap shallow walk)."""
        while isinstance(t, TVar) and t.name in self.map:
            t = self.map[t.name]
        return t

    def apply(self, t: Type) -> Type:
        """Deep application of the substitution."""
        t = self.resolve(t)
        if isinstance(t, TFun):
            return TFun(tuple(self.apply(p) for p in t.params), self.apply(t.ret))
        if isinstance(t, TPointer):
            return TPointer(self.apply(t.target))
        if isinstance(t, TArray):
            return TArray(self.apply(t.elem), t.size)
        if isinstance(t, TStruct):
            return TStruct(t.name, tuple((f, self.apply(ft)) for f, ft in t.fields))
        if isinstance(t, TPardata):
            return TPardata(t.name, tuple(self.apply(a) for a in t.args))
        return t

    def _occurs(self, name: str, t: Type) -> bool:
        t = self.resolve(t)
        if isinstance(t, TVar):
            return t.name == name
        if isinstance(t, TFun):
            return any(self._occurs(name, p) for p in t.params) or self._occurs(
                name, t.ret
            )
        if isinstance(t, (TPointer,)):
            return self._occurs(name, t.target)
        if isinstance(t, TArray):
            return self._occurs(name, t.elem)
        if isinstance(t, TStruct):
            return any(self._occurs(name, ft) for _, ft in t.fields)
        if isinstance(t, TPardata):
            return any(self._occurs(name, a) for a in t.args)
        return False

    def bind(self, var: TVar, t: Type, inside_compound: bool = False) -> None:
        t = self.resolve(t)
        if isinstance(t, TVar) and t.name == var.name:
            return
        if self._occurs(var.name, t):
            raise SkilTypeError(
                f"infinite type: {var.show()} occurs in {self.apply(t).show()}"
            )
        if inside_compound and contains_pardata(self.apply(t)):
            raise SkilTypeError(
                "type variables appearing as components of other data types "
                f"may not be instantiated with pardata types (got "
                f"{self.apply(t).show()})"
            )
        self.map[var.name] = t

    # ------------------------------------------------------------------ unify
    def unify(self, a: Type, b: Type, inside_compound: bool = False) -> None:
        """Make *a* and *b* equal under this substitution (or raise)."""
        a = self.resolve(a)
        b = self.resolve(b)
        if isinstance(a, TVar):
            self.bind(a, b, inside_compound)
            return
        if isinstance(b, TVar):
            self.bind(b, a, inside_compound)
            return
        if isinstance(a, TPrim) and isinstance(b, TPrim):
            if a.name == b.name:
                return
            # numeric primitives unify with the usual C conversions — but
            # only in direct value positions; inside compound types (the
            # element type of an array, a function's parameter) the match
            # must be exact, so array<int> never unifies with array<float>
            if not inside_compound and is_numeric(a) and is_numeric(b):
                return
            # Index and Size are both "classical arrays with dim elements"
            if {a.name, b.name} == {"Index", "Size"}:
                return
            raise SkilTypeError(f"cannot unify {a.show()} with {b.show()}")
        if isinstance(a, TFun) and isinstance(b, TFun):
            if len(a.params) != len(b.params):
                raise SkilTypeError(
                    f"arity mismatch: {self.apply(a).show()} vs {self.apply(b).show()}"
                )
            for pa, pb in zip(a.params, b.params):
                self.unify(pa, pb, inside_compound=True)
            self.unify(a.ret, b.ret, inside_compound=True)
            return
        if isinstance(a, TPointer) and isinstance(b, TPointer):
            self.unify(a.target, b.target, inside_compound=True)
            return
        if isinstance(a, TArray) and isinstance(b, TArray):
            if a.size is not None and b.size is not None and a.size != b.size:
                raise SkilTypeError(
                    f"array sizes differ: {a.show()} vs {b.show()}"
                )
            self.unify(a.elem, b.elem, inside_compound=True)
            return
        if isinstance(a, TStruct) and isinstance(b, TStruct):
            if a.name != b.name:
                raise SkilTypeError(
                    f"cannot unify struct {a.name} with struct {b.name}"
                )
            return
        if isinstance(a, TPardata) and isinstance(b, TPardata):
            if a.name != b.name or len(a.args) != len(b.args):
                raise SkilTypeError(
                    f"cannot unify {a.show()} with {b.show()}"
                )
            for xa, xb in zip(a.args, b.args):
                # pardata arguments are components of a compound type
                self.unify(xa, xb, inside_compound=True)
                if contains_pardata(self.apply(xa)):
                    raise SkilTypeError(
                        "distributed data structures may not be nested"
                    )
            return
        raise SkilTypeError(
            f"cannot unify {self.apply(a).show()} with {self.apply(b).show()}"
        )

    def instantiate(self, t: Type) -> Type:
        """Replace the (generalized) type variables of *t* by fresh ones."""
        mapping: dict[str, TVar] = {}

        def walk(u: Type) -> Type:
            u = self.resolve(u)
            if isinstance(u, TVar):
                if u.name not in mapping:
                    mapping[u.name] = fresh_var(u.name.lstrip("$").split("%")[0])
                return mapping[u.name]
            if isinstance(u, TFun):
                return TFun(tuple(walk(p) for p in u.params), walk(u.ret))
            if isinstance(u, TPointer):
                return TPointer(walk(u.target))
            if isinstance(u, TArray):
                return TArray(walk(u.elem), u.size)
            if isinstance(u, TStruct):
                return TStruct(u.name, tuple((f, walk(ft)) for f, ft in u.fields))
            if isinstance(u, TPardata):
                return TPardata(u.name, tuple(walk(a) for a in u.args))
            return u

        return walk(t)

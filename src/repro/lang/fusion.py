"""Compiler-level skeleton discovery & fusion (ROADMAP item 4).

This pass runs between instantiation and code generation.  It rewrites
the first-order AST so that the *program* becomes cheaper on the
simulated machine — fewer skeleton rounds, fewer intermediate
``DistArray`` allocations — while the values it computes stay bit-equal
to the unfused program (the contract the ``repro.check`` ``fusion``
pillar enforces at multiple p).  Two groups of rewrites:

**Skeleton fusion** — adjacent skeleton calls connected only by an
intermediate array collapse into one call with a composed kernel:

* ``map∘map → map`` — ``array_map(k1, a, t); array_map(k2, t, b)``
  becomes ``array_map(k2∘k1, a, b)``; ``t``'s create/destroy rounds and
  the first map round disappear.
* ``map``-into-``zip`` / ``zip``-into-``map`` → one ``zip``.
* ``map``-into-``fold`` → fold with a composed conversion kernel.
* ``create∘map → map`` — an array created only to be mapped away is
  never allocated; the init kernel is composed into the map.
* ``array_copy(a, b); array_gen_mult(a, b, ...) →
  array_gen_mult_square(a, ...)`` — the shortest-paths squaring idiom;
  the copy round and the second matrix vanish.
* creates whose initial values are provably overwritten before any read
  lose their init round (``array_create → array_create_uninit``).

**Skeleton discovery** — plain element-wise ``for`` loops over pardata
that match map/zip/fold shapes are rewritten to skeleton calls.  An
unfused element loop runs on the front end and pays one simulated
message per ``array_get_elem``/``array_put_elem``; the discovered
skeleton does the same work collectively (and becomes a further fusion
candidate).

Legality is purely structural and deliberately conservative: the
intermediate array's *only* uses in the whole function must be its
create, the producer, the consumer and (optionally) its destroy; no
statement between producer and consumer may mention any involved array
or assign a variable captured by either kernel's lifted arguments (a
mutation of a captured variable blocks fusion).  Kernel composition is
restricted to the pure expression subset, and — the cost-model gate — a
composed kernel is only accepted when :func:`~repro.lang.vectorize.
try_vectorize` proves it vectorizable *and* env-free, i.e. it stays
eligible for the fused dispatch path of :mod:`repro.skeletons.fuse`
(rank-dependent kernels such as ``procId`` readers never fuse).  The
intermediate's element type must round-trip exactly through its dtype
(``int``/``double``), since the unfused program stores the producer's
value before the consumer reads it back.

One caveat, documented in PERFORMANCE.md: eliminating a skeleton round
also eliminates its *runtime argument checks*, so a program that would
have raised a shape/aliasing error unfused may run to completion fused.
Valid programs compute identical values.

Opt-outs: the pass only runs under ``compile_skil(fusion=True)`` (or
the ``REPRO_FUSION`` process default), and ``no_fuse_lines`` skips any
rewrite whose producer or consumer sits on a listed source line.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lang import ast as A
from repro.lang.builtins import BUILTIN_VALUES
from repro.lang.instantiate import (
    Instance,
    InstantiatedProgram,
    KernelRef,
    SectionRef,
    _estimate_ops,
)
from repro.lang.printer import _Printer
from repro.lang.types import INDEX, INT, TPrim, Type
from repro.lang.vectorize import try_vectorize

__all__ = ["FusionRewrite", "FusionReport", "fuse_program"]


class _Bail(Exception):
    """Internal: candidate is outside the fusable subset."""


@dataclass
class FusionRewrite:
    kind: str  #: e.g. "fuse:map.map", "discover:map", "square", "uninit"
    line: int  #: source line of the rewritten (consumer) call
    detail: str


@dataclass
class FusionReport:
    rewrites: list[FusionRewrite] = field(default_factory=list)
    fused_calls: int = 0
    discovered_loops: int = 0
    arrays_eliminated: int = 0
    inits_elided: int = 0
    #: static skeleton rounds removed from the program text (calls inside
    #: loops count once here; dynamic counts show up in stats.skeleton_calls)
    rounds_eliminated: int = 0

    def add(self, kind: str, line: int, detail: str) -> None:
        self.rewrites.append(FusionRewrite(kind, line, detail))

    def summary(self) -> str:
        lines = [
            f"fused skeleton calls      : {self.fused_calls}",
            f"discovered loops          : {self.discovered_loops}",
            f"intermediate arrays gone  : {self.arrays_eliminated}",
            f"init rounds elided        : {self.inits_elided}",
            f"static rounds eliminated  : {self.rounds_eliminated}",
        ]
        for r in self.rewrites:
            lines.append(f"  line {r.line:4d}  {r.kind:<16} {r.detail}")
        return "\n".join(lines)


# --------------------------------------------------------------------- walkers
_EXPR_CHILDREN = (
    "left", "right", "operand", "target", "value", "base",
    "index", "cond", "then", "orelse", "func",
)


def _iter_exprs(e: Optional[A.Expr]) -> Iterator[A.Expr]:
    if not isinstance(e, A.Expr):
        return
    yield e
    for attr in _EXPR_CHILDREN:
        child = getattr(e, attr, None)
        if isinstance(child, A.Expr):
            yield from _iter_exprs(child)
    if isinstance(e, A.Call):
        for x in e.args:
            yield from _iter_exprs(x)
    if isinstance(e, A.BraceList):
        for x in e.items:
            yield from _iter_exprs(x)
    if isinstance(e, KernelRef):
        for x in e.bound:
            yield from _iter_exprs(x)


def _stmt_exprs(s: A.Stmt) -> Iterator[A.Expr]:
    """Top-level expressions of *s*, recursing through sub-statements."""
    if isinstance(s, A.Block):
        for x in s.stmts:
            yield from _stmt_exprs(x)
    elif isinstance(s, A.VarDecl):
        if s.init is not None:
            yield s.init
    elif isinstance(s, A.If):
        yield s.cond
        yield from _stmt_exprs(s.then)
        if s.orelse is not None:
            yield from _stmt_exprs(s.orelse)
    elif isinstance(s, A.While):
        yield s.cond
        yield from _stmt_exprs(s.body)
    elif isinstance(s, A.For):
        if s.init is not None:
            yield from _stmt_exprs(s.init)
        if s.cond is not None:
            yield s.cond
        if s.step is not None:
            yield s.step
        yield from _stmt_exprs(s.body)
    elif isinstance(s, A.Return):
        if s.value is not None:
            yield s.value
    elif isinstance(s, A.ExprStmt):
        yield s.expr


def _iter_stmts(s: A.Stmt) -> Iterator[A.Stmt]:
    yield s
    if isinstance(s, A.Block):
        for x in s.stmts:
            yield from _iter_stmts(x)
    elif isinstance(s, A.If):
        yield from _iter_stmts(s.then)
        if s.orelse is not None:
            yield from _iter_stmts(s.orelse)
    elif isinstance(s, A.While):
        yield from _iter_stmts(s.body)
    elif isinstance(s, A.For):
        if s.init is not None:
            yield from _iter_stmts(s.init)
        yield from _iter_stmts(s.body)


def _idents(e: Optional[A.Expr]) -> set[str]:
    return {x.name for x in _iter_exprs(e) if isinstance(x, A.Ident)}


def _stmt_idents(s: A.Stmt) -> set[str]:
    out: set[str] = set()
    for e in _stmt_exprs(s):
        out |= _idents(e)
    return out


def _count_ident(f: A.FuncDef, name: str) -> int:
    # _stmt_exprs recurses through sub-statements already, so start from
    # the body alone (iterating _iter_stmts too would double count)
    return _count_ident_in_stmt(f.body, name)


def _count_ident_in_stmt(s: A.Stmt, name: str) -> int:
    return sum(
        1
        for e in _stmt_exprs(s)
        for x in _iter_exprs(e)
        if isinstance(x, A.Ident) and x.name == name
    )


def _assigned_names(s: A.Stmt) -> set[str]:
    """Identifiers mutated by ``=``-style assignments anywhere in *s*."""
    out: set[str] = set()
    for e in _stmt_exprs(s):
        for x in _iter_exprs(e):
            if isinstance(x, A.Assign) and isinstance(x.target, A.Ident):
                out.add(x.target.name)
    return out


def _pp(e: A.Expr) -> str:
    return _Printer().expr(e)


def _call_of(s: A.Stmt, *names: str) -> Optional[A.Call]:
    """The call when *s* is ``ExprStmt(Call(<one of names>, ...))``."""
    if isinstance(s, A.ExprStmt) and isinstance(s.expr, A.Call):
        c = s.expr
        if isinstance(c.func, A.Ident) and c.func.name in names:
            return c
    return None


def _create_call(s: A.Stmt) -> Optional[tuple[str, A.Call]]:
    """``(name, call)`` when *s* binds an ``array_create`` result."""
    if isinstance(s, A.VarDecl) and isinstance(s.init, A.Call):
        c = s.init
        if isinstance(c.func, A.Ident) and c.func.name == "array_create":
            return s.name, c
    if isinstance(s, A.ExprStmt) and isinstance(s.expr, A.Assign):
        a = s.expr
        if (
            a.op == "="
            and isinstance(a.target, A.Ident)
            and isinstance(a.value, A.Call)
            and isinstance(a.value.func, A.Ident)
            and a.value.func.name == "array_create"
        ):
            return a.target.name, a.value
    return None


# ------------------------------------------------------------- body -> expr
#: calls that are pure and stay inside composed kernel bodies
_PURE_CALLS = frozenset({"min", "max", "abs"})


def _subst_expr(e: A.Expr, env: dict[str, A.Expr]) -> A.Expr:
    """Rebuild *e* with identifiers substituted per *env*; raise
    :class:`_Bail` outside the pure expression subset."""
    if isinstance(e, A.Ident):
        if e.name in env:
            return copy.deepcopy(env[e.name])
        if e.name in ("INT_MAX", "UINT_MAX", "FLT_MAX", "procId"):
            # procId is allowed through so the vectorizer's env_free gate
            # (not this syntactic filter) is what rejects rank dependence
            return A.Ident(e.name, line=e.line, ty=e.ty)
        raise _Bail(f"free identifier {e.name!r}")
    if isinstance(e, (A.IntLit, A.FloatLit, A.CharLit)):
        return copy.deepcopy(e)
    if isinstance(e, A.BinOp):
        return A.BinOp(
            e.op, _subst_expr(e.left, env), _subst_expr(e.right, env),
            line=e.line, ty=e.ty,
        )
    if isinstance(e, A.UnOp):
        return A.UnOp(e.op, _subst_expr(e.operand, env), line=e.line, ty=e.ty)
    if isinstance(e, A.Cond):
        return A.Cond(
            _subst_expr(e.cond, env), _subst_expr(e.then, env),
            _subst_expr(e.orelse, env), line=e.line, ty=e.ty,
        )
    if isinstance(e, A.Cast):
        return A.Cast(e.target, _subst_expr(e.operand, env), line=e.line, ty=e.ty)
    if isinstance(e, A.IndexExpr):
        return A.IndexExpr(
            _subst_expr(e.base, env), _subst_expr(e.index, env),
            line=e.line, ty=e.ty,
        )
    if (
        isinstance(e, A.Call)
        and isinstance(e.func, A.Ident)
        and e.func.name in _PURE_CALLS
    ):
        return A.Call(
            A.Ident(e.func.name, line=e.func.line, ty=e.func.ty),
            [_subst_expr(x, env) for x in e.args],
            line=e.line, ty=e.ty,
        )
    raise _Bail(f"{type(e).__name__} outside the composable subset")


def _stmts_to_expr(stmts: list[A.Stmt], env: dict[str, A.Expr]) -> A.Expr:
    """A kernel body as one pure expression (mirrors the vectorizer's
    statement subset: local declarations, if/return chains, a return)."""
    env = dict(env)
    work = list(stmts)
    while work:
        s = work.pop(0)
        if isinstance(s, A.Block):
            work = list(s.stmts) + work
            continue
        if isinstance(s, A.VarDecl):
            if s.init is None:
                raise _Bail("uninitialised local")
            env[s.name] = _subst_expr(s.init, env)
            continue
        if isinstance(s, A.Return):
            if s.value is None:
                raise _Bail("void return")
            return _subst_expr(s.value, env)
        if isinstance(s, A.If):
            cond = _subst_expr(s.cond, env)
            then_e = _stmts_to_expr([s.then], env)
            else_stmts = [s.orelse] if s.orelse is not None else work
            if not else_stmts:
                raise _Bail("if without else falls off the end")
            else_e = _stmts_to_expr(list(else_stmts), env)
            return A.Cond(cond, then_e, else_e, line=s.line, ty=then_e.ty)
        raise _Bail(f"statement {type(s).__name__} outside the composable subset")
    raise _Bail("falls off the end without a return")


# ------------------------------------------------------------------- the pass
class _Fuser:
    def __init__(self, prog: InstantiatedProgram, no_fuse_lines) -> None:
        self.prog = prog
        self.no_fuse = frozenset(int(x) for x in no_fuse_lines)
        self.report = FusionReport()
        self._n = 0

    # ------------------------------------------------------------ utilities
    def _resolved(self, t: Optional[Type]) -> Optional[Type]:
        if t is None:
            return None
        return self.prog.checked.resolved(t)

    def _fresh_name(self) -> str:
        while True:
            self._n += 1
            name = f"__fused_{self._n}"
            if name not in self.prog.instances and name not in self.prog.entries:
                return name

    def _blocks(self, f: A.FuncDef) -> list[A.Block]:
        return [s for s in _iter_stmts(f.body) if isinstance(s, A.Block)]

    def _remove_stmt(self, f: A.FuncDef, target: A.Stmt) -> bool:
        """Remove *target* (by identity — dataclass == is structural)."""
        for st in _iter_stmts(f.body):
            if isinstance(st, A.Block):
                for k, x in enumerate(st.stmts):
                    if x is target:
                        del st.stmts[k]
                        return True
            elif isinstance(st, A.If):
                if st.then is target:
                    st.then = A.Block([], line=target.line)
                    return True
                if st.orelse is target:
                    st.orelse = None
                    return True
            elif isinstance(st, (A.While, A.For)):
                if st.body is target:
                    st.body = A.Block([], line=target.line)
                    return True
        return False

    def _param_names(self, f: A.FuncDef) -> set[str]:
        return {p.name for p in f.params}

    def _destroys_of(self, f: A.FuncDef, name: str) -> list[A.Stmt]:
        out = []
        for st in _iter_stmts(f.body):
            c = _call_of(st, "array_destroy")
            if (
                c is not None
                and len(c.args) == 1
                and isinstance(c.args[0], A.Ident)
                and c.args[0].name == name
            ):
                out.append(st)
        return out

    def _create_stmt_of(self, f: A.FuncDef, name: str) -> Optional[A.Stmt]:
        found = None
        for st in _iter_stmts(f.body):
            made = _create_call(st)
            if made is not None and made[0] == name:
                if found is not None:
                    return None  # created twice — give up on this array
                found = st
        return found

    def _kernel_is_pure(self, k: A.Expr) -> bool:
        """Whether the kernel's body is in the pure expression subset
        (so dropping its applications cannot lose error()/printf/put
        side effects)."""
        if not isinstance(k, KernelRef):
            return False
        inst = self.prog.instances.get(k.name)
        if inst is None:
            return False
        env = {p.name: A.Ident(p.name, ty=p.ty) for p in inst.func.params}
        try:
            _stmts_to_expr(list(inst.func.body.stmts), env)
        except _Bail:
            return False
        return True

    # --------------------------------------------------------- composition
    def _compose(
        self,
        producer: KernelRef,
        consumer: KernelRef,
        slot: int,
        producer_elems: int,
        consumer_elems: int,
        extra_ignored_elem: bool = False,
    ) -> Optional[KernelRef]:
        """Compose producer-into-consumer; register the composed instance
        and return its call-site :class:`KernelRef`, or ``None`` when the
        pair is outside the composable subset or the composed kernel would
        lose fused-dispatch eligibility (the cost-model gate)."""
        p_inst = self.prog.instances.get(producer.name)
        c_inst = self.prog.instances.get(consumer.name)
        if p_inst is None or c_inst is None:
            return None
        resolved = self.prog.checked.resolved
        pf, cf = p_inst.func, c_inst.func
        p_params, c_params = list(pf.params), list(cf.params)
        if len(p_params) != len(producer.bound) + producer_elems + 1:
            return None
        if len(c_params) != len(consumer.bound) + consumer_elems + 1:
            return None
        if p_inst.kernel_elems not in (None, producer_elems):
            return None
        if c_inst.kernel_elems not in (None, consumer_elems):
            return None
        ret_t = resolved(pf.ret)
        # dtype round-trip: the unfused program stores the producer's
        # value into the intermediate's dtype before the consumer reads
        # it back — only int64/float64 make that a bit-exact identity
        if not (isinstance(ret_t, TPrim) and ret_t.name in ("int", "double")):
            return None
        cons_ret = resolved(cf.ret)
        try:
            new_params: list[A.FuncParam] = []
            env_p: dict[str, A.Expr] = {}
            nb = len(producer.bound)
            for i, p in enumerate(p_params[:nb]):
                nm = f"__p{i}"
                new_params.append(A.FuncParam(nm, resolved(p.ty), line=p.line))
                env_p[p.name] = A.Ident(nm, ty=p.ty)
            prod_elem_params: list[A.FuncParam] = []
            for j, p in enumerate(p_params[nb:nb + producer_elems]):
                nm = f"__u{j}"
                prod_elem_params.append(
                    A.FuncParam(nm, resolved(p.ty), line=p.line)
                )
                env_p[p.name] = A.Ident(nm, ty=p.ty)
            env_p[p_params[-1].name] = A.Ident("__ix", ty=p_params[-1].ty)

            env_c: dict[str, A.Expr] = {}
            cb = len(consumer.bound)
            for i, p in enumerate(c_params[:cb]):
                nm = f"__c{i}"
                new_params.append(A.FuncParam(nm, resolved(p.ty), line=p.line))
                env_c[p.name] = A.Ident(nm, ty=p.ty)
            elem_params: list[A.FuncParam] = []
            for s_i, p in enumerate(c_params[cb:cb + consumer_elems]):
                if s_i == slot:
                    elem_params.extend(prod_elem_params)
                    env_c[p.name] = A.Ident("__t0", ty=ret_t)
                else:
                    nm = f"__v{s_i}"
                    elem_params.append(
                        A.FuncParam(nm, resolved(p.ty), line=p.line)
                    )
                    env_c[p.name] = A.Ident(nm, ty=p.ty)
            if extra_ignored_elem:
                # create∘map: the rewritten call is map(k, dst, dst); the
                # composed kernel takes (and ignores) dst's element value
                elem_params.append(A.FuncParam("__v0", cons_ret, line=cf.line))
            env_c[c_params[-1].name] = A.Ident("__ix", ty=c_params[-1].ty)

            expr1 = _stmts_to_expr(list(pf.body.stmts), env_p)
            expr2 = _stmts_to_expr(list(cf.body.stmts), env_c)
        except _Bail:
            return None

        ix_ty = resolved(c_params[-1].ty)
        body = A.Block(
            [
                A.VarDecl("__t0", ret_t, init=expr1, line=pf.body.line),
                A.Return(expr2, line=cf.body.line),
            ],
            line=cf.body.line,
        )
        name = self._fresh_name()
        fdef = A.FuncDef(
            name,
            tuple(new_params + elem_params + [A.FuncParam("__ix", ix_ty)]),
            cons_ret,
            body,
            line=cf.line,
        )
        inst = Instance(
            name,
            f"{consumer.name}.{producer.name}",
            fdef,
            (),
            kernel_elems=len(elem_params),
        )
        # cost-model gate: the composed kernel must still vectorize AND
        # stay env-free, i.e. remain eligible for fused dispatch — else
        # the "one big kernel" would run scalar and the fusion would cost
        # wall-clock instead of saving rounds
        src = try_vectorize(inst, resolved)
        if src is None or not src.rstrip().endswith("env_free = True"):
            return None
        self.prog.instances[name] = inst
        self.prog.report.setdefault("__fused__", []).append(name)
        return KernelRef(
            name,
            list(producer.bound) + list(consumer.bound),
            _estimate_ops(fdef),
            line=consumer.line,
            ty=consumer.ty,
        )

    # -------------------------------------------------------- pairwise fusion
    def _producer_at(self, s: A.Stmt):
        """``(kind, kernel, src_names, tmp, call)`` for producer stmts."""
        c = _call_of(s, "array_map")
        if c is not None and len(c.args) == 3:
            k, src, dst = c.args
            if (
                isinstance(k, KernelRef)
                and isinstance(src, A.Ident)
                and isinstance(dst, A.Ident)
                and src.name != dst.name
            ):
                return ("map", k, [src], dst.name, c)
        c = _call_of(s, "array_zip")
        if c is not None and len(c.args) == 4:
            k, a1, a2, dst = c.args
            if (
                isinstance(k, KernelRef)
                and all(isinstance(x, A.Ident) for x in (a1, a2, dst))
                and dst.name not in (a1.name, a2.name)
            ):
                return ("zip", k, [a1, a2], dst.name, c)
        made = _create_call(s)
        if made is not None:
            tmp, c = made
            if len(c.args) >= 6 and isinstance(c.args[4], KernelRef):
                return ("create", c.args[4], [], tmp, c)
        return None

    def _consumer_at(self, s: A.Stmt, tmp: str):
        """``(kind, call, kernel, slot)`` for stmts consuming *tmp*."""
        c = _call_of(s, "array_map")
        if c is not None and len(c.args) == 3:
            k, src, dst = c.args
            if (
                isinstance(k, KernelRef)
                and isinstance(src, A.Ident)
                and src.name == tmp
                and isinstance(dst, A.Ident)
                and dst.name != tmp
            ):
                return ("map", c, k, 0)
        c = _call_of(s, "array_zip")
        if c is not None and len(c.args) == 4:
            k, a1, a2, dst = c.args
            if (
                isinstance(k, KernelRef)
                and all(isinstance(x, A.Ident) for x in (a1, a2, dst))
                and dst.name != tmp
            ):
                uses = [a1.name == tmp, a2.name == tmp]
                if sum(uses) == 1:
                    return ("zip", c, k, 0 if uses[0] else 1)
        for e in _stmt_exprs(s):
            for x in _iter_exprs(e):
                if (
                    isinstance(x, A.Call)
                    and isinstance(x.func, A.Ident)
                    and x.func.name == "array_fold"
                    and len(x.args) == 3
                    and isinstance(x.args[0], KernelRef)
                    and isinstance(x.args[2], A.Ident)
                    and x.args[2].name == tmp
                ):
                    return ("fold", x, x.args[0], 0)
        return None

    def _fuse_pass(self, f: A.FuncDef) -> bool:
        params = self._param_names(f)
        # skeleton-skeleton pairs first: fusing create∘map early would
        # turn map(k, t, dst) into map(k', dst, dst), whose aliased
        # operands can no longer act as a producer for the next map
        for creates_too in (False, True):
            for block in self._blocks(f):
                for i, s in enumerate(block.stmts):
                    prod = self._producer_at(s)
                    if prod is None:
                        continue
                    if prod[0] == "create" and not creates_too:
                        continue
                    if self._try_fuse(f, block, i, prod, params):
                        return True
        return False

    def _try_fuse(self, f, block, i, prod, params) -> bool:
        pkind, k1, src_idents, tmp, pcall = prod
        if pcall.line in self.no_fuse or tmp in params:
            return False
        # scan forward for the consumer; anything touching the involved
        # arrays, or assigning a variable captured by a kernel, blocks
        src_names = {x.name for x in src_idents}
        barrier = src_names | {tmp}
        assigned: set[str] = set()
        found = None
        for j in range(i + 1, len(block.stmts)):
            cons = self._consumer_at(block.stmts[j], tmp)
            if cons is not None:
                found = (j, cons)
                break
            ids = _stmt_idents(block.stmts[j])
            if ids & barrier:
                return False
            assigned |= _assigned_names(block.stmts[j])
        if found is None:
            return False
        j, (ckind, ccall, k2, slot) = found
        if ccall.line in self.no_fuse:
            return False
        captured = set()
        for b in list(k1.bound) + list(k2.bound):
            captured |= _idents(b)
        if assigned & (captured | src_names):
            return False
        if _count_ident_in_stmt(block.stmts[j], tmp) != 1:
            return False

        # whole-function accounting: tmp's only uses are create, producer,
        # consumer and (optionally) one destroy
        create_stmt = (
            block.stmts[i] if pkind == "create" else self._create_stmt_of(f, tmp)
        )
        if create_stmt is None:
            return False
        made = _create_call(create_stmt)
        if made is None or made[0] != tmp:
            return False
        destroys = self._destroys_of(f, tmp)
        if len(destroys) > 1:
            return False
        create_mentions = 1 if isinstance(create_stmt, A.ExprStmt) else 0
        prod_mentions = 0 if pkind == "create" else 1
        expected = create_mentions + prod_mentions + 1 + len(destroys)
        if _count_ident(f, tmp) != expected:
            return False
        # dropping the intermediate drops its init applications too
        if pkind != "create" and not self._kernel_is_pure(made[1].args[4]):
            return False

        combos = {
            ("map", "map"): (0, 1, 1),
            ("map", "zip"): (slot, 1, 2),
            ("map", "fold"): (0, 1, 1),
            ("zip", "map"): (0, 2, 1),
            ("create", "map"): (0, 0, 1),
        }
        key = (pkind, ckind)
        if key not in combos:
            return False
        cslot, p_elems, c_elems = combos[key]

        if pkind == "create":
            # the consumer's dst must be shaped like the eliminated array
            # would have been, else the fused program would skip a runtime
            # shape check the unfused one performs on valid inputs
            dst = ccall.args[2]
            dst_create = self._create_stmt_of(f, dst.name)
            if dst_create is None:
                return False
            dcall = _create_call(dst_create)[1]
            args_assigned = _assigned_names(f.body)
            for ai in (0, 1, 2, 3, 5):
                if ai >= len(pcall.args) or ai >= len(dcall.args):
                    return False
                if _pp(pcall.args[ai]) != _pp(dcall.args[ai]):
                    return False
                if _idents(pcall.args[ai]) & args_assigned:
                    return False

        composed = self._compose(
            k1, k2, cslot, p_elems, c_elems,
            extra_ignored_elem=(pkind == "create"),
        )
        if composed is None:
            return False

        # ---- rewrite the consumer call site ----------------------------
        if ckind == "map" and pkind == "zip":
            ccall.func = A.Ident("array_zip", line=ccall.func.line, ty=ccall.func.ty)
            ccall.args = [composed, src_idents[0], src_idents[1], ccall.args[2]]
        elif ckind == "map" and pkind == "create":
            dst = ccall.args[2]
            ccall.args = [composed, copy.deepcopy(dst), dst]
        elif ckind == "map":
            ccall.args = [composed, src_idents[0], ccall.args[2]]
        elif ckind == "zip":
            ccall.args[0] = composed
            ccall.args[1 + slot] = src_idents[0]
        elif ckind == "fold":
            ccall.args[0] = composed
            ccall.args[2] = src_idents[0]

        # ---- delete the producer round and the intermediate array ------
        removed_rounds = 0
        if pkind == "create":
            self._remove_stmt(f, block.stmts[i])
            removed_rounds += 1  # the create round (the map round remains)
        else:
            del block.stmts[i]  # the producer's skeleton round
            self._remove_stmt(f, create_stmt)
            removed_rounds += 2
        for d in destroys:
            self._remove_stmt(f, d)
            removed_rounds += 1
        self.report.fused_calls += 1
        self.report.arrays_eliminated += 1
        self.report.rounds_eliminated += removed_rounds
        self.report.add(
            f"fuse:{pkind}.{ckind}",
            ccall.line,
            f"{k1.name}∘{k2.name} eliminates {tmp!r} "
            f"({removed_rounds} rounds)",
        )
        return True

    # -------------------------------------------- copy+gen_mult -> square
    def _square_pass(self, f: A.FuncDef) -> bool:
        params = self._param_names(f)
        for block in self._blocks(f):
            for i in range(len(block.stmts) - 1):
                cp = _call_of(block.stmts[i], "array_copy")
                gm = _call_of(block.stmts[i + 1], "array_gen_mult")
                if cp is None or gm is None:
                    continue
                if cp.line in self.no_fuse or gm.line in self.no_fuse:
                    continue
                if len(cp.args) != 2 or len(gm.args) != 5:
                    continue
                opnds = [cp.args[0], cp.args[1], gm.args[0], gm.args[1], gm.args[4]]
                if not all(isinstance(x, A.Ident) for x in opnds):
                    continue
                src, tmp = cp.args[0], cp.args[1]
                if src.name == tmp.name or tmp.name in params:
                    continue
                if {gm.args[0].name, gm.args[1].name} != {src.name, tmp.name}:
                    continue
                if gm.args[4].name in (src.name, tmp.name):
                    continue
                if self._try_square(f, block, i, src, tmp.name):
                    return True
        return False

    def _try_square(self, f, block, i, src, tmp: str) -> bool:
        """Rewrite every ``copy(x, tmp); gen_mult(..tmp..)`` pair when
        those pairs (plus create/destroy) are tmp's only uses — removing
        the write to *tmp* is only sound when nothing else reads it."""
        create_stmt = self._create_stmt_of(f, tmp)
        if create_stmt is None:
            return False
        if not self._kernel_is_pure(_create_call(create_stmt)[1].args[4]):
            return False
        destroys = self._destroys_of(f, tmp)
        pairs: list[tuple[A.Block, A.Stmt, A.Call, A.Call]] = []
        for blk in self._blocks(f):
            for k in range(len(blk.stmts) - 1):
                cp = _call_of(blk.stmts[k], "array_copy")
                gm = _call_of(blk.stmts[k + 1], "array_gen_mult")
                if cp is None or gm is None or len(cp.args) != 2:
                    continue
                if gm is None or len(gm.args) != 5:
                    continue
                if not (
                    isinstance(cp.args[1], A.Ident) and cp.args[1].name == tmp
                ):
                    continue
                a, b = gm.args[0], gm.args[1]
                if not (isinstance(a, A.Ident) and isinstance(b, A.Ident)):
                    continue
                other = cp.args[0]
                if not isinstance(other, A.Ident) or other.name == tmp:
                    continue
                if {a.name, b.name} != {other.name, tmp}:
                    continue
                if cp.line in self.no_fuse or gm.line in self.no_fuse:
                    return False
                pairs.append((blk, blk.stmts[k], cp, gm))
        if not pairs:
            return False
        create_mentions = 1 if isinstance(create_stmt, A.ExprStmt) else 0
        expected = create_mentions + len(destroys) + 2 * len(pairs)
        if _count_ident(f, tmp) != expected:
            return False

        for blk, cp_stmt, cp, gm in pairs:
            keep = gm.args[0] if gm.args[0].name != tmp else gm.args[1]
            gm.func = A.Ident(
                "array_gen_mult_square", line=gm.func.line, ty=gm.func.ty
            )
            gm.args = [keep, gm.args[2], gm.args[3], gm.args[4]]
            self._remove_stmt(f, cp_stmt)
            self.report.fused_calls += 1
            self.report.rounds_eliminated += 1
            self.report.add(
                "square",
                gm.line,
                f"copy+gen_mult over {tmp!r} -> array_gen_mult_square",
            )
        # tmp is now only created/destroyed; the dead-array pass collects it
        return True

    # ----------------------------------------------------- dead arrays
    def _dead_array_pass(self, f: A.FuncDef) -> bool:
        params = self._param_names(f)
        for st in list(_iter_stmts(f.body)):
            made = _create_call(st)
            if made is None:
                continue
            name, call = made
            if name in params:
                continue
            if self._create_stmt_of(f, name) is not st:
                continue  # created twice
            if not self._kernel_is_pure(call.args[4]) if len(call.args) >= 6 else True:
                continue
            destroys = self._destroys_of(f, name)
            create_mentions = 1 if isinstance(st, A.ExprStmt) else 0
            if _count_ident(f, name) != create_mentions + len(destroys):
                continue
            self._remove_stmt(f, st)
            for d in destroys:
                self._remove_stmt(f, d)
            self.report.arrays_eliminated += 1
            self.report.rounds_eliminated += 1 + len(destroys)
            self.report.add(
                "dead-array", call.line,
                f"{name!r} is only created/destroyed — removed",
            )
            return True
        return False

    # ------------------------------------------------------- discovery
    def _match_counter(self, s: A.For):
        """``(var, bound, body_stmts)`` for ``for (v = 0; v < N; v++)``."""
        if s.cond is None or s.step is None:
            return None
        if (
            isinstance(s.init, A.VarDecl)
            and isinstance(s.init.init, A.IntLit)
            and s.init.init.value == 0
        ):
            var = s.init.name
        elif (
            isinstance(s.init, A.ExprStmt)
            and isinstance(s.init.expr, A.Assign)
            and s.init.expr.op == "="
            and isinstance(s.init.expr.target, A.Ident)
            and isinstance(s.init.expr.value, A.IntLit)
            and s.init.expr.value.value == 0
        ):
            var = s.init.expr.target.name
        else:
            return None
        c = s.cond
        if not (
            isinstance(c, A.BinOp)
            and c.op == "<"
            and isinstance(c.left, A.Ident)
            and c.left.name == var
        ):
            return None
        bound = c.right
        if var in _idents(bound):
            return None
        st = s.step
        if not (
            isinstance(st, A.Assign)
            and isinstance(st.target, A.Ident)
            and st.target.name == var
        ):
            return None
        if st.op == "+=" and isinstance(st.value, A.IntLit) and st.value.value == 1:
            pass
        elif (
            st.op == "="
            and isinstance(st.value, A.BinOp)
            and st.value.op == "+"
            and isinstance(st.value.left, A.Ident)
            and st.value.left.name == var
            and isinstance(st.value.right, A.IntLit)
            and st.value.right.value == 1
        ):
            pass
        else:
            return None
        body = s.body
        stmts = list(body.stmts) if isinstance(body, A.Block) else [body]
        while len(stmts) == 1 and isinstance(stmts[0], A.Block):
            stmts = list(stmts[0].stmts)
        return var, bound, stmts

    def _analyze_elem_expr(self, expr: A.Expr, loop_vars: list[str]):
        """Validate purity; return ordered ``[(src_name, elem_ty)]``."""
        srcs: list[tuple[str, Optional[Type]]] = []

        def walk(e: A.Expr) -> None:
            if isinstance(e, A.Call):
                if (
                    isinstance(e.func, A.Ident)
                    and e.func.name == "array_get_elem"
                    and len(e.args) == 2
                ):
                    arr, ix = e.args
                    if not (
                        isinstance(arr, A.Ident) and isinstance(ix, A.BraceList)
                    ):
                        raise _Bail("get_elem outside the subset")
                    names = [
                        x.name if isinstance(x, A.Ident) else None
                        for x in ix.items
                    ]
                    if names != loop_vars:
                        raise _Bail("read is not at the loop indices")
                    if arr.name not in [n for n, _ in srcs]:
                        srcs.append((arr.name, e.ty))
                    return
                if isinstance(e.func, A.Ident) and e.func.name in _PURE_CALLS:
                    for a in e.args:
                        walk(a)
                    return
                raise _Bail("call outside the subset")
            if isinstance(e, (A.IntLit, A.FloatLit, A.CharLit)):
                return
            if isinstance(e, A.Ident):
                if e.name == "procId":
                    # outside a skeleton procId is an error; a discovered
                    # kernel would make it a per-rank value — never rewrite
                    raise _Bail("procId in an element loop")
                return
            if isinstance(e, A.BinOp):
                walk(e.left)
                walk(e.right)
                return
            if isinstance(e, A.UnOp):
                walk(e.operand)
                return
            if isinstance(e, A.Cond):
                walk(e.cond)
                walk(e.then)
                walk(e.orelse)
                return
            if isinstance(e, A.Cast):
                walk(e.operand)
                return
            raise _Bail(f"{type(e).__name__} outside the subset")

        walk(expr)
        return srcs

    def _rewrite_elem_expr(self, e: A.Expr, loop_vars, src_names) -> A.Expr:
        if (
            isinstance(e, A.Call)
            and isinstance(e.func, A.Ident)
            and e.func.name == "array_get_elem"
        ):
            k = src_names.index(e.args[0].name)
            return A.Ident(f"__v{k}", line=e.line, ty=e.ty)
        if isinstance(e, A.Ident):
            if e.name in loop_vars:
                d = loop_vars.index(e.name)
                return A.IndexExpr(
                    A.Ident("__ix", line=e.line, ty=INDEX),
                    A.IntLit(d, line=e.line, ty=INT),
                    line=e.line,
                    ty=INT,
                )
            return copy.deepcopy(e)
        if isinstance(e, (A.IntLit, A.FloatLit, A.CharLit)):
            return copy.deepcopy(e)
        if isinstance(e, A.BinOp):
            return A.BinOp(
                e.op,
                self._rewrite_elem_expr(e.left, loop_vars, src_names),
                self._rewrite_elem_expr(e.right, loop_vars, src_names),
                line=e.line, ty=e.ty,
            )
        if isinstance(e, A.UnOp):
            return A.UnOp(
                e.op, self._rewrite_elem_expr(e.operand, loop_vars, src_names),
                line=e.line, ty=e.ty,
            )
        if isinstance(e, A.Cond):
            return A.Cond(
                self._rewrite_elem_expr(e.cond, loop_vars, src_names),
                self._rewrite_elem_expr(e.then, loop_vars, src_names),
                self._rewrite_elem_expr(e.orelse, loop_vars, src_names),
                line=e.line, ty=e.ty,
            )
        if isinstance(e, A.Cast):
            return A.Cast(
                e.target,
                self._rewrite_elem_expr(e.operand, loop_vars, src_names),
                line=e.line, ty=e.ty,
            )
        if isinstance(e, A.Call):
            return A.Call(
                A.Ident(e.func.name, line=e.func.line, ty=e.func.ty),
                [self._rewrite_elem_expr(x, loop_vars, src_names) for x in e.args],
                line=e.line, ty=e.ty,
            )
        raise _Bail(f"{type(e).__name__} outside the subset")

    def _free_scalars(self, expr: A.Expr, loop_vars, src_names) -> list[str]:
        """Outer scalars read by the loop body, in first-appearance
        order; they become lifted (bound) kernel arguments."""
        out: list[str] = []
        skip = set(loop_vars) | set(src_names) | set(BUILTIN_VALUES)

        def walk(e: A.Expr) -> None:
            if (
                isinstance(e, A.Call)
                and isinstance(e.func, A.Ident)
                and e.func.name == "array_get_elem"
            ):
                return  # the array name and index vars are consumed
            if isinstance(e, A.Ident):
                if e.name not in skip and e.name not in out:
                    out.append(e.name)
                return
            for attr in _EXPR_CHILDREN:
                child = getattr(e, attr, None)
                if isinstance(child, A.Expr) and attr != "func":
                    walk(child)
            if isinstance(e, A.Call):
                for x in e.args:
                    walk(x)

        walk(expr)
        return out

    def _register_kernel(
        self, fdef: A.FuncDef, n_elems: int
    ) -> Optional[KernelRef]:
        """Gate + register a synthesized (discovery) kernel."""
        inst = Instance(fdef.name, fdef.name, fdef, (), kernel_elems=n_elems)
        src = try_vectorize(inst, self.prog.checked.resolved)
        if src is None or not src.rstrip().endswith("env_free = True"):
            return None
        self.prog.instances[fdef.name] = inst
        self.prog.report.setdefault("__fused__", []).append(fdef.name)
        return KernelRef(fdef.name, [], _estimate_ops(fdef), line=fdef.line)

    def _discover_pass(self, f: A.FuncDef) -> bool:
        for block in self._blocks(f):
            for idx, s in enumerate(block.stmts):
                if not isinstance(s, A.For):
                    continue
                if s.line in self.no_fuse:
                    continue
                if self._discover_map(f, block, idx, s):
                    return True
                if self._discover_fold(f, block, idx, s):
                    return True
        return False

    def _loop_vars_dead_after(self, f: A.FuncDef, loop: A.For, names) -> bool:
        for v in names:
            if _count_ident(f, v) != _count_ident_in_stmt(loop, v):
                return False
        return True

    def _dst_size_matches(self, f: A.FuncDef, dst: str, bounds) -> bool:
        create_stmt = self._create_stmt_of(f, dst)
        if create_stmt is None:
            return False
        call = _create_call(create_stmt)[1]
        if len(call.args) < 6:
            return False
        dim, size = call.args[0], call.args[1]
        if not (isinstance(dim, A.IntLit) and dim.value == len(bounds)):
            return False
        if not (isinstance(size, A.BraceList) and len(size.items) == len(bounds)):
            return False
        assigned = _assigned_names(f.body)
        for b, sz in zip(bounds, size.items):
            if _pp(b) != _pp(sz):
                return False
            if _idents(b) & assigned:
                return False
        return True

    def _discover_map(self, f, block, idx, s: A.For) -> bool:
        m = self._match_counter(s)
        if m is None:
            return False
        var, bound, stmts = m
        loop_vars, bounds = [var], [bound]
        if len(stmts) == 1 and isinstance(stmts[0], A.For):
            m2 = self._match_counter(stmts[0])
            if m2 is None:
                return False
            var2, bound2, stmts = m2
            if var2 == var or var in _idents(bound2):
                return False
            loop_vars, bounds = [var, var2], [bound, bound2]
        if len(stmts) != 1:
            return False
        put = _call_of(stmts[0], "array_put_elem")
        if put is None or len(put.args) != 3 or put.line in self.no_fuse:
            return False
        dst, ixl, expr = put.args
        if not (isinstance(dst, A.Ident) and isinstance(ixl, A.BraceList)):
            return False
        if [
            x.name if isinstance(x, A.Ident) else None for x in ixl.items
        ] != loop_vars:
            return False
        try:
            srcs = self._analyze_elem_expr(expr, loop_vars)
        except _Bail:
            return False
        if len(srcs) > 2:
            return False
        if not self._loop_vars_dead_after(f, s, loop_vars):
            return False
        if not self._dst_size_matches(f, dst.name, bounds):
            return False
        resolved = self.prog.checked.resolved
        ret_ty = resolved(expr.ty) if expr.ty is not None else None
        if ret_ty is None:
            return False
        src_names = [n for n, _ in srcs]
        scalars = self._free_scalars(expr, loop_vars, src_names)
        try:
            kexpr = self._rewrite_elem_expr(expr, loop_vars, src_names)
            params: list[A.FuncParam] = []
            for sc in scalars:
                ty = next(
                    (
                        x.ty
                        for e2 in _iter_exprs(expr)
                        if isinstance(x := e2, A.Ident) and x.name == sc
                    ),
                    None,
                )
                if ty is None:
                    raise _Bail("untyped scalar")
                params.append(A.FuncParam(sc, resolved(ty), line=s.line))
            if srcs:
                for k, (_, ety) in enumerate(srcs):
                    if ety is None:
                        raise _Bail("untyped element read")
                    params.append(
                        A.FuncParam(f"__v{k}", resolved(ety), line=s.line)
                    )
            else:
                params.append(A.FuncParam("__v0", ret_ty, line=s.line))
        except _Bail:
            return False
        params.append(A.FuncParam("__ix", INDEX, line=s.line))
        name = self._fresh_name()
        fdef = A.FuncDef(
            name, tuple(params),
            ret_ty, A.Block([A.Return(kexpr, line=s.line)], line=s.line),
            line=s.line,
        )
        kref = self._register_kernel(fdef, max(1, len(srcs)))
        if kref is None:
            return False
        kref.bound = [
            A.Ident(sc, line=s.line) for sc in scalars
        ]
        kref.ty = expr.ty
        if len(srcs) == 2:
            call = A.Call(
                A.Ident("array_zip", line=s.line),
                [
                    kref,
                    A.Ident(src_names[0], line=s.line),
                    A.Ident(src_names[1], line=s.line),
                    copy.deepcopy(dst),
                ],
                line=s.line,
            )
            kind = "discover:zip"
        else:
            src = (
                A.Ident(src_names[0], line=s.line)
                if srcs
                else copy.deepcopy(dst)
            )
            call = A.Call(
                A.Ident("array_map", line=s.line),
                [kref, src, copy.deepcopy(dst)],
                line=s.line,
            )
            kind = "discover:map"
        block.stmts[idx] = A.ExprStmt(call, line=s.line)
        self.report.discovered_loops += 1
        self.report.add(
            kind, s.line,
            f"element loop over {dst.name!r} -> {call.func.name}",
        )
        return True

    def _discover_fold(self, f, block, idx, s: A.For) -> bool:
        m = self._match_counter(s)
        if m is None:
            return False
        var, bound, stmts = m
        if len(stmts) != 1:
            return False
        st = stmts[0]
        if not (isinstance(st, A.ExprStmt) and isinstance(st.expr, A.Assign)):
            return False
        asg = st.expr
        if asg.line in self.no_fuse:
            return False
        if not isinstance(asg.target, A.Ident):
            return False
        acc = asg.target.name
        if acc == var:
            return False
        comb = None
        rhs = None
        v = asg.value
        if asg.op == "+=":
            comb, rhs = "+", v
        elif asg.op == "=" and isinstance(v, A.BinOp) and v.op == "+":
            if isinstance(v.left, A.Ident) and v.left.name == acc:
                comb, rhs = "+", v.right
            elif isinstance(v.right, A.Ident) and v.right.name == acc:
                comb, rhs = "+", v.left
        elif (
            asg.op == "="
            and isinstance(v, A.Call)
            and isinstance(v.func, A.Ident)
            and v.func.name in ("min", "max")
            and len(v.args) == 2
        ):
            if isinstance(v.args[0], A.Ident) and v.args[0].name == acc:
                comb, rhs = v.func.name, v.args[1]
            elif isinstance(v.args[1], A.Ident) and v.args[1].name == acc:
                comb, rhs = v.func.name, v.args[0]
        if comb is None or rhs is None:
            return False
        if acc in _idents(rhs):
            return False
        # exact associativity+commutativity needs integer arithmetic
        acc_ty = self._resolved(asg.target.ty)
        if not (isinstance(acc_ty, TPrim) and acc_ty.name in ("int", "unsigned")):
            return False
        try:
            srcs = self._analyze_elem_expr(rhs, [var])
        except _Bail:
            return False
        if len(srcs) != 1:
            return False
        if not self._loop_vars_dead_after(f, s, [var]):
            return False
        src_name, elem_ty = srcs[0]
        if elem_ty is None:
            return False
        if not self._dst_size_matches(f, src_name, [bound]):
            return False
        resolved = self.prog.checked.resolved
        rhs_ty = resolved(rhs.ty) if rhs.ty is not None else None
        if not (isinstance(rhs_ty, TPrim) and rhs_ty.name in ("int", "unsigned")):
            return False
        scalars = self._free_scalars(rhs, [var], [src_name])
        try:
            kexpr = self._rewrite_elem_expr(rhs, [var], [src_name])
            params = []
            for sc in scalars:
                ty = next(
                    (
                        x.ty
                        for x in _iter_exprs(rhs)
                        if isinstance(x, A.Ident) and x.name == sc
                    ),
                    None,
                )
                if ty is None:
                    raise _Bail("untyped scalar")
                params.append(A.FuncParam(sc, resolved(ty), line=s.line))
        except _Bail:
            return False
        params.append(A.FuncParam("__v0", resolved(elem_ty), line=s.line))
        params.append(A.FuncParam("__ix", INDEX, line=s.line))
        name = self._fresh_name()
        fdef = A.FuncDef(
            name, tuple(params), rhs_ty,
            A.Block([A.Return(kexpr, line=s.line)], line=s.line), line=s.line,
        )
        kref = self._register_kernel(fdef, 1)
        if kref is None:
            return False
        kref.bound = [A.Ident(sc, line=s.line) for sc in scalars]
        kref.ty = rhs.ty
        fold_call = A.Call(
            A.Ident("array_fold", line=s.line),
            [kref, SectionRef(comb, line=s.line), A.Ident(src_name, line=s.line)],
            line=s.line,
            ty=asg.target.ty,
        )
        if comb == "+":
            new = A.Assign(copy.deepcopy(asg.target), fold_call, "+=", line=s.line)
        else:
            new = A.Assign(
                copy.deepcopy(asg.target),
                A.Call(
                    A.Ident(comb, line=s.line),
                    [copy.deepcopy(asg.target), fold_call],
                    line=s.line,
                    ty=asg.target.ty,
                ),
                "=",
                line=s.line,
            )
        block.stmts[idx] = A.ExprStmt(new, line=s.line)
        self.report.discovered_loops += 1
        self.report.add(
            "discover:fold", s.line,
            f"reduction loop over {src_name!r} -> array_fold({comb})",
        )
        return True

    # ------------------------------------------------------- init elision
    _OVERWRITERS = {
        "array_copy": (2, 1, (0,)),
        "array_map": (3, 2, (1,)),
        "array_zip": (4, 3, (1, 2)),
        "array_scan": (3, 2, (1,)),
    }

    def _init_state_seq(self, stmts, name: str) -> str:
        for s in stmts:
            r = self._init_state_stmt(s, name)
            if r != "CLEAN":
                return r
        return "CLEAN"

    def _init_state_stmt(self, s: A.Stmt, name: str) -> str:
        """Abstract state of *name*'s initial values over *s*:
        ``OVER`` = definitely fully overwritten before any read,
        ``LIVE`` = (possibly) read, ``CLEAN`` = untouched so far."""
        if isinstance(s, A.Block):
            return self._init_state_seq(s.stmts, name)
        if isinstance(s, A.If):
            if name in _idents(s.cond):
                return "LIVE"
            rt = self._init_state_stmt(s.then, name)
            re_ = (
                self._init_state_stmt(s.orelse, name)
                if s.orelse is not None
                else "CLEAN"
            )
            if "LIVE" in (rt, re_):
                return "LIVE"
            if rt == "OVER" and re_ == "OVER":
                return "OVER"
            return "CLEAN"  # maybe-overwritten: a later read still bails
        if isinstance(s, (A.While, A.For)):
            exprs = []
            if isinstance(s, A.While):
                exprs.append(s.cond)
            else:
                if s.init is not None and name in _stmt_idents(s.init):
                    return "LIVE"
                exprs.extend(x for x in (s.cond, s.step) if x is not None)
            for e in exprs:
                if name in _idents(e):
                    return "LIVE"
            body = self._init_state_stmt(s.body, name)
            if body == "LIVE":
                return "LIVE"
            # the loop may run zero times, so OVER does not propagate out;
            # but its body provably never reads the initial values
            return "CLEAN"
        ids = _stmt_idents(s)
        if name not in ids:
            return "CLEAN"
        if _call_of(s, "array_destroy") is not None:
            return "CLEAN"
        for fn, (nargs, dst_i, src_is) in self._OVERWRITERS.items():
            c = _call_of(s, fn)
            if c is None or len(c.args) != nargs:
                continue
            dst = c.args[dst_i]
            if not (isinstance(dst, A.Ident) and dst.name == name):
                continue
            for si in src_is:
                x = c.args[si]
                if isinstance(x, A.Ident) and x.name == name:
                    return "LIVE"
            if _count_ident_in_stmt(s, name) == 1:
                return "OVER"
            return "LIVE"
        return "LIVE"

    def _elide_inits(self, f: A.FuncDef) -> None:
        params = self._param_names(f)
        body = f.body.stmts
        for idx, st in enumerate(list(body)):
            made = _create_call(st)
            if made is None:
                continue
            name, call = made
            if name in params or call.line in self.no_fuse:
                continue
            if len(call.args) < 6 or not isinstance(call.args[4], KernelRef):
                continue
            if not self._kernel_is_pure(call.args[4]):
                continue
            if self._create_stmt_of(f, name) is not st:
                continue
            try:
                pos = next(i for i, x in enumerate(body) if x is st)
            except StopIteration:
                continue
            if self._init_state_seq(body[pos + 1:], name) == "LIVE":
                continue
            call.func = A.Ident(
                "array_create_uninit", line=call.func.line, ty=call.func.ty
            )
            del call.args[4]
            self.report.inits_elided += 1
            self.report.rounds_eliminated += 1
            self.report.add(
                "uninit", call.line,
                f"init of {name!r} is dead -> array_create_uninit",
            )

    # ------------------------------------------------------------ driver
    def fuse_function(self, f: A.FuncDef) -> None:
        for _ in range(200):
            changed = self._discover_pass(f)
            changed = self._fuse_pass(f) or changed
            changed = self._square_pass(f) or changed
            changed = self._dead_array_pass(f) or changed
            if not changed:
                break
        self._elide_inits(f)


def fuse_program(
    prog: InstantiatedProgram, no_fuse_lines=()
) -> FusionReport:
    """Run skeleton discovery & fusion over *prog* in place."""
    fz = _Fuser(prog, no_fuse_lines)
    for f in list(prog.entries.values()):
        fz.fuse_function(f)
    for inst in list(prog.instances.values()):
        # plain monomorphic helpers can contain skeleton calls too;
        # kernels simply have nothing to rewrite
        fz.fuse_function(inst.func)
    return fz.report

"""Token definitions for the Skil front end."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["TokKind", "Token", "KEYWORDS", "PUNCT"]


class TokKind(Enum):
    IDENT = auto()
    TYPEVAR = auto()  # $t
    KEYWORD = auto()
    INT = auto()
    FLOAT = auto()
    STRING = auto()
    CHAR = auto()
    PUNCT = auto()
    EOF = auto()


#: reserved words of the C subset plus the Skil extensions
KEYWORDS = frozenset(
    {
        "int",
        "unsigned",
        "float",
        "double",
        "char",
        "void",
        "struct",
        "union",
        "typedef",
        "pardata",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "sizeof",
    }
)

#: multi-character punctuation, longest first so the lexer can greedily match
PUNCT = (
    "<<=",
    ">>=",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    ".",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "!",
    "&",
    "|",
    "^",
    "?",
    ":",
    "~",
)


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int
    column: int

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text in texts

    def is_keyword(self, *texts: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text in texts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"

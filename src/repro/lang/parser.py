"""Recursive-descent parser for the Skil subset.

Grammar highlights (beyond plain C):

* type variables ``$t`` may appear wherever a type may;
* parameterized type declarations: ``typedef struct _list * list<$t>;``
  (the angle-bracketed variables are declared *after* the introduced
  name, following the paper's examples);
* ``pardata name <$t1,...,$tn> [implem] ;`` — the implementation is
  optional ("similarly to prototypes of library functions, whose header
  is visible, but whose body is not");
* function parameters may be function headers: ``$b solve ($a)``;
* ``(op)`` converts an operator to a function, and can itself be
  partially applied: ``(*)(2)``;
* ``{a, b}`` is the Index/Size literal of the paper's pseudo-code.

Casts are restricted to primitive keyword types (``(float) x``); that is
all the sample programs need and it avoids the classic C ambiguity.
"""

from __future__ import annotations

from repro.errors import SkilSyntaxError
from repro.lang import ast as A
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokKind
from repro.lang.types import (
    BOUNDS,
    CHAR,
    DOUBLE,
    FLOAT,
    INDEX,
    INT,
    SIZE,
    STRING,
    UNSIGNED,
    VOID,
    TArray,
    TFun,
    TPardata,
    TPointer,
    TPrim,
    TStruct,
    TVar,
    Type,
)

__all__ = ["parse", "Parser"]

_PRIM_KEYWORDS = {
    "int": INT,
    "unsigned": UNSIGNED,
    "float": FLOAT,
    "double": DOUBLE,
    "char": CHAR,
    "void": VOID,
}

_BUILTIN_TYPE_NAMES = {
    "Index": INDEX,
    "Size": SIZE,
    "Bounds": BOUNDS,
}

#: binary operator precedence (larger binds tighter)
_BINOPS = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_SECTION_OPS = {"+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!="}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class Parser:
    def __init__(self, source: str):
        self.toks = tokenize(source)
        self.pos = 0
        #: names introduced by typedef/pardata/struct, so declarations can
        #: be told apart from expressions
        self.type_names: dict[str, int] = {"array": 1}  # name -> arity
        self.struct_decls: dict[str, A.StructDecl] = {}
        self.typedefs: dict[str, A.TypedefDecl] = {}

    # ------------------------------------------------------------------ utils
    def peek(self, off: int = 0) -> Token:
        return self.toks[min(self.pos + off, len(self.toks) - 1)]

    def next(self) -> Token:
        t = self.peek()
        self.pos += 1
        return t

    def error(self, msg: str, tok: Token | None = None):
        tok = tok or self.peek()
        raise SkilSyntaxError(f"{msg} (near {tok.text!r})", tok.line, tok.column)

    def expect_punct(self, text: str) -> Token:
        t = self.peek()
        if not t.is_punct(text):
            self.error(f"expected {text!r}")
        return self.next()

    def expect_ident(self) -> Token:
        t = self.peek()
        if t.kind is not TokKind.IDENT:
            self.error("expected an identifier")
        return self.next()

    def accept_punct(self, text: str) -> bool:
        if self.peek().is_punct(text):
            self.next()
            return True
        return False

    # ------------------------------------------------------------------ types
    def at_type(self) -> bool:
        t = self.peek()
        if t.kind is TokKind.TYPEVAR:
            return True
        if t.is_keyword(*_PRIM_KEYWORDS, "struct", "union"):
            return True
        if t.kind is TokKind.IDENT and (
            t.text in self.type_names or t.text in _BUILTIN_TYPE_NAMES
        ):
            return True
        return False

    def parse_type(self) -> Type:
        t = self.peek()
        if t.kind is TokKind.TYPEVAR:
            self.next()
            base: Type = TVar(t.text)
        elif t.is_keyword("unsigned"):
            self.next()
            # allow 'unsigned int'
            if self.peek().is_keyword("int"):
                self.next()
            base = UNSIGNED
        elif t.is_keyword(*_PRIM_KEYWORDS):
            self.next()
            base = _PRIM_KEYWORDS[t.text]
        elif t.is_keyword("struct", "union"):
            self.next()
            name = self.expect_ident().text
            decl = self.struct_decls.get(name)
            fields = tuple(decl.fields) if decl else ()
            base = TStruct(name, fields)
        elif t.kind is TokKind.IDENT and t.text in _BUILTIN_TYPE_NAMES:
            self.next()
            base = _BUILTIN_TYPE_NAMES[t.text]
        elif t.kind is TokKind.IDENT and t.text in self.type_names:
            self.next()
            args: tuple[Type, ...] = ()
            if self.peek().is_punct("<"):
                self.next()
                arglist = [self.parse_type()]
                while self.accept_punct(","):
                    arglist.append(self.parse_type())
                self._expect_close_angle()
                args = tuple(arglist)
            base = self._named_type(t.text, args)
        else:
            self.error("expected a type")
            raise AssertionError  # unreachable
        while self.peek().is_punct("*"):
            self.next()
            base = TPointer(base)
        return base

    def _expect_close_angle(self) -> None:
        """Consume '>', splitting a '>>' token (array<array<int>>)."""
        t = self.peek()
        if t.is_punct(">>"):
            self.toks[self.pos] = Token(TokKind.PUNCT, ">", t.line, t.column + 1)
            return
        self.expect_punct(">")

    def _named_type(self, name: str, args: tuple[Type, ...]) -> Type:
        """Resolve a typedef/pardata name applied to type arguments."""
        from repro.lang.types import contains_pardata

        arity = self.type_names.get(name, 0)
        if name == "array" or (name in self.type_names and name not in self.typedefs):
            # pardata type: its arguments may not be (or contain) pardatas
            for a in args:
                if contains_pardata(a):
                    self.error(
                        "distributed data structures may not be nested"
                    )
        if len(args) != arity:
            self.error(
                f"type {name!r} expects {arity} type argument(s), got {len(args)}"
            )
        td = self.typedefs.get(name)
        if td is not None:
            mapping = dict(zip(td.type_params, args))
            return _substitute_named(td.target, mapping)
        # pardata (or the builtin array)
        return TPardata(name, args)

    # ------------------------------------------------------------------ program
    def parse_program(self) -> A.Program:
        prog = A.Program(decls=[])
        while self.peek().kind is not TokKind.EOF:
            if self.accept_punct(";"):
                continue
            tok = self.peek()
            if tok.is_keyword("typedef"):
                prog.decls.append(self.parse_typedef())
            elif tok.is_keyword("pardata"):
                prog.decls.append(self.parse_pardata())
            elif tok.is_keyword("struct") and self.peek(2).is_punct("{"):
                prog.decls.append(self.parse_struct_decl())
            else:
                prog.decls.append(self.parse_function())
        return prog

    def parse_struct_decl(self) -> A.StructDecl:
        line = self.peek().line
        self.next()  # struct
        name = self.expect_ident().text
        self.expect_punct("{")
        fields: list[tuple[str, Type]] = []
        while not self.peek().is_punct("}"):
            fty = self.parse_type()
            fname = self.expect_ident().text
            fields.append((fname, fty))
            while self.accept_punct(","):
                fields.append((self.expect_ident().text, fty))
            self.expect_punct(";")
        self.expect_punct("}")
        self.expect_punct(";")
        tvars = tuple(sorted({v for _, ft in fields for v in _tvars_of(ft)}))
        decl = A.StructDecl(name, tvars, tuple(fields), line=line)
        self.struct_decls[name] = decl
        return decl

    def parse_typedef(self) -> A.TypedefDecl:
        line = self.next().line  # typedef
        target = self.parse_type()
        name = self.expect_ident().text
        params: tuple[str, ...] = ()
        if self.peek().is_punct("<"):
            self.next()
            plist = []
            while True:
                t = self.peek()
                if t.kind is not TokKind.TYPEVAR:
                    self.error("expected a type variable in typedef parameters")
                plist.append(self.next().text)
                if not self.accept_punct(","):
                    break
            self.expect_punct(">")
            params = tuple(plist)
        self.expect_punct(";")
        decl = A.TypedefDecl(name, params, target, line=line)
        self.type_names[name] = len(params)
        self.typedefs[name] = decl
        return decl

    def parse_pardata(self) -> A.PardataHeader:
        line = self.next().line  # pardata
        name = self.expect_ident().text
        params: list[str] = []
        if self.accept_punct("<"):
            while True:
                t = self.peek()
                if t.kind is not TokKind.TYPEVAR:
                    self.error("expected a type variable in pardata parameters")
                params.append(self.next().text)
                if not self.accept_punct(","):
                    break
            self.expect_punct(">")
        has_implem = False
        if not self.peek().is_punct(";"):
            # consume an implementation type (hidden from user code)
            self.parse_type()
            has_implem = True
        self.expect_punct(";")
        self.type_names[name] = len(params)
        return A.PardataHeader(name, tuple(params), has_implem, line=line)

    # ------------------------------------------------------------------ functions
    def parse_function(self) -> A.Node:
        line = self.peek().line
        ret = self.parse_type()
        name = self.expect_ident().text
        self.expect_punct("(")
        params: list[A.FuncParam] = []
        if not self.peek().is_punct(")"):
            while True:
                params.append(self.parse_param())
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        if self.accept_punct(";"):
            return A.FuncDecl(name, tuple(params), ret, line=line)
        body = self.parse_block()
        return A.FuncDef(name, tuple(params), ret, body, line=line)

    def parse_param(self) -> A.FuncParam:
        line = self.peek().line
        ty = self.parse_type()
        name = ""
        if self.peek().kind is TokKind.IDENT:
            name = self.next().text
        # functional parameter: `$b solve ($a, ...)`
        if self.peek().is_punct("("):
            self.next()
            ptypes: list[Type] = []
            if not self.peek().is_punct(")"):
                while True:
                    ptypes.append(self.parse_type())
                    # optional parameter names inside the header
                    if self.peek().kind is TokKind.IDENT:
                        self.next()
                    if not self.accept_punct(","):
                        break
            self.expect_punct(")")
            ty = TFun(tuple(ptypes), ty)
        while self.peek().is_punct("["):
            self.next()
            size = None
            if self.peek().kind is TokKind.INT:
                size = int(self.next().text)
            self.expect_punct("]")
            ty = TArray(ty, size)
        return A.FuncParam(name, ty, line=line)

    # ------------------------------------------------------------------ statements
    def parse_block(self) -> A.Block:
        line = self.expect_punct("{").line
        stmts: list[A.Stmt] = []
        while not self.peek().is_punct("}"):
            stmts.append(self.parse_stmt())
        self.expect_punct("}")
        return A.Block(stmts, line=line)

    def parse_stmt(self) -> A.Stmt:
        t = self.peek()
        if t.is_punct("{"):
            return self.parse_block()
        if t.is_keyword("if"):
            return self.parse_if()
        if t.is_keyword("while"):
            line = self.next().line
            self.expect_punct("(")
            cond = self.parse_expr()
            self.expect_punct(")")
            return A.While(cond, self.parse_stmt(), line=line)
        if t.is_keyword("for"):
            return self.parse_for()
        if t.is_keyword("return"):
            line = self.next().line
            value = None
            if not self.peek().is_punct(";"):
                value = self.parse_expr()
            self.expect_punct(";")
            return A.Return(value, line=line)
        if self.at_type() and self._looks_like_decl():
            return self.parse_var_decl()
        expr = self.parse_expr()
        self.expect_punct(";")
        return A.ExprStmt(expr, line=expr.line)

    def _looks_like_decl(self) -> bool:
        """Disambiguate `list x;` (decl) from `list(x);` (call)."""
        save = self.pos
        try:
            self.parse_type()
            ok = self.peek().kind is TokKind.IDENT
        except SkilSyntaxError:
            ok = False
        self.pos = save
        return ok

    def parse_var_decl(self) -> A.Stmt:
        line = self.peek().line
        ty = self.parse_type()
        decls: list[A.Stmt] = []
        while True:
            name = self.expect_ident().text
            init = None
            if self.accept_punct("="):
                init = self.parse_expr()
            decls.append(A.VarDecl(name, ty, init, line=line))
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return A.Block(decls, line=line)

    def parse_if(self) -> A.If:
        line = self.next().line  # if
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        then = self.parse_stmt()
        orelse = None
        if self.peek().is_keyword("else"):
            self.next()
            orelse = self.parse_stmt()
        return A.If(cond, then, orelse, line=line)

    def parse_for(self) -> A.For:
        line = self.next().line  # for
        self.expect_punct("(")
        init: A.Stmt | None = None
        if not self.peek().is_punct(";"):
            if self.at_type() and self._looks_like_decl():
                init = self.parse_var_decl()
            else:
                init = A.ExprStmt(self.parse_expr())
                self.expect_punct(";")
        else:
            self.next()
        cond = None
        if not self.peek().is_punct(";"):
            cond = self.parse_expr()
        self.expect_punct(";")
        step = None
        if not self.peek().is_punct(")"):
            step = self.parse_expr()
        self.expect_punct(")")
        return A.For(init, cond, step, self.parse_stmt(), line=line)

    # ------------------------------------------------------------------ expressions
    def parse_expr(self) -> A.Expr:
        return self.parse_assign()

    def parse_assign(self) -> A.Expr:
        left = self.parse_cond()
        t = self.peek()
        if t.kind is TokKind.PUNCT and t.text in _ASSIGN_OPS:
            op = self.next().text
            value = self.parse_assign()
            return A.Assign(left, value, op, line=t.line)
        return left

    def parse_cond(self) -> A.Expr:
        cond = self.parse_binary(1)
        if self.peek().is_punct("?"):
            line = self.next().line
            then = self.parse_expr()
            self.expect_punct(":")
            orelse = self.parse_cond()
            return A.Cond(cond, then, orelse, line=line)
        return cond

    def parse_binary(self, min_prec: int) -> A.Expr:
        left = self.parse_unary()
        while True:
            t = self.peek()
            prec = _BINOPS.get(t.text) if t.kind is TokKind.PUNCT else None
            if prec is None or prec < min_prec:
                return left
            # `>` could end a type-argument list, but type arguments never
            # appear in expression position, so plain greater-than is safe
            self.next()
            right = self.parse_binary(prec + 1)
            left = A.BinOp(t.text, left, right, line=t.line)

    def parse_unary(self) -> A.Expr:
        t = self.peek()
        if t.is_punct("-", "!", "~"):
            self.next()
            return A.UnOp(t.text, self.parse_unary(), line=t.line)
        if t.is_punct("++", "--"):
            self.next()
            inner = self.parse_unary()
            one = A.IntLit(1, line=t.line)
            return A.Assign(inner, one, t.text[0] + "=", line=t.line)
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            t = self.peek()
            if t.is_punct("("):
                self.next()
                args: list[A.Expr] = []
                if not self.peek().is_punct(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                expr = A.Call(expr, args, line=t.line)
            elif t.is_punct("["):
                self.next()
                idx = self.parse_expr()
                self.expect_punct("]")
                expr = A.IndexExpr(expr, idx, line=t.line)
            elif t.is_punct("."):
                self.next()
                expr = A.Member(expr, self.expect_ident().text, False, line=t.line)
            elif t.is_punct("->"):
                self.next()
                expr = A.Member(expr, self.expect_ident().text, True, line=t.line)
            elif t.is_punct("++", "--"):
                self.next()
                one = A.IntLit(1, line=t.line)
                expr = A.Assign(expr, one, t.text[0] + "=", line=t.line)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        t = self.peek()
        if t.kind is TokKind.INT:
            self.next()
            return A.IntLit(int(t.text), line=t.line)
        if t.kind is TokKind.FLOAT:
            self.next()
            return A.FloatLit(float(t.text), line=t.line)
        if t.kind is TokKind.STRING:
            self.next()
            return A.StringLit(t.text, line=t.line)
        if t.kind is TokKind.CHAR:
            self.next()
            return A.CharLit(t.text, line=t.line)
        if t.kind is TokKind.IDENT:
            self.next()
            return A.Ident(t.text, line=t.line)
        if t.is_punct("{"):
            self.next()
            items: list[A.Expr] = []
            if not self.peek().is_punct("}"):
                while True:
                    items.append(self.parse_expr())
                    if not self.accept_punct(","):
                        break
            self.expect_punct("}")
            return A.BraceList(items, line=t.line)
        if t.is_punct("("):
            # operator section `(+)` / cast `(float) x` / parenthesized expr
            nxt = self.peek(1)
            if nxt.kind is TokKind.PUNCT and nxt.text in _SECTION_OPS and self.peek(
                2
            ).is_punct(")"):
                self.next()
                op = self.next().text
                self.expect_punct(")")
                return A.OperatorSection(op, line=t.line)
            if nxt.kind is TokKind.IDENT and nxt.text in ("min", "max") and self.peek(
                2
            ).is_punct(")"):
                # `(min)` — named sections used like operators in §4.1
                self.next()
                op = self.next().text
                self.expect_punct(")")
                return A.OperatorSection(op, line=t.line)
            if nxt.is_keyword(*_PRIM_KEYWORDS):
                self.next()
                target = self.parse_type()
                self.expect_punct(")")
                return A.Cast(target, self.parse_unary(), line=t.line)
            self.next()
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        self.error("expected an expression")
        raise AssertionError  # unreachable


def _tvars_of(t: Type) -> set[str]:
    from repro.lang.types import free_vars

    return free_vars(t)


def _substitute_named(t: Type, mapping: dict[str, Type]) -> Type:
    if isinstance(t, TVar):
        return mapping.get(t.name, t)
    if isinstance(t, TFun):
        return TFun(
            tuple(_substitute_named(p, mapping) for p in t.params),
            _substitute_named(t.ret, mapping),
        )
    if isinstance(t, TPointer):
        return TPointer(_substitute_named(t.target, mapping))
    if isinstance(t, TArray):
        return TArray(_substitute_named(t.elem, mapping), t.size)
    if isinstance(t, TStruct):
        return TStruct(
            t.name, tuple((f, _substitute_named(ft, mapping)) for f, ft in t.fields)
        )
    if isinstance(t, TPardata):
        return TPardata(t.name, tuple(_substitute_named(a, mapping) for a in t.args))
    return t


def parse(source: str) -> A.Program:
    """Parse Skil source text into an AST."""
    return Parser(source).parse_program()

"""The Skil compiler driver: source text -> executable module.

Pipeline (the paper's front-end compiler, with Python standing in for
the C back end):

1. :func:`repro.lang.parser.parse` — lexing + parsing,
2. :func:`repro.lang.typecheck.check` — polymorphic type checking,
3. :func:`repro.lang.instantiate.instantiate_program` — translation by
   instantiation into first-order monomorphic functions,
4. :func:`repro.lang.codegen.generate_python` — code emission,
5. ``exec`` of the generated module.

External (host-supplied) functions are declared in Skil with prototypes
and bound at :meth:`SkilModule.run` time, like linking against the C
objects of the application's sequential parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SkilError
from repro.lang import runtime as _rt
from repro.lang.codegen import generate_python
from repro.lang.instantiate import InstantiatedProgram, instantiate_program
from repro.lang.parser import parse
from repro.lang.typecheck import CheckedProgram, check
from repro.lang.types import TPrim
from repro.skeletons import SkilContext
from repro.skeletons.fuse import program_fusion_default

__all__ = ["SkilModule", "compile_skil"]


@dataclass
class SkilModule:
    """A compiled Skil program ready to run on a machine context."""

    source: str
    python_source: str
    checked: CheckedProgram
    instantiated: InstantiatedProgram
    namespace: dict = field(default_factory=dict)
    #: the :class:`repro.lang.fusion.FusionReport` when the program was
    #: compiled with skeleton fusion, else ``None``
    fusion_report: Any = None

    @property
    def instantiation_report(self) -> dict[str, list[str]]:
        """source function -> generated monomorphic instances."""
        return self.instantiated.report

    def entry_names(self) -> list[str]:
        return list(self.instantiated.entries)

    def dump_instances(self) -> str:
        """The instantiated program rendered back as Skil/C text — the
        readable counterpart of the paper's §2.4 intermediate code."""
        from repro.lang.printer import print_function

        out = []
        for f in self.instantiated.all_functions():
            out.append(print_function(f))
        return "\n".join(out)

    def run(
        self,
        entry: str,
        *args,
        ctx: SkilContext,
        externals: dict[str, Callable] | None = None,
    ) -> Any:
        """Execute *entry* with *args* on the given skeleton context.

        *externals* provides Python implementations for every Skil
        prototype without a body (checked here, like a linker would).
        """
        externals = dict(externals or {})
        missing = [n for n in self.checked.externals if n not in externals]
        if missing:
            raise SkilError(
                f"unresolved external function(s): {', '.join(sorted(missing))}"
            )
        unknown = [n for n in externals if n not in self.checked.externals]
        if unknown:
            raise SkilError(
                f"externals {', '.join(sorted(unknown))} were not declared in "
                "the Skil source"
            )
        if entry not in self.instantiated.entries:
            raise SkilError(
                f"{entry!r} is not an entry point (entries: "
                f"{', '.join(self.entry_names()) or 'none'})"
            )
        for name, fn in externals.items():
            if not hasattr(fn, "ops"):
                fn.ops = 1.0
            self.namespace[name] = fn
        self.namespace["_ctx"] = ctx
        try:
            return self.namespace[entry](*args)
        finally:
            self.namespace["_ctx"] = None


def compile_skil_file(path) -> SkilModule:
    """Compile a ``.skil`` source file (convenience wrapper)."""
    from pathlib import Path

    return compile_skil(Path(path).read_text())


def compile_skil(
    source: str,
    *,
    fusion: bool | None = None,
    no_fuse_lines=(),
) -> SkilModule:
    """Compile Skil source text into an executable :class:`SkilModule`.

    *fusion* enables the skeleton discovery & fusion pass
    (:mod:`repro.lang.fusion`) between instantiation and code emission;
    ``None`` defers to the process default (``REPRO_FUSION`` /
    :func:`repro.skeletons.fuse.set_program_fusion_default`).
    *no_fuse_lines* opts individual source lines out of rewriting.
    """
    import sys

    from repro.obs import global_metrics

    global_metrics().inc("lang.compile_calls")

    # recursive-descent passes walk expression chains one frame per
    # operator; allow realistically long straight-line expressions
    limit = sys.getrecursionlimit()
    if limit < 20_000:
        sys.setrecursionlimit(20_000)
    program = parse(source)
    checked = check(program)
    # register struct dtypes for the runtime before executing anything
    for sd in checked.struct_decls.values():
        fields = []
        for fname, ftype in sd.fields:
            if isinstance(ftype, TPrim):
                fields.append((fname, ftype.name))
            else:
                # non-primitive fields are allowed by the checker but have
                # no numpy dtype; register lazily only when possible
                fields = []
                break
        if fields:
            _rt.register_struct(sd.name, fields)
    instantiated = instantiate_program(checked)
    if fusion is None:
        fusion = program_fusion_default()
    fusion_report = None
    if fusion:
        from repro.lang.fusion import fuse_program

        fusion_report = fuse_program(instantiated, no_fuse_lines)
        global_metrics().inc(
            "lang.fusion_rewrites", len(fusion_report.rewrites)
        )
    python_source = generate_python(instantiated)
    namespace: dict = {}
    code = compile(python_source, "<skil-generated>", "exec")
    exec(code, namespace)  # noqa: S102 - compiling our own generated code
    return SkilModule(
        source,
        python_source,
        checked,
        instantiated,
        namespace,
        fusion_report=fusion_report,
    )

"""Lexer for the Skil language (a C subset with ``$t`` type variables).

Peculiarities relative to plain C:

* ``$`` starts a type variable: ``$t``, ``$elem1`` ("a type variable is
  an identifier which begins with a $");
* ``&`` followed by an identifier like ``d&c`` is **not** special — the
  paper names its skeleton ``d&c``, but that is pseudo-code; Skil
  sources here use ``dc`` (documented in the language reference);
* both ``/* ... */`` and ``// ...`` comments are accepted.
"""

from __future__ import annotations

from repro.errors import SkilSyntaxError
from repro.lang.tokens import KEYWORDS, PUNCT, Token, TokKind

__all__ = ["tokenize"]


def tokenize(source: str) -> list[Token]:
    """Turn Skil source text into a token list ending with EOF."""
    toks: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str):
        raise SkilSyntaxError(msg, line, col)

    while i < n:
        c = source[i]
        # -- whitespace -----------------------------------------------------
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        # -- comments -------------------------------------------------------
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                error("unterminated /* comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # -- type variables ---------------------------------------------------
        if c == "$":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            if j == i + 1:
                error("'$' must be followed by a type-variable name")
            toks.append(Token(TokKind.TYPEVAR, source[i:j], line, col))
            col += j - i
            i = j
            continue
        # -- identifiers / keywords -------------------------------------------
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            toks.append(Token(kind, text, line, col))
            col += j - i
            i = j
            continue
        # -- numbers ----------------------------------------------------------
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            toks.append(
                Token(TokKind.FLOAT if is_float else TokKind.INT, text, line, col)
            )
            col += j - i
            i = j
            continue
        # -- string / char literals --------------------------------------------
        if c in "\"'":
            quote = c
            j = i + 1
            buf = []
            while j < n and source[j] != quote:
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append(
                        {"n": "\n", "t": "\t", "0": "\0", "\\": "\\",
                         '"': '"', "'": "'"}.get(esc, esc)
                    )
                    j += 2
                else:
                    if source[j] == "\n":
                        error("unterminated literal")
                    buf.append(source[j])
                    j += 1
            if j >= n:
                error("unterminated literal")
            kind = TokKind.STRING if quote == '"' else TokKind.CHAR
            toks.append(Token(kind, "".join(buf), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        # -- punctuation --------------------------------------------------------
        for p in PUNCT:
            if source.startswith(p, i):
                toks.append(Token(TokKind.PUNCT, p, line, col))
                col += len(p)
                i += len(p)
                break
        else:
            error(f"unexpected character {c!r}")
    toks.append(Token(TokKind.EOF, "", line, col))
    return toks

"""Streamed-vs-recorded aggregate equality (the ``stream`` pillar).

``Machine(trace_mode="stream")`` promises that every *aggregate* it
keeps — per-rank per-kind interval seconds and counts, per-rank message
arrays, per-tag totals, per-skeleton attribution with online duration
histograms — is **bit-identical** to folding a full ``trace_level=2``
recording of the same run through the same sinks
(:func:`repro.obs.stream.fold_recorded`).  Only the reservoir *contents*
are exempt: the wave offer draws its random numbers in a different
order than the scalar offer, so the two reservoirs hold different (but
equally sized) subsets; the pillar instead checks the sampled records
are a subset of the full recording.

Every trial builds two identical machines, runs the same workload on
both — one recording, one streaming — and compares:

* the streamed observer against the record fold with
  :func:`~repro.obs.stream.compare_observers` (bitwise arrays,
  histograms field-by-field, span ring via dataclass equality),
* every per-rank clock with ``==`` (streaming must not perturb the
  simulation),
* the stats counters exactly and the stats floats bitwise,
* the metrics registries via their rendered exposition text,
* reservoir ⊆ full record list.

Three trial families interleave: skeleton applications (shortest paths
/ Gaussian elimination at p ∈ {4, 16, 64}), raw network op sequences
(scalar and batched p2p, shifts, tree collectives — the paths that
take the vectorized ``add_many``/``on_message_wave`` branches), and
Engine workloads (``divide_and_conquer`` / ``farm``) whose intervals
arrive through the scalar timeline API.
"""

from __future__ import annotations

import random
import time
import traceback

import numpy as np

from repro.check.report import CheckResult, Failure
from repro.machine.machine import (
    DISTR_DEFAULT,
    DISTR_RING,
    DISTR_TORUS2D,
    Machine,
)
from repro.obs.metrics import isolated_metrics
from repro.obs.stream import StreamConfig, compare_observers, fold_recorded
from repro.skeletons import MIN, PLUS, SkilContext

__all__ = ["run_stream", "run_stream_raw"]


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------
def _stats_tuple(stats):
    return (
        stats.messages,
        stats.bytes_sent,
        stats.hops_crossed,
        stats.comm_seconds,
        stats.idle_seconds,
        stats.compute_seconds,
        stats.skeleton_calls,
    )


def _compare_modes(m_rec: Machine, m_str: Machine, label: str) -> str | None:
    """Record machine vs stream machine, bitwise."""
    if not np.array_equal(m_rec.network.clocks, m_str.network.clocks):
        i = int(np.argmax(m_rec.network.clocks != m_str.network.clocks))
        return (
            f"clock mismatch ({label}): rank {i} "
            f"record={float(m_rec.network.clocks[i])!r} "
            f"stream={float(m_str.network.clocks[i])!r}"
        )
    if _stats_tuple(m_rec.stats) != _stats_tuple(m_str.stats):
        return (
            f"stats mismatch ({label}): record={_stats_tuple(m_rec.stats)} "
            f"stream={_stats_tuple(m_str.stats)}"
        )
    if m_rec.metrics is not None and m_str.metrics is not None:
        if m_rec.metrics.render_text() != m_str.metrics.render_text():
            return f"metrics exposition mismatch ({label})"
    fold = fold_recorded(m_rec, m_str.stream_obs.config)
    problems = compare_observers(fold, m_str.stream_obs)
    if problems:
        return f"aggregate mismatch ({label}): " + "; ".join(problems[:4])
    recorded = set(m_rec.stats.records)
    for rec in m_str.stream_obs.reservoir.items:
        if rec not in recorded:
            return f"reservoir sampled an unrecorded message ({label}): {rec}"
    try:
        m_str.stream_obs.assert_bounded()
    except Exception as exc:
        return f"stream accounting unbounded ({label}): {exc}"
    return None


def _machine_pair(p: int, rng: random.Random) -> tuple[Machine, Machine]:
    cfg = StreamConfig(
        sample_size=rng.choice([8, 64, 1024]),
        ring_size=rng.choice([4, 256]),
        seed=rng.randrange(2**31),
    )
    m_rec = Machine(p, trace_level=2)
    m_str = Machine(p, trace_level=2, trace_mode="stream", stream=cfg)
    return m_rec, m_str


# ---------------------------------------------------------------------------
# trial families
# ---------------------------------------------------------------------------
def trial_stream_app(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """A full skeleton application, recorded vs streamed."""
    app = rng.choice(["shpaths", "shpaths", "gauss"])
    if app == "shpaths":
        p = rng.choice([4, 4, 16, 16, 64])
        side = int(round(p**0.5))
        n = side * rng.randint(1, 2 if p == 64 else 3)
    else:
        p = rng.choice([4, 4, 16])
        n = p * rng.randint(2, 3)
    seed = rng.randrange(2**31)
    cov = {f"stream.app_{app}": 1, f"stream.p{p}": 1}

    def run(machine: Machine) -> None:
        ctx = SkilContext(machine)
        if app == "shpaths":
            from repro.apps.shortest_paths import (
                random_distance_matrix,
                shpaths,
            )

            shpaths(ctx, random_distance_matrix(n, density=0.3, seed=seed))
        else:
            from repro.apps.gauss import gauss_simple, random_system

            a_mat, rhs = random_system(n, seed=seed)
            gauss_simple(ctx, a_mat, rhs)

    m_rec, m_str = _machine_pair(p, rng)
    with isolated_metrics():
        run(m_rec)
    with isolated_metrics():
        run(m_str)
    return _compare_modes(m_rec, m_str, f"{app} p={p} n={n}"), cov


def trial_stream_netops(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """A random raw network op sequence, recorded vs streamed.

    Exercises the vectorized wave branches (``p2p_batch``, batched
    shifts, round-batched collectives) against their record-mode
    interval/record loops, plus scalar ops that go through the stream
    timeline's scalar ``add``.
    """
    p = rng.choice([4, 8, 16, 64])
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING, DISTR_TORUS2D])
    n_ops = rng.randint(1, 12)
    ops = []
    for _ in range(n_ops):
        kind = rng.choice(
            ["compute", "p2p", "p2p_batch", "shift", "bcast", "reduce",
             "allreduce"]
        )
        if kind == "compute":
            ops.append(("compute", [rng.uniform(0.0, 1e-5) for _ in range(p)]))
        elif kind == "p2p":
            ops.append((
                "p2p", rng.randrange(p), rng.randrange(p),
                rng.choice([0, 1, rng.randint(1, 4096)]),
                rng.random() < 0.4,
            ))
        elif kind == "p2p_batch":
            k = rng.randint(1, 24)
            ops.append((
                "p2p_batch",
                [rng.randrange(p) for _ in range(k)],
                [rng.randrange(p) for _ in range(k)],
                [rng.choice([0, 1, rng.randint(1, 4096)]) for _ in range(k)],
                rng.random() < 0.4,
            ))
        elif kind == "shift":
            ranks = list(range(p))
            rng.shuffle(ranks)
            perm = ranks[: rng.randint(1, p)]
            pairs = list(zip(perm, perm[1:] + perm[:1]))
            ops.append(("shift", pairs, rng.randint(1, 2048),
                        rng.random() < 0.4))
        elif kind == "bcast":
            ops.append(("bcast", rng.randrange(p), rng.randint(1, 4096)))
        elif kind == "reduce":
            ops.append(("reduce", rng.randrange(p), rng.randint(1, 4096),
                        rng.choice([0.0, 1e-6])))
        else:
            ops.append(("allreduce", rng.randint(1, 4096),
                        rng.choice([0.0, 1e-6])))
    cov = {f"stream.net_{op[0]}": 1 for op in ops}
    cov[f"stream.p{p}"] = 1

    def run(machine: Machine) -> None:
        net = machine.network
        topo = machine.topology(distr)
        for op in ops:
            if op[0] == "compute":
                net.compute(np.asarray(op[1]))
            elif op[0] == "p2p":
                net.p2p(op[1], op[2], op[3], topo, sync=op[4], tag="sc-p2p")
            elif op[0] == "p2p_batch":
                net.p2p_batch(
                    np.asarray(op[1], dtype=np.int64),
                    np.asarray(op[2], dtype=np.int64),
                    np.asarray(op[3], dtype=np.int64),
                    topo, sync=op[4], tag="sc-batch",
                )
            elif op[0] == "shift":
                net.shift(op[1], op[2], topo, sync=op[3], tag="sc-shift")
            elif op[0] == "bcast":
                net.broadcast(op[1], op[2], topo, tag="sc-bcast")
            elif op[0] == "reduce":
                net.reduce(op[1], op[2], topo, combine_seconds=op[3],
                           tag="sc-reduce")
            else:
                net.allreduce(op[1], topo, combine_seconds=op[2])

    m_rec, m_str = _machine_pair(p, rng)
    with isolated_metrics():
        run(m_rec)
    with isolated_metrics():
        run(m_str)
    label = f"netops p={p} distr={distr} ops={[o[0] for o in ops]}"
    return _compare_modes(m_rec, m_str, label), cov


def trial_stream_engine(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """Engine workloads (dc / farm): intervals arrive via the scalar
    timeline API with the engine's t0 offset; spans close through the
    streaming tracer."""
    from repro.skeletons.functional import skil_fn as sf

    p = rng.choice([4, 8, 16])
    kind = rng.choice(["dc", "farm", "both"])
    n_items = rng.randint(8, 40)
    seed = rng.randrange(2**31)
    cov = {f"stream.engine_{kind}": 1, f"stream.p{p}": 1}

    def run(machine: Machine) -> None:
        ctx = SkilContext(machine)
        if rng_offset:
            ctx.net.compute(1e-4)
        if kind in ("dc", "both"):
            is_trivial = sf(ops=1)(lambda pb: len(pb) <= 2)
            solve = sf(ops=1)(lambda pb: sum(pb))
            split = sf(ops=1)(
                lambda pb: [pb[: len(pb) // 2], pb[len(pb) // 2:]]
            )
            join = sf(ops=1)(lambda rs: sum(rs))
            ctx.divide_and_conquer(
                is_trivial, solve, split, join, list(range(n_items))
            )
        if kind in ("farm", "both"):
            worker = sf(ops=2)(lambda t: t * 2 + seed % 7)
            ctx.farm(worker, list(range(n_items)), size_of=lambda t: 1 + t % 3)

    rng_offset = rng.random() < 0.5
    m_rec, m_str = _machine_pair(p, rng)
    with isolated_metrics():
        run(m_rec)
    with isolated_metrics():
        run(m_str)
    label = f"engine {kind} p={p} items={n_items}"
    return _compare_modes(m_rec, m_str, label), cov


_TRIALS = [trial_stream_app, trial_stream_netops, trial_stream_engine]


def _run_trial(trial_seed: int, res: CheckResult, verbose: bool = False) -> None:
    rng = random.Random(trial_seed)
    fn = _TRIALS[trial_seed % len(_TRIALS)]
    res.trials += 1
    try:
        with isolated_metrics():
            msg, cov = fn(rng)
    except Exception:
        msg, cov = traceback.format_exc(limit=8), {}
    for k, v in cov.items():
        res.coverage[k] = res.coverage.get(k, 0) + v
    if msg is not None:
        res.failures.append(
            Failure(
                pillar="stream",
                seed=trial_seed,
                title=fn.__name__,
                detail=msg,
                replay=(
                    f"PYTHONPATH=src python -m repro.check stream "
                    f"--seed {trial_seed} --budget 1 --raw-seed"
                ),
            )
        )
        if verbose:
            print(f"stream seed {trial_seed}: FAIL")


def run_stream(
    seed: int = 0,
    budget: int = 120,
    time_budget: float | None = None,
    verbose: bool = False,
) -> CheckResult:
    """Run *budget* streamed-vs-recorded trials (3 interleaved families)."""
    res = CheckResult("stream")
    t0 = time.monotonic()
    for i in range(budget):
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            break
        _run_trial(seed * 1_000_003 + i, res, verbose=verbose)
    return res


def run_stream_raw(seed: int, budget: int = 1) -> CheckResult:
    """Replay exact per-trial seeds printed by a failure report."""
    res = CheckResult("stream")
    for k in range(budget):
        _run_trial(seed + k, res)
    return res

"""Failure records and result summaries for the ``repro.check`` pillars.

Every pillar reports through the same two types so the CLI can print a
uniform summary and, for every failure, a **one-line replay command**
plus (when the fuzzer produced one) a minimized reproducer program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Failure", "CheckResult", "format_failure", "format_result"]


@dataclass
class Failure:
    """One check failure, self-contained enough to replay."""

    pillar: str  #: "fuzz" | "oracle" | "diff"
    seed: int  #: the per-trial seed that deterministically reproduces it
    title: str  #: one-line description of what went wrong
    detail: str = ""  #: the mismatch / traceback text
    reproducer: str = ""  #: minimized Skil source (fuzz pillar only)
    replay: str = ""  #: one-line shell command that replays the failure

    def replay_command(self) -> str:
        if self.replay:
            return self.replay
        return (
            f"PYTHONPATH=src python -m repro.check {self.pillar} "
            f"--seed {self.seed} --budget 1"
        )


@dataclass
class CheckResult:
    """Outcome of one pillar run."""

    pillar: str
    trials: int = 0
    failures: list[Failure] = field(default_factory=list)
    #: free-form coverage counters (skeleton -> number of trials, ...)
    coverage: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "CheckResult") -> "CheckResult":
        self.trials += other.trials
        self.failures.extend(other.failures)
        for k, v in other.coverage.items():
            self.coverage[k] = self.coverage.get(k, 0) + v
        return self


def format_failure(f: Failure) -> str:
    lines = [
        f"FAIL [{f.pillar}] seed={f.seed}: {f.title}",
        f"  replay: {f.replay_command()}",
    ]
    if f.detail:
        for ln in f.detail.strip().splitlines():
            lines.append(f"  | {ln}")
    if f.reproducer:
        lines.append("  minimized reproducer:")
        for ln in f.reproducer.strip().splitlines():
            lines.append(f"  > {ln}")
    return "\n".join(lines)


def format_result(res: CheckResult) -> str:
    status = "OK" if res.ok else f"{len(res.failures)} FAILURE(S)"
    lines = [f"[{res.pillar}] {res.trials} trial(s): {status}"]
    if res.coverage:
        cov = ", ".join(f"{k}={v}" for k, v in sorted(res.coverage.items()))
        lines.append(f"  coverage: {cov}")
    for f in res.failures:
        lines.append(format_failure(f))
    return "\n".join(lines)

"""A direct AST interpreter for checked Skil programs — the oracle side
of the fuzzer's differential test.

The compiler pipeline lowers polymorphic higher-order Skil through
translation by instantiation into first-order Python; this interpreter
instead evaluates the **checked AST** directly, with real closures for
curried partial applications and plain (sequential, single global
array) semantics for the skeletons.  Agreement between the two is the
property the fuzzer checks: instantiation must not change meaning.

Scope: the interpreter covers the language subset the fuzzer generates
(scalar arithmetic, conditionals, loops, HOFs, currying, operator
sections, the data-parallel skeletons on global numpy arrays).  Kernel
arguments are applied per element in row-major order, which matches the
distributed skeletons exactly for elementwise operations and up to
reassociation for reductions — hence the fuzzer restricts fold/scan
combiners to exact associative-commutative operators on integers, and
the driver compares floating point with a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.lang import ast as A
from repro.lang import runtime as _rt
from repro.lang.typecheck import CheckedProgram
from repro.lang.types import TFun, TPardata, TPrim

__all__ = ["Interp", "InterpArray", "InterpUnsupported"]


class InterpUnsupported(Exception):
    """The program uses a construct outside the interpreter's subset."""


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


@dataclass
class InterpArray:
    """Sequential stand-in for a distributed array: one global ndarray."""

    data: np.ndarray
    alive: bool = True


class _UserFn:
    __slots__ = ("fdef",)

    def __init__(self, fdef: A.FuncDef):
        self.fdef = fdef


class _Partial:
    __slots__ = ("fn", "args")

    def __init__(self, fn, args: tuple):
        self.fn = fn
        self.args = args


class _SectionVal:
    __slots__ = ("op",)

    def __init__(self, op: str):
        self.op = op


_CMP = {"<", ">", "<=", ">=", "==", "!="}


def _apply_op(op: str, x, y):
    both_int = isinstance(x, (int, np.integer)) and isinstance(
        y, (int, np.integer)
    )
    if op == "+":
        return x + y
    if op == "-":
        return x - y
    if op == "*":
        return x * y
    if op == "/":
        return _rt.c_div(x, y) if both_int else x / y
    if op == "%":
        return _rt.c_mod(x, y) if both_int else np.fmod(x, y)
    if op == "<":
        return x < y
    if op == ">":
        return x > y
    if op == "<=":
        return x <= y
    if op == ">=":
        return x >= y
    if op == "==":
        return x == y
    if op == "!=":
        return x != y
    if op == "<<":
        return int(x) << int(y)
    if op == ">>":
        return int(x) >> int(y)
    if op == "&":
        return int(x) & int(y)
    if op == "|":
        return int(x) | int(y)
    if op == "^":
        return int(x) ^ int(y)
    if op == "min":
        return x if x <= y else y
    if op == "max":
        return x if x >= y else y
    raise InterpUnsupported(f"operator {op!r}")


class Interp:
    """Evaluate a :class:`CheckedProgram` with reference semantics."""

    def __init__(self, checked: CheckedProgram, externals: dict | None = None):
        self.checked = checked
        self.functions = checked.functions
        self.externals = dict(externals or {})

    # ------------------------------------------------------------------ entry
    def run(self, entry: str, *args) -> Any:
        f = self.functions.get(entry)
        if f is None:
            raise InterpUnsupported(f"no function {entry!r}")
        return self._invoke(f, list(args))

    # ------------------------------------------------------------------ calls
    def _invoke(self, fdef: A.FuncDef, args: list):
        if len(args) != len(fdef.params):
            raise InterpUnsupported(
                f"{fdef.name}: {len(args)} args for {len(fdef.params)} params"
            )
        env = {p.name: v for p, v in zip(fdef.params, args)}
        try:
            self._exec(fdef.body, env)
        except _ReturnSignal as r:
            return r.value
        return None

    def apply(self, fv, args: tuple):
        """Apply a function value, currying when under-applied."""
        if isinstance(fv, _Partial):
            return self.apply(fv.fn, fv.args + args)
        if isinstance(fv, _UserFn):
            arity = len(fv.fdef.params)
            if len(args) < arity:
                return _Partial(fv, tuple(args))
            head, rest = args[:arity], args[arity:]
            out = self._invoke(fv.fdef, list(head))
            return self.apply(out, tuple(rest)) if rest else out
        if isinstance(fv, _SectionVal):
            if len(args) == 1:
                return _Partial(fv, tuple(args))
            if len(args) == 2:
                return _apply_op(fv.op, args[0], args[1])
            raise InterpUnsupported(
                f"section ({fv.op}) applied to {len(args)} arguments"
            )
        if callable(fv):
            return fv(*args)
        raise InterpUnsupported(f"cannot apply value {fv!r}")

    # ------------------------------------------------------------------ stmts
    def _exec(self, s: A.Stmt, env: dict) -> None:
        if isinstance(s, A.Block):
            for x in s.stmts:
                self._exec(x, env)
        elif isinstance(s, A.VarDecl):
            env[s.name] = self._eval(s.init, env) if s.init is not None else None
        elif isinstance(s, A.If):
            if self._truth(self._eval(s.cond, env)):
                self._exec(s.then, env)
            elif s.orelse is not None:
                self._exec(s.orelse, env)
        elif isinstance(s, A.While):
            guard = 0
            while self._truth(self._eval(s.cond, env)):
                self._exec(s.body, env)
                guard += 1
                if guard > 1_000_000:
                    raise InterpUnsupported("runaway while loop")
        elif isinstance(s, A.For):
            if s.init is not None:
                self._exec(s.init, env)
            guard = 0
            while s.cond is None or self._truth(self._eval(s.cond, env)):
                self._exec(s.body, env)
                if s.step is not None:
                    self._eval(s.step, env)
                guard += 1
                if guard > 1_000_000:
                    raise InterpUnsupported("runaway for loop")
        elif isinstance(s, A.Return):
            raise _ReturnSignal(
                self._eval(s.value, env) if s.value is not None else None
            )
        elif isinstance(s, A.ExprStmt):
            self._eval(s.expr, env)
        else:
            raise InterpUnsupported(f"statement {type(s).__name__}")

    @staticmethod
    def _truth(v) -> bool:
        return bool(v)

    # ------------------------------------------------------------------ exprs
    def _eval(self, e: A.Expr, env: dict):
        if isinstance(e, A.IntLit):
            return e.value
        if isinstance(e, A.FloatLit):
            return e.value
        if isinstance(e, A.StringLit):
            return e.value
        if isinstance(e, A.CharLit):
            return ord(e.value)
        if isinstance(e, A.Ident):
            return self._ident(e.name, env)
        if isinstance(e, A.OperatorSection):
            return _SectionVal(e.op)
        if isinstance(e, A.BraceList):
            return tuple(self._eval(x, env) for x in e.items)
        if isinstance(e, A.Cond):
            if self._truth(self._eval(e.cond, env)):
                return self._eval(e.then, env)
            return self._eval(e.orelse, env)
        if isinstance(e, A.Cast):
            v = self._eval(e.operand, env)
            t = e.target
            if isinstance(t, TPrim) and t.name in ("int", "unsigned", "char"):
                return int(v)
            if isinstance(t, TPrim) and t.name in ("float", "double"):
                return float(v)
            raise InterpUnsupported(f"cast to {t!r}")
        if isinstance(e, A.UnOp):
            v = self._eval(e.operand, env)
            if e.op == "-":
                return -v
            if e.op == "+":
                return v
            if e.op == "!":
                return int(not self._truth(v))
            if e.op == "~":
                return ~int(v)
            raise InterpUnsupported(f"unary {e.op!r}")
        if isinstance(e, A.BinOp):
            if e.op == "&&":
                return (
                    int(self._truth(self._eval(e.right, env)))
                    if self._truth(self._eval(e.left, env))
                    else 0
                )
            if e.op == "||":
                return (
                    1
                    if self._truth(self._eval(e.left, env))
                    else int(self._truth(self._eval(e.right, env)))
                )
            return _apply_op(
                e.op, self._eval(e.left, env), self._eval(e.right, env)
            )
        if isinstance(e, A.Assign):
            return self._assign(e, env)
        if isinstance(e, A.IndexExpr):
            base = self._eval(e.base, env)
            ix = int(self._eval(e.index, env))
            if isinstance(base, (tuple, list, np.ndarray)):
                return base[ix]
            raise InterpUnsupported("indexing a non-Index value")
        if isinstance(e, A.Call):
            return self._call(e, env)
        if isinstance(e, A.Member):
            base = self._eval(e.base, env)
            try:
                return base[e.name]
            except Exception:
                raise InterpUnsupported(
                    f"member access .{e.name} on {type(base).__name__}"
                ) from None
        raise InterpUnsupported(f"expression {type(e).__name__}")

    def _assign(self, e: A.Assign, env: dict):
        v = self._eval(e.value, env)
        if not isinstance(e.target, A.Ident):
            raise InterpUnsupported("assignment to a non-identifier")
        name = e.target.name
        if e.op != "=":
            cur = self._ident(name, env)
            v = _apply_op(e.op[:-1], cur, v)
        env[name] = v
        return v

    def _ident(self, name: str, env: dict):
        if name in env:
            return env[name]
        if name in self.functions:
            return _UserFn(self.functions[name])
        if name in self.externals:
            return self.externals[name]
        if name in ("min", "max"):
            return _SectionVal(name)
        consts = {
            "INT_MAX": _rt.INT_MAX,
            "UINT_MAX": _rt.UINT_MAX,
            "FLT_MAX": _rt.FLT_MAX,
            "DISTR_DEFAULT": "DISTR_DEFAULT",
            "DISTR_RING": "DISTR_RING",
            "DISTR_TORUS2D": "DISTR_TORUS2D",
        }
        if name in consts:
            return consts[name]
        if name in self._BUILTINS:
            return _BoundBuiltin(self, name)
        raise InterpUnsupported(f"unknown identifier {name!r}")

    # ------------------------------------------------------------------ calls
    def _call(self, e: A.Call, env: dict):
        if isinstance(e.func, A.Ident) and e.func.name in self._BUILTINS:
            args = [self._eval(a, env) for a in e.args]
            return self._BUILTINS[e.func.name](self, args, e)
        fv = self._eval(e.func, env)
        args = tuple(self._eval(a, env) for a in e.args)
        return self.apply(fv, args)

    # ------------------------------------------------------------------ skeletons
    def _elem_dtype(self, call: A.Call) -> np.dtype:
        """numpy dtype of the array a skeleton call creates."""
        t = self.checked.resolved(call.ty)
        if isinstance(t, TPardata) and t.name == "array" and t.args:
            el = t.args[0]
            if isinstance(el, TPrim):
                return _rt.dtype_of(el.name)
        raise InterpUnsupported(f"cannot derive element dtype from {t!r}")

    def _bi_array_create(self, args, call):
        dim, size, _blocksize, _lowerbd, init_f, _distr = args
        shape = tuple(int(s) for s in (size if isinstance(size, tuple) else (size,)))
        if len(shape) != int(dim):
            raise InterpUnsupported("array_create: size/dim mismatch")
        data = np.zeros(shape, dtype=self._elem_dtype(call))
        for ix in np.ndindex(*shape):
            data[ix] = self.apply(init_f, (ix,))
        return InterpArray(data)

    def _bi_array_destroy(self, args, call):
        args[0].alive = False
        return None

    def _bi_array_map(self, args, call):
        f, src, dst = args
        self._check_alive(src, dst)
        out = np.empty_like(dst.data)
        for ix in np.ndindex(*src.data.shape):
            out[ix] = self.apply(f, (src.data[ix].item(), ix))
        dst.data[...] = out
        return None

    def _bi_array_zip(self, args, call):
        f, a, b, dst = args
        self._check_alive(a, b, dst)
        out = np.empty_like(dst.data)
        for ix in np.ndindex(*a.data.shape):
            out[ix] = self.apply(f, (a.data[ix].item(), b.data[ix].item(), ix))
        dst.data[...] = out
        return None

    def _bi_array_fold(self, args, call):
        conv_f, fold_f, a = args
        self._check_alive(a)
        acc = None
        for ix in np.ndindex(*a.data.shape):
            v = self.apply(conv_f, (a.data[ix].item(), ix))
            acc = v if acc is None else self.apply(fold_f, (acc, v))
        return acc

    def _bi_array_scan(self, args, call):
        op, a, dst = args
        self._check_alive(a, dst)
        out = np.empty_like(dst.data)
        acc = None
        for i in range(a.data.shape[0]):
            v = a.data[i].item()
            acc = v if acc is None else self.apply(op, (acc, v))
            out[i] = acc
        dst.data[...] = out
        return None

    def _bi_array_copy(self, args, call):
        src, dst = args
        self._check_alive(src, dst)
        dst.data[...] = src.data
        return None

    def _bi_array_get_elem(self, args, call):
        a, ix = args
        self._check_alive(a)
        return a.data[tuple(int(i) for i in ix)].item()

    def _bi_array_put_elem(self, args, call):
        a, ix, value = args
        self._check_alive(a)
        a.data[tuple(int(i) for i in ix)] = value
        return None

    @staticmethod
    def _check_alive(*arrays) -> None:
        for a in arrays:
            if not isinstance(a, InterpArray):
                raise InterpUnsupported("skeleton argument is not an array")
            if not a.alive:
                raise InterpUnsupported("use of a destroyed array")

    def _bi_log2(self, args, call):
        return _rt.log2(args[0])

    def _bi_sqrt(self, args, call):
        return _rt.sqrt(args[0])

    def _bi_abs(self, args, call):
        return abs(args[0])

    def _bi_min(self, args, call):
        x, y = args
        return x if x <= y else y

    def _bi_max(self, args, call):
        x, y = args
        return x if x >= y else y

    def _bi_error(self, args, call):
        _rt.error(args[0])

    def _bi_printf(self, args, call):
        return None

    _BUILTINS = {
        "array_create": _bi_array_create,
        "array_destroy": _bi_array_destroy,
        "array_map": _bi_array_map,
        "array_zip": _bi_array_zip,
        "array_fold": _bi_array_fold,
        "array_scan": _bi_array_scan,
        "array_copy": _bi_array_copy,
        "array_get_elem": _bi_array_get_elem,
        "array_put_elem": _bi_array_put_elem,
        "log2": _bi_log2,
        "sqrt": _bi_sqrt,
        "abs": _bi_abs,
        "min": _bi_min,
        "max": _bi_max,
        "error": _bi_error,
        "printf": _bi_printf,
    }


class _BoundBuiltin:
    """A builtin used as a value (e.g. handed to a HOF)."""

    __slots__ = ("interp", "name")

    def __init__(self, interp: Interp, name: str):
        self.interp = interp
        self.name = name

    def __call__(self, *args):
        return Interp._BUILTINS[self.name](self.interp, list(args), None)

"""Closed-form vs round-batched vs scalar charging (the ``scale`` pillar).

PR 8's closed-form collective tier promises that
:meth:`~repro.machine.network.Network.broadcast` /
:meth:`~repro.machine.network.Network.reduce` /
:meth:`~repro.machine.network.Network.allreduce` /
:meth:`~repro.machine.network.Network.barrier` /
:meth:`~repro.machine.network.Network.gather` /
:meth:`~repro.machine.network.Network.scatter` /
:meth:`~repro.machine.network.Network.allgather` /
:meth:`~repro.machine.network.Network.alltoall` charge **bitwise
identically** to (a) the historical round-batched loops (binomial edge
tuples fed through ``p2p_batch``) and (b) the fully scalar per-message
loops, and that the closed-form topology hop arithmetic
(:meth:`~repro.machine.topology.VirtualTopology.hops_vec`) equals the
dense ``hop_matrix()`` entry for entry.  Every trial drives identical
machines through two or three of those charging tiers across random
p (up to 1024), roots, byte sizes, sync flags and topologies, then
compares clocks, stats, records, timelines and metrics with the same
bitwise comparator the ``batch`` pillar uses.
"""

from __future__ import annotations

import random
import time
import traceback

import numpy as np

from repro.check.netbatch import (
    _compare_machines,
    _perturb,
    _ref_broadcast,
    _ref_reduce,
    _ref_shift,
)
from repro.check.report import CheckResult, Failure
from repro.machine.machine import (
    DISTR_DEFAULT,
    DISTR_RING,
    DISTR_TORUS2D,
    Machine,
)
from repro.machine.topology import (
    DENSE_HOPS_MAX_P,
    BinomialTree,
    DefaultMapping,
    Mesh2D,
    Ring,
    Torus2D,
)
from repro.obs.metrics import isolated_metrics

__all__ = ["run_scale", "run_scale_raw"]

_WAVE_MIN = 4  # the historical round-batch scalar-fallback threshold


# ---------------------------------------------------------------------------
# reference charging: the historical round-batched collective loops
# ---------------------------------------------------------------------------
def _round_batch(net, rnd, nbytes, topo, sync, tag) -> None:
    if len(rnd) < _WAVE_MIN:
        for s, d in rnd:
            net.p2p(s, d, nbytes, topo, sync=sync, tag=tag)
        return
    k = len(rnd)
    srcs = np.fromiter((s for s, _ in rnd), dtype=np.int64, count=k)
    dsts = np.fromiter((d for _, d in rnd), dtype=np.int64, count=k)
    net.p2p_batch(srcs, dsts, nbytes, topo, sync=sync, tag=tag)


def _ref_round_broadcast(net, root, nbytes, topo, sync, tag) -> None:
    if net.p == 1:
        return
    for rnd in BinomialTree(topo.mesh, root=root).broadcast_rounds():
        _round_batch(net, rnd, nbytes, topo, sync, tag)


def _ref_round_reduce(net, root, nbytes, topo, comb, sync, tag) -> None:
    if net.p == 1:
        return
    for rnd in BinomialTree(topo.mesh, root=root).reduce_rounds():
        _round_batch(net, rnd, nbytes, topo, sync, tag)
        if comb:
            if net.timeline is not None or len(rnd) < _WAVE_MIN:
                for _, d in rnd:
                    net.compute_at(d, comb)
            else:
                dsts = np.fromiter(
                    (d for _, d in rnd), dtype=np.int64, count=len(rnd)
                )
                net.clocks[dsts] += comb
                cps = net.stats.compute_seconds
                for _ in rnd:
                    cps += comb
                net.stats.compute_seconds = cps


def _ref_gather(net, root, nbytes_per_rank, topo, tag) -> None:
    for r in range(net.p):
        if r == root:
            continue
        nb = (
            int(nbytes_per_rank)
            if np.isscalar(nbytes_per_rank)
            else int(nbytes_per_rank[r])
        )
        net.p2p(r, root, nb, topo, tag=tag)


def _ref_scatter(net, root, nbytes_per_rank, topo, tag) -> None:
    for r in range(net.p):
        if r == root:
            continue
        nb = (
            int(nbytes_per_rank)
            if np.isscalar(nbytes_per_rank)
            else int(nbytes_per_rank[r])
        )
        net.p2p(root, r, nb, topo, tag=tag)


# ---------------------------------------------------------------------------
# trial machinery
# ---------------------------------------------------------------------------
def _machines(rng: random.Random, n: int, big: bool) -> tuple[list[Machine], str, int]:
    """*n* identical machines; larger p than the batch pillar explores."""
    if big:
        p = rng.choice([100, 256, 512, 1024])
        trace_level = 0
    else:
        p = rng.choice([2, 3, 5, 8, 16, 31, 64])
        trace_level = rng.choice([0, 0, 2])
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING, DISTR_TORUS2D])
    kwargs = dict(
        trace_level=trace_level,
        trace_mode="record",
        keep_message_records=trace_level == 0 and bool(rng.getrandbits(1)),
        use_virtual_topologies=bool(rng.getrandbits(1)),
    )
    return [Machine(p, **kwargs) for _ in range(n)], distr, p


def trial_tree_scale(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """broadcast/reduce/allreduce/barrier: closed form vs round-batched
    vs fully scalar, all three bitwise."""
    big = rng.random() < 0.4
    (m_scalar, m_round, m_new), distr, p = _machines(rng, 3, big)
    topos = [m.topology(distr) for m in (m_scalar, m_round, m_new)]
    _perturb(rng, m_scalar, m_round, m_new)
    kind = rng.choice(["bcast", "reduce", "allreduce", "barrier"])
    root = rng.randrange(p)
    nb = rng.randint(1, 65536)
    comb = rng.choice([0.0, 1e-6])
    sync = rng.random() < 0.3
    if kind == "bcast":
        _ref_broadcast(m_scalar.network, root, nb, topos[0], sync, "bcast")
        _ref_round_broadcast(m_round.network, root, nb, topos[1], sync, "bcast")
        m_new.network.broadcast(root, nb, topos[2], sync=sync, tag="bcast")
    elif kind == "reduce":
        _ref_reduce(m_scalar.network, root, nb, topos[0], comb, sync, "reduce")
        _ref_round_reduce(m_round.network, root, nb, topos[1], comb, sync, "reduce")
        m_new.network.reduce(
            root, nb, topos[2], combine_seconds=comb, sync=sync, tag="reduce"
        )
    elif kind == "allreduce":
        _ref_reduce(m_scalar.network, root, nb, topos[0], comb, sync, "fold-up")
        _ref_broadcast(m_scalar.network, root, nb, topos[0], sync, "fold-down")
        _ref_round_reduce(m_round.network, root, nb, topos[1], comb, sync, "fold-up")
        _ref_round_broadcast(m_round.network, root, nb, topos[1], sync, "fold-down")
        m_new.network.allreduce(
            nb, topos[2], combine_seconds=comb, root=root, sync=sync
        )
    else:
        if p > 1:
            _ref_reduce(m_scalar.network, 0, 1, topos[0], 0.0, False, "fold-up")
            _ref_broadcast(m_scalar.network, 0, 1, topos[0], False, "fold-down")
            m_scalar.network.clocks[:] = m_scalar.network.clocks.max()
            _ref_round_reduce(m_round.network, 0, 1, topos[1], 0.0, False, "fold-up")
            _ref_round_broadcast(m_round.network, 0, 1, topos[1], False, "fold-down")
            m_round.network.clocks[:] = m_round.network.clocks.max()
        m_new.network.barrier(topos[2])
    label = f"{kind} p={p} distr={distr} root={root} sync={sync}"
    msg = _compare_machines(m_scalar, m_new, f"scalar-vs-closed {label}")
    if msg is None:
        msg = _compare_machines(m_round, m_new, f"round-vs-closed {label}")
    return msg, {f"scale.{kind}": 1, f"scale.{'big' if big else 'small'}": 1}


def trial_fan_scale(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """gather/scatter: closed form vs the historical scalar p2p loops."""
    big = rng.random() < 0.4
    (m_ref, m_new), distr, p = _machines(rng, 2, big)
    topo_ref = m_ref.topology(distr)
    topo_new = m_new.topology(distr)
    _perturb(rng, m_ref, m_new)
    kind = rng.choice(["gather", "scatter"])
    root = rng.randrange(p)
    if rng.random() < 0.5:
        nbytes = rng.randint(0, 65536)
    else:
        nbytes = [rng.randint(0, 8192) for _ in range(p)]
    if kind == "gather":
        _ref_gather(m_ref.network, root, nbytes, topo_ref, "gather")
        m_new.network.gather(root, nbytes, topo_new, tag="gather")
    else:
        _ref_scatter(m_ref.network, root, nbytes, topo_ref, "scatter")
        m_new.network.scatter(root, nbytes, topo_new, tag="scatter")
    label = f"{kind} p={p} distr={distr} root={root}"
    return _compare_machines(m_ref, m_new, label), {f"scale.{kind}": 1}


def trial_ring_scale(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """allgather/alltoall round generation vs the historical pair lists."""
    (m_ref, m_new), distr, p = _machines(rng, 2, big=False)
    topo_ref = m_ref.topology(distr)
    topo_new = m_new.topology(distr)
    _perturb(rng, m_ref, m_new)
    kind = rng.choice(["allgather", "alltoall"])
    nb = rng.randint(1, 8192)
    sync = rng.random() < 0.3
    if kind == "allgather":
        if p > 1:
            ring = topo_ref if isinstance(topo_ref, Ring) else Ring(topo_ref.mesh)
            pairs = [(i, ring.succ(i)) for i in range(p)]
            for _ in range(p - 1):
                _ref_shift(m_ref.network, pairs, nb, ring, sync, "allgather")
        m_new.network.allgather(nb, topo_new, sync=sync, tag="allgather")
    else:
        if p > 1:
            for k in range(1, p):
                if p & (p - 1) == 0:
                    pairs = [(r, r ^ k) for r in range(p)]
                else:
                    pairs = [(r, (r + k) % p) for r in range(p)]
                _ref_shift(m_ref.network, pairs, nb, topo_ref, sync, "alltoall")
        m_new.network.alltoall(nb, topo_new, sync=sync, tag="alltoall")
    label = f"{kind} p={p} distr={distr} sync={sync}"
    return _compare_machines(m_ref, m_new, label), {f"scale.{kind}": 1}


def trial_hops_scale(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """hops_vec == hop_matrix entry for entry, for every embedding."""
    p = rng.choice([1, 2, 5, 8, 16, 31, 64, 100, 256])
    mesh = Mesh2D.for_processors(p)
    builders = [
        lambda: DefaultMapping(mesh),
        lambda: Ring(mesh),
        lambda: Torus2D(mesh, folded=True),
        lambda: Torus2D(mesh, folded=False),
        lambda: BinomialTree(mesh, root=rng.randrange(p)),
    ]
    topo = rng.choice(builders)()
    assert p <= DENSE_HOPS_MAX_P
    hm = topo.hop_matrix()
    s, d = np.meshgrid(np.arange(p), np.arange(p), indexing="ij")
    if not np.array_equal(topo.hops_vec(s, d), hm):
        return f"hops_vec != hop_matrix (p={p}, {type(topo).__name__})", {}
    for _ in range(8):
        src, dst = rng.randrange(p), rng.randrange(p)
        if topo.edge_hops(src, dst) != int(hm[src, dst]):
            return (
                f"edge_hops({src},{dst}) != matrix (p={p}, "
                f"{type(topo).__name__})"
            ), {}
    return None, {"scale.hops": 1}


_TRIALS = [trial_tree_scale, trial_fan_scale, trial_ring_scale,
           trial_hops_scale]


def _run_trial(trial_seed: int, res: CheckResult, verbose: bool = False) -> None:
    rng = random.Random(trial_seed)
    fn = _TRIALS[trial_seed % len(_TRIALS)]
    res.trials += 1
    try:
        with isolated_metrics():
            msg, cov = fn(rng)
    except Exception:
        msg, cov = traceback.format_exc(limit=8), {}
    for k, v in cov.items():
        res.coverage[k] = res.coverage.get(k, 0) + v
    if msg is not None:
        res.failures.append(
            Failure(
                pillar="scale",
                seed=trial_seed,
                title=fn.__name__,
                detail=msg,
                replay=(
                    f"PYTHONPATH=src python -m repro.check scale "
                    f"--seed {trial_seed} --budget 1 --raw-seed"
                ),
            )
        )
        if verbose:
            print(f"scale seed {trial_seed}: FAIL")


def run_scale(
    seed: int = 0,
    budget: int = 200,
    time_budget: float | None = None,
    verbose: bool = False,
) -> CheckResult:
    """Run *budget* closed-form-vs-reference trials (4 families)."""
    res = CheckResult("scale")
    t0 = time.monotonic()
    for i in range(budget):
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            break
        _run_trial(seed * 1_000_003 + i, res, verbose=verbose)
    return res


def run_scale_raw(seed: int, budget: int = 1) -> CheckResult:
    """Replay exact per-trial seeds printed by a failure report."""
    res = CheckResult("scale")
    for k in range(budget):
        _run_trial(seed + k, res)
    return res

"""Sequential reference oracle for every public skeleton.

Each distributed skeleton in :mod:`repro.skeletons` is checked against
a straightforward sequential implementation on one global numpy array,
across randomized shapes, element types, processor counts,
distributions (block and cyclic where the skeleton's contract allows
cyclic) and virtual topologies (``DISTR_DEFAULT`` / ``DISTR_RING`` /
``DISTR_TORUS2D``, plus the folded-vs-naive torus embedding toggle).

The block-only skeletons (``array_scan``, ``array_broadcast_part``,
``array_permute_rows``, ``array_gen_mult``, ``array_map_overlap``)
are additionally probed with cyclic inputs to assert they *reject* them
(a :class:`~repro.errors.SkeletonError`) instead of silently computing
garbage — the latent-bug class this oracle originally surfaced.
"""

from __future__ import annotations

import random
import time
import traceback

import numpy as np

from repro.arrays.darray import DistArray
from repro.arrays.distribution import CyclicDistribution
from repro.check.report import CheckResult, Failure
from repro.obs.metrics import isolated_metrics
from repro.errors import SkeletonError
from repro.machine.machine import (
    DISTR_DEFAULT,
    DISTR_RING,
    DISTR_TORUS2D,
    Machine,
)
from repro.skeletons import (
    MAX,
    MIN,
    PLUS,
    TIMES,
    SkilContext,
    divide_and_conquer,
    farm,
)
from repro.skeletons.comm import array_rotate_rows
from repro.skeletons.extensions import array_map_overlap

__all__ = ["run_oracle", "ORACLE_TRIALS"]

_TOPOS = [DISTR_DEFAULT, DISTR_RING, DISTR_TORUS2D]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _ctx(p: int, rng: random.Random) -> SkilContext:
    machine = Machine(p, use_virtual_topologies=bool(rng.getrandbits(1)))
    return SkilContext(machine)


def _topo(rng: random.Random) -> str:
    return rng.choice(_TOPOS)


def _block(ctx: SkilContext, data: np.ndarray, distr: str) -> DistArray:
    return DistArray.from_global(ctx.machine, data, distr)


def _cyclic(ctx: SkilContext, data: np.ndarray, distr: str) -> DistArray:
    grid = (ctx.p,) + (1,) * (data.ndim - 1)
    dist = CyclicDistribution(data.shape, grid)
    arr = DistArray(ctx.machine, dist, data.dtype, distr)
    arr.fill_from_global(data)
    return arr


def _randint(rng: random.Random, shape) -> np.ndarray:
    return np.array(
        [rng.randint(-50, 50) for _ in range(int(np.prod(shape)))],
        dtype=np.int64,
    ).reshape(shape)


def _mismatch(name: str, expected: np.ndarray, actual: np.ndarray) -> str | None:
    if expected.shape != actual.shape:
        return f"{name}: shape {actual.shape}, expected {expected.shape}"
    if not np.array_equal(expected, actual):
        bad = np.argwhere(expected != actual)[:3]
        return (
            f"{name}: values differ at {bad.tolist()} "
            f"(expected {expected[tuple(bad[0])]}, got {actual[tuple(bad[0])]})"
        )
    return None


def _shape_for(rng: random.Random, p: int, dim: int) -> tuple[int, ...]:
    if dim == 1:
        return (rng.randint(max(6, p), 24),)
    return (rng.randint(max(3, p), 9), rng.randint(3, 9))


# ---------------------------------------------------------------------------
# per-skeleton trials — each returns None (pass) or a message (fail)
# ---------------------------------------------------------------------------
def trial_array_create(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 3, 4])
    ctx = _ctx(p, rng)
    dim = rng.choice([1, 2])
    shape = _shape_for(rng, p, dim)
    distr = _topo(rng) if dim == 2 else rng.choice([DISTR_DEFAULT, DISTR_RING])
    a_coef = rng.randint(1, 5)

    def init_f(ix):
        return a_coef * ix[0] + (ix[1] if len(ix) > 1 else 0) - 7

    arr = ctx.array_create(dim, shape, (0,) * dim, (-1,) * dim, init_f, distr,
                           dtype=np.int64)
    expected = np.zeros(shape, dtype=np.int64)
    for ix in np.ndindex(*shape):
        expected[ix] = init_f(ix)
    out = _mismatch(f"array_create[{distr}]", expected, arr.global_view())
    arr.destroy()
    if arr.alive:
        return "array_destroy left the array alive"
    if out is not None:
        return out
    # the fusion pass's uninitialised variant: same shape and layout,
    # zero skeleton rounds charged; values defined after a full overwrite
    rounds_before = ctx.machine.stats.skeleton_calls
    uninit = ctx.array_create_uninit(
        dim, shape, (0,) * dim, (-1,) * dim, distr, dtype=np.int64
    )
    if ctx.machine.stats.skeleton_calls != rounds_before:
        return "array_create_uninit charged a skeleton round"
    if uninit.global_view().shape != shape:
        return (
            f"array_create_uninit[{distr}]: shape "
            f"{uninit.global_view().shape}, expected {shape}"
        )
    src = ctx.array_create(dim, shape, (0,) * dim, (-1,) * dim, init_f,
                           distr, dtype=np.int64)
    ctx.array_copy(src, uninit)
    return _mismatch(
        f"array_create_uninit[{distr}]", expected, uninit.global_view()
    )


def trial_array_map(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 3, 4])
    ctx = _ctx(p, rng)
    dim = rng.choice([1, 2])
    shape = _shape_for(rng, p, dim)
    distr = _topo(rng) if dim == 2 else rng.choice([DISTR_DEFAULT, DISTR_RING])
    layout = rng.choice(["block", "cyclic"])
    data = _randint(rng, shape)
    make = _block if layout == "block" else _cyclic
    src = make(ctx, data, distr)
    in_situ = rng.random() < 0.4
    dst = src if in_situ else make(ctx, np.zeros(shape, dtype=np.int64), distr)
    k = rng.randint(1, 7)

    def f(v, ix):
        return k * v + ix[0]

    ctx.array_map(f, src, dst)
    expected = np.empty(shape, dtype=np.int64)
    for ix in np.ndindex(*shape):
        expected[ix] = k * data[ix] + ix[0]
    return _mismatch(f"array_map[{layout},{distr}]", expected, dst.global_view())


def trial_array_zip(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 4])
    ctx = _ctx(p, rng)
    shape = _shape_for(rng, p, rng.choice([1, 2]))
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING])
    layout = rng.choice(["block", "cyclic"])
    make = _block if layout == "block" else _cyclic
    da, db = _randint(rng, shape), _randint(rng, shape)
    a, b = make(ctx, da, distr), make(ctx, db, distr)
    dst = a if rng.random() < 0.3 else make(ctx, np.zeros(shape, np.int64), distr)

    def f(x, y, ix):
        return x * 2 - y + ix[-1]

    ctx.array_zip(f, a, b, dst)
    expected = np.empty(shape, dtype=np.int64)
    for ix in np.ndindex(*shape):
        expected[ix] = da[ix] * 2 - db[ix] + ix[-1]
    return _mismatch(f"array_zip[{layout},{distr}]", expected, dst.global_view())


def trial_array_fold(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 3, 4])
    ctx = _ctx(p, rng)
    shape = _shape_for(rng, p, rng.choice([1, 2]))
    distr = _topo(rng) if len(shape) == 2 else rng.choice([DISTR_DEFAULT, DISTR_RING])
    layout = rng.choice(["block", "cyclic"])
    make = _block if layout == "block" else _cyclic
    data = _randint(rng, shape)
    arr = make(ctx, data, distr)
    comb_name, comb, ref = rng.choice(
        [("+", PLUS, np.sum), ("min", MIN, np.min), ("max", MAX, np.max)]
    )
    off = rng.randint(0, 9)

    def conv(v, ix):
        return v + off

    got = ctx.array_fold(conv, comb, arr)
    expected = int(ref(data + off))
    if int(got) != expected:
        return (
            f"array_fold[{layout},{distr},{comb_name}]: got {got}, "
            f"expected {expected}"
        )
    return None


def trial_array_scan(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 3, 4])
    ctx = _ctx(p, rng)
    n = rng.randint(max(6, p), 24)
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING])
    data = _randint(rng, (n,))
    src = _block(ctx, data, distr)
    dst = _block(ctx, np.zeros(n, np.int64), distr)
    comb_name, comb, acc = rng.choice(
        [("+", PLUS, np.cumsum), ("min", MIN, np.minimum.accumulate),
         ("max", MAX, np.maximum.accumulate)]
    )
    ctx.array_scan(comb, src, dst)
    out = _mismatch(f"array_scan[{comb_name},{distr}]", acc(data), dst.global_view())
    if out is not None:
        return out
    # the cyclic layout breaks the rank-order offset logic: must reject
    if p > 1:
        csrc = _cyclic(ctx, data, distr)
        cdst = _cyclic(ctx, np.zeros(n, np.int64), distr)
        try:
            ctx.array_scan(comb, csrc, cdst)
        except SkeletonError:
            return None
        return "array_scan accepted a cyclic distribution (silently wrong offsets)"
    return None


def trial_array_copy(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 4])
    ctx = _ctx(p, rng)
    shape = _shape_for(rng, p, rng.choice([1, 2]))
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING])
    layout = rng.choice(["block", "cyclic"])
    make = _block if layout == "block" else _cyclic
    data = _randint(rng, shape)
    src = make(ctx, data, distr)
    dst = make(ctx, np.zeros(shape, np.int64), distr)
    ctx.array_copy(src, dst)
    return _mismatch(f"array_copy[{layout},{distr}]", data, dst.global_view())


def trial_array_broadcast_part(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 4])
    ctx = _ctx(p, rng)
    rows = p * rng.randint(1, 4)
    cols = rng.randint(3, 8)
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING])
    data = _randint(rng, (rows, cols))
    arr = _block(ctx, data, distr)
    pick = (rng.randrange(rows), rng.randrange(cols))
    owner = arr.owner(pick)
    ob = arr.part_bounds(owner)
    ctx.array_broadcast_part(arr, pick)
    expected = np.empty_like(data)
    block = data[ob.lower[0] : ob.upper[0], ob.lower[1] : ob.upper[1]]
    for r in range(p):
        b = arr.part_bounds(r)
        expected[b.lower[0] : b.upper[0], b.lower[1] : b.upper[1]] = block
    out = _mismatch(f"array_broadcast_part[{distr}]", expected, arr.global_view())
    if out is not None:
        return out
    if p > 1:
        carr = _cyclic(ctx, data, distr)
        try:
            ctx.array_broadcast_part(carr, pick)
        except SkeletonError:
            return None
        return "array_broadcast_part accepted a cyclic distribution"
    return None


def trial_array_permute_rows(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 3])
    ctx = _ctx(p, rng)
    rows = rng.randint(max(3, p), 9)
    cols = rng.randint(3, 7)
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING])
    data = _randint(rng, (rows, cols))
    src = _block(ctx, data, distr)
    dst = _block(ctx, np.zeros((rows, cols), np.int64), distr)
    perm = list(range(rows))
    rng.shuffle(perm)
    ctx.array_permute_rows(src, lambda i: perm[i], dst)
    expected = np.empty_like(data)
    for i in range(rows):
        expected[perm[i], :] = data[i, :]
    out = _mismatch(f"array_permute_rows[{distr}]", expected, dst.global_view())
    if out is not None:
        return out
    # rotate_rows is a wrapper over the same machinery
    shift = rng.randint(-rows, rows)
    dst2 = _block(ctx, np.zeros((rows, cols), np.int64), distr)
    array_rotate_rows(ctx, src, shift, dst2)
    expected2 = np.roll(data, shift, axis=0)
    out = _mismatch(f"array_rotate_rows[{distr}]", expected2, dst2.global_view())
    if out is not None:
        return out
    if p > 1:
        csrc = _cyclic(ctx, data, distr)
        cdst = _cyclic(ctx, np.zeros((rows, cols), np.int64), distr)
        try:
            ctx.array_permute_rows(csrc, lambda i: perm[i], cdst)
        except SkeletonError:
            return None
        return "array_permute_rows accepted a cyclic distribution"
    return None


def trial_array_gen_mult(rng: random.Random) -> str | None:
    p = rng.choice([1, 4])
    ctx = _ctx(p, rng)
    g = int(round(p ** 0.5))
    n = g * rng.randint(2, 4)
    da = _randint(rng, (n, n)) % 10
    db = _randint(rng, (n, n)) % 10
    semiring = rng.random() < 0.5
    if semiring:
        dc = np.full((n, n), 10**6, dtype=np.int64)
        add, mul = MIN, PLUS
        expected = dc.copy()
        for i in range(n):
            for j in range(n):
                expected[i, j] = min(
                    int(dc[i, j]),
                    int(np.min(da[i, :] + db[:, j])),
                )
    else:
        dc = _randint(rng, (n, n))
        add, mul = PLUS, TIMES
        expected = dc + da @ db
    a = _block(ctx, da, DISTR_TORUS2D)
    b = _block(ctx, db, DISTR_TORUS2D)
    c = _block(ctx, dc, DISTR_TORUS2D)
    ctx.array_gen_mult(a, b, add, mul, c)
    tag = "min-plus" if semiring else "plus-times"
    out = _mismatch(f"array_gen_mult[{tag},p={p}]", expected, c.global_view())
    if out is not None:
        return out
    # arguments must be observably unchanged (unskew contract)
    out = _mismatch("array_gen_mult: a changed", da, a.global_view())
    if out is not None:
        return out
    return _mismatch("array_gen_mult: b changed", db, b.global_view())


def trial_array_gen_mult_square(rng: random.Random) -> str | None:
    """The fusion target for ``copy(a, b); gen_mult(a, b, ...)``.

    Checked two ways: against the sequential reference, and against the
    two-skeleton idiom it replaces (bit-equal, strictly fewer rounds).
    """
    p = rng.choice([1, 4])
    ctx = _ctx(p, rng)
    g = int(round(p ** 0.5))
    n = g * rng.randint(2, 4)
    da = _randint(rng, (n, n)) % 10
    semiring = rng.random() < 0.5
    if semiring:
        dc = np.full((n, n), 10**6, dtype=np.int64)
        add, mul = MIN, PLUS
        expected = dc.copy()
        for i in range(n):
            for j in range(n):
                expected[i, j] = min(
                    int(dc[i, j]),
                    int(np.min(da[i, :] + da[:, j])),
                )
    else:
        dc = _randint(rng, (n, n))
        add, mul = PLUS, TIMES
        expected = dc + da @ da
    tag = "min-plus" if semiring else "plus-times"

    a = _block(ctx, da, DISTR_TORUS2D)
    c = _block(ctx, dc, DISTR_TORUS2D)
    rounds0 = ctx.machine.stats.skeleton_calls
    ctx.array_gen_mult_square(a, add, mul, c)
    rounds_square = ctx.machine.stats.skeleton_calls - rounds0
    out = _mismatch(f"array_gen_mult_square[{tag},p={p}]", expected,
                    c.global_view())
    if out is not None:
        return out
    out = _mismatch("array_gen_mult_square: a changed", da, a.global_view())
    if out is not None:
        return out

    # the unfused pair must agree and cost strictly more rounds
    ctx2 = _ctx(p, rng)
    a2 = _block(ctx2, da, DISTR_TORUS2D)
    b2 = _block(ctx2, np.zeros((n, n), np.int64), DISTR_TORUS2D)
    c2 = _block(ctx2, dc, DISTR_TORUS2D)
    rounds0 = ctx2.machine.stats.skeleton_calls
    ctx2.array_copy(a2, b2)
    ctx2.array_gen_mult(a2, b2, add, mul, c2)
    rounds_pair = ctx2.machine.stats.skeleton_calls - rounds0
    out = _mismatch(f"array_gen_mult_square vs copy+gen_mult[{tag}]",
                    c2.global_view(), c.global_view())
    if out is not None:
        return out
    if not rounds_square < rounds_pair:
        return (
            f"array_gen_mult_square[{tag},p={p}]: expected fewer rounds "
            f"than copy+gen_mult, got {rounds_square} vs {rounds_pair}"
        )
    return None


def trial_array_map_overlap(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 3])
    ctx = _ctx(p, rng)
    dim = rng.choice([1, 2])
    shape = _shape_for(rng, p, dim)
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING])
    data = _randint(rng, shape)
    src = _block(ctx, data, distr)
    dst = _block(ctx, np.zeros(shape, np.int64), distr)

    if dim == 1:
        def stencil(get, ix):
            return get(-1) + get(0) + get(1)
    else:
        def stencil(get, ix):
            return get(-1, 0) + get(0, 0) + get(1, 0) + get(0, -1) + get(0, 1)

    array_map_overlap(ctx, stencil, src, dst, overlap=1)
    expected = np.empty(shape, dtype=np.int64)
    for ix in np.ndindex(*shape):
        offs = ([(-1,), (0,), (1,)] if dim == 1
                else [(-1, 0), (0, 0), (1, 0), (0, -1), (0, 1)])
        total = 0
        for off in offs:
            tgt = tuple(
                min(max(i + o, 0), s - 1) for i, o, s in zip(ix, off, shape)
            )
            total += data[tgt]
        expected[ix] = total
    return _mismatch(f"array_map_overlap[{dim}d,{distr}]", expected,
                     dst.global_view())


def trial_divide_and_conquer(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 4])
    ctx = _ctx(p, rng)
    xs = [rng.randint(-1000, 1000) for _ in range(rng.randint(1, 40))]

    def merge(a, b):
        out, i, j = [], 0, 0
        while i < len(a) and j < len(b):
            if a[i] <= b[j]:
                out.append(a[i]); i += 1
            else:
                out.append(b[j]); j += 1
        return out + a[i:] + b[j:]

    got = divide_and_conquer(
        ctx,
        is_trivial=lambda v: len(v) <= 1,
        solve=lambda v: list(v),
        split=lambda v: [v[: len(v) // 2], v[len(v) // 2 :]],
        join=lambda parts: merge(parts[0], parts[1]),
        problem=xs,
    )
    if got != sorted(xs):
        return f"divide_and_conquer[p={p}]: {got} != {sorted(xs)}"
    return None


def trial_farm(rng: random.Random) -> str | None:
    p = rng.choice([1, 2, 4, 5])
    ctx = _ctx(p, rng)
    tasks = [
        [rng.randint(0, 100) for _ in range(rng.randint(1, 8))]
        for _ in range(rng.randint(0, 12))
    ]

    def worker(t):
        return sum(t) * 2 + len(t)

    got = farm(ctx, worker, tasks)
    expected = [worker(t) for t in tasks]
    if got != expected:
        return f"farm[p={p}]: {got} != {expected}"
    return None


#: name -> trial function; one round-robin pass covers every skeleton
ORACLE_TRIALS = {
    "array_create": trial_array_create,
    "array_map": trial_array_map,
    "array_zip": trial_array_zip,
    "array_fold": trial_array_fold,
    "array_scan": trial_array_scan,
    "array_copy": trial_array_copy,
    "array_broadcast_part": trial_array_broadcast_part,
    "array_permute_rows": trial_array_permute_rows,
    "array_gen_mult": trial_array_gen_mult,
    "array_gen_mult_square": trial_array_gen_mult_square,
    "array_map_overlap": trial_array_map_overlap,
    "divide_and_conquer": trial_divide_and_conquer,
    "farm": trial_farm,
}


def run_oracle(
    seed: int = 0,
    budget: int = 60,
    time_budget: float | None = None,
    verbose: bool = False,
) -> CheckResult:
    """Round-robin the skeleton trials for *budget* iterations."""
    res = CheckResult("oracle")
    names = list(ORACLE_TRIALS)
    t0 = time.monotonic()
    for i in range(budget):
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            break
        name = names[i % len(names)]
        trial_seed = seed * 1_000_003 + i
        rng = random.Random(trial_seed)
        res.trials += 1
        res.coverage[name] = res.coverage.get(name, 0) + 1
        try:
            with isolated_metrics():
                msg = ORACLE_TRIALS[name](rng)
        except Exception:
            msg = traceback.format_exc(limit=8)
        if msg is not None:
            res.failures.append(
                Failure(
                    pillar="oracle",
                    seed=trial_seed,
                    title=f"skeleton oracle: {name}",
                    detail=msg,
                    replay=(
                        f"PYTHONPATH=src python -m repro.check oracle "
                        f"--seed {trial_seed} --budget 1 --raw-seed"
                    ),
                )
            )
            if verbose:
                print(f"oracle {name} seed {trial_seed}: FAIL")
    return res


def run_oracle_raw(seed: int, budget: int = 1) -> CheckResult:
    """Replay exact (seed, trial-index) pairs from a failure report.

    The trial name is recovered from the seed's position in the round
    robin, so ``--seed N --budget 1 --raw-seed`` replays trial N alone.
    """
    res = CheckResult("oracle")
    names = list(ORACLE_TRIALS)
    for k in range(budget):
        trial_seed = seed + k
        i = trial_seed % 1_000_003
        name = names[i % len(names)]
        rng = random.Random(trial_seed)
        res.trials += 1
        res.coverage[name] = res.coverage.get(name, 0) + 1
        try:
            with isolated_metrics():
                msg = ORACLE_TRIALS[name](rng)
        except Exception:
            msg = traceback.format_exc(limit=8)
        if msg is not None:
            res.failures.append(
                Failure(
                    pillar="oracle",
                    seed=trial_seed,
                    title=f"skeleton oracle: {name}",
                    detail=msg,
                )
            )
    return res

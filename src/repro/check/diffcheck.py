"""Network ↔ Engine differential checker plus obs-consistency probes.

The analytic :class:`~repro.machine.network.Network` advances a vector
of per-rank clocks with closed-form arithmetic; the event-driven
:class:`~repro.machine.engine.Engine` simulates the same semantics one
message at a time.  This module generates random communication patterns
(p2p, shifts, binomial trees, gathers, all-to-all), runs each through
both layers, and asserts that

* the **makespan** agrees (to floating-point noise),
* every **per-rank clock** agrees (patterns without a trailing barrier),
* the message **count and byte totals** agree exactly.

The engine side is produced by *projecting* the global op sequence onto
each rank: the network only ever touches the clocks of the two
endpoints of a transfer, so per-rank program order fully determines the
result.  Two network idioms are deliberately excluded: synchronous
shifts (a rank that both sends and receives pays its two transfers
serially — a modelling shortcut with no message-level counterpart) and
mid-pattern barriers (``clocks[:] = max`` has no per-rank engine
equivalent; a barrier may only end a pattern, after which only the
makespan is compared).

The obs-consistency probe runs a traced skeleton workload and checks
the PR-1 observability invariants: spans close and nest inside their
parents, root spans account for all bytes, timeline intervals stay
within the makespan, metrics totals match the trace statistics, and a
``trace_level=0`` re-run of the same seed produces a **bit-identical**
makespan (tracing must never perturb the simulation).
"""

from __future__ import annotations

import math
import random
import time
import traceback
from typing import Generator

import numpy as np

from repro.check.report import CheckResult, Failure
from repro.obs.metrics import isolated_metrics
from repro.machine.engine import Compute, Engine, ISend, Recv, Send
from repro.machine.machine import (
    DISTR_DEFAULT,
    DISTR_RING,
    DISTR_TORUS2D,
    Machine,
)
from repro.machine.topology import BinomialTree, Ring
from repro.skeletons import PLUS, SkilContext

__all__ = ["run_diff", "generate_pattern", "expand_primitives"]


# ---------------------------------------------------------------------------
# pattern generation
# ---------------------------------------------------------------------------
def generate_pattern(rng: random.Random, p: int, ring: bool) -> list[tuple]:
    """A random list of high-level collective ops, all engine-mirrorable."""
    ops: list[tuple] = []
    kinds = ["compute", "p2p", "bcast", "reduce", "allreduce", "gather",
             "scatter", "alltoall"]
    if p > 1:
        kinds.append("shift")
    if ring and p > 1:
        kinds.append("allgather")
    for _ in range(rng.randint(3, 10)):
        kind = rng.choice(kinds)
        nb = rng.randint(1, 4096)
        sync = rng.random() < 0.4
        if kind == "compute":
            ops.append(("compute", tuple(rng.uniform(0.0, 5e-6) for _ in range(p))))
        elif kind == "p2p":
            if p == 1:
                continue
            src = rng.randrange(p)
            dst = rng.choice([r for r in range(p) if r != src])
            ops.append(("p2p", src, dst, nb, sync))
        elif kind == "bcast":
            ops.append(("bcast", rng.randrange(p), nb, sync))
        elif kind == "reduce":
            ops.append(("reduce", rng.randrange(p), nb,
                        rng.choice([0.0, 1e-6]), sync))
        elif kind == "allreduce":
            ops.append(("allreduce", nb, rng.choice([0.0, 1e-6]), sync))
        elif kind in ("gather", "scatter"):
            ops.append((kind, rng.randrange(p), nb))
        elif kind == "shift":
            k = rng.randint(1, p - 1)
            ops.append(("shift", k, nb))
        elif kind == "allgather":
            ops.append(("allgather", nb))
        elif kind == "alltoall":
            ops.append(("alltoall", nb))
    if p > 1 and rng.random() < 0.3:
        ops.append(("barrier",))
    return ops


# ---------------------------------------------------------------------------
# network side: drive the public collective API
# ---------------------------------------------------------------------------
def apply_network(net, topo, ops) -> None:
    for i, op in enumerate(ops):
        tag = f"op{i}"
        kind = op[0]
        if kind == "compute":
            net.compute(np.asarray(op[1]))
        elif kind == "p2p":
            _, src, dst, nb, sync = op
            net.p2p(src, dst, nb, topo, sync=sync, tag=tag)
        elif kind == "bcast":
            _, root, nb, sync = op
            net.broadcast(root, nb, topo, sync=sync, tag=tag)
        elif kind == "reduce":
            _, root, nb, comb, sync = op
            net.reduce(root, nb, topo, combine_seconds=comb, sync=sync, tag=tag)
        elif kind == "allreduce":
            _, nb, comb, sync = op
            net.allreduce(nb, topo, combine_seconds=comb, sync=sync)
        elif kind == "gather":
            net.gather(op[1], op[2], topo, tag=tag)
        elif kind == "scatter":
            net.scatter(op[1], op[2], topo, tag=tag)
        elif kind == "shift":
            _, k, nb = op
            pairs = [(r, (r + k) % net.p) for r in range(net.p)]
            net.shift(pairs, nb, topo, sync=False, tag=tag)
        elif kind == "allgather":
            net.allgather(op[1], topo, sync=False, tag=tag)
        elif kind == "alltoall":
            net.alltoall(op[1], topo, sync=False, tag=tag)
        elif kind == "barrier":
            net.barrier(topo)
        else:  # pragma: no cover
            raise AssertionError(f"unknown op {op!r}")


# ---------------------------------------------------------------------------
# engine side: expand to primitives, project per rank
# ---------------------------------------------------------------------------
def expand_primitives(ops, topo, p: int) -> list[tuple]:
    """Flatten the ops into per-endpoint primitives in global order.

    Primitive forms: ``("comp", rank, seconds)``, ``("isend"|"send",
    src, dst, nbytes, tag)``, ``("recv", dst, src, tag)``.  The order of
    each rank's primitives is the projection of this global order, which
    reproduces the network's clock arithmetic exactly (see module doc).
    """
    prims: list[tuple] = []

    def p2p(src, dst, nb, sync, tag):
        prims.append(("send" if sync else "isend", src, dst, nb, tag))
        prims.append(("recv", dst, src, tag))

    def tree_bcast(root, nb, sync, tag):
        for rnd in BinomialTree(topo.mesh, root=root).broadcast_rounds():
            for s, d in rnd:
                p2p(s, d, nb, sync, tag)

    def tree_reduce(root, nb, comb, sync, tag):
        for rnd in BinomialTree(topo.mesh, root=root).reduce_rounds():
            for s, d in rnd:
                p2p(s, d, nb, sync, tag)
                if comb:
                    prims.append(("comp", d, comb))

    def async_shift(pairs, nb, tag):
        # all departs are computed from the pre-shift clocks, so every
        # rank posts its ISend before any of its receives
        for s, d in pairs:
            prims.append(("isend", s, d, nb, tag))
        for s, d in pairs:
            prims.append(("recv", d, s, tag))

    for i, op in enumerate(ops):
        tag = f"op{i}"
        kind = op[0]
        if kind == "compute":
            for r, sec in enumerate(op[1]):
                prims.append(("comp", r, sec))
        elif kind == "p2p":
            _, src, dst, nb, sync = op
            p2p(src, dst, nb, sync, tag)
        elif kind == "bcast":
            _, root, nb, sync = op
            tree_bcast(root, nb, sync, tag)
        elif kind == "reduce":
            _, root, nb, comb, sync = op
            tree_reduce(root, nb, comb, sync, tag)
        elif kind == "allreduce":
            _, nb, comb, sync = op
            tree_reduce(0, nb, comb, sync, tag + "-up")
            tree_bcast(0, nb, sync, tag + "-down")
        elif kind == "gather":
            _, root, nb = op
            for r in range(p):
                if r != root:
                    p2p(r, root, nb, False, tag)
        elif kind == "scatter":
            _, root, nb = op
            for r in range(p):
                if r != root:
                    p2p(root, r, nb, False, tag)
        elif kind == "shift":
            _, k, nb = op
            async_shift([(r, (r + k) % p) for r in range(p)], nb, tag)
        elif kind == "allgather":
            ring = topo if isinstance(topo, Ring) else Ring(topo.mesh)
            pairs = [(r, ring.succ(r)) for r in range(p)]
            for rnd in range(p - 1):
                async_shift(pairs, op[1], f"{tag}r{rnd}")
        elif kind == "alltoall":
            pow2 = p & (p - 1) == 0
            for k in range(1, p):
                pairs = (
                    [(r, r ^ k) for r in range(p)]
                    if pow2
                    else [(r, (r + k) % p) for r in range(p)]
                )
                async_shift(pairs, op[1], f"{tag}r{k}")
        elif kind == "barrier":
            tree_reduce(0, 1, 0.0, False, tag + "-up")
            tree_bcast(0, 1, False, tag + "-down")
    return prims


def _rank_program(prims: list[tuple], rank: int) -> Generator:
    for pr in prims:
        kind = pr[0]
        if kind == "comp" and pr[1] == rank:
            yield Compute(pr[2])
        elif kind == "isend" and pr[1] == rank:
            yield ISend(pr[2], None, pr[3], pr[4])
        elif kind == "send" and pr[1] == rank:
            yield Send(pr[2], None, pr[3], pr[4])
        elif kind == "recv" and pr[1] == rank:
            yield Recv(pr[2], pr[3])


# ---------------------------------------------------------------------------
# trials
# ---------------------------------------------------------------------------
def trial_pattern(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    p = rng.choice([1, 2, 3, 4, 5, 8])
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING, DISTR_TORUS2D])
    machine = Machine(p, use_virtual_topologies=bool(rng.getrandbits(1)))
    topo = machine.topology(distr)
    ops = generate_pattern(rng, p, ring=isinstance(topo, Ring))
    cov = {f"diff.{op[0]}": 1 for op in ops}

    net = machine.network
    apply_network(net, topo, ops)

    prims = expand_primitives(ops, topo, p)
    eng = Engine(machine.cost, topo)
    for r in range(p):
        eng.spawn(r, _rank_program(prims, r))
    makespan = eng.run()

    label = f"p={p} distr={distr} ops={[o[0] for o in ops]}"
    if not math.isclose(makespan, net.time, rel_tol=1e-9, abs_tol=1e-12):
        return (
            f"makespan mismatch ({label}): network={net.time!r} "
            f"engine={makespan!r}",
            cov,
        )
    if not ops or ops[-1][0] != "barrier":
        for r in range(p):
            ec = eng._procs[r].clock
            if not math.isclose(ec, float(net.clocks[r]), rel_tol=1e-9,
                                abs_tol=1e-12):
                return (
                    f"rank {r} clock mismatch ({label}): "
                    f"network={float(net.clocks[r])!r} engine={ec!r}",
                    cov,
                )
    if eng.stats.messages != net.stats.messages:
        return (
            f"message count mismatch ({label}): network={net.stats.messages} "
            f"engine={eng.stats.messages}",
            cov,
        )
    if eng.stats.bytes_sent != net.stats.bytes_sent:
        return (
            f"byte count mismatch ({label}): network={net.stats.bytes_sent} "
            f"engine={eng.stats.bytes_sent}",
            cov,
        )
    return None, cov


def _obs_workload(seed: int, trace_level: int) -> tuple[float, Machine]:
    rng = random.Random(seed)
    p = rng.choice([2, 3, 4])
    n = p * rng.randint(2, 5)  # broadcast_part needs equal partitions
    machine = Machine(p, trace_level=trace_level)
    ctx = SkilContext(machine)
    a = ctx.array_create(1, (n,), (0,), (-1,), lambda ix: ix[0] + 1,
                         DISTR_RING, dtype=np.int64)
    b = ctx.array_create(1, (n,), (0,), (-1,), lambda ix: 0,
                         DISTR_RING, dtype=np.int64)
    ctx.array_map(lambda v, ix: v * 3, a, b)
    ctx.array_fold(lambda v, ix: v, PLUS, b)
    ctx.array_scan(PLUS, a, b)
    ctx.array_broadcast_part(a, (rng.randrange(n),))
    return float(machine.network.time), machine


def trial_obs(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    seed = rng.randrange(2**31)
    cov = {"diff.obs": 1}
    traced_time, m = _obs_workload(seed, trace_level=2)
    eps = 1e-12 + 1e-9 * traced_time

    tracer, stats = m.tracer, m.stats
    if tracer.open_depth != 0:
        return f"{tracer.open_depth} span(s) left open", cov
    spans = tracer.closed_spans()
    if not spans:
        return "traced workload produced no spans", cov
    for s in spans:
        if s.end_time < s.begin_time:
            return f"span {s.name} ends before it begins", cov
        if s.parent is not None:
            par = tracer.spans[s.parent]
            if s.begin_time < par.begin_time - eps or s.end_time > par.end_time + eps:
                return (
                    f"span {s.name} [{s.begin_time}, {s.end_time}] escapes "
                    f"parent {par.name} [{par.begin_time}, {par.end_time}]",
                    cov,
                )
    root_bytes = sum(s.bytes_sent for s in tracer.roots())
    if root_bytes != stats.bytes_sent:
        return (
            f"root spans account for {root_bytes} bytes, "
            f"stats recorded {stats.bytes_sent}",
            cov,
        )
    for r in m.timeline.ranks():
        for iv in m.timeline.for_rank(r):
            if iv.start < -eps or iv.end > traced_time + eps or iv.end < iv.start:
                return (
                    f"timeline interval {iv.kind} [{iv.start}, {iv.end}] on "
                    f"rank {r} outside makespan {traced_time}",
                    cov,
                )
    h = m.metrics.histogram("net.message_bytes")
    if h.count != stats.messages or int(h.total) != stats.bytes_sent:
        return (
            f"metrics histogram ({h.count} msgs, {h.total} bytes) != "
            f"stats ({stats.messages} msgs, {stats.bytes_sent} bytes)",
            cov,
        )
    untraced_time, _ = _obs_workload(seed, trace_level=0)
    if untraced_time != traced_time:
        return (
            f"tracing perturbed the simulation: traced makespan "
            f"{traced_time!r} != untraced {untraced_time!r}",
            cov,
        )
    return None, cov


def run_diff(
    seed: int = 0,
    budget: int = 60,
    time_budget: float | None = None,
    verbose: bool = False,
) -> CheckResult:
    """Run *budget* differential trials (every 4th is an obs probe)."""
    res = CheckResult("diff")
    t0 = time.monotonic()
    for i in range(budget):
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            break
        trial_seed = seed * 1_000_003 + i
        rng = random.Random(trial_seed)
        obs = i % 4 == 3
        res.trials += 1
        try:
            with isolated_metrics():
                msg, cov = (trial_obs if obs else trial_pattern)(rng)
        except Exception:
            msg, cov = traceback.format_exc(limit=8), {}
        for k, v in cov.items():
            res.coverage[k] = res.coverage.get(k, 0) + v
        if msg is not None:
            res.failures.append(
                Failure(
                    pillar="diff",
                    seed=trial_seed,
                    title=("obs consistency" if obs else "Network vs Engine"),
                    detail=msg,
                    replay=(
                        f"PYTHONPATH=src python -m repro.check diff "
                        f"--seed {trial_seed} --budget 1 --raw-seed"
                    ),
                )
            )
            if verbose:
                print(f"diff seed {trial_seed}: FAIL")
    return res


def run_diff_raw(seed: int, budget: int = 1) -> CheckResult:
    """Replay exact trial seeds (obs-vs-pattern recovered from the index)."""
    res = CheckResult("diff")
    for k in range(budget):
        trial_seed = seed + k
        i = trial_seed % 1_000_003
        obs = i % 4 == 3
        rng = random.Random(trial_seed)
        res.trials += 1
        try:
            with isolated_metrics():
                msg, cov = (trial_obs if obs else trial_pattern)(rng)
        except Exception:
            msg, cov = traceback.format_exc(limit=8), {}
        for key, v in cov.items():
            res.coverage[key] = res.coverage.get(key, 0) + v
        if msg is not None:
            res.failures.append(
                Failure(
                    pillar="diff",
                    seed=trial_seed,
                    title=("obs consistency" if obs else "Network vs Engine"),
                    detail=msg,
                )
            )
    return res

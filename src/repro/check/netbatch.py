"""Batch-vs-scalar Network charging checker (the ``batch`` pillar).

:meth:`~repro.machine.network.Network.p2p_batch` and the batched
collective rounds promise **bit-identity** with charging each message
through the scalar :meth:`~repro.machine.network.Network.p2p` in the
same order; :meth:`~repro.machine.network.Network.shift_batch` promises
the same against the historical per-pair shift loop.  This module
property-tests those promises: every trial builds two identical
machines, drives one through the batched entry point and the other
through a *reference* charging sequence encoded here (the pre-batch
scalar loops, verbatim), then compares

* every **per-rank clock** with ``==`` (bitwise, no tolerance),
* the stats counters (messages, bytes, hops) exactly and the stats
  floats (comm/idle/compute seconds) bitwise,
* the individual :class:`~repro.machine.trace.MessageRecord` lists,
* the per-rank timelines and the message metrics histograms.

A second trial family runs a random communication-skeleton workload
(``array_broadcast_part``, ``array_permute_rows``, ``array_rotate_rows``,
``array_scan``, ``array_gen_mult``) once with the fused data-movement
paths enabled and once per-rank, and requires bit-identical array
contents, clocks, stats and spans.
"""

from __future__ import annotations

import random
import time
import traceback

import numpy as np

from repro.check.report import CheckResult, Failure
from repro.machine.machine import (
    DISTR_DEFAULT,
    DISTR_RING,
    DISTR_TORUS2D,
    Machine,
)
from repro.machine.topology import BinomialTree
from repro.obs.metrics import isolated_metrics
from repro.skeletons import MIN, PLUS, SkilContext

__all__ = ["run_batch", "run_batch_raw"]


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------
def _stats_tuple(stats):
    return (
        stats.messages,
        stats.bytes_sent,
        stats.hops_crossed,
        stats.comm_seconds,
        stats.idle_seconds,
        stats.compute_seconds,
    )


def _compare_machines(m_ref: Machine, m_new: Machine, label: str) -> str | None:
    """Bitwise comparison of everything the charging touches."""
    if not np.array_equal(m_ref.network.clocks, m_new.network.clocks):
        i = int(np.argmax(m_ref.network.clocks != m_new.network.clocks))
        return (
            f"clock mismatch ({label}): rank {i} "
            f"scalar={float(m_ref.network.clocks[i])!r} "
            f"batch={float(m_new.network.clocks[i])!r}"
        )
    if _stats_tuple(m_ref.stats) != _stats_tuple(m_new.stats):
        return (
            f"stats mismatch ({label}): scalar={_stats_tuple(m_ref.stats)} "
            f"batch={_stats_tuple(m_new.stats)}"
        )
    if m_ref.stats.records != m_new.stats.records:
        return f"message-record mismatch ({label})"
    if m_ref.timeline is not None:
        for r in range(m_ref.p):
            ref_iv = m_ref.timeline.for_rank(r)
            new_iv = m_new.timeline.for_rank(r)
            if ref_iv != new_iv:
                return (
                    f"timeline mismatch ({label}): rank {r} has "
                    f"{len(ref_iv)} scalar vs {len(new_iv)} batch interval(s)"
                )
    if m_ref.metrics is not None:
        for name in ("net.message_bytes", "net.message_hops"):
            ha = m_ref.metrics.histogram(name)
            hb = m_new.metrics.histogram(name)
            if (ha.count, ha.total) != (hb.count, hb.total):
                return (
                    f"metrics mismatch ({label}): {name} "
                    f"scalar=({ha.count}, {ha.total}) "
                    f"batch=({hb.count}, {hb.total})"
                )
    return None


def _machine_pair(rng: random.Random) -> tuple[Machine, Machine, str, int]:
    p = rng.choice([2, 3, 4, 5, 8, 16])
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING, DISTR_TORUS2D])
    trace_level = rng.choice([0, 0, 2])
    kwargs = dict(
        trace_level=trace_level,
        keep_message_records=trace_level == 0 and bool(rng.getrandbits(1)),
        use_virtual_topologies=bool(rng.getrandbits(1)),
        link_contention=rng.random() < 0.3,
    )
    return Machine(p, **kwargs), Machine(p, **kwargs), distr, p


def _perturb(rng: random.Random, *machines: Machine) -> None:
    """Start from unequal clocks so ordering effects are visible."""
    sec = [rng.uniform(0.0, 2e-5) for _ in range(machines[0].p)]
    for m in machines:
        m.network.compute(np.asarray(sec))


# ---------------------------------------------------------------------------
# reference charging: the pre-batch scalar loops, encoded verbatim
# ---------------------------------------------------------------------------
def _ref_shift(net, pairs, nbytes, topo, sync, tag) -> None:
    """The historical per-pair shift loop (reference semantics)."""
    srcs = [s for s, _ in pairs]

    def nb(s: int) -> int:
        if np.isscalar(nbytes):
            return int(nbytes)
        return int(nbytes[s])

    old = net.clocks.copy()
    if sync:
        for s, d in pairs:
            start = max(old[s], old[d]) + net.cost.t_setup
            hops = topo.edge_hops(s, d)
            wire = net.cost.message_time(nb(s), hops)
            finish = start + wire
            net.clocks[s] = max(net.clocks[s], finish)
            net.clocks[d] = max(net.clocks[d], finish) + (
                wire if d in srcs else 0.0
            )
            net.stats.record_message(finish, s, d, nb(s), hops, tag, depart=start)
            net.stats.comm_seconds += wire + net.cost.t_setup
            net.stats.idle_seconds += max(0.0, start - net.cost.t_setup - old[d])
            if net.metrics is not None:
                net._observe_message(nb(s), hops, tag)
            if net.timeline is not None:
                net.timeline.add(s, "send", float(old[s]), finish, tag)
                net.timeline.add(d, "recv", float(old[d]), finish, tag)
        return
    depart = {s: old[s] + net.cost.t_setup for s, _ in pairs}
    new = net.clocks.copy()
    for s, _ in pairs:
        new[s] = max(new[s], depart[s])
    slowdown = _ref_contention(net, pairs, nb, topo)
    for s, d in pairs:
        hops = topo.edge_hops(s, d)
        wire = net.cost.message_time(nb(s), hops) * slowdown.get((s, d), 1.0)
        arrival = depart[s] + wire
        net.stats.idle_seconds += max(0.0, arrival - old[d])
        new[d] = max(new[d], arrival)
        net.stats.record_message(arrival, s, d, nb(s), hops, tag, depart=depart[s])
        net.stats.comm_seconds += wire + net.cost.t_setup
        if net.metrics is not None:
            net._observe_message(nb(s), hops, tag)
        if net.timeline is not None:
            net.timeline.add(s, "send", float(old[s]), depart[s], tag)
            if arrival - wire > old[d]:
                net.timeline.add(d, "idle", float(old[d]), arrival - wire, tag)
            net.timeline.add(
                d, "recv", max(float(old[d]), arrival - wire), arrival, tag
            )
    net.clocks = new


def _ref_contention(net, pairs, nb, topo) -> dict:
    """Historical dict-based contention factors (max of per-link ratios)."""
    if not net.link_contention:
        return {}
    link_load: dict[tuple[int, int], int] = {}
    routes: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for s, d in pairs:
        route = topo.mesh.route_links(topo.place(s), topo.place(d))
        routes[(s, d)] = route
        for link in route:
            link_load[link] = link_load.get(link, 0) + nb(s)
    factors: dict[tuple[int, int], float] = {}
    for s, d in pairs:
        own = max(1, nb(s))
        worst = max(
            (link_load[link] / own for link in routes[(s, d)]), default=1.0
        )
        factors[(s, d)] = max(1.0, worst)
    return factors


def _ref_broadcast(net, root, nbytes, topo, sync, tag) -> None:
    if net.p == 1:
        return
    for rnd in BinomialTree(topo.mesh, root=root).broadcast_rounds():
        for s, d in rnd:
            net.p2p(s, d, nbytes, topo, sync=sync, tag=tag)


def _ref_reduce(net, root, nbytes, topo, comb, sync, tag) -> None:
    if net.p == 1:
        return
    for rnd in BinomialTree(topo.mesh, root=root).reduce_rounds():
        for s, d in rnd:
            net.p2p(s, d, nbytes, topo, sync=sync, tag=tag)
            if comb:
                net.compute_at(d, comb)


# ---------------------------------------------------------------------------
# trials
# ---------------------------------------------------------------------------
def trial_p2p_batch(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """Random message list (repeats, locals, zero bytes) through both paths."""
    m_ref, m_new, distr, p = _machine_pair(rng)
    topo_ref = m_ref.topology(distr)
    topo_new = m_new.topology(distr)
    _perturb(rng, m_ref, m_new)
    k = rng.randint(1, 40)
    srcs, dsts, nbs = [], [], []
    while len(srcs) < k:
        if rng.random() < 0.3:
            # fan-out run: one source, several consecutive destinations
            # (the row-permutation pattern the _p2p_run fast path takes;
            # repeats/locals keep some runs on the fallback paths)
            s = rng.randrange(p)
            run = rng.randint(2, min(8, max(2, p)))
            cand = [rng.randrange(p) for _ in range(run)]
            for d in cand[: k - len(srcs)]:
                srcs.append(s)
                dsts.append(d)
                nbs.append(rng.choice([0, 1, rng.randint(1, 8192)]))
            continue
        s = rng.randrange(p)
        d = s if rng.random() < 0.15 else rng.randrange(p)
        srcs.append(s)
        dsts.append(d)
        nbs.append(rng.choice([0, 1, rng.randint(1, 8192)]))
    sync = rng.random() < 0.4
    scalar_nb = rng.random() < 0.3
    nbytes = nbs[0] if scalar_nb else np.asarray(nbs, dtype=np.int64)
    if scalar_nb:
        nbs = [nbs[0]] * k
    for s, d, nb in zip(srcs, dsts, nbs):
        m_ref.network.p2p(s, d, nb, topo_ref, sync=sync, tag="batch-check")
    m_new.network.p2p_batch(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        nbytes,
        topo_new,
        sync=sync,
        tag="batch-check",
    )
    label = f"p2p p={p} distr={distr} k={k} sync={sync}"
    return _compare_machines(m_ref, m_new, label), {"batch.p2p": 1}


def trial_shift_batch(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """Random disjoint shift through shift() vs the historical loop."""
    m_ref, m_new, distr, p = _machine_pair(rng)
    topo_ref = m_ref.topology(distr)
    topo_new = m_new.topology(distr)
    _perturb(rng, m_ref, m_new)
    ranks = list(range(p))
    rng.shuffle(ranks)
    n_pairs = rng.randint(1, p)
    perm = ranks[:n_pairs]
    pairs = list(zip(perm, perm[1:] + perm[:1]))
    sync = rng.random() < 0.4
    if np.isscalar(nb_all := rng.choice([128, None])) and nb_all is not None:
        nbytes = int(nb_all)
    else:
        nbytes = {s: rng.randint(1, 4096) for s, _ in pairs}
    _ref_shift(m_ref.network, pairs, nbytes, topo_ref, sync, "shift-check")
    m_new.network.shift(pairs, nbytes, topo_new, sync=sync, tag="shift-check")
    label = f"shift p={p} distr={distr} pairs={len(pairs)} sync={sync}"
    return _compare_machines(m_ref, m_new, label), {"batch.shift": 1}


def trial_collective_batch(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """Tree collectives vs the per-edge scalar reference loops."""
    m_ref, m_new, distr, p = _machine_pair(rng)
    topo_ref = m_ref.topology(distr)
    topo_new = m_new.topology(distr)
    _perturb(rng, m_ref, m_new)
    kind = rng.choice(["bcast", "reduce", "allreduce"])
    root = rng.randrange(p)
    nb = rng.randint(1, 8192)
    comb = rng.choice([0.0, 1e-6])
    sync = rng.random() < 0.4
    if kind == "bcast":
        _ref_broadcast(m_ref.network, root, nb, topo_ref, sync, "bcast")
        m_new.network.broadcast(root, nb, topo_new, sync=sync, tag="bcast")
    elif kind == "reduce":
        _ref_reduce(m_ref.network, root, nb, topo_ref, comb, sync, "reduce")
        m_new.network.reduce(
            root, nb, topo_new, combine_seconds=comb, sync=sync, tag="reduce"
        )
    else:
        _ref_reduce(m_ref.network, root, nb, topo_ref, comb, sync, "fold-up")
        _ref_broadcast(m_ref.network, root, nb, topo_ref, sync, "fold-down")
        m_new.network.allreduce(
            nb, topo_new, combine_seconds=comb, root=root, sync=sync
        )
    label = f"{kind} p={p} distr={distr} root={root} sync={sync}"
    return _compare_machines(m_ref, m_new, label), {f"batch.{kind}": 1}


def trial_fused_comm(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """A comm-skeleton workload, fused vs per-rank, compared bitwise."""
    p = rng.choice([2, 4, 8, 16])
    n = p * rng.randint(1, 4) * 2
    seed = rng.randrange(2**31)
    square = int(round(p**0.5)) ** 2 == p
    kinds = ["bcast", "permute", "rotate", "scan"] + (
        ["genmult"] if square else []
    )
    steps = [rng.choice(kinds) for _ in range(rng.randint(1, 3))]
    cov = {f"batch.fused_{s}": 1 for s in steps}

    def build(fused: bool):
        from repro.arrays.darray import DistArray
        from repro.machine.machine import DISTR_TORUS2D
        from repro.skeletons.comm import array_rotate_rows

        machine = Machine(p, trace_level=2)
        ctx = SkilContext(machine, fused=fused)
        data_rng = np.random.default_rng(seed)
        a = DistArray.from_global(machine, data_rng.uniform(-8.0, 8.0, (n, n)))
        b = DistArray.from_global(machine, np.zeros((n, n)))
        v = DistArray.from_global(machine, data_rng.uniform(0.0, 4.0, (n * n,)))
        w = DistArray.from_global(machine, np.zeros(n * n))
        if "genmult" in steps:
            ga = DistArray.from_global(
                machine, data_rng.uniform(0.0, 8.0, (n, n)), DISTR_TORUS2D
            )
            gb = DistArray.from_global(
                machine, data_rng.uniform(0.0, 8.0, (n, n)), DISTR_TORUS2D
            )
            gc = DistArray.from_global(
                machine, np.zeros((n, n)), DISTR_TORUS2D
            )
        for step in steps:
            if step == "bcast":
                ctx.array_broadcast_part(a, (seed % n, (seed // n) % n))
            elif step == "permute":
                half = n // 2

                def swap_halves(i):
                    return (i + half) % n

                swap_halves.ops = 1.0
                swap_halves.perm_vectorized = lambda ix: (ix + half) % n
                ctx.array_permute_rows(a, swap_halves, b)
            elif step == "rotate":
                array_rotate_rows(ctx, a, 1 + seed % (n - 1), b)
            elif step == "scan":
                ctx.array_scan(PLUS, v, w)
            elif step == "genmult":
                ctx.array_gen_mult(ga, gb, MIN, PLUS, gc)
        out = [a.global_view(), b.global_view(), w.global_view()]
        if "genmult" in steps:
            out.append(gc.global_view())
        return machine, out

    with isolated_metrics():
        m_f, out_f = build(True)
    with isolated_metrics():
        m_u, out_u = build(False)
    label = f"p={p} n={n} steps={steps}"
    for x, y in zip(out_f, out_u):
        if not np.array_equal(x, y):
            return f"fused contents mismatch ({label})", cov
    msg = _compare_machines(m_u, m_f, f"fused {label}")
    if msg is not None:
        return msg, cov
    spans_f = [(s.name, s.begin_time, s.end_time, s.bytes_sent)
               for s in m_f.tracer.spans]
    spans_u = [(s.name, s.begin_time, s.end_time, s.bytes_sent)
               for s in m_u.tracer.spans]
    if spans_f != spans_u:
        return f"fused span mismatch ({label})", cov
    return None, cov


_TRIALS = [trial_p2p_batch, trial_shift_batch, trial_collective_batch,
           trial_fused_comm]


def _run_trial(trial_seed: int, res: CheckResult, verbose: bool = False) -> None:
    rng = random.Random(trial_seed)
    fn = _TRIALS[trial_seed % len(_TRIALS)]
    res.trials += 1
    try:
        with isolated_metrics():
            msg, cov = fn(rng)
    except Exception:
        msg, cov = traceback.format_exc(limit=8), {}
    for k, v in cov.items():
        res.coverage[k] = res.coverage.get(k, 0) + v
    if msg is not None:
        res.failures.append(
            Failure(
                pillar="batch",
                seed=trial_seed,
                title=fn.__name__,
                detail=msg,
                replay=(
                    f"PYTHONPATH=src python -m repro.check batch "
                    f"--seed {trial_seed} --budget 1 --raw-seed"
                ),
            )
        )
        if verbose:
            print(f"batch seed {trial_seed}: FAIL")


def run_batch(
    seed: int = 0,
    budget: int = 120,
    time_budget: float | None = None,
    verbose: bool = False,
) -> CheckResult:
    """Run *budget* batch-vs-scalar trials (4 interleaved families)."""
    res = CheckResult("batch")
    t0 = time.monotonic()
    for i in range(budget):
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            break
        _run_trial(seed * 1_000_003 + i, res, verbose=verbose)
    return res


def run_batch_raw(seed: int, budget: int = 1) -> CheckResult:
    """Replay exact per-trial seeds printed by a failure report."""
    res = CheckResult("batch")
    for k in range(budget):
        _run_trial(seed + k, res)
    return res

"""Backend-equivalence conformance (the ``backend`` pillar).

``Machine(p, backend=...)`` promises that the execution backend changes
only *wall-clock*: the analytic network is the single cost oracle, so
simulated seconds, pool contents, :class:`~repro.machine.trace.TraceStats`
and metrics must be **bitwise identical** under ``sim``, ``threads`` and
``mp``.  Every trial runs one workload once per backend on otherwise
identical machines and compares:

* every result array's ``global_view()`` with ``np.array_equal`` (no
  tolerance — the parallel per-rank dispatch performs the same numpy
  calls on the same blocks, so even float results must match bitwise),
* scalar results with ``==`` after ``repr`` round-trip guarding NaN,
* every per-rank clock bitwise,
* the stats counters exactly and the stats floats bitwise,
* the metrics registries via their rendered exposition text.

Three trial families interleave:

1. **compiled programs** — the fuzz pillar's generated Skil programs
   (``generate_spec``/``render`` → ``compile_skil``), so every kernel
   class the instantiation pipeline can emit crosses the mp
   closure-shipping path;
2. **skeleton workloads** — randomly composed create/map/zip/fold/scan/
   copy sequences over hand-built closure kernels at p ∈ {4, 16},
   including env-*reading* kernels (which must fall back to the
   sequential loop identically on every backend) and scalar-only
   kernels;
3. **applications** — Gaussian elimination and shortest paths at
   p ∈ {4, 16}.

Every trial runs each backend twice — wall profiler off and on
(``Machine(profile=...)``) — and compares all six runs against the
unprofiled ``sim`` reference: profiling reads wall clocks only and must
never perturb the cost model on any backend.

Worker processes are reused across a trial's skeleton calls but never
across backends (each machine is closed before the next one starts), so
a trial also exercises pool/shm teardown.
"""

from __future__ import annotations

import random
import time
import traceback

import numpy as np

from repro.check.report import CheckResult, Failure
from repro.machine.machine import (
    DISTR_DEFAULT,
    DISTR_RING,
    DISTR_TORUS2D,
    Machine,
)
from repro.obs.metrics import isolated_metrics
from repro.skeletons import MAX, MIN, PLUS, SkilContext
from repro.skeletons.functional import skil_fn

__all__ = ["run_backend", "run_backend_raw", "BACKENDS_CHECKED"]

#: the backends every trial compares; ``sim`` is the reference
BACKENDS_CHECKED = ("sim", "threads", "mp")


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------
def _stats_tuple(stats):
    return (
        stats.messages,
        stats.bytes_sent,
        stats.hops_crossed,
        stats.comm_seconds,
        stats.idle_seconds,
        stats.compute_seconds,
        stats.skeleton_calls,
    )


class _Run:
    """What one backend's execution of a trial produced."""

    def __init__(self, machine: Machine, arrays: list[np.ndarray], scalars: list):
        self.clocks = machine.network.clocks.copy()
        self.stats = _stats_tuple(machine.stats)
        self.metrics = (
            machine.metrics.render_text() if machine.metrics is not None else ""
        )
        self.arrays = arrays
        self.scalars = scalars


def _compare_runs(ref: _Run, got: _Run, backend: str, label: str) -> str | None:
    """``sim`` reference vs another backend, bitwise."""
    if not np.array_equal(ref.clocks, got.clocks):
        i = int(np.argmax(ref.clocks != got.clocks))
        return (
            f"clock mismatch ({label}): rank {i} sim={float(ref.clocks[i])!r} "
            f"{backend}={float(got.clocks[i])!r}"
        )
    if ref.stats != got.stats:
        return (
            f"stats mismatch ({label}): sim={ref.stats} {backend}={got.stats}"
        )
    if len(ref.arrays) != len(got.arrays):
        return (
            f"result arity mismatch ({label}): sim produced "
            f"{len(ref.arrays)} arrays, {backend} {len(got.arrays)}"
        )
    for k, (ea, ga) in enumerate(zip(ref.arrays, got.arrays)):
        if not np.array_equal(ea, ga):
            bad = np.argwhere(ea != ga)[:3]
            return (
                f"array {k} contents differ ({label}) at {bad.tolist()}: "
                f"sim={ea[tuple(bad[0])]!r} {backend}={ga[tuple(bad[0])]!r}"
            )
    for k, (es, gs) in enumerate(zip(ref.scalars, got.scalars)):
        if not (es == gs or repr(es) == repr(gs)):  # NaN-safe
            return (
                f"scalar {k} differs ({label}): sim={es!r} {backend}={gs!r}"
            )
    if ref.metrics != got.metrics:
        return f"metrics exposition mismatch ({label})"
    return None


def _run_everywhere(workload, p: int, label: str) -> str | None:
    """Run *workload(ctx)* per backend x {profiler off, on}; compare all
    six runs bitwise to the unprofiled ``sim`` reference.

    *workload* returns ``(arrays, scalars)`` — DistArrays still alive
    (their ``global_view`` is compared) and scalar results.  The
    profiled variants (tagged ``<backend>+prof``) assert the wall
    profiler's own promise: attaching it must not perturb clocks, stats,
    metrics or results on any backend.
    """
    runs: dict[str, _Run] = {}
    for backend in BACKENDS_CHECKED:
        for profiled in (False, True):
            machine = Machine(
                p, trace_level=1, backend=backend, workers=2,
                profile=profiled,
            )
            try:
                with isolated_metrics():
                    arrays, scalars = workload(SkilContext(machine))
                    views = [a.global_view() for a in arrays]
                tag = f"{backend}+prof" if profiled else backend
                runs[tag] = _Run(machine, views, scalars)
            finally:
                machine.close()
    for tag, run in runs.items():
        if tag == "sim":
            continue
        msg = _compare_runs(runs["sim"], run, tag, label)
        if msg is not None:
            return msg
    return None


# ---------------------------------------------------------------------------
# trial family 1: compiled Skil programs
# ---------------------------------------------------------------------------
def trial_backend_program(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """A fuzzer-generated Skil program, compiled and run per backend."""
    from repro.check.fuzz import generate_spec, render
    from repro.lang.compiler import compile_skil

    spec_seed = rng.randrange(2**31)
    # fuzz specs deliberately use small shapes (the interpreter oracle is
    # per-element); they fit p<=4 only — the other families cover p=16
    p = rng.choice([2, 4, 4])
    spec = generate_spec(spec_seed)
    src = render(spec)
    cov = {"backend.program": 1, f"backend.p{p}": 1}

    def workload(ctx: SkilContext):
        mod = compile_skil(src)
        out = mod.run("entry", ctx=ctx)
        if hasattr(out, "global_view"):
            return [out], []
        return [], [out]

    label = f"program spec_seed={spec_seed} p={p} elem={spec.elem}"
    return _run_everywhere(workload, p, label), cov


# ---------------------------------------------------------------------------
# trial family 2: random skeleton workloads
# ---------------------------------------------------------------------------
def _random_kernels(rng: random.Random):
    """Init/map/zip kernel triple with random closure constants.

    The constants live in lambda *defaults*, so every kernel is a closure
    the mp backend must ship — the shape
    :func:`~repro.lang.runtime.make_kernel` produces.  One of four map
    kernels *reads the env* (rank-dependent): those must fall back to the
    per-rank loop identically on every backend.
    """
    c1 = float(rng.randint(1, 9))
    c2 = float(rng.randint(1, 9))

    init = skil_fn(
        ops=2, vectorized=lambda g, e, _a=c1: (g[0] * _a + g[-1]).astype(float)
    )(lambda i, _a=c1: float(i[0] * _a + i[-1]))

    style = rng.randrange(4)
    if style == 0:  # plain elementwise
        map_f = skil_fn(ops=2, vectorized=lambda b, g, e, _k=c2: b * _k + g[0])(
            lambda x, i, _k=c2: x * _k + i[0]
        )
    elif style == 1:  # nonlinear, still env-free
        map_f = skil_fn(
            ops=3,
            vectorized=lambda b, g, e, _k=c2: np.where(b > _k, b - _k, b + g[-1]),
        )(lambda x, i, _k=c2: x - _k if x > _k else x + i[-1])
    elif style == 2:  # scalar-only: no vectorized kernel at all
        map_f = skil_fn(ops=2)(lambda x, i, _k=c2: x * _k + 1.0)
    else:  # env-reading: every backend must take the sequential loop
        def _env_vec(b, g, e, _k=c2):
            return b * _k + e.rank

        map_f = skil_fn(ops=2, vectorized=_env_vec)(lambda x, i, _k=c2: x * _k)

    zip_f = skil_fn(ops=1, vectorized=lambda x, y, g, e, _k=c1: x * _k + y)(
        lambda x, y, i, _k=c1: x * _k + y
    )
    conv = skil_fn(ops=1, vectorized=lambda b, g, e, _k=c2: b + _k)(
        lambda x, i, _k=c2: x + _k
    )
    return init, map_f, zip_f, conv, style


def trial_backend_skeletons(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """A random create/map/zip/fold/scan/copy sequence per backend."""
    p = rng.choice([4, 4, 16])
    dim = rng.choice([1, 1, 2])
    if dim == 1:
        shape = (p * rng.randint(2, 5),)
        distr = rng.choice([DISTR_DEFAULT, DISTR_RING])
    else:
        # second dim a multiple of 4 so the p=16 torus grid (4x4) fits
        shape = (p * rng.randint(1, 3), 4 * rng.randint(1, 2))
        distr = rng.choice([DISTR_DEFAULT, DISTR_TORUS2D])
    init, map_f, zip_f, conv, style = _random_kernels(rng)
    ops = [rng.choice(["map", "map", "zip", "fold", "copy", "scan"])
           for _ in range(rng.randint(2, 6))]
    section = rng.choice([PLUS, MIN, MAX])
    cov = {
        "backend.skeletons": 1,
        f"backend.p{p}": 1,
        f"backend.kernel_style{style}": 1,
    }
    for op in ops:
        cov[f"backend.op_{op}"] = 1

    def workload(ctx: SkilContext):
        zeros = (0,) * dim
        negs = (-1,) * dim
        a = ctx.array_create(dim, shape, zeros, negs, init, distr)
        b = ctx.array_create(dim, shape, zeros, negs, init, distr)
        scalars = []
        for op in ops:
            if op == "map":
                ctx.array_map(map_f, a, b)
            elif op == "zip":
                ctx.array_zip(zip_f, a, b, b)
            elif op == "fold":
                scalars.append(ctx.array_fold(conv, section, a))
            elif op == "copy":
                ctx.array_copy(b, a)
            elif op == "scan" and dim == 1:
                ctx.array_scan(section, a, b)
        return [a, b], scalars

    label = f"skeletons p={p} shape={shape} distr={distr} ops={ops}"
    return _run_everywhere(workload, p, label), cov


# ---------------------------------------------------------------------------
# trial family 3: applications
# ---------------------------------------------------------------------------
def trial_backend_app(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    """Gaussian elimination / shortest paths, compared across backends."""
    app = rng.choice(["shpaths", "gauss"])
    p = rng.choice([4, 4, 16])
    seed = rng.randrange(2**31)
    cov = {f"backend.app_{app}": 1, f"backend.p{p}": 1}

    if app == "shpaths":
        n = int(round(p**0.5)) * rng.randint(1, 3)

        def workload(ctx: SkilContext):
            from repro.apps.shortest_paths import (
                random_distance_matrix,
                shpaths,
            )

            out, _report = shpaths(
                ctx, random_distance_matrix(n, density=0.3, seed=seed)
            )
            return [], [np.asarray(out).tobytes()]

    else:
        n = p * rng.randint(2, 3)

        def workload(ctx: SkilContext):
            from repro.apps.gauss import gauss_simple, random_system

            a_mat, rhs = random_system(n, seed=seed)
            out, _report = gauss_simple(ctx, a_mat, rhs)
            return [], [np.asarray(out).tobytes()]

    label = f"{app} p={p} n={n} seed={seed}"
    return _run_everywhere(workload, p, label), cov


_TRIALS = [trial_backend_skeletons, trial_backend_program, trial_backend_app]


def _run_trial(trial_seed: int, res: CheckResult, verbose: bool = False) -> None:
    rng = random.Random(trial_seed)
    fn = _TRIALS[trial_seed % len(_TRIALS)]
    res.trials += 1
    try:
        with isolated_metrics():
            msg, cov = fn(rng)
    except Exception:
        msg, cov = traceback.format_exc(limit=8), {}
    for k, v in cov.items():
        res.coverage[k] = res.coverage.get(k, 0) + v
    if msg is not None:
        res.failures.append(
            Failure(
                pillar="backend",
                seed=trial_seed,
                title=fn.__name__,
                detail=msg,
                replay=(
                    f"PYTHONPATH=src python -m repro.check backend "
                    f"--seed {trial_seed} --budget 1 --raw-seed"
                ),
            )
        )
        if verbose:
            print(f"backend seed {trial_seed}: FAIL")


def run_backend(
    seed: int = 0,
    budget: int = 30,
    time_budget: float | None = None,
    verbose: bool = False,
) -> CheckResult:
    """Run *budget* backend-equivalence trials (3 interleaved families).

    The default budget is lower than the other pillars' because every
    trial runs its workload three times and boots one worker-process
    pool; the per-trial cost is dominated by process start-up, not by
    the workload.
    """
    res = CheckResult("backend")
    t0 = time.monotonic()
    for i in range(budget):
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            break
        _run_trial(seed * 1_000_003 + i, res, verbose=verbose)
    return res


def run_backend_raw(seed: int, budget: int = 1) -> CheckResult:
    """Replay exact per-trial seeds printed by a failure report."""
    res = CheckResult("backend")
    for k in range(budget):
        _run_trial(seed + k, res)
    return res

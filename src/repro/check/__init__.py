"""Conformance and differential-testing subsystem (``python -m repro.check``).

Three pillars, each seeded and replayable:

* :mod:`repro.check.fuzz` — grammar-driven generator of well-typed Skil
  programs, round-tripped through parse → typecheck → instantiate →
  codegen → exec and compared against a direct AST interpreter
  (:mod:`repro.check.interp`), with shrinking to minimal reproducers;
* :mod:`repro.check.oracle` — sequential reference implementations of
  every public skeleton, checked against the distributed versions over
  randomized shapes, distributions, topologies and processor counts;
* :mod:`repro.check.diffcheck` — the analytic ``Network`` clocks versus
  the message-granularity ``Engine`` on random communication patterns,
  plus structural consistency of the ``repro.obs`` traces.

See ``docs/TESTING.md`` for the seed-reproduction workflow.
"""

from repro.check.backendcheck import run_backend
from repro.check.diffcheck import run_diff
from repro.check.fuzz import run_fuzz
from repro.check.interp import Interp, InterpUnsupported
from repro.check.netbatch import run_batch
from repro.check.oracle import run_oracle
from repro.check.report import CheckResult, Failure, format_failure, format_result
from repro.check.streamcheck import run_stream

__all__ = [
    "run_fuzz",
    "run_oracle",
    "run_diff",
    "run_batch",
    "run_stream",
    "run_backend",
    "Interp",
    "InterpUnsupported",
    "CheckResult",
    "Failure",
    "format_failure",
    "format_result",
]

"""DAG/critical-path invariant checker: the ``dag`` pillar.

Every traced run carries enough information to build its
happens-before DAG and extract the critical path
(:mod:`repro.obs.analysis`).  This pillar generates random traced
workloads — both raw collective patterns on the analytic network and
skeleton programs through the full language context — and asserts the
structural invariants that must hold for *any* run:

* the happens-before DAG is acyclic: every program edge moves forward
  in one rank's time, every message edge departs no later than it
  arrives;
* the critical path **tiles** ``[0, makespan]``: consecutive steps
  share their boundary bit-for-bit, the first starts at 0, the last
  ends at the makespan;
* the four-way attribution (compute / latency / bandwidth / idle)
  partitions every step and therefore sums to the makespan;
* the busy part of the path cannot exceed the makespan and the
  makespan cannot exceed the path's busy+idle total (the two-sided
  bound ``busy <= makespan <= busy + idle``);
* per-rank busy fractions stay in ``[0, 1]``.

Each trial runs under :func:`~repro.obs.metrics.isolated_metrics`, so
the process-global registry neither leaks observations into the host
(e.g. a test runner asserting on its own counters) nor between trials.
"""

from __future__ import annotations

import random
import time
import traceback

from repro.check.diffcheck import apply_network, generate_pattern, _obs_workload
from repro.check.report import CheckResult, Failure
from repro.machine.machine import DISTR_DEFAULT, DISTR_RING, DISTR_TORUS2D, Machine
from repro.obs.analysis import invariant_problems
from repro.obs.metrics import isolated_metrics

__all__ = ["run_dag", "run_dag_raw", "trial_dag"]


def _pattern_machine(rng: random.Random) -> tuple[Machine, str]:
    """A random collective pattern run on a traced machine."""
    p = rng.choice([1, 2, 3, 4, 5, 8, 9, 16])
    distr = rng.choice([DISTR_DEFAULT, DISTR_RING, DISTR_TORUS2D])
    machine = Machine(p, trace_level=2)
    topo = machine.topology(distr)
    ops = generate_pattern(rng, p, ring=True)
    apply_network(machine.network, topo, ops)
    return machine, f"pattern p={p} distr={distr} ops={[o[0] for o in ops]}"


def _skeleton_machine(rng: random.Random) -> tuple[Machine, str]:
    """A random skeleton workload on a traced machine."""
    seed = rng.randrange(2**31)
    _, machine = _obs_workload(seed, trace_level=2)
    return machine, f"skeleton workload seed={seed}"


def trial_dag(rng: random.Random) -> tuple[str | None, dict[str, int]]:
    skeleton = rng.random() < 0.5
    with isolated_metrics():
        machine, label = (
            _skeleton_machine(rng) if skeleton else _pattern_machine(rng)
        )
        problems = invariant_problems(machine)
    cov = {"dag.skeleton" if skeleton else "dag.pattern": 1}
    if problems:
        shown = "\n  ".join(problems[:8])
        return f"{len(problems)} invariant violation(s) ({label}):\n  {shown}", cov
    return None, cov


def run_dag(
    seed: int = 0,
    budget: int = 60,
    time_budget: float | None = None,
    verbose: bool = False,
) -> CheckResult:
    """Run *budget* DAG-invariant trials."""
    res = CheckResult("dag")
    t0 = time.monotonic()
    for i in range(budget):
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            break
        trial_seed = seed * 1_000_003 + i
        rng = random.Random(trial_seed)
        res.trials += 1
        try:
            msg, cov = trial_dag(rng)
        except Exception:
            msg, cov = traceback.format_exc(limit=8), {}
        for k, v in cov.items():
            res.coverage[k] = res.coverage.get(k, 0) + v
        if msg is not None:
            res.failures.append(
                Failure(
                    pillar="dag",
                    seed=trial_seed,
                    title="happens-before/critical-path invariants",
                    detail=msg,
                    replay=(
                        f"PYTHONPATH=src python -m repro.check dag "
                        f"--seed {trial_seed} --budget 1 --raw-seed"
                    ),
                )
            )
            if verbose:
                print(f"dag seed {trial_seed}: FAIL")
    return res


def run_dag_raw(seed: int, budget: int = 1) -> CheckResult:
    """Replay exact trial seeds from a failure report."""
    res = CheckResult("dag")
    for k in range(budget):
        trial_seed = seed + k
        rng = random.Random(trial_seed)
        res.trials += 1
        try:
            msg, cov = trial_dag(rng)
        except Exception:
            msg, cov = traceback.format_exc(limit=8), {}
        for key, v in cov.items():
            res.coverage[key] = res.coverage.get(key, 0) + v
        if msg is not None:
            res.failures.append(
                Failure(
                    pillar="dag",
                    seed=trial_seed,
                    title="happens-before/critical-path invariants",
                    detail=msg,
                )
            )
    return res

"""Randomized fusable program families for the ``fusion`` pillar.

Each family builds a Skil source program whose shape exercises one of
the rewrites of :mod:`repro.lang.fusion` — skeleton chains through an
intermediate array, element-wise front-end loops, the shortest-paths
squaring idiom.  Constants, sizes and chain lengths are drawn from the
trial's RNG so every trial is a different program; sizes are kept
multiples of 64 so every distribution divides evenly at p ∈ {4,16,64}.

The pillar (:mod:`repro.check.fusioncheck`) compiles each program twice
(``fusion=False`` / ``fusion=True``) and asserts, at every p:

* values are **bit-equal** (the dtype gate in the pass makes even the
  ``double`` chains exact — no tolerance needed),
* fused simulated seconds ≤ unfused,
* for the skeleton-chain families, strictly fewer skeleton rounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["FusionProgram", "FAMILIES", "FUSION_PS"]

#: processor counts every fusion trial runs at (ISSUE: p in {4, 16, 64})
FUSION_PS = (4, 16, 64)

_MOD = 9973  #: same integer bound the fuzzer uses — no int64 overflow


@dataclass
class FusionProgram:
    family: str
    source: str
    entry: str
    args: tuple
    elem: str  #: "int" | "double" | "unsigned"
    #: the chain families must lose whole rounds; discovery may add a
    #: collective round while removing per-element front-end messages
    expect_fewer_rounds: bool = True
    #: at least one rewrite must have fired (guards against the pass
    #: silently never matching anything)
    expect_rewrites: bool = True
    #: the AST interpreter supports the program (it has no gen_mult)
    interp_ok: bool = True


def _n(rng: random.Random) -> int:
    return 64 * rng.randint(1, 4)


def map_map(rng: random.Random) -> FusionProgram:
    """A cascade of k maps through fresh temps — collapses to one map."""
    depth = rng.randint(2, 4)
    elem = rng.choice(["int", "double"])
    n = _n(rng)
    lines = []
    if elem == "int":
        lines.append("int ramp (Index ix) { return ix[0] %% %d; }" % _MOD)
        for i in range(depth):
            a, b = rng.randint(1, 9), rng.randint(1, 9)
            lines.append(
                f"int f{i} (int v, Index ix) "
                f"{{ return ((v * {a} + {b}) % {_MOD}); }}"
            )
    else:
        lines.append("double ramp (Index ix) { return ix[0] * 0.5; }")
        for i in range(depth):
            a, b = rng.randint(1, 9), rng.randint(1, 9)
            lines.append(
                f"double f{i} (double v, Index ix) "
                f"{{ return (v * {a}.0 + {b}.0); }}"
            )
    names = ", ".join(["a"] + [f"t{i}" for i in range(depth - 1)] + ["b"])
    lines += [
        "",
        f"array<{elem}> entry (int n) {{",
        f"  array<{elem}> {names};",
        "  a = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
    ]
    for i in range(depth - 1):
        lines.append(
            f"  t{i} = array_create (1, {{n}}, {{0}}, {{-1}}, ramp, "
            "DISTR_DEFAULT);"
        )
    lines.append("  b = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);")
    chain = ["a"] + [f"t{i}" for i in range(depth - 1)] + ["b"]
    for i in range(depth):
        lines.append(f"  array_map (f{i}, {chain[i]}, {chain[i + 1]});")
    for i in range(depth - 1):
        lines.append(f"  array_destroy (t{i});")
    lines += ["  array_destroy (a);", "  return b;", "}"]
    return FusionProgram("map_map", "\n".join(lines) + "\n", "entry", (n,), elem)


def zip_mix(rng: random.Random) -> FusionProgram:
    """map feeding a zip operand, then the zip feeding a map."""
    elem = rng.choice(["int", "double"])
    n = _n(rng)
    a, b, c = (rng.randint(1, 9) for _ in range(3))
    slot_first = rng.random() < 0.5
    if elem == "int":
        hdr = [
            "int ramp (Index ix) { return ix[0] %% %d; }" % _MOD,
            "int r2 (Index ix) { return ((ix[0] * 3 + 1) %% %d); }" % _MOD,
            f"int m1 (int v, Index ix) {{ return ((v * {a} + 1) % {_MOD}); }}",
            f"int zk (int x, int y, Index ix) "
            f"{{ return ((x * {b} + y) % {_MOD}); }}",
            f"int m2 (int v, Index ix) {{ return ((v + {c}) % {_MOD}); }}",
        ]
    else:
        hdr = [
            "double ramp (Index ix) { return ix[0] * 0.5; }",
            "double r2 (Index ix) { return ix[0] * 0.25 + 2.0; }",
            f"double m1 (double v, Index ix) {{ return (v * {a}.0 + 1.0); }}",
            f"double zk (double x, double y, Index ix) "
            f"{{ return (x * {b}.0 + y); }}",
            f"double m2 (double v, Index ix) {{ return (v + {c}.0); }}",
        ]
    zip_args = "t, b2" if slot_first else "b2, t"
    lines = hdr + [
        "",
        f"array<{elem}> entry (int n) {{",
        f"  array<{elem}> a, b2, t, z, out;",
        "  a = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
        "  b2 = array_create (1, {n}, {0}, {-1}, r2, DISTR_DEFAULT);",
        "  t = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
        "  z = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
        "  out = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
        "  array_map (m1, a, t);",
        f"  array_zip (zk, {zip_args}, z);",
        "  array_destroy (t);",
        "  array_map (m2, z, out);",
        "  array_destroy (z);",
        "  array_destroy (a);",
        "  array_destroy (b2);",
        "  return out;",
        "}",
    ]
    return FusionProgram("zip_mix", "\n".join(lines) + "\n", "entry", (n,), elem)


def map_fold(rng: random.Random) -> FusionProgram:
    """A map whose only consumer is an ``array_fold`` conversion."""
    elem = rng.choice(["int", "double"])
    n = _n(rng)
    a, b = rng.randint(1, 9), rng.randint(1, 9)
    comb = rng.choice(["(+)", "min", "max"])
    if elem == "int":
        hdr = [
            "int ramp (Index ix) { return ((ix[0] * 7 + 3) %% %d); }" % _MOD,
            f"int mk (int v, Index ix) {{ return ((v * {a} + 1) % {_MOD}); }}",
            f"int cv (int v, Index ix) {{ return ((v + {b}) % {_MOD}); }}",
        ]
    else:
        # (+) over double reassociates across p; min/max stay bit-exact
        comb = rng.choice(["min", "max"])
        hdr = [
            "double ramp (Index ix) { return ix[0] * 0.5 + 1.0; }",
            f"double mk (double v, Index ix) {{ return (v * {a}.0 + 1.0); }}",
            f"double cv (double v, Index ix) {{ return (v + {b}.0); }}",
        ]
    lines = hdr + [
        "",
        f"{elem} entry (int n) {{",
        f"  array<{elem}> a, t;",
        f"  {elem} s;",
        "  a = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
        "  t = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
        "  array_map (mk, a, t);",
        f"  s = array_fold (cv, {comb}, t);",
        "  array_destroy (t);",
        "  array_destroy (a);",
        "  return s;",
        "}",
    ]
    return FusionProgram("map_fold", "\n".join(lines) + "\n", "entry", (n,), elem)


def create_map(rng: random.Random) -> FusionProgram:
    """An array created only to be mapped away — never allocated fused."""
    elem = rng.choice(["int", "double"])
    n = _n(rng)
    a = rng.randint(1, 9)
    if elem == "int":
        hdr = [
            "int gen (Index ix) { return ((ix[0] * 5 + 2) %% %d); }" % _MOD,
            "int zero (Index ix) { return 0; }",
            f"int mk (int v, Index ix) {{ return ((v * {a} + 1) % {_MOD}); }}",
        ]
    else:
        hdr = [
            "double gen (Index ix) { return ix[0] * 0.75 + 2.0; }",
            "double zero (Index ix) { return 0.0; }",
            f"double mk (double v, Index ix) {{ return (v * {a}.0 + 1.0); }}",
        ]
    lines = hdr + [
        "",
        f"array<{elem}> entry (int n) {{",
        f"  array<{elem}> t, out;",
        "  t = array_create (1, {n}, {0}, {-1}, gen, DISTR_DEFAULT);",
        "  out = array_create (1, {n}, {0}, {-1}, zero, DISTR_DEFAULT);",
        "  array_map (mk, t, out);",
        "  array_destroy (t);",
        "  return out;",
        "}",
    ]
    return FusionProgram(
        "create_map", "\n".join(lines) + "\n", "entry", (n,), elem
    )


def discover_map(rng: random.Random) -> FusionProgram:
    """An element-wise front-end loop the pass rewrites to map/zip."""
    elem = rng.choice(["int", "double"])
    n = _n(rng)
    a, b = rng.randint(1, 9), rng.randint(1, 9)
    two_src = rng.random() < 0.5
    if elem == "int":
        hdr = [
            "int ramp (Index ix) { return ((ix[0] * 7 + 1) %% %d); }" % _MOD,
            "int r2 (Index ix) { return ((ix[0] * 3 + 2) %% %d); }" % _MOD,
        ]
        expr = (
            f"((array_get_elem (a, {{i}}) * {a} "
            f"+ array_get_elem (b2, {{i}}) + {b}) % {_MOD})"
            if two_src
            else f"((array_get_elem (a, {{i}}) * {a} + i + {b}) % {_MOD})"
        )
    else:
        hdr = [
            "double ramp (Index ix) { return ix[0] * 0.5; }",
            "double r2 (Index ix) { return ix[0] * 0.25 + 1.0; }",
        ]
        expr = (
            f"(array_get_elem (a, {{i}}) * {a}.0 "
            f"+ array_get_elem (b2, {{i}}) + {b}.0)"
            if two_src
            else f"(array_get_elem (a, {{i}}) * {a}.0 + {b}.0)"
        )
    decls = "a, b2, out" if two_src else "a, out"
    lines = hdr + [
        "",
        f"array<{elem}> entry (int n) {{",
        f"  array<{elem}> {decls};",
        "  a = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
    ]
    if two_src:
        lines.append(
            "  b2 = array_create (1, {n}, {0}, {-1}, r2, DISTR_DEFAULT);"
        )
    lines += [
        "  out = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
        "  for (i = 0; i < n; i++) {",
        f"    array_put_elem (out, {{i}}, {expr});",
        "  }",
        "  array_destroy (a);",
    ]
    if two_src:
        lines.append("  array_destroy (b2);")
    lines += ["  return out;", "}"]
    return FusionProgram(
        "discover_map",
        "\n".join(lines) + "\n",
        "entry",
        (n,),
        elem,
        expect_fewer_rounds=False,
    )


def discover_fold(rng: random.Random) -> FusionProgram:
    """A front-end reduction loop rewritten to ``array_fold``."""
    # the collective fold pays O(log p) latency where the front-end loop
    # pays O(n/p) messages — n/p must be large enough at p=64 to win
    n = 1024 * rng.randint(2, 4)
    a, b = rng.randint(1, 9), rng.randint(1, 9)
    form = rng.choice(["+=", "min", "max"])
    hdr = ["int ramp (Index ix) { return ((ix[0] * 7 + 1) %% %d); }" % _MOD]
    rhs = f"((array_get_elem (a, {{i}}) * {a} + {b}) % {_MOD})"
    if form == "+=":
        stmt = f"s += {rhs};"
    else:
        stmt = f"s = {form} (s, {rhs});"
    lines = hdr + [
        "",
        "int entry (int n) {",
        "  array<int> a;",
        "  int s;",
        "  a = array_create (1, {n}, {0}, {-1}, ramp, DISTR_DEFAULT);",
        "  s = 0;" if form != "min" else f"  s = {_MOD};",
        "  for (i = 0; i < n; i++) {",
        f"    {stmt}",
        "  }",
        "  array_destroy (a);",
        "  return s;",
        "}",
    ]
    return FusionProgram(
        "discover_fold",
        "\n".join(lines) + "\n",
        "entry",
        (n,),
        "int",
        expect_fewer_rounds=False,
    )


def square(rng: random.Random) -> FusionProgram:
    """The §4.1 shortest-paths squaring idiom (copy + gen_mult)."""
    n = 16  # 16x16 divides the 2x2 / 4x4 / 8x8 torus meshes evenly
    w = rng.randint(2, 9)
    src = f"""
unsigned init_f (Index ix) {{ return ((ix[0] * 7 + ix[1] * 3) % {w}) + 1; }}
unsigned zero (Index ix) {{ return 0; }}
unsigned int_max (Index ix) {{ return UINT_MAX; }}

array<unsigned> entry (int n) {{
  array<unsigned> a, b, c;
  a = array_create (2, {{n,n}}, {{0,0}}, {{-1,-1}}, init_f, DISTR_TORUS2D);
  b = array_create (2, {{n,n}}, {{0,0}}, {{-1,-1}}, zero, DISTR_TORUS2D);
  c = array_create (2, {{n,n}}, {{0,0}}, {{-1,-1}}, int_max, DISTR_TORUS2D);
  for (i = 0 ; i < log2 (n) ; i++) {{
    array_copy (a, b) ;
    array_gen_mult (a, b, min, (+), c) ;
    array_copy (c, a) ;
  }}
  array_destroy (b) ;
  array_destroy (c) ;
  return a ;
}}
"""
    return FusionProgram(
        "square", src, "entry", (n,), "unsigned", interp_ok=False
    )


FAMILIES = [
    map_map,
    zip_mix,
    map_fold,
    create_map,
    discover_map,
    discover_fold,
    square,
]

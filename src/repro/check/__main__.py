"""CLI for the conformance pillars: ``python -m repro.check``.

Examples
--------
Run everything with the default budget::

    PYTHONPATH=src python -m repro.check all --seed 0 --budget 200

Replay one failure printed by a previous run (the per-trial seed goes
with ``--raw-seed``, exactly as the failure's replay line says)::

    PYTHONPATH=src python -m repro.check fuzz --seed 7000021 --budget 1 --raw-seed
"""

from __future__ import annotations

import argparse
import sys

from repro.check.backendcheck import run_backend, run_backend_raw
from repro.check.dagcheck import run_dag, run_dag_raw
from repro.check.diffcheck import run_diff, run_diff_raw
from repro.check.fusioncheck import run_fusion, run_fusion_raw
from repro.check.fuzz import run_fuzz, run_fuzz_raw
from repro.check.netbatch import run_batch, run_batch_raw
from repro.check.oracle import run_oracle, run_oracle_raw
from repro.check.report import CheckResult, format_result
from repro.check.scalecheck import run_scale, run_scale_raw
from repro.check.streamcheck import run_stream, run_stream_raw


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Skil conformance checks: fuzzer, skeleton oracle, "
        "Network/Engine differential tests.",
    )
    ap.add_argument(
        "pillar",
        choices=["fuzz", "oracle", "diff", "dag", "batch", "stream", "backend",
                 "scale", "fusion", "all"],
        nargs="?",
        default="all",
        help="which pillar to run (default: all)",
    )
    ap.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    ap.add_argument(
        "--budget", type=int, default=200,
        help="number of trials per pillar (default 200)",
    )
    ap.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop each pillar after this many wall-clock seconds",
    )
    ap.add_argument(
        "--raw-seed", action="store_true",
        help="treat --seed as an exact per-trial seed from a failure "
        "report instead of a base seed",
    )
    ap.add_argument(
        "--fused",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the fused whole-array fast path on (--fused) or off "
        "(--no-fused) for every context the checks build; the default "
        "keeps the process default (REPRO_FUSED)",
    )
    ap.add_argument(
        "--fusion",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force compiler-level skeleton fusion on (--fusion) or off "
        "(--no-fusion) as the process default for programs the checks "
        "compile; the fusion pillar itself always compares both sides",
    )
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    if args.fused is not None:
        from repro.skeletons.fuse import set_fusion_default

        set_fusion_default(args.fused)
    if args.fusion is not None:
        from repro.skeletons.fuse import set_program_fusion_default

        set_program_fusion_default(args.fusion)

    pillars = (
        ["fuzz", "oracle", "diff", "dag", "batch", "stream", "backend",
         "scale", "fusion"]
        if args.pillar == "all"
        else [args.pillar]
    )
    results: list[CheckResult] = []
    for pillar in pillars:
        if args.raw_seed:
            runner = {
                "fuzz": run_fuzz_raw,
                "oracle": run_oracle_raw,
                "diff": run_diff_raw,
                "dag": run_dag_raw,
                "batch": run_batch_raw,
                "stream": run_stream_raw,
                "backend": run_backend_raw,
                "scale": run_scale_raw,
                "fusion": run_fusion_raw,
            }[pillar]
            res = runner(args.seed, args.budget)
        else:
            runner = {
                "fuzz": run_fuzz,
                "oracle": run_oracle,
                "diff": run_diff,
                "dag": run_dag,
                "batch": run_batch,
                "stream": run_stream,
                "backend": run_backend,
                "scale": run_scale,
                "fusion": run_fusion,
            }[pillar]
            res = runner(
                args.seed,
                args.budget,
                time_budget=args.time_budget,
                verbose=args.verbose,
            )
        results.append(res)
        print(format_result(res))
        sys.stdout.flush()

    failures = sum(len(r.failures) for r in results)
    trials = sum(r.trials for r in results)
    print(f"repro.check: {trials} trial(s), {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

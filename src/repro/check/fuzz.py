"""Grammar-driven fuzzer for the Skil compiler pipeline.

Every trial generates a *well-typed* Skil program from a seeded spec
(kernels with curried lifted arguments, operator sections, a ``$t``
polymorphic kernel and HOF, a ``pardata`` header, data-parallel
skeleton calls) and checks two properties:

1. **printer/parser round trip** — ``print(parse(src))`` is a fixed
   point of ``print . parse`` and still type checks;
2. **instantiation preserves meaning** — the compiled program (parse →
   typecheck → instantiate → codegen → exec on a simulated machine)
   computes the same result as the direct AST interpreter
   (:mod:`repro.check.interp`), for several processor counts;
3. **skeleton fusion preserves meaning** — compiling the same source
   with the discovery & fusion pass forced on yields results equal to
   the pass forced off at every processor count (exact equality: the
   pass never reassociates, so even ``double`` chains stay bit-equal).
   A dedicated ``chain`` op (map through a fresh temporary that is
   destroyed right after) guarantees fusable shapes appear often.

Value discipline keeps the comparison exact where it must be: integer
kernels bound their results with a final ``% 9973`` so nothing ever
overflows ``int64``; ``double`` programs avoid ``v*v`` growth and the
driver compares floats with a tolerance (reduction trees reassociate).

On failure the spec is shrunk — ops dropped, kernels trivialised,
shapes minimised — while the failure (same stage) persists, and the
minimal program is reported with a one-line replay command.
"""

from __future__ import annotations

import random
import time
import traceback
from dataclasses import dataclass, field, replace

import numpy as np

from repro.check.interp import Interp, InterpArray
from repro.check.report import CheckResult, Failure

__all__ = ["ProgramSpec", "generate_spec", "render", "run_trial", "run_fuzz"]

_MOD = 9973  #: bound for integer kernel results (prime, < 2**14)


# ---------------------------------------------------------------------------
# program specs
# ---------------------------------------------------------------------------
@dataclass
class KernelSpec:
    name: str
    kind: str  #: "init" | "map" | "zip" | "conv"
    n_lifted: int
    body: str  #: Skil expression over the kernel's parameters
    poly: bool = False  #: declared over ``$t`` instead of the element type


@dataclass
class OpSpec:
    kind: str  #: "map" | "zip" | "copy" | "scan" | "fold" | "chain" | "destroy"
    args: tuple = ()


@dataclass
class ProgramSpec:
    seed: int
    elem: str  #: "int" | "double"
    dim: int
    shape: tuple[int, ...]
    distr: str
    n_arrays: int
    kernels: list[KernelSpec] = field(default_factory=list)
    ops: list[OpSpec] = field(default_factory=list)
    use_pardata: bool = False
    use_hof: bool = False
    return_array: bool = False


def _lit(rng: random.Random) -> str:
    return str(rng.randint(1, 9))


def _atom(rng: random.Random, pool: list[str]) -> str:
    if rng.random() < 0.25:
        return _lit(rng)
    return rng.choice(pool)


def _int_body(rng: random.Random, pool: list[str]) -> str:
    """A bounded integer expression: ``((A * B + C) % 9973)`` shaped."""
    a, b, c = _atom(rng, pool), _atom(rng, pool), _atom(rng, pool)
    core = f"(({a} * {b} + {c}) % {_MOD})"
    if rng.random() < 0.3:
        d, e = _atom(rng, pool), _atom(rng, pool)
        alt = f"(({d} - {e}) % {_MOD})"
        cmp_op = rng.choice(["<", ">", "<=", ">=", "==", "!="])
        return f"(({a} {cmp_op} {b}) ? {core} : {alt})"
    return core


def _dbl_body(rng: random.Random, pool: list[str], v: str | None) -> str:
    """A growth-bounded double expression: *v* only times a constant."""
    others = [x for x in pool if x != v] or pool
    k = _lit(rng)
    c = _atom(rng, others)
    if v is not None and rng.random() < 0.8:
        core = f"({v} * {k} + {c})"
    else:
        core = f"({_atom(rng, others)} * {k} - {c})"
    if rng.random() < 0.25:
        a, b = _atom(rng, pool), _atom(rng, pool)
        cmp_op = rng.choice(["<", ">", "<=", ">="])
        return f"(({a} {cmp_op} {b}) ? {core} : ({c} + {k}))"
    return core


def _ix_pool(dim: int) -> list[str]:
    return [f"ix[{d}]" for d in range(dim)]


def generate_spec(seed: int) -> ProgramSpec:
    rng = random.Random(seed)
    elem = "int" if rng.random() < 0.7 else "double"
    dim = rng.choice([1, 1, 2])
    if dim == 1:
        shape = (rng.randint(6, 18),)
        distr = rng.choice(["DISTR_DEFAULT", "DISTR_RING"])
    else:
        shape = (rng.randint(4, 7), rng.randint(4, 7))
        distr = rng.choice(["DISTR_DEFAULT", "DISTR_RING", "DISTR_TORUS2D"])
    spec = ProgramSpec(
        seed=seed,
        elem=elem,
        dim=dim,
        shape=shape,
        distr=distr,
        n_arrays=rng.randint(2, 4),
        use_pardata=rng.random() < 0.3,
        use_hof=rng.random() < 0.6,
        return_array=rng.random() < 0.25,
    )

    ixs = _ix_pool(dim)

    def body_for(kind: str, n_lifted: int, poly: bool) -> str:
        lifted = [f"c{i}" for i in range(n_lifted)]
        if kind == "init":
            pool = ixs + lifted
            v = None
        elif kind == "zip":
            pool = ["x", "y"] + ixs + lifted
            v = "x"
        else:  # map / conv
            pool = ["v"] + ixs + lifted
            v = "v"
        if poly:
            # a $t kernel may not mention Index components (they are int)
            pool = [x for x in pool if not x.startswith("ix")] or lifted + ["v"]
            k = rng.choice(lifted) if lifted else _lit(rng)
            base = "v" if kind in ("map", "conv") else "x"
            return f"({base} * {k} + {rng.choice(pool)})"
        if elem == "int":
            return _int_body(rng, pool)
        return _dbl_body(rng, pool, v)

    # one init kernel per array, a few map/zip/conv kernels
    n_map = rng.randint(1, 3)
    n_zip = rng.randint(0, 2)
    n_conv = rng.randint(1, 2)
    for i in range(spec.n_arrays):
        spec.kernels.append(
            KernelSpec(f"init{i}", "init", 0, body_for("init", 0, False))
        )
    poly_budget = 1 if elem == "int" else 0
    for i in range(n_map):
        n_lift = rng.randint(0, 2)
        poly = poly_budget > 0 and rng.random() < 0.4 and n_lift > 0
        if poly:
            poly_budget -= 1
        spec.kernels.append(
            KernelSpec(f"mapk{i}", "map", n_lift, body_for("map", n_lift, poly), poly)
        )
    for i in range(n_zip):
        n_lift = rng.randint(0, 1)
        spec.kernels.append(
            KernelSpec(f"zipk{i}", "zip", n_lift, body_for("zip", n_lift, False))
        )
    for i in range(n_conv):
        spec.kernels.append(
            KernelSpec(f"convk{i}", "conv", 0, body_for("conv", 0, False))
        )

    maps = [k for k in spec.kernels if k.kind == "map"]
    zips = [k for k in spec.kernels if k.kind == "zip"]
    convs = [k for k in spec.kernels if k.kind == "conv"]
    arrays = list(range(spec.n_arrays))
    combiners = ["(+)", "min", "max"] if elem == "int" else ["(+)", "min", "max"]

    n_ops = rng.randint(2, 6)
    n_chains = 0
    for _ in range(n_ops):
        kind = rng.choice(["map", "map", "zip", "copy", "scan", "chain"])
        if kind == "zip" and not zips:
            kind = "map"
        if kind == "scan" and dim != 1:
            kind = "copy"
        if kind == "map":
            k = rng.choice(maps)
            lifted = tuple(_lit(rng) for _ in range(k.n_lifted))
            spec.ops.append(
                OpSpec("map", (k.name, lifted, rng.choice(arrays), rng.choice(arrays)))
            )
        elif kind == "zip":
            k = rng.choice(zips)
            lifted = tuple(_lit(rng) for _ in range(k.n_lifted))
            spec.ops.append(
                OpSpec(
                    "zip",
                    (
                        k.name,
                        lifted,
                        rng.choice(arrays),
                        rng.choice(arrays),
                        rng.choice(arrays),
                    ),
                )
            )
        elif kind == "copy":
            if spec.n_arrays < 2:
                continue
            src, dst = rng.sample(arrays, 2)
            spec.ops.append(OpSpec("copy", (src, dst)))
        elif kind == "scan":
            if spec.n_arrays < 2:
                continue
            src, dst = rng.sample(arrays, 2)
            spec.ops.append(OpSpec("scan", (rng.choice(combiners), src, dst)))
        elif kind == "chain":
            # two maps through a fresh temporary that is destroyed right
            # after: the exact shape the fusion pass collapses to one map
            k1, k2 = rng.choice(maps), rng.choice(maps)
            l1 = tuple(_lit(rng) for _ in range(k1.n_lifted))
            l2 = tuple(_lit(rng) for _ in range(k2.n_lifted))
            spec.ops.append(
                OpSpec(
                    "chain",
                    (k1.name, l1, k2.name, l2,
                     rng.choice(arrays), rng.choice(arrays), n_chains),
                )
            )
            n_chains += 1

    n_folds = rng.randint(1, 3)
    for i in range(n_folds):
        spec.ops.append(
            OpSpec(
                "fold",
                (i, rng.choice(convs).name, rng.choice(combiners), rng.choice(arrays)),
            )
        )
    return spec


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
_HOF_TEXT = "$a combine ($a f ($a, $a), $a x, $a y) { return f (x, y); }"


def _fold_vars(spec: ProgramSpec) -> list[str]:
    return [f"f{op.args[0]}" for op in spec.ops if op.kind == "fold"]


def _used_arrays(spec: ProgramSpec) -> set[int]:
    used = set()
    for op in spec.ops:
        if op.kind == "map":
            used.update(op.args[2:4])
        elif op.kind == "zip":
            used.update(op.args[2:5])
        elif op.kind in ("copy",):
            used.update(op.args)
        elif op.kind == "scan":
            used.update(op.args[1:3])
        elif op.kind == "fold":
            used.add(op.args[3])
        elif op.kind == "chain":
            used.update(op.args[4:6])
    if spec.return_array:
        used.add(0)
    if not used:
        used.add(0)
    return used


def _used_kernels(spec: ProgramSpec) -> set[str]:
    used = set()
    for op in spec.ops:
        if op.kind in ("map", "zip"):
            used.add(op.args[0])
        elif op.kind == "fold":
            used.add(op.args[1])
        elif op.kind == "chain":
            used.add(op.args[0])
            used.add(op.args[2])
    for i in _used_arrays(spec):
        used.add(f"init{i}")
    return used


def render(spec: ProgramSpec) -> str:
    """Deterministically render a spec to Skil source text."""
    elem = spec.elem
    lines: list[str] = []
    if spec.use_pardata:
        lines.append("pardata dvec <$t>;")
        lines.append("")

    used_k = _used_kernels(spec)
    for k in spec.kernels:
        if k.name not in used_k:
            continue
        t = "$t" if k.poly else elem
        lifted = [f"{t} c{i}" for i in range(k.n_lifted)]
        if k.kind == "init":
            params = ["Index ix"]
            ret = elem
        elif k.kind in ("map", "conv"):
            params = lifted + [f"{t} v", "Index ix"]
            ret = t
        else:  # zip
            params = lifted + [f"{t} x", f"{t} y", "Index ix"]
            ret = t
        lines.append(
            f"{ret} {k.name} ({', '.join(params)}) {{ return {k.body}; }}"
        )
    fold_vars = _fold_vars(spec)
    use_hof = spec.use_hof and len(fold_vars) >= 2 and not spec.return_array
    if use_hof:
        lines.append(_HOF_TEXT)
    lines.append("")

    ret_t = f"array<{elem}>" if spec.return_array else elem
    lines.append(f"{ret_t} entry () {{")
    used_a = sorted(_used_arrays(spec))
    chain_ids = [op.args[6] for op in spec.ops if op.kind == "chain"]
    names = ", ".join(
        [f"a{i}" for i in used_a] + [f"c{i}" for i in chain_ids]
    )
    lines.append(f"  array<{elem}> {names};")
    for v in fold_vars:
        lines.append(f"  {elem} {v};")
    if use_hof:
        lines.append(f"  {elem} t0;")

    size = "{" + ", ".join(str(s) for s in spec.shape) + "}"
    zeros = "{" + ", ".join("0" for _ in spec.shape) + "}"
    negs = "{" + ", ".join("-1" for _ in spec.shape) + "}"
    for i in used_a:
        lines.append(
            f"  a{i} = array_create ({spec.dim}, {size}, {zeros}, {negs}, "
            f"init{i}, {spec.distr});"
        )

    for op in spec.ops:
        if op.kind == "map":
            name, lifted, src, dst = op.args
            fn = f"{name} ({', '.join(lifted)})" if lifted else name
            lines.append(f"  array_map ({fn}, a{src}, a{dst});")
        elif op.kind == "zip":
            name, lifted, a, b, dst = op.args
            fn = f"{name} ({', '.join(lifted)})" if lifted else name
            lines.append(f"  array_zip ({fn}, a{a}, a{b}, a{dst});")
        elif op.kind == "copy":
            src, dst = op.args
            if src != dst:
                lines.append(f"  array_copy (a{src}, a{dst});")
        elif op.kind == "scan":
            comb, src, dst = op.args
            if src != dst:
                lines.append(f"  array_scan ({comb}, a{src}, a{dst});")
        elif op.kind == "fold":
            i, conv, comb, arr = op.args
            lines.append(f"  f{i} = array_fold ({conv}, {comb}, a{arr});")
        elif op.kind == "chain":
            k1, l1, k2, l2, src, dst, cid = op.args
            f1 = f"{k1} ({', '.join(l1)})" if l1 else k1
            f2 = f"{k2} ({', '.join(l2)})" if l2 else k2
            lines.append(
                f"  c{cid} = array_create ({spec.dim}, {size}, {zeros}, "
                f"{negs}, init{src}, {spec.distr});"
            )
            lines.append(f"  array_map ({f1}, a{src}, c{cid});")
            lines.append(f"  array_map ({f2}, c{cid}, a{dst});")
            lines.append(f"  array_destroy (c{cid});")

    if spec.return_array:
        for i in used_a[1:]:
            lines.append(f"  array_destroy (a{i});")
        lines.append("  return a0;")
    else:
        if use_hof:
            lines.append(f"  t0 = combine ((+), {fold_vars[0]}, {fold_vars[1]});")
            for v in fold_vars[2:]:
                lines.append(f"  t0 = combine (min, t0, {v});")
            lines.append("  return t0;")
        elif fold_vars:
            expr = " + ".join(fold_vars)
            lines.append(f"  return ({expr});")
        else:
            lines.append("  return 0;" if elem == "int" else "  return 0.0;")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# the trial: round trip + differential execution
# ---------------------------------------------------------------------------
def _compare(expected, actual, elem: str) -> str | None:
    """None when equal (within tolerance for doubles), else a message."""
    if isinstance(expected, InterpArray):
        exp = expected.data
        act = actual.global_view() if hasattr(actual, "global_view") else actual
        act = np.asarray(act)
        if exp.shape != act.shape:
            return f"array shape mismatch: {exp.shape} vs {act.shape}"
        if elem == "int":
            if not np.array_equal(exp, act):
                bad = np.argwhere(exp != act)[:3]
                return (
                    f"array values differ at {bad.tolist()}: "
                    f"expected {exp[tuple(bad[0])]}, got {act[tuple(bad[0])]}"
                )
        elif not np.allclose(exp, act, rtol=1e-8, atol=1e-8):
            diff = np.max(np.abs(exp - act))
            return f"array values differ (max abs diff {diff})"
        return None
    if elem == "int":
        if int(expected) != int(actual):
            return f"scalar mismatch: expected {expected}, got {actual}"
        return None
    if not np.isclose(float(expected), float(actual), rtol=1e-8, atol=1e-8):
        return f"scalar mismatch: expected {expected}, got {actual}"
    return None


def _check_source(src: str, elem: str, ps: tuple[int, ...]) -> str | None:
    """Run all trial properties over *src*; None if OK, else a message."""
    from repro.lang.parser import parse
    from repro.lang.printer import print_program
    from repro.lang.typecheck import check
    from repro.lang.compiler import compile_skil
    from repro.machine.machine import Machine
    from repro.skeletons import SkilContext

    # 1. printer/parser round trip
    s1 = print_program(parse(src))
    try:
        p2 = parse(s1)
    except Exception as exc:
        return f"printed program no longer parses: {exc}\n--- printed ---\n{s1}"
    s2 = print_program(p2)
    if s1 != s2:
        return (
            "printer round trip is not a fixed point\n"
            f"--- first print ---\n{s1}\n--- second print ---\n{s2}"
        )
    try:
        check(p2)
    except Exception as exc:
        return f"printed program no longer type checks: {exc}\n--- printed ---\n{s1}"

    # 2. instantiated execution vs the AST interpreter oracle
    checked = check(parse(src))
    expected = Interp(checked).run("entry")
    mod = compile_skil(src)
    for p in ps:
        ctx = SkilContext(Machine(p))
        actual = mod.run("entry", ctx=ctx)
        msg = _compare(expected, actual, elem)
        if msg is not None:
            return f"p={p}: {msg}"

    # 3. the skeleton discovery & fusion pass preserves meaning exactly
    # (no tolerance: fusion composes kernels without reassociating)
    mod_u = compile_skil(src, fusion=False)
    mod_f = compile_skil(src, fusion=True)
    for p in ps:
        out_u = mod_u.run("entry", ctx=SkilContext(Machine(p)))
        out_f = mod_f.run("entry", ctx=SkilContext(Machine(p)))
        v_u = (
            np.asarray(out_u.global_view())
            if hasattr(out_u, "global_view")
            else out_u
        )
        v_f = (
            np.asarray(out_f.global_view())
            if hasattr(out_f, "global_view")
            else out_f
        )
        if isinstance(v_u, np.ndarray):
            ok = (
                isinstance(v_f, np.ndarray)
                and v_u.shape == v_f.shape
                and np.array_equal(v_u, v_f)
            )
        else:
            ok = np.asarray(v_u).item() == np.asarray(v_f).item()
        if not ok:
            return (
                f"p={p}: fused program disagrees with unfused\n"
                f"unfused: {v_u!r}\nfused:   {v_f!r}"
            )
    return None


def run_trial(seed: int) -> tuple[str, str] | None:
    """One fuzz trial.  Returns None on success, (stage, detail) on failure."""
    spec = generate_spec(seed)
    return _run_spec(spec)


def _run_spec(spec: ProgramSpec) -> tuple[str, str] | None:
    from repro.obs.metrics import isolated_metrics

    src = render(spec)
    ps = (1, 2) if spec.seed % 2 == 0 else (1, 3 if spec.dim == 1 else 4)
    try:
        # the compiler front end reports into the process-global
        # registry; isolate it so trials don't leak into each other
        with isolated_metrics():
            msg = _check_source(src, spec.elem, ps)
    except Exception:
        return ("exception", traceback.format_exc(limit=8))
    if msg is not None:
        return ("mismatch", msg)
    return None


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------
def _shrink_candidates(spec: ProgramSpec):
    """Yield progressively smaller specs (each a full candidate)."""
    # drop one op at a time (from the back: later ops depend on earlier)
    for i in reversed(range(len(spec.ops))):
        yield replace(spec, ops=spec.ops[:i] + spec.ops[i + 1 :])
    # trivialise kernel bodies
    for i, k in enumerate(spec.kernels):
        trivial = {
            "init": "ix[0]" if spec.elem == "int" else "(ix[0] * 1 + 1)",
            "map": "v",
            "conv": "v",
            "zip": "(x + y)",
        }[k.kind]
        if k.body != trivial and not k.poly:
            ks = list(spec.kernels)
            ks[i] = replace(k, body=trivial)
            yield replace(spec, kernels=ks)
    # shed the optional structure
    if spec.use_pardata:
        yield replace(spec, use_pardata=False)
    if spec.use_hof:
        yield replace(spec, use_hof=False)
    if spec.return_array:
        yield replace(spec, return_array=False)
    # shrink the shape
    min_shape = (6,) if spec.dim == 1 else (4, 4)
    if spec.shape != min_shape:
        yield replace(spec, shape=min_shape)
    if spec.distr != "DISTR_DEFAULT":
        yield replace(spec, distr="DISTR_DEFAULT")


def shrink(spec: ProgramSpec, stage: str, budget: int = 120) -> ProgramSpec:
    """Greedy spec-level shrink keeping a failure of the same *stage*."""
    attempts = 0
    improved = True
    while improved and attempts < budget:
        improved = False
        for cand in _shrink_candidates(spec):
            attempts += 1
            if attempts >= budget:
                break
            res = _run_spec(cand)
            if res is not None and res[0] == stage:
                spec = cand
                improved = True
                break
    return spec


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def run_fuzz(
    seed: int = 0,
    budget: int = 100,
    time_budget: float | None = None,
    verbose: bool = False,
) -> CheckResult:
    """Run *budget* fuzz trials derived from *seed* (time-boxed)."""
    res = CheckResult("fuzz")
    t0 = time.monotonic()
    for i in range(budget):
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            break
        trial_seed = seed * 1_000_003 + i
        res.trials += 1
        out = run_trial(trial_seed)
        if out is None:
            spec = generate_spec(trial_seed)
            for op in spec.ops:
                res.coverage[f"op.{op.kind}"] = res.coverage.get(f"op.{op.kind}", 0) + 1
            continue
        stage, detail = out
        minimal = shrink(generate_spec(trial_seed), stage)
        res.failures.append(
            Failure(
                pillar="fuzz",
                seed=trial_seed,
                title=f"fuzz trial failed ({stage})",
                detail=detail,
                reproducer=render(minimal),
                replay=(
                    f"PYTHONPATH=src python -m repro.check fuzz "
                    f"--seed {trial_seed} --budget 1 --raw-seed"
                ),
            )
        )
        if verbose:
            print(f"fuzz seed {trial_seed}: {stage}")
    return res


def run_fuzz_raw(seed: int, budget: int = 1) -> CheckResult:
    """Replay exact trial seeds (what a failure's replay command uses)."""
    res = CheckResult("fuzz")
    for i in range(budget):
        trial_seed = seed + i
        res.trials += 1
        out = run_trial(trial_seed)
        if out is not None:
            stage, detail = out
            minimal = shrink(generate_spec(trial_seed), stage)
            res.failures.append(
                Failure(
                    pillar="fuzz",
                    seed=trial_seed,
                    title=f"fuzz trial failed ({stage})",
                    detail=detail,
                    reproducer=render(minimal),
                    replay=(
                        f"PYTHONPATH=src python -m repro.check fuzz "
                        f"--seed {trial_seed} --budget 1 --raw-seed"
                    ),
                )
            )
    return res

"""The ``fusion`` conformance pillar: fused ≡ unfused, and cheaper.

Every trial draws a program from one of the fusable families
(:mod:`repro.check.fusionprog`), compiles it twice — once with the
skeleton discovery & fusion pass off, once on — and checks, at every
p in ``FUSION_PS``:

1. **value equality, bit-exact** — the fused program's result equals
   the unfused one with no tolerance (the pass's dtype gate guarantees
   exactness even for ``double`` chains);
2. **the reference interpreter agrees** (families it supports) — ties
   the pair to the same oracle the fuzzer uses;
3. **simulated seconds do not regress** — fused time ≤ unfused time;
4. **whole rounds disappear** for the skeleton-chain families —
   ``stats.skeleton_calls`` strictly drops (discovery families instead
   trade per-element front-end messages for one collective, so only
   the time bound applies);
5. the pass actually fired (``fusion_report.rewrites`` non-empty) —
   a silent no-op pass would otherwise vacuously satisfy 1–4.
"""

from __future__ import annotations

import random
import time
import traceback

import numpy as np

from repro.check.fusionprog import FAMILIES, FUSION_PS, FusionProgram
from repro.check.interp import Interp
from repro.check.report import CheckResult, Failure

__all__ = ["run_fusion", "run_fusion_raw", "check_fusion_program"]


def _value_of(out):
    if hasattr(out, "global_view"):
        return np.array(out.global_view())
    return out


def _bit_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and a.dtype == b.dtype
            and np.array_equal(a, b)
        )
    # scalars: bit-exact value comparison, indifferent to Python-int vs
    # numpy-int64 wrappers (a fold returns a numpy scalar)
    a = np.asarray(a).item()
    b = np.asarray(b).item()
    return type(a) is type(b) and a == b


def check_fusion_program(prog: FusionProgram) -> str | None:
    """All pillar properties over one program; None if OK."""
    from repro.lang.compiler import compile_skil
    from repro.machine.machine import Machine
    from repro.skeletons import SkilContext

    unfused = compile_skil(prog.source, fusion=False)
    fused = compile_skil(prog.source, fusion=True)
    if prog.expect_rewrites and not fused.fusion_report.rewrites:
        return (
            f"{prog.family}: the fusion pass made no rewrites on a "
            "fusable family program"
        )

    interp_expected = None
    if prog.interp_ok:
        interp_expected = Interp(unfused.checked).run(prog.entry, *prog.args)
        if hasattr(interp_expected, "data"):
            interp_expected = np.array(interp_expected.data)

    for p in FUSION_PS:
        with Machine(p) as m0:
            v0 = _value_of(unfused.run(prog.entry, *prog.args,
                                       ctx=SkilContext(m0)))
            rounds0, sim0 = m0.stats.skeleton_calls, m0.time
        with Machine(p) as m1:
            v1 = _value_of(fused.run(prog.entry, *prog.args,
                                     ctx=SkilContext(m1)))
            rounds1, sim1 = m1.stats.skeleton_calls, m1.time
        if not _bit_equal(v0, v1):
            return (
                f"{prog.family} p={p}: fused value differs from unfused\n"
                f"unfused: {v0!r}\nfused:   {v1!r}"
            )
        if interp_expected is not None:
            iv = interp_expected
            ok = (
                np.array_equal(iv, v0)
                if isinstance(iv, np.ndarray)
                else float(iv) == float(v0)
                if prog.elem == "double"
                else int(iv) == int(v0)
            )
            if not ok:
                return (
                    f"{prog.family} p={p}: interpreter disagrees with the "
                    f"unfused program\ninterp:  {iv!r}\nunfused: {v0!r}"
                )
        if sim1 > sim0:
            return (
                f"{prog.family} p={p}: fusion made the simulated schedule "
                f"slower ({sim1:.6g}s fused vs {sim0:.6g}s unfused)"
            )
        if prog.expect_fewer_rounds and not rounds1 < rounds0:
            return (
                f"{prog.family} p={p}: expected strictly fewer skeleton "
                f"rounds, got {rounds0} unfused vs {rounds1} fused"
            )
    return None


def _run_trial(trial_seed: int, res: CheckResult, verbose: bool = False) -> None:
    from repro.obs.metrics import isolated_metrics

    rng = random.Random(trial_seed)
    fam = FAMILIES[trial_seed % len(FAMILIES)]
    res.trials += 1
    prog = None
    try:
        prog = fam(rng)
        with isolated_metrics():
            msg = check_fusion_program(prog)
    except Exception:
        msg = traceback.format_exc(limit=8)
    name = prog.family if prog is not None else fam.__name__
    res.coverage[f"family.{name}"] = res.coverage.get(f"family.{name}", 0) + 1
    if msg is not None:
        res.failures.append(
            Failure(
                pillar="fusion",
                seed=trial_seed,
                title=f"fusion trial failed ({name})",
                detail=msg,
                reproducer=prog.source if prog is not None else "",
                replay=(
                    f"PYTHONPATH=src python -m repro.check fusion "
                    f"--seed {trial_seed} --budget 1 --raw-seed"
                ),
            )
        )
        if verbose:
            print(f"fusion seed {trial_seed}: FAIL ({name})")


def run_fusion(
    seed: int = 0,
    budget: int = 35,
    time_budget: float | None = None,
    verbose: bool = False,
) -> CheckResult:
    """Run *budget* fused-vs-unfused trials across the 7 families."""
    res = CheckResult("fusion")
    t0 = time.monotonic()
    for i in range(budget):
        if time_budget is not None and time.monotonic() - t0 > time_budget:
            break
        _run_trial(seed * 1_000_003 + i, res, verbose=verbose)
    return res


def run_fusion_raw(seed: int, budget: int = 1) -> CheckResult:
    """Replay exact per-trial seeds printed by a failure report."""
    res = CheckResult("fusion")
    for k in range(budget):
        _run_trial(seed + k, res)
    return res

"""Reproduction of *Skil: An Imperative Language with Algorithmic Skeletons
for Efficient Distributed Programming* (Botorog & Kuchen, HPDC 1996).

Public API overview
-------------------

``repro.machine``
    The simulated distributed-memory machine (topologies, cost model,
    message-level engine) substituting the paper's transputer testbed.
``repro.arrays``
    The ``pardata array<$t>`` distributed data structure.
``repro.skeletons``
    The paper's skeleton library (map, fold, copy, broadcast_part,
    permute_rows, gen_mult, ...) plus the extensions flagged as future
    work.
``repro.lang``
    A working Skil compiler front end: lexer, parser, polymorphic type
    checker and *translation by instantiation*, generating executable
    Python kernels.
``repro.apps``
    Shortest paths, Gaussian elimination, matrix multiplication and a
    divide&conquer quicksort, written against the skeletons.
``repro.baselines``
    The DPFL (functional) and Parix-C (hand-written message passing)
    comparators of the evaluation section.
``repro.eval``
    The harness regenerating Table 1, Table 2 and Figure 1.
"""

from repro._version import __version__
from repro.errors import (
    DeadlockError,
    DistributionError,
    InstantiationError,
    LocalityError,
    MachineError,
    MemoryLimitError,
    SkeletonError,
    SkilError,
    SkilRuntimeError,
    SkilSyntaxError,
    SkilTypeError,
    TopologyError,
)
from repro.machine import (
    DISTR_DEFAULT,
    DISTR_RING,
    DISTR_TORUS2D,
    DPFL,
    PARIX_C,
    PARIX_C_OLD,
    SKIL,
    SKIL_CLOSURES,
    CostModel,
    LanguageProfile,
    Machine,
)

__all__ = [
    "__version__",
    "Machine",
    "CostModel",
    "LanguageProfile",
    "SKIL",
    "SKIL_CLOSURES",
    "DPFL",
    "PARIX_C",
    "PARIX_C_OLD",
    "DISTR_DEFAULT",
    "DISTR_RING",
    "DISTR_TORUS2D",
    "SkilError",
    "MachineError",
    "MemoryLimitError",
    "TopologyError",
    "DeadlockError",
    "DistributionError",
    "LocalityError",
    "SkeletonError",
    "SkilSyntaxError",
    "SkilTypeError",
    "InstantiationError",
    "SkilRuntimeError",
]

"""Hand-written message-passing baselines (the paper's "Parix-C").

These implement the same two algorithms *directly* against the machine's
network layer — no skeleton objects, no skeleton-call overhead, no
residual per-element calls; loops are "written by hand" (numpy blocks)
and charged at the C profile's factor 1.0.  They are the comparator of
Table 2's italics row and Table 1's last column.

Two C variants exist in the paper:

* :func:`shpaths_c` with ``old=True`` — "an older version, which does
  not use virtual topologies or asynchronous communication" (Table 1;
  this is the version Skil *beats*);
* ``old=False`` — the "equally optimized" C of the §5.1 matmul
  comparison (ref. [3]), with folded torus embedding and asynchronous
  sends.

The test-suite checks that a Skil-profile skeleton run and these
hand-written runs have consistent message counts and that the C runs are
faster — i.e. that the skeleton layer really only adds the overheads the
paper says it adds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.shortest_paths import RunReport
from repro.errors import SkilError
from repro.machine.costmodel import PARIX_C, PARIX_C_OLD, CostModel, T800_PARSYTEC
from repro.machine.machine import Machine
from repro.machine.topology import Torus2D

__all__ = ["shpaths_c", "gauss_c", "matmul_c", "make_c_machine"]


def make_c_machine(p: int, old: bool = False, cost: CostModel = T800_PARSYTEC) -> Machine:
    """Machine configured the way the respective C version used it."""
    return Machine(p, cost=cost, use_virtual_topologies=not old)


def _block_dist_rows(n: int, p: int) -> list[tuple[int, int]]:
    base, extra = divmod(n, p)
    bounds = []
    lo = 0
    for r in range(p):
        hi = lo + base + (1 if r < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _profile(old: bool):
    return PARIX_C_OLD if old else PARIX_C


def shpaths_c(
    machine: Machine, dist_matrix: np.ndarray, old: bool = False
) -> tuple[np.ndarray, RunReport]:
    """Hand-written Gentleman (min,+) squaring, message passing only."""
    n = dist_matrix.shape[0]
    p = machine.p
    g = machine.mesh.rows
    if machine.mesh.rows != machine.mesh.cols:
        raise SkilError("shpaths_c needs a square processor grid")
    if n % g != 0:
        raise SkilError(f"n={n} must be divisible by the grid side {g}")
    prof = _profile(old)
    sync = not prof.async_comm
    topo = machine.topology("DISTR_TORUS2D")
    assert isinstance(topo, Torus2D)
    net = machine.network
    cost = machine.cost
    nb = n // g
    start = machine.time

    # distribute the matrix into g x g blocks (C code: local init loops)
    def blocks_of(mat):
        return [
            mat[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb].copy()
            for i in range(g)
            for j in range(g)
        ]

    a = blocks_of(dist_matrix.astype(np.float64))
    net.compute(nb * nb * prof.elem_time(cost))  # init sweep

    nbytes = a[0].nbytes

    def skew(blocks, kind, direction):
        pairs = []
        for r in range(p):
            i, j = topo.grid_coords(r)
            if kind == "a":
                dst = topo.grid_rank(i, j - direction * i)
            else:
                dst = topo.grid_rank(i - direction * j, j)
            if dst != r:
                pairs.append((r, dst))
        if pairs:
            net.shift(pairs, nbytes, topo, sync=sync, tag=f"c-skew-{kind}")
            moved = {d: blocks[s] for s, d in pairs}
            for d, blk in moved.items():
                blocks[d] = blk

    def rotate(blocks, pairs, tag):
        net.shift(pairs, nbytes, topo, sync=sync, tag=tag)
        moved = {d: blocks[s] for s, d in pairs}
        for d, blk in moved.items():
            blocks[d] = blk

    west = [(r, topo.west(r)) for r in range(p) if topo.west(r) != r]
    north = [(r, topo.north(r)) for r in range(p) if topo.north(r) != r]
    t_round = nb * nb * nb * 2 * prof.elem_time(cost)

    iters = max(1, math.ceil(math.log2(n)))
    for _ in range(iters):
        # b = a (local memcpy), c = inf
        net.compute(nbytes * cost.t_mem)
        ab = [blk.copy() for blk in a]
        bb = [blk.copy() for blk in a]
        cb = [np.full_like(blk, np.inf) for blk in a]
        skew(ab, "a", +1)
        skew(bb, "b", +1)
        for step in range(g):
            for r in range(p):
                cb[r] = np.minimum(
                    cb[r], np.min(ab[r][:, :, None] + bb[r][None, :, :], axis=1)
                )
            net.compute(t_round)
            if step < g - 1:
                rotate(ab, west, "c-rot-a")
                rotate(bb, north, "c-rot-b")
        # hand-written code reuses the buffers; no unskew needed because
        # ab/bb are scratch copies — but the old C did a full realignment
        if old and g > 1:
            skew(ab, "a", -1)
            skew(bb, "b", -1)
        a = cb
        net.compute(nbytes * cost.t_mem)  # copy c back into a

    result = np.zeros((n, n))
    for r in range(p):
        i, j = topo.grid_coords(r)
        result[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb] = a[r]
    report = RunReport(machine.time - start, machine.stats, p, n, prof.name)
    return result, report


def gauss_c(machine: Machine, a_mat: np.ndarray, rhs: np.ndarray
            ) -> tuple[np.ndarray, RunReport]:
    """Hand-written Gauss-Jordan without pivoting (Table 2 comparator)."""
    n = a_mat.shape[0]
    p = machine.p
    if n % p != 0:
        raise SkilError(f"n={n} must be divisible by p={p}")
    prof = PARIX_C
    net = machine.network
    cost = machine.cost
    topo = machine.topology("DISTR_DEFAULT")
    rows = _block_dist_rows(n, p)
    start = machine.time

    ext = np.concatenate([a_mat, rhs[:, None]], axis=1)
    blocks = [ext[lo:hi].copy() for lo, hi in rows]
    net.compute((n // p) * (n + 1) * prof.elem_time(cost))

    row_bytes = (n + 1) * ext.dtype.itemsize
    t_elim_per_elem = prof.elem_time(cost, 2.0)

    for k in range(n):
        owner = next(r for r, (lo, hi) in enumerate(rows) if lo <= k < hi)
        lo, _ = rows[owner]
        piv = blocks[owner][k - lo] / blocks[owner][k - lo][k]
        net.compute_at(owner, (n + 1) * prof.elem_time(cost))
        net.broadcast(owner, row_bytes, topo, sync=not prof.async_comm,
                      tag="c-pivrow")
        # local elimination, all rows except the pivot row, columns >= k
        for r in range(p):
            blo, bhi = rows[r]
            blk = blocks[r]
            factors = blk[:, k].copy()
            upd = blk - factors[:, None] * piv[None, :]
            upd[:, :k] = blk[:, :k]
            if blo <= k < bhi:
                upd[k - blo] = blk[k - blo]
            blocks[r] = upd
        net.compute((n // p) * (n + 1 - k) * t_elim_per_elem)

    # final normalisation of the last column
    for r, (lo, hi) in enumerate(rows):
        diag = blocks[r][np.arange(hi - lo), np.arange(lo, hi)]
        blocks[r][:, n] = blocks[r][:, n] / diag
    net.compute((n // p) * prof.elem_time(cost))

    x = np.concatenate([blk[:, n] for blk in blocks])
    report = RunReport(machine.time - start, machine.stats, p, n, prof.name)
    return x, report


def matmul_c(machine: Machine, a_mat: np.ndarray, b_mat: np.ndarray
             ) -> tuple[np.ndarray, RunReport]:
    """Hand-written (equally optimized) Gentleman matmul — ablation A1."""
    n = a_mat.shape[0]
    p = machine.p
    g = machine.mesh.rows
    if machine.mesh.rows != machine.mesh.cols:
        raise SkilError("matmul_c needs a square processor grid")
    if n % g != 0:
        raise SkilError(f"n={n} must be divisible by the grid side {g}")
    prof = PARIX_C
    topo = machine.topology("DISTR_TORUS2D")
    net = machine.network
    cost = machine.cost
    nb = n // g
    start = machine.time

    def blocks_of(mat):
        return [
            mat[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb].copy()
            for i in range(g)
            for j in range(g)
        ]

    ab, bb = blocks_of(a_mat), blocks_of(b_mat)
    cb = [np.zeros((nb, nb)) for _ in range(p)]
    net.compute(2 * nb * nb * prof.elem_time(cost))
    nbytes = ab[0].nbytes

    def shift_perm(blocks, pairs, tag):
        if not pairs:
            return
        net.shift(pairs, nbytes, topo, sync=False, tag=tag)
        moved = {d: blocks[s] for s, d in pairs}
        for d, blk in moved.items():
            blocks[d] = blk

    def skew_pairs(kind, direction):
        pairs = []
        for r in range(p):
            i, j = topo.grid_coords(r)
            dst = (
                topo.grid_rank(i, j - direction * i)
                if kind == "a"
                else topo.grid_rank(i - direction * j, j)
            )
            if dst != r:
                pairs.append((r, dst))
        return pairs

    shift_perm(ab, skew_pairs("a", +1), "c-mm-skew-a")
    shift_perm(bb, skew_pairs("b", +1), "c-mm-skew-b")
    west = [(r, topo.west(r)) for r in range(p) if topo.west(r) != r]
    north = [(r, topo.north(r)) for r in range(p) if topo.north(r) != r]
    t_round = nb * nb * nb * 2 * prof.elem_time(cost)
    for step in range(g):
        for r in range(p):
            cb[r] = cb[r] + ab[r] @ bb[r]
        net.compute(t_round)
        if step < g - 1:
            shift_perm(ab, west, "c-mm-rot-a")
            shift_perm(bb, north, "c-mm-rot-b")

    result = np.zeros((n, n))
    for r in range(p):
        i, j = topo.grid_coords(r)
        result[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb] = cb[r]
    report = RunReport(machine.time - start, machine.stats, p, n, prof.name)
    return result, report

"""The DPFL comparator — the data-parallel functional language of
refs [7, 8], running "the same skeletons".

DPFL programs are structurally identical to the Skil programs (that is
the point of the comparison: same skeletons, different host language),
so the baseline reuses the application drivers under the DPFL
:class:`~repro.machine.costmodel.LanguageProfile`: boxed values and
closure application per element, a sequential-efficiency factor, larger
skeleton dispatch overhead, and no in-place update (``array_map`` pays
for its temporary).  The knobs live in :mod:`repro.machine.costmodel`
and are the explicit encoding of the paper's "our run-times are on the
average 6 times faster than those of DPFL ... due both to the efficiency
of imperative languages ... and to the implementation of the functional
features".
"""

from __future__ import annotations

import numpy as np

from repro.apps.gauss import gauss_full, gauss_simple
from repro.apps.matmul import matmul
from repro.apps.shortest_paths import RunReport, shpaths
from repro.machine.costmodel import DPFL, CostModel, T800_PARSYTEC
from repro.machine.machine import Machine
from repro.skeletons import SkilContext

__all__ = ["dpfl_context", "shpaths_dpfl", "gauss_dpfl", "matmul_dpfl"]


def dpfl_context(p: int, cost: CostModel = T800_PARSYTEC) -> SkilContext:
    """A context whose skeleton costs follow the DPFL profile."""
    return SkilContext(Machine(p, cost=cost), DPFL)


def shpaths_dpfl(p: int, dist_matrix: np.ndarray) -> tuple[np.ndarray, RunReport]:
    return shpaths(dpfl_context(p), dist_matrix)


def gauss_dpfl(
    p: int, a_mat: np.ndarray, rhs: np.ndarray, full: bool = False
) -> tuple[np.ndarray, RunReport]:
    driver = gauss_full if full else gauss_simple
    return driver(dpfl_context(p), a_mat, rhs)


def matmul_dpfl(p: int, a_mat: np.ndarray, b_mat: np.ndarray):
    return matmul(dpfl_context(p), a_mat, b_mat)

"""The paper's comparators: hand-written Parix-C and the functional DPFL."""

from repro.baselines.dpfl import dpfl_context, gauss_dpfl, matmul_dpfl, shpaths_dpfl
from repro.baselines.parix_c import gauss_c, make_c_machine, matmul_c, shpaths_c

__all__ = [
    "shpaths_c",
    "gauss_c",
    "matmul_c",
    "make_c_machine",
    "dpfl_context",
    "shpaths_dpfl",
    "gauss_dpfl",
    "matmul_dpfl",
]

"""Command-line entry point: regenerate the paper's tables and figure.

Usage::

   python -m repro.eval table1 [--scale 0.25]
   python -m repro.eval table2 [--scale 0.25]
   python -m repro.eval figure1 [--scale 0.25] [--csv]
   python -m repro.eval ablations [--scale 0.25]
   python -m repro.eval all [--scale 0.25] [--progress]
   python -m repro.eval trace [--app gauss-full] [--p 9] [--n 48]
                              [--stream] [--trace t.json]
                              [--metrics-out m.prom]
   python -m repro.eval analyze [--app gauss] [--p 16] [--n 48]
                              [--json-out analyze.json] [--no-whatif]
   python -m repro.eval profile [--app gauss] [--p 16] [--n 48]
                              [--backend threads|mp] [--workers 2]
                              [--json-out profile.json]
   python -m repro.eval bench [--quick] [--out BENCH_perf.json]
                              [--check-against BENCH_perf.json]
                              [--backend threads|mp]

``--scale 1.0`` (the default) runs the paper's exact problem sizes —
the Table 2 grid takes a few minutes of wall-clock time because the
simulation really performs the numeric work; smaller scales shrink the
matrices proportionally.

Every subcommand accepts the shared observability flags ``--trace``,
``--metrics-out``, ``--quiet``, ``--backend``, ``--workers``,
``--fusion``/``--no-fusion``, ``--fused``/``--no-fused``,
``--profile`` and ``--profile-out`` (see :mod:`repro.eval.cliopts`);
``--fusion --no-fused`` is rejected as contradictory (exit 2).
``trace`` keeps ``--json`` as a back-compatible alias of ``--trace``.
``--backend threads|mp`` runs the skeleton kernels on real cores —
every artefact stays bit-identical because simulated time is charged
analytically either way.  ``profile`` correlates the two clocks:
simulated speedup vs measured wall, attribution, worker utilization.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import UsageError
from repro.eval.cliopts import (
    apply_backend,
    apply_fusion,
    obs_parent,
    representative_obs_run,
    require_positive,
    run_target_parent,
    validate_fusion_flags,
    validate_profile_flags,
    write_obs_artifacts,
)

_ARTEFACTS = ("table1", "table2", "figure1", "ablations", "all")


def _build_parser() -> argparse.ArgumentParser:
    parent = obs_parent()
    target = run_target_parent()
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the evaluation of the Skil paper (HPDC '96).",
    )
    sub = parser.add_subparsers(dest="what", required=True, metavar="what")

    for name in _ARTEFACTS:
        sp = sub.add_parser(
            name,
            parents=[parent],
            help=f"regenerate {name}"
            if name != "all"
            else "regenerate every artefact",
        )
        sp.add_argument(
            "--scale",
            type=float,
            default=1.0,
            help="problem-size scale in (0, 1]; 1.0 = the paper's sizes",
        )
        sp.add_argument(
            "--csv",
            action="store_true",
            help="emit figure series as CSV too",
        )
        sp.add_argument(
            "--out",
            metavar="DIR",
            default=None,
            help="also write each artefact into DIR (table1.txt, table2.txt, "
            "figure1.txt, figure1_*.csv, ablations.txt)",
        )
        sp.add_argument(
            "--progress",
            action="store_true",
            help="print a wall-clock progress line per evaluation step "
            "(stderr)",
        )

    tr = sub.add_parser(
        "trace",
        parents=[parent, target],
        help="profile one run (spans, timeline, metrics)",
    )
    tr.add_argument(
        "--json",
        dest="trace",
        metavar="FILE",
        help="alias of --trace (back-compatible)",
    )
    tr.add_argument(
        "--level",
        type=int,
        choices=[1, 2],
        default=2,
        help="1 = spans + metrics, 2 = also per-rank timeline",
    )
    tr.add_argument(
        "--stream",
        action="store_true",
        help="run under trace_mode='stream': O(p + samples) memory, "
        "inclusive aggregates; --trace becomes the JSONL event spill",
    )
    tr.add_argument(
        "--sample-size",
        type=int,
        default=1024,
        help="stream: reservoir capacity for sampled message records",
    )
    tr.add_argument(
        "--heartbeat-every",
        type=float,
        default=None,
        metavar="SEC",
        help="stream: emit a progress heartbeat every SEC wall-seconds",
    )

    an = sub.add_parser(
        "analyze",
        parents=[parent, target],
        help="critical-path/straggler analysis of one run",
    )
    an.add_argument(
        "--json-out",
        metavar="FILE",
        default=None,
        help="write the analysis snapshot (repro-analyze/1 JSON)",
    )
    an.add_argument(
        "--no-whatif",
        action="store_true",
        help="skip the perturbed-cost what-if replays",
    )
    an.add_argument(
        "--top",
        type=int,
        default=8,
        help="rows in the blocking-edge/imbalance tables",
    )

    pr = sub.add_parser(
        "profile",
        parents=[parent, target],
        help="sim-vs-wall wall-clock profile of one run "
        "(dispatch/kernel/ship/idle attribution)",
    )
    pr.add_argument(
        "--json-out",
        metavar="FILE",
        default=None,
        help="write the repro-profile/1 snapshot (alias: --profile-out)",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    try:
        return _main(argv)
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _main(argv: list[str]) -> int:
    if argv[:1] == ["bench"]:
        # the wall-clock harness owns its full option set (see bench.py)
        # but shares the observability parent, so the common flags work
        from repro.eval.bench import main as bench_main

        return bench_main(argv[1:])

    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.what in ("trace", "analyze", "profile"):
        require_positive("--p", args.p)
        require_positive("--n", args.n)
    if args.what == "profile":
        # the profile subcommand always profiles; --profile-out alone is
        # legal here and doubles as --json-out
        args.profile = True
    validate_profile_flags(args)
    validate_fusion_flags(args)
    apply_backend(args.backend, args.workers)
    apply_fusion(args.fusion, args.fused)

    if args.what == "trace":
        from repro.eval.tracecmd import run_trace_command

        text = run_trace_command(
            args.app,
            p=args.p,
            n=args.n,
            out=args.trace,
            trace_level=args.level,
            seed=args.seed,
            metrics_out=args.metrics_out,
            stream=args.stream,
            sample_size=args.sample_size,
            heartbeat_every=args.heartbeat_every
            if not args.quiet
            else None,
            profile=args.profile,
            profile_out=args.profile_out,
        )
        print(text)
        return 0

    if args.what == "analyze":
        from repro.eval.tracecmd import run_analyze_command

        print(
            run_analyze_command(
                args.app,
                p=args.p,
                n=args.n,
                seed=args.seed,
                top=args.top,
                whatif=not args.no_whatif,
                json_out=args.json_out,
                trace_out=args.trace,
                metrics_out=args.metrics_out,
                profile=args.profile,
                profile_out=args.profile_out,
            )
        )
        return 0

    if args.what == "profile":
        from repro.eval.profilecmd import run_profile_command

        text, rc = run_profile_command(
            app=args.app,
            p=args.p,
            n=args.n,
            seed=args.seed,
            backend=args.backend,
            workers=args.workers,
            json_out=args.json_out or args.profile_out,
            quiet=args.quiet,
        )
        print(text)
        return rc

    # ---------------------------------------------------------- artefacts
    if not (0 < args.scale <= 1.0):
        parser.error("--scale must be in (0, 1]")

    from repro.eval.experiments import (
        ablation_equal_c,
        ablation_full_gauss,
        ablation_instantiation,
        ablation_sync_comm,
        ablation_topology,
        figure1,
        table1,
        table2,
    )
    from repro.eval.figures import format_figure1, series_csv
    from repro.eval.tables import format_ablation, format_table1, format_table2

    progress = None
    if args.progress and not args.quiet:
        from repro.obs.stream import ProgressReporter

        reporter = ProgressReporter()
        progress = reporter.note

    outdir = None
    if args.out is not None:
        from pathlib import Path

        outdir = Path(args.out)
        outdir.mkdir(parents=True, exist_ok=True)

    def emit(name: str, text: str) -> None:
        print(text)
        print()
        if outdir is not None:
            (outdir / name).write_text(text + "\n")

    if args.what in ("table1", "all"):
        emit("table1.txt", format_table1(table1(scale=args.scale,
                                                progress=progress)))
    if args.what in ("table2", "figure1", "all"):
        cells = table2(scale=args.scale, progress=progress)
        if args.what in ("table2", "all"):
            emit("table2.txt", format_table2(cells))
        if args.what in ("figure1", "all"):
            ups, downs = figure1(cells)
            emit("figure1.txt", format_figure1(ups, downs))
            if args.csv or outdir is not None:
                up_csv = series_csv(ups, "speedup_vs_dpfl")
                down_csv = series_csv(downs, "slowdown_vs_c")
                if args.csv:
                    print(up_csv)
                    print(down_csv)
                if outdir is not None:
                    (outdir / "figure1_speedups.csv").write_text(up_csv + "\n")
                    (outdir / "figure1_slowdowns.csv").write_text(down_csv + "\n")
    if args.what in ("ablations", "all"):
        texts = []
        for fn in (
            ablation_equal_c,
            ablation_full_gauss,
            ablation_instantiation,
            ablation_topology,
            ablation_sync_comm,
        ):
            if progress is not None:
                progress(f"ablation: {fn.__name__}")
            texts.append(format_ablation(fn(scale=args.scale)))
        emit("ablations.txt", "\n\n".join(texts))

    footer = representative_obs_run(
        args.trace, args.metrics_out,
        profile=args.profile, profile_path=args.profile_out,
    )
    if footer and not args.quiet:
        print("\n".join(footer))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: regenerate the paper's tables and figure.

Usage::

   python -m repro.eval table1 [--scale 0.25]
   python -m repro.eval table2 [--scale 0.25]
   python -m repro.eval figure1 [--scale 0.25] [--csv]
   python -m repro.eval ablations [--scale 0.25]
   python -m repro.eval all [--scale 0.25]
   python -m repro.eval trace [--app gauss-full] [--p 9] [--n 48]
                              [--json trace.json] [--metrics-out m.prom]
   python -m repro.eval analyze [--app gauss] [--p 16] [--n 48]
                              [--json-out analyze.json] [--no-whatif]
   python -m repro.eval bench [--quick] [--out BENCH_perf.json]
                              [--check-against BENCH_perf.json]

``--scale 1.0`` (the default) runs the paper's exact problem sizes —
the Table 2 grid takes a few minutes of wall-clock time because the
simulation really performs the numeric work; smaller scales shrink the
matrices proportionally.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.experiments import (
    ablation_equal_c,
    ablation_full_gauss,
    ablation_instantiation,
    ablation_sync_comm,
    ablation_topology,
    figure1,
    table1,
    table2,
)
from repro.eval.figures import format_figure1, series_csv
from repro.eval.tables import format_ablation, format_table1, format_table2


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["bench"]:
        # the wall-clock harness owns its full option set (see bench.py)
        from repro.eval.bench import main as bench_main

        return bench_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the evaluation of the Skil paper (HPDC '96).",
    )
    parser.add_argument(
        "what",
        choices=["table1", "table2", "figure1", "ablations", "all", "trace",
                 "analyze"],
        help="which artefact to regenerate ('trace': profile one run; "
        "'analyze': critical-path/straggler analysis of one run)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="problem-size scale in (0, 1]; 1.0 = the paper's sizes",
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit figure series as CSV too"
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write each artefact into DIR (table1.txt, table2.txt, "
        "figure1.txt, figure1_*.csv, ablations.txt)",
    )
    parser.add_argument(
        "--app",
        choices=["shpaths", "gauss", "gauss-full"],
        default="gauss-full",
        help="trace/analyze: which application to run",
    )
    parser.add_argument(
        "--p", type=int, default=9, help="trace/analyze: number of processors"
    )
    parser.add_argument(
        "--n", type=int, default=48, help="trace/analyze: problem size"
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="trace: write a Chrome trace-event JSON (open in Perfetto)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="trace: write the metrics registry in Prometheus text format",
    )
    parser.add_argument(
        "--level",
        type=int,
        choices=[1, 2],
        default=2,
        help="trace: 1 = spans + metrics, 2 = also per-rank timeline",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        default=None,
        help="analyze: write the analysis snapshot (repro-analyze/1 JSON)",
    )
    parser.add_argument(
        "--no-whatif",
        action="store_true",
        help="analyze: skip the perturbed-cost what-if replays",
    )
    parser.add_argument(
        "--top", type=int, default=8,
        help="analyze: rows in the blocking-edge/imbalance tables",
    )
    args = parser.parse_args(argv)
    if not (0 < args.scale <= 1.0):
        parser.error("--scale must be in (0, 1]")

    if args.what == "trace":
        from repro.eval.tracecmd import run_trace_command

        print(
            run_trace_command(
                args.app, p=args.p, n=args.n, out=args.json,
                trace_level=args.level, metrics_out=args.metrics_out,
            )
        )
        return 0

    if args.what == "analyze":
        from repro.eval.tracecmd import run_analyze_command

        print(
            run_analyze_command(
                args.app, p=args.p, n=args.n, top=args.top,
                whatif=not args.no_whatif, json_out=args.json_out,
            )
        )
        return 0

    outdir = None
    if args.out is not None:
        from pathlib import Path

        outdir = Path(args.out)
        outdir.mkdir(parents=True, exist_ok=True)

    def emit(name: str, text: str) -> None:
        print(text)
        print()
        if outdir is not None:
            (outdir / name).write_text(text + "\n")

    if args.what in ("table1", "all"):
        emit("table1.txt", format_table1(table1(scale=args.scale)))
    if args.what in ("table2", "figure1", "all"):
        cells = table2(scale=args.scale)
        if args.what in ("table2", "all"):
            emit("table2.txt", format_table2(cells))
        if args.what in ("figure1", "all"):
            ups, downs = figure1(cells)
            emit("figure1.txt", format_figure1(ups, downs))
            if args.csv or outdir is not None:
                up_csv = series_csv(ups, "speedup_vs_dpfl")
                down_csv = series_csv(downs, "slowdown_vs_c")
                if args.csv:
                    print(up_csv)
                    print(down_csv)
                if outdir is not None:
                    (outdir / "figure1_speedups.csv").write_text(up_csv + "\n")
                    (outdir / "figure1_slowdowns.csv").write_text(down_csv + "\n")
    if args.what in ("ablations", "all"):
        texts = [
            format_ablation(ab)
            for ab in (
                ablation_equal_c(scale=args.scale),
                ablation_full_gauss(scale=args.scale),
                ablation_instantiation(scale=args.scale),
                ablation_topology(scale=args.scale),
                ablation_sync_comm(scale=args.scale),
            )
        ]
        emit("ablations.txt", "\n\n".join(texts))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The ``profile`` subcommand: sim-vs-wall correlation for one run.

``python -m repro.eval profile --app gauss --p 16 --backend mp`` runs
the app four times:

1. **unprofiled** on the target backend — the wall-clock baseline the
   profiler overhead is measured against;
2. **profiled** on the target backend — the run everything below is
   reported from.  Its simulated seconds, :class:`TraceStats` and
   metrics exposition are compared **bitwise** against run 1: profiling
   must not perturb the cost model (the command exits nonzero if it
   does);
3. **profiled** on the ``sim`` backend at the same ``p`` — the
   single-process wall reference that measured wall speedup is computed
   against (skipped when the target *is* sim);
4. unprofiled ``sim`` at ``p = 1`` — the simulated serial baseline, so
   per-skeleton *simulated* speedup can sit next to the *measured* wall
   speedup.

The report correlates the two clocks per skeleton, shows parallel
efficiency against ``--workers``, and prints the wall attribution
(ship / dispatch / kernel / idle), which must sum to the measured wall
within :data:`~repro.obs.prof.ATTRIBUTION_TOL` (exits nonzero
otherwise — the CI ``profile-smoke`` job relies on both checks).
``--json-out``/``--profile-out`` write the ``repro-profile/1``
snapshot.
"""

from __future__ import annotations

import json
import time

from repro.eval.tracecmd import run_traced
from repro.machine.backend import backend_default, default_workers
from repro.obs.prof import ATTRIBUTION_TOL, PROFILE_SCHEMA

__all__ = ["run_profile_command", "profile_snapshot_text"]


def _stats_tuple(stats) -> tuple:
    return (
        stats.messages,
        stats.bytes_sent,
        stats.hops_crossed,
        stats.comm_seconds,
        stats.idle_seconds,
        stats.compute_seconds,
        stats.skeleton_calls,
    )


def _fingerprint(machine) -> tuple:
    """Everything profiling must not perturb, in comparable form."""
    metrics = (
        machine.metrics.render_text() if machine.metrics is not None else ""
    )
    return (machine.time, _stats_tuple(machine.stats), metrics)


def _per_skeleton_sim(tracer) -> dict[str, dict]:
    """Simulated seconds of the root skeleton spans, grouped by name."""
    out: dict[str, dict] = {}
    for s in tracer.closed_spans():
        if len(tracer.path(s)) != 1:
            continue
        agg = out.setdefault(s.name, {"calls": 0, "sim_s": 0.0})
        agg["calls"] += 1
        agg["sim_s"] += s.duration
    return out


def _timed_run(app, p, n, seed, backend, workers, profile):
    t0 = time.perf_counter()
    run = run_traced(
        app, p=p, n=n, trace_level=1, seed=seed,
        backend=backend, workers=workers, profile=profile,
    )
    return run, time.perf_counter() - t0


def run_profile_command(
    app: str = "gauss",
    p: int = 16,
    n: int = 48,
    seed: int = 0,
    backend: str | None = None,
    workers: int | None = None,
    json_out: str | None = None,
    quiet: bool = False,
) -> tuple[str, int]:
    """Run the four-run sim-vs-wall protocol; returns ``(text, rc)``.

    ``rc`` is nonzero when profiling perturbed the simulated run (the
    bitwise identity check) or the wall attribution failed to sum to
    the measured wall within tolerance.
    """
    backend = backend if backend is not None else backend_default()
    workers = workers if workers is not None else default_workers(p)

    run_off, wall_off = _timed_run(app, p, n, seed, backend, workers, False)
    fp_off = _fingerprint(run_off.machine)
    n_eff = run_off.n
    run_off.machine.close()

    run_on, wall_on = _timed_run(app, p, n, seed, backend, workers, True)
    fp_on = _fingerprint(run_on.machine)
    sim_identical = fp_off == fp_on
    prof = run_on.machine.profiler
    sim_per_skel = _per_skeleton_sim(run_on.machine.tracer)
    sim_seconds = run_on.machine.time
    run_on.machine.close()

    if backend == "sim":
        sim_wall_per_skel = prof.per_skeleton_wall()
        sim_measured_wall = prof.skeleton_wall_s()
    else:
        run_ref, _ = _timed_run(app, p, n, seed, "sim", workers, True)
        sim_wall_per_skel = run_ref.machine.profiler.per_skeleton_wall()
        sim_measured_wall = run_ref.machine.profiler.skeleton_wall_s()
        run_ref.machine.close()

    run_serial, _ = _timed_run(app, 1, n_eff, seed, "sim", 1, False)
    serial_per_skel = _per_skeleton_sim(run_serial.machine.tracer)
    serial_sim_seconds = run_serial.machine.time
    run_serial.machine.close()

    attr = prof.attribution()
    attribution_ok = prof.attribution_ok(attr)
    measured_wall = attr["measured_wall_s"]
    stats = prof.worker_stats()

    wall_per_skel = prof.per_skeleton_wall()
    skeletons = []
    for name in sorted(wall_per_skel):
        wall = wall_per_skel[name]
        sim = sim_per_skel.get(name, {})
        serial = serial_per_skel.get(name, {})
        ref = sim_wall_per_skel.get(name, {})
        sim_s = sim.get("sim_s", 0.0)
        ref_wall = ref.get("wall_s", 0.0)
        skeletons.append(
            {
                "name": name,
                "calls": wall["calls"],
                "sim_s": sim_s,
                "wall_s": wall["wall_s"],
                "sim_speedup": (
                    serial.get("sim_s", 0.0) / sim_s if sim_s > 0 else None
                ),
                "wall_speedup": (
                    ref_wall / wall["wall_s"] if wall["wall_s"] > 0 else None
                ),
            }
        )

    wall_speedup = (
        sim_measured_wall / measured_wall if measured_wall > 0 else None
    )
    snapshot = {
        "schema": PROFILE_SCHEMA,
        "app": app,
        "p": p,
        "n": n_eff,
        "seed": seed,
        "backend": backend,
        "workers": workers,
        "sim_seconds": sim_seconds,
        "serial_sim_seconds": serial_sim_seconds,
        "sim_speedup": (
            serial_sim_seconds / sim_seconds if sim_seconds > 0 else None
        ),
        "sim_identical": sim_identical,
        "unprofiled_wall_s": wall_off,
        "profiled_wall_s": wall_on,
        "profile_overhead": wall_on / wall_off if wall_off > 0 else None,
        "measured_wall_s": measured_wall,
        "sim_backend_wall_s": sim_measured_wall,
        "wall_speedup_vs_sim": wall_speedup,
        "parallel_efficiency": (
            wall_speedup / workers if wall_speedup is not None else None
        ),
        "attribution": {
            "ship_s": attr["ship_s"],
            "dispatch_s": attr["dispatch_s"],
            "kernel_s": attr["kernel_s"],
            "idle_s": attr["idle_s"],
        },
        "attribution_tol": ATTRIBUTION_TOL,
        "attribution_ok": attribution_ok,
        "skeletons": skeletons,
        "dispatch_calls": len(prof.dispatches),
        "dispatch_blocks": sum(len(d.blocks) for d in prof.dispatches),
        "worker_stats": stats["workers"],
        "imbalance": stats["imbalance"],
        "metrics": prof.metrics.snapshot(),
    }

    text = profile_snapshot_text(snapshot)
    if json_out is not None:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if not quiet:
            text += f"\n\nprofile snapshot written to {json_out}"
    rc = 0 if (sim_identical and attribution_ok) else 1
    return text, rc


def _fmt_x(value) -> str:
    return f"{value:.2f}x" if value is not None else "-"


def profile_snapshot_text(snap: dict) -> str:
    """Human-readable report of a ``repro-profile/1`` snapshot."""
    header = (
        f"profile {snap['app']} p={snap['p']} n={snap['n']} "
        f"backend={snap['backend']} workers={snap['workers']} "
        f"(seed {snap['seed']})"
    )
    lines = [header, "=" * len(header)]
    lines.append(
        f"simulated: {snap['sim_seconds']:.6f}s "
        f"(serial {snap['serial_sim_seconds']:.6f}s, "
        f"speedup {_fmt_x(snap['sim_speedup'])})"
    )
    lines.append(
        f"wall: measured {snap['measured_wall_s']:.4f}s, "
        f"sim-backend reference {snap['sim_backend_wall_s']:.4f}s, "
        f"speedup {_fmt_x(snap['wall_speedup_vs_sim'])}, "
        f"parallel efficiency {_fmt_x(snap['parallel_efficiency'])} "
        f"over {snap['workers']} workers"
    )
    lines.append(
        f"profiler overhead: {_fmt_x(snap['profile_overhead'])} "
        f"({snap['profiled_wall_s']:.3f}s profiled vs "
        f"{snap['unprofiled_wall_s']:.3f}s unprofiled, whole command)"
    )
    ident = "IDENTICAL" if snap["sim_identical"] else "PERTURBED"
    lines.append(
        f"cost-model identity with profiling on vs off: {ident} "
        "(clocks + stats + metrics, bitwise)"
    )
    attr = snap["attribution"]
    total = sum(attr.values())
    mw = snap["measured_wall_s"]
    lines.append("")
    lines.append("wall attribution (of measured skeleton wall):")
    for key in ("ship_s", "dispatch_s", "kernel_s", "idle_s"):
        share = attr[key] / mw if mw > 0 else 0.0
        lines.append(
            f"  {key[:-2]:<10}{attr[key]:>10.4f}s{share:>8.1%}"
        )
    ok = "ok" if snap["attribution_ok"] else "FAILED"
    lines.append(
        f"  sum {total:.4f}s vs measured {mw:.4f}s "
        f"(tolerance {snap['attribution_tol']:.0%}): {ok}"
    )
    lines.append("")
    lines.append(
        f"{'skeleton':<26}{'calls':>6}{'sim [s]':>10}{'wall [s]':>10}"
        f"{'sim x':>8}{'wall x':>8}"
    )
    for s in sorted(snap["skeletons"], key=lambda s: -s["wall_s"]):
        lines.append(
            f"{s['name']:<26}{s['calls']:>6}{s['sim_s']:>10.5f}"
            f"{s['wall_s']:>10.5f}"
            f"{_fmt_x(s['sim_speedup']):>8}{_fmt_x(s['wall_speedup']):>8}"
        )
    if snap["worker_stats"]:
        lines.append("")
        lines.append(
            f"workers: {len(snap['worker_stats'])} used, "
            f"imbalance {_fmt_x(snap['imbalance'])} (max/mean busy); "
            f"{snap['dispatch_calls']} dispatches, "
            f"{snap['dispatch_blocks']} blocks"
        )
        for w in snap["worker_stats"]:
            lines.append(
                f"  worker {w['worker']}: busy {w['busy_s']:.4f}s, "
                f"utilization {w['utilization']:.1%} of dispatch windows"
            )
    else:
        lines.append("")
        lines.append(
            "workers: none dispatched (sim backend inlines kernels on "
            "the main thread)"
        )
    return "\n".join(lines)

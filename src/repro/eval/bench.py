"""Wall-clock benchmark harness: ``python -m repro.eval bench``.

Simulated seconds are charged analytically and never depend on how fast
the Python host executes — but *wall-clock* does, and the ROADMAP's
"runs as fast as the hardware allows" goal is about wall-clock.  This
harness times the skeleton hot paths twice, once with the fused
whole-array execution layer enabled and once with it disabled (the
historical per-rank path), and records both together with their
speedup into ``BENCH_perf.json``:

* **microbenchmarks** — ``map`` / ``zip`` / ``fold`` / ``create`` /
  ``copy`` plus the fused-communication paths ``genmult`` /
  ``broadcast_part`` / ``permute_rows`` / ``scan`` at ``p ∈ {4, 16, 64}``
  over seeded block-distributed arrays.
  Only the skeleton calls are inside the timed region; setup (machine
  construction, RNG data generation, initial distribution) happens once
  per mode, untimed, so the ratio measures skeleton execution and not
  harness overhead shared by both paths;
* **end-to-end drivers** — one Table 1 cell (shortest paths) and one
  Table 2 cell (Gaussian elimination), plus (without ``--quick``) the
  full ``python -m repro.eval all`` driver set.  These are timed whole —
  for an end-to-end driver the setup is part of the workload.

Every pair of runs also asserts that the **simulated** seconds are
bit-identical between the fused and per-rank paths — the harness
doubles as the perf-equivalence gate.

``--check-against FILE`` compares the measured fused speedups of the
``map``/``fold``/``genmult``/``broadcast_part`` microbenchmarks against
a previously committed ``BENCH_perf.json`` and fails (exit 1) when any
of them regressed by more than 25 % — the CI ``bench-smoke`` contract.

``--backend threads|mp`` additionally times the dispatch-eligible
micros (``map``/``fold``) plus the communication-bound ``genmult`` on
the requested real execution backend and records wall-clock vs the sim
backend — together with the host's core count — into a ``backend``
section of the report.  Simulated seconds must stay bit-identical
(the backends never touch the cost model); on a host with ≥ 2 cores
the ``threads`` ``map`` ``p=16`` micro is additionally gated at
:data:`THREADS_MAP_SPEEDUP_FLOOR` × over sim.

The ``fusion`` section pairs each workload with *compiler-level*
skeleton fusion off vs on (:mod:`repro.lang.fusion`).  These pairs are
deliberately **not** sim-identical — eliminating whole skeleton rounds
is the point — so the gates are: values bit-equal, fused simulated
seconds ≤ unfused, and the ``map_map`` micro keeps a
≥ :data:`FUSION_ROUNDS_FLOOR` × round reduction.

``--section NAME`` reruns exactly one section (``microbench``,
``end_to_end``, ``scale``, ``obs_overhead``, ``profile_overhead``,
``fusion`` or ``backend``) and merges it into the ``--out`` report,
leaving the other sections of an existing file untouched —
``repro.obs.regress`` treats sections absent from a baseline as
informational, so a merged report stays comparable.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable

import numpy as np

BENCH_SCHEMA = "repro-bench/1"

#: processor counts exercised by the microbenchmarks
MICRO_PS = (4, 16, 64)

#: regression tolerance for --check-against (fraction of the committed
#: speedup that must still be reached)
REGRESSION_FLOOR = 0.75

#: microbenchmark names gated by --check-against, mapped to the
#: processor counts whose speedup is gated (None = every p).  map/fold
#: speedup ratios are stable across problem sizes, so the quick CI run
#: can be held against the committed full-size run at every p; the
#: communication micros are gated at p = 64 only — the regime the batch
#: charging targets — because their mid-p ratios swing with the smaller
#: ``--quick`` sizes.
GATED_MICROS = {
    "map": None,
    "fold": None,
    "genmult": (64,),
    "broadcast_part": (64,),
}

#: absolute ceiling on the stream-mode wall-clock overhead relative to
#: trace-off (the ``obs_overhead`` gate).  Streaming charges one
#: vectorized aggregate update per communication wave, so its overhead
#: is a small constant factor; 8x leaves generous headroom for host
#: noise while still catching an accidental per-message Python loop.
OBS_OVERHEAD_LIMIT = 8.0

#: processor counts for the extreme-scale collective micros — the
#: closed-form charging tier must stay cheap all the way to 2^16 ranks
SCALE_PS = (1024, 4096, 16384, 65536)

#: collectives timed in the scale section (one call each, wall-clock)
SCALE_COLLECTIVES = ("broadcast", "allreduce", "gather")

#: micros timed under a real backend (--backend): the two block-dispatch
#: paths plus the communication-bound genmult (which must *not* slow
#: down — its rotations stay in the main process)
BACKEND_MICROS = ("map", "fold", "genmult")

#: processor counts for the backend section (64 would leave sub-cache
#: blocks per rank — not the regime real dispatch targets)
BACKEND_MICRO_PS = (4, 16)

#: CI floor for the threads map p=16 wall-clock speedup over sim on a
#: multi-core host; single-core hosts skip the gate (there is no
#: parallel hardware for the thread pool to win on)
THREADS_MAP_SPEEDUP_FLOOR = 1.5

#: ceiling on the wall-clock cost of attaching the wall profiler
#: (``profile_overhead`` gate): a profiled run may be at most this much
#: slower than the same run unprofiled.  The profiler adds two
#: ``monotonic()`` stamps per block plus O(1) bookkeeping per dispatch,
#: so 1.25x is generous; blowing it means a hot-path regression.
PROFILE_OVERHEAD_LIMIT = 1.25

#: CI floor on the skeleton-round ratio of the fused map∘map micro:
#: compiler-level fusion must eliminate at least 1.3x of the unfused
#: program's rounds (the guaranteed collapse is 7 -> 4: one map pair,
#: the temp's create and its destroy all disappear)
FUSION_ROUNDS_FLOOR = 1.3

#: the sections a ``--section`` run may regenerate in isolation
BENCH_SECTION_NAMES = (
    "microbench", "end_to_end", "scale", "obs_overhead",
    "profile_overhead", "fusion", "backend",
)

#: the fused map∘map micro: two maps through a temporary that dies
#: right after — the compiler pass collapses the pair to one map,
#: deletes the temp's create/destroy, and elides the dead inits
_FUSION_MAPMAP_SRC = """\
int ramp (Index ix) { return ix[0] %% 9973; }
int step1 (int v, Index ix) { return ((v * 3 + 1) %% 9973); }
int step2 (int v, Index ix) { return ((v * 5 + 2) %% 9973); }

array<int> entry () {
  array<int> a, t, b;
  a = array_create (1, {%d}, {0}, {-1}, ramp, DISTR_DEFAULT);
  t = array_create (1, {%d}, {0}, {-1}, ramp, DISTR_DEFAULT);
  b = array_create (1, {%d}, {0}, {-1}, ramp, DISTR_DEFAULT);
  array_map (step1, a, t);
  array_map (step2, t, b);
  array_destroy (t);
  array_destroy (a);
  return b;
}
"""


def _set_fusion(enabled: bool) -> bool:
    """Flip the global fusion default; returns False when the fused
    layer is not available (pre-optimization baseline capture)."""
    try:
        from repro.skeletons.fuse import set_fusion_default
    except ImportError:
        return False
    set_fusion_default(enabled)
    return True


def _fusion_available() -> bool:
    try:
        from repro.skeletons import fuse  # noqa: F401
    except ImportError:
        return False
    return True


def _time_best(fn: Callable[[], float], repeat: int) -> tuple[float, float]:
    """Run *fn* ``repeat`` times; returns (best wall seconds, simulated
    seconds of the last run).  *fn* returns the run's simulated time."""
    best = float("inf")
    sim = 0.0
    for _ in range(repeat):
        t0 = time.perf_counter()
        sim = fn()
        best = min(best, time.perf_counter() - t0)
    return best, sim


# ---------------------------------------------------------------------------
# microbenchmarks — each is a *factory*: called once per execution mode it
# does the (untimed) setup and returns the measured closure, which runs the
# skeleton loop and returns the machine's accumulated simulated seconds
# ---------------------------------------------------------------------------
def _micro_ctx(p: int):
    from repro.machine.machine import Machine
    from repro.skeletons import SkilContext

    return SkilContext(Machine(p))


def _seed_data(shape: tuple[int, ...], seed: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=shape)


def _micro_map(p: int, n: int, m: int, iters: int, seed: int) -> Callable[[], float]:
    from repro.arrays.darray import DistArray
    from repro.skeletons import skil_fn

    ctx = _micro_ctx(p)
    src = DistArray.from_global(ctx.machine, _seed_data((n, m), seed))
    dst = DistArray.from_global(ctx.machine, np.zeros((n, m)))
    f = skil_fn(
        ops=2, vectorized=lambda block, grids, env: block * 1.0001 + grids[0]
    )(lambda v, ix: v * 1.0001 + ix[0])

    def run() -> float:
        for _ in range(iters):
            ctx.array_map(f, src, dst)
        return ctx.machine.time

    return run


def _micro_zip(p: int, n: int, m: int, iters: int, seed: int) -> Callable[[], float]:
    from repro.arrays.darray import DistArray
    from repro.skeletons import skil_fn

    ctx = _micro_ctx(p)
    a = DistArray.from_global(ctx.machine, _seed_data((n, m), seed))
    b = DistArray.from_global(ctx.machine, _seed_data((n, m), seed + 1))
    dst = DistArray.from_global(ctx.machine, np.zeros((n, m)))
    f = skil_fn(
        ops=2, vectorized=lambda ba, bb, grids, env: ba * bb + grids[1]
    )(lambda x, y, ix: x * y + ix[1])

    def run() -> float:
        for _ in range(iters):
            ctx.array_zip(f, a, b, dst)
        return ctx.machine.time

    return run


def _micro_fold(p: int, n: int, m: int, iters: int, seed: int) -> Callable[[], float]:
    from repro.arrays.darray import DistArray
    from repro.skeletons import PLUS, skil_fn

    ctx = _micro_ctx(p)
    arr = DistArray.from_global(ctx.machine, _seed_data((n, m), seed))
    conv = skil_fn(
        ops=2, vectorized=lambda block, grids, env: block * block + grids[0]
    )(lambda v, ix: v * v + ix[0])

    def run() -> float:
        acc = 0.0
        for _ in range(iters):
            acc += ctx.array_fold(conv, PLUS, arr)
        assert np.isfinite(acc)
        return ctx.machine.time

    return run


def _micro_create(p: int, n: int, m: int, iters: int, seed: int) -> Callable[[], float]:
    from repro.skeletons import skil_fn

    ctx = _micro_ctx(p)
    data = _seed_data((n, m), seed)
    init = skil_fn(
        ops=1, vectorized=lambda grids, env: data[grids[0], grids[1]]
    )(lambda ix: data[ix])

    def run() -> float:
        for _ in range(iters):
            arr = ctx.array_create(2, (n, m), (0, 0), (-1, -1), init)
            ctx.array_destroy(arr)
        return ctx.machine.time

    return run


def _micro_copy(p: int, n: int, m: int, iters: int, seed: int) -> Callable[[], float]:
    from repro.arrays.darray import DistArray

    ctx = _micro_ctx(p)
    src = DistArray.from_global(ctx.machine, _seed_data((n, m), seed))
    dst = DistArray.from_global(ctx.machine, np.zeros((n, m)))

    def run() -> float:
        for _ in range(iters):
            ctx.array_copy(src, dst)
        return ctx.machine.time

    return run


def _micro_genmult(p: int, n: int, m: int, iters: int, seed: int) -> Callable[[], float]:
    """Min-plus semiring product (the generic chunked path, not BLAS) on
    a square torus — exercises the batched rotations and per-rank-batched
    semiring reductions.  The matrix side is ``m // 4`` (divisible by
    every torus grid in MICRO_PS): small per-processor partitions, the
    communication/orchestration-bound regime of Gentleman's algorithm
    that the rotation fusion targets (cf. the paper's 64-transputer
    shortest-paths runs)."""
    from repro.arrays.darray import DistArray
    from repro.machine.machine import DISTR_TORUS2D
    from repro.skeletons import MIN, PLUS

    side = m // 4
    ctx = _micro_ctx(p)
    a = DistArray.from_global(
        ctx.machine, _seed_data((side, side), seed) + 2.0, DISTR_TORUS2D
    )
    b = DistArray.from_global(
        ctx.machine, _seed_data((side, side), seed + 1) + 2.0, DISTR_TORUS2D
    )
    c = DistArray.from_global(ctx.machine, np.zeros((side, side)), DISTR_TORUS2D)
    reps = max(1, iters - 3)

    def run() -> float:
        for _ in range(reps):
            ctx.array_gen_mult(a, b, MIN, PLUS, c)
        return ctx.machine.time

    return run


def _micro_bcastpart(p: int, n: int, m: int, iters: int, seed: int) -> Callable[[], float]:
    from repro.arrays.darray import DistArray

    ctx = _micro_ctx(p)
    arr = DistArray.from_global(ctx.machine, _seed_data((n, m), seed))

    def run() -> float:
        for i in range(iters):
            ctx.array_broadcast_part(arr, (i % n, (i * 7) % m))
        return ctx.machine.time

    return run


def _micro_permute(p: int, n: int, m: int, iters: int, seed: int) -> Callable[[], float]:
    from repro.arrays.darray import DistArray

    ctx = _micro_ctx(p)
    src = DistArray.from_global(ctx.machine, _seed_data((n, m), seed))
    dst = DistArray.from_global(ctx.machine, np.zeros((n, m)))

    def shuffle(i: int) -> int:
        return (5 * i + 3) % n

    shuffle.ops = 2.0
    shuffle.perm_vectorized = lambda ix: (5 * ix + 3) % n

    def run() -> float:
        for _ in range(iters):
            ctx.array_permute_rows(src, shuffle, dst)
        return ctx.machine.time

    return run


def _micro_scan(p: int, n: int, m: int, iters: int, seed: int) -> Callable[[], float]:
    from repro.arrays.darray import DistArray
    from repro.skeletons import PLUS

    ctx = _micro_ctx(p)
    src = DistArray.from_global(
        ctx.machine, _seed_data((n * m,), seed) * 1e-3
    )
    dst = DistArray.from_global(ctx.machine, np.zeros(n * m))

    def run() -> float:
        for _ in range(iters):
            ctx.array_scan(PLUS, src, dst)
        return ctx.machine.time

    return run


MICROBENCHES: dict[str, Callable[[int, int, int, int, int], Callable[[], float]]] = {
    "map": _micro_map,
    "zip": _micro_zip,
    "fold": _micro_fold,
    "create": _micro_create,
    "copy": _micro_copy,
    "genmult": _micro_genmult,
    "broadcast_part": _micro_bcastpart,
    "permute_rows": _micro_permute,
    "scan": _micro_scan,
}


# ---------------------------------------------------------------------------
# end-to-end drivers
# ---------------------------------------------------------------------------
def _e2e_shpaths(p: int, n: int, seed: int) -> float:
    from repro.eval.harness import run_shpaths

    return run_shpaths("skil", p, n, seed=seed).seconds


def _e2e_gauss(p: int, n: int, seed: int) -> float:
    from repro.eval.harness import run_gauss

    return run_gauss("skil", p, n - n % p, seed=seed).seconds


def _e2e_eval_all(scale: float) -> float:
    """The whole ``python -m repro.eval all`` driver set; returns the sum
    of all simulated seconds as the invariance fingerprint."""
    from repro.eval.experiments import (
        ablation_equal_c,
        ablation_full_gauss,
        ablation_instantiation,
        ablation_sync_comm,
        ablation_topology,
        table1,
        table2,
    )

    total = 0.0
    total += sum(r.skil_seconds + r.dpfl_seconds + r.c_old_seconds
                 for r in table1(scale=scale))
    total += sum(c.skil_seconds + c.c_seconds + (c.dpfl_seconds or 0.0)
                 for c in table2(scale=scale))
    for ab in (
        ablation_equal_c(scale=scale),
        ablation_full_gauss(scale=scale),
        ablation_instantiation(scale=scale),
        ablation_topology(scale=scale),
        ablation_sync_comm(scale=scale),
    ):
        total += ab.measured_ratio
    return total


# ---------------------------------------------------------------------------
# observability overhead — how much wall-clock the trace modes cost
# ---------------------------------------------------------------------------
def run_obs_overhead(quick: bool, repeat: int, seed: int) -> dict:
    """Time one shortest-paths run at trace off / record / stream.

    Asserts the simulated makespan is bit-identical across all three
    (tracing must never perturb the simulation) and reports the
    wall-clock overhead factors; ``stream_overhead`` is gated against
    :data:`OBS_OVERHEAD_LIMIT` by ``main``.
    """
    from repro.eval.tracecmd import run_traced

    p, n = (16, 16) if quick else (64, 48)

    def _runner(mode: str) -> Callable[[], float]:
        def run() -> float:
            machine = run_traced(
                "shpaths",
                p=p,
                n=n,
                seed=seed,
                trace_level=0 if mode == "off" else 2,
                trace_mode="stream" if mode == "stream" else "record",
            ).machine
            return machine.time

        return run

    off_s, sim_off = _time_best(_runner("off"), repeat)
    record_s, sim_record = _time_best(_runner("record"), repeat)
    stream_s, sim_stream = _time_best(_runner("stream"), repeat)
    return {
        "name": "obs_overhead_shpaths",
        "p": p,
        "n": n,
        "off_s": round(off_s, 6),
        "record_s": round(record_s, 6),
        "stream_s": round(stream_s, 6),
        "record_overhead": round(record_s / off_s, 3) if off_s > 0 else None,
        "stream_overhead": round(stream_s / off_s, 3) if off_s > 0 else None,
        "sim_seconds": sim_off,
        "sim_identical": sim_off == sim_record == sim_stream,
    }


def run_profile_overhead(quick: bool, repeat: int, seed: int) -> dict:
    """Time one gauss run on the threads backend, profiler off vs on.

    The wall profiler must be near-free when attached: the ``overhead``
    factor is gated against :data:`PROFILE_OVERHEAD_LIMIT` by ``main``,
    and the simulated makespan must stay bit-identical (profiling reads
    wall clocks only, never the cost model).  gauss is the app whose
    kernels actually dispatch to workers, so the per-block stamping hot
    path is exercised for real.
    """
    from repro.eval.tracecmd import run_traced

    p, n = (16, 32) if quick else (64, 64)

    def _runner(profile: bool) -> Callable[[], float]:
        def run() -> float:
            r = run_traced(
                "gauss", p=p, n=n, seed=seed, trace_level=0,
                backend="threads", workers=2, profile=profile,
            )
            sim = r.machine.time
            r.machine.close()
            return sim

        return run

    off_s, sim_off = _time_best(_runner(False), repeat)
    profiled_s, sim_on = _time_best(_runner(True), repeat)
    return {
        "name": "profile_overhead_gauss",
        "backend": "threads",
        "workers": 2,
        "p": p,
        "n": n,
        "off_s": round(off_s, 6),
        "profiled_s": round(profiled_s, 6),
        "overhead": round(profiled_s / off_s, 3) if off_s > 0 else None,
        "sim_seconds": sim_off,
        "sim_identical": sim_off == sim_on,
        "limit": PROFILE_OVERHEAD_LIMIT,
    }


# ---------------------------------------------------------------------------
# extreme scale — closed-form collectives at p up to 65536
# ---------------------------------------------------------------------------
def run_scale_bench(quick: bool, seed: int = 0) -> list[dict]:
    """Time one closed-form collective call per (name, p) at extreme p.

    The point of the closed-form tier is that a collective at
    p = 65536 charges ``O(log p)`` vectorized waves instead of ``O(p)``
    Python iterations, and allocates ``O(p)`` scaffolding instead of a
    dense ``(p, p)`` hop matrix.  Simulated seconds and message counts
    are deterministic; ``wall_s`` documents that a full collective at
    2^16 ranks costs milliseconds.
    """
    from repro.machine.machine import Machine

    entries: list[dict] = []
    ps = SCALE_PS[:2] if quick else SCALE_PS
    nbytes = 4096
    for p in ps:
        for name in SCALE_COLLECTIVES:
            machine = Machine(p, trace_level=0)
            net = machine.network
            topo = machine.topology()
            t0 = time.perf_counter()
            if name == "broadcast":
                net.broadcast(0, nbytes, topo)
            elif name == "allreduce":
                net.allreduce(nbytes, topo, combine_seconds=1e-6)
            else:
                net.gather(0, nbytes, topo)
            wall = time.perf_counter() - t0
            entries.append({
                "name": name,
                "p": p,
                "nbytes": nbytes,
                "wall_s": round(wall, 6),
                "sim_seconds": machine.time,
                "messages": int(net.stats.messages),
            })
            print(
                f"scale {name:9s} p={p:<6d} wall {wall:.4f}s  "
                f"sim {machine.time:.6f}s  msgs {net.stats.messages}"
            )
    return entries


# ---------------------------------------------------------------------------
# real execution backends — wall-clock vs cores
# ---------------------------------------------------------------------------
def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def run_backend_bench(
    backend: str, quick: bool, repeat: int | None, seed: int
) -> dict:
    """Time :data:`BACKEND_MICROS` under *backend* vs the sim backend.

    Uses larger arrays than the fused-vs-per-rank micros: real dispatch
    pays a fixed per-rank scheduling cost, so the honest regime is
    blocks big enough for numpy to release the GIL on.  Each micro is
    set up and timed twice — once with the sim backend, once with the
    real one — through the same factory, with the backend chosen via
    the process-wide default the factory's ``Machine(p)`` picks up.
    The simulated seconds of both runs must be bit-identical: backends
    execute kernels but never touch the analytic cost model.
    """
    from repro.machine.backend import (
        backend_default,
        default_workers,
        set_backend_default,
    )

    if repeat is None:
        repeat = 3 if quick else 5
    n, m = (256, 64) if quick else (1536, 256)
    iters = 3 if quick else 5
    cores = _host_cores()
    section: dict = {
        "backend": backend,
        "cores": cores,
        "entries": [],
    }
    prior = backend_default()
    available = _fusion_available()
    if available:
        from repro.skeletons.fuse import fusion_default

        prior_fusion = fusion_default()
    _set_fusion(True)  # block dispatch rides the fused layer
    try:
        for name in BACKEND_MICROS:
            fn = MICROBENCHES[name]
            for p in BACKEND_MICRO_PS:
                set_backend_default("sim")
                sim_s, sim_t = _time_best(fn(p, n, m, iters, seed), repeat)
                set_backend_default(backend)
                wall_s, real_t = _time_best(fn(p, n, m, iters, seed), repeat)
                entry = {
                    "name": name,
                    "p": p,
                    "n": n,
                    "m": m,
                    "iters": iters,
                    "workers": default_workers(p),
                    "sim_s": round(sim_s, 6),
                    "wall_s": round(wall_s, 6),
                    "speedup_vs_sim": round(sim_s / wall_s, 3)
                    if wall_s > 0
                    else None,
                    "sim_seconds": real_t,
                    "sim_identical": sim_t == real_t,
                }
                section["entries"].append(entry)
                print(
                    f"back  {name:7s} p={p:<3d} {backend}"
                    f"({entry['workers']}w/{cores}c) "
                    f"{entry['wall_s']:.4f}s  sim {entry['sim_s']:.4f}s  "
                    f"speedup {entry['speedup_vs_sim']}x  "
                    f"sim-identical={entry['sim_identical']}"
                )
    finally:
        set_backend_default(prior)
        if available:
            _set_fusion(prior_fusion)
    return section


# ---------------------------------------------------------------------------
# compiler-level skeleton fusion — fewer rounds, bit-equal values
# ---------------------------------------------------------------------------
def run_fusion_bench(quick: bool, repeat: int | None, seed: int) -> list[dict]:
    """Pair each workload with compiler-level fusion off vs on.

    Unlike :func:`_run_pair` this does **not** assert sim-identity —
    eliminating whole skeleton rounds is the point, so fused simulated
    seconds must be *at most* the unfused ones while the computed
    values stay bit-equal.  The ``map_map`` micro is additionally gated
    (by ``main``) at :data:`FUSION_ROUNDS_FLOOR` x fewer rounds.
    """
    from repro.lang.compiler import compile_skil
    from repro.machine.machine import Machine
    from repro.skeletons import SkilContext

    if repeat is None:
        repeat = 3 if quick else 5
    n = 256 if quick else 2048
    entries: list[dict] = []

    src = _FUSION_MAPMAP_SRC % (n, n, n)
    mod_u = compile_skil(src, fusion=False)
    mod_f = compile_skil(src, fusion=True)
    for p in MICRO_PS:
        def run_mod(mod=mod_u):
            with Machine(p) as m:
                out = mod.run("entry", ctx=SkilContext(m))
                return np.array(out.global_view()), m.stats.skeleton_calls, m.time

        unfused_s, _ = _time_best(lambda: run_mod(mod_u)[2], repeat)
        fused_s, _ = _time_best(lambda: run_mod(mod_f)[2], repeat)
        v_u, rounds_u, sim_u = run_mod(mod_u)
        v_f, rounds_f, sim_f = run_mod(mod_f)
        entry = {
            "name": "map_map",
            "p": p,
            "n": n,
            "rounds_unfused": rounds_u,
            "rounds_fused": rounds_f,
            "rounds_ratio": round(rounds_u / rounds_f, 3) if rounds_f else None,
            "sim_unfused": sim_u,
            "sim_fused": sim_f,
            "sim_seconds": sim_f,
            "unfused_s": round(unfused_s, 6),
            "fused_s": round(fused_s, 6),
            "values_equal": bool(np.array_equal(v_u, v_f)),
        }
        entries.append(entry)
        print(
            f"fusio map_map p={p:<3d} rounds {rounds_u}->{rounds_f} "
            f"({entry['rounds_ratio']}x)  sim {sim_u:.6f}->{sim_f:.6f}s  "
            f"values-equal={entry['values_equal']}"
        )

    # the Table 1/2 drivers, mirrored through ctx.fusion
    from repro.apps.gauss import gauss_full
    from repro.apps.shortest_paths import (
        random_distance_matrix,
        round_up_to_grid,
        shpaths,
    )

    p = 16
    def _driver(name, fn):
        runs = {}
        for fusion in (False, True):
            with Machine(p) as m:
                value, rep = fn(SkilContext(m, fusion=fusion))
                runs[fusion] = (np.asarray(value), m.stats.skeleton_calls,
                                rep.seconds)
        v_u, rounds_u, sim_u = runs[False]
        v_f, rounds_f, sim_f = runs[True]
        entry = {
            "name": name,
            "p": p,
            "rounds_unfused": rounds_u,
            "rounds_fused": rounds_f,
            "rounds_ratio": round(rounds_u / rounds_f, 3) if rounds_f else None,
            "sim_unfused": sim_u,
            "sim_fused": sim_f,
            "sim_seconds": sim_f,
            "values_equal": bool(np.array_equal(v_u, v_f)),
        }
        entries.append(entry)
        print(
            f"fusio {name:13s} p={p} rounds {rounds_u}->{rounds_f}  "
            f"sim {sim_u:.4f}->{sim_f:.4f}s  "
            f"values-equal={entry['values_equal']}"
        )

    shp_n = round_up_to_grid(32 if quick else 64, 4)
    dist = random_distance_matrix(shp_n, density=0.25, seed=seed)
    _driver("table1_shpaths", lambda ctx: shpaths(ctx, dist))

    g_n = 32 if quick else 64
    rng = np.random.default_rng(seed)
    a_mat = rng.standard_normal((g_n, g_n)) + g_n * np.eye(g_n)
    rhs = rng.standard_normal(g_n)
    _driver("table2_gauss", lambda ctx: gauss_full(ctx, a_mat, rhs))
    return entries


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------
def _run_pair(
    make_run: Callable[[], Callable[[], float]], repeat: int, available: bool
) -> dict:
    """Time a measurement under both execution modes.

    *make_run* is called once per mode **after** the fusion default is
    set; it performs any untimed setup and returns the closure that is
    actually timed (micros separate the two, e2e drivers time
    everything).  Checks sim-time identity between the modes.
    """
    _set_fusion(False)
    unfused_s, sim_unfused = _time_best(make_run(), repeat)
    _set_fusion(True)
    fused_s, sim_fused = _time_best(make_run(), repeat)
    entry = {
        "fused_s": round(fused_s, 6),
        "unfused_s": round(unfused_s, 6),
        "speedup": round(unfused_s / fused_s, 3) if fused_s > 0 else None,
        "sim_seconds": sim_fused,
        "sim_identical": sim_fused == sim_unfused,
    }
    if not available:
        entry["sim_identical"] = True  # single path, trivially identical
    return entry


def _default_repeat(quick: bool, repeat: int | None) -> int:
    # best-of needs headroom: the micros run low-millisecond kernels
    # where scheduler noise easily doubles a single measurement
    return repeat if repeat is not None else (3 if quick else 7)


def run_micro_section(quick: bool, repeat: int | None, seed: int) -> list[dict]:
    """The fused-vs-per-rank microbenchmarks over :data:`MICRO_PS`."""
    available = _fusion_available()
    repeat = _default_repeat(quick, repeat)
    n, m = (128, 64) if quick else (512, 192)
    iters = 3 if quick else 5
    entries: list[dict] = []
    for name, fn in MICROBENCHES.items():
        for p in MICRO_PS:
            entry = _run_pair(
                lambda fn=fn, p=p: fn(p, n, m, iters, seed), repeat, available
            )
            entry.update({"name": name, "p": p, "n": n, "m": m, "iters": iters})
            entries.append(entry)
            print(
                f"micro {name:7s} p={p:<3d} fused {entry['fused_s']:.4f}s  "
                f"per-rank {entry['unfused_s']:.4f}s  "
                f"speedup {entry['speedup']}x  "
                f"sim-identical={entry['sim_identical']}"
            )
    return entries


def run_e2e_section(
    quick: bool,
    repeat: int | None,
    seed: int,
    eval_all_scale: float | None = None,
) -> list[dict]:
    """The end-to-end fused-vs-per-rank driver timings."""
    available = _fusion_available()
    repeat = _default_repeat(quick, repeat)
    entries: list[dict] = []
    shp_n, gauss_n = (32, 32) if quick else (128, 128)
    for name, fn in (
        ("table1_shpaths", lambda: _e2e_shpaths(16, shp_n, seed)),
        ("table2_gauss", lambda: _e2e_gauss(16, gauss_n, seed)),
    ):
        entry = _run_pair(lambda fn=fn: fn, max(1, repeat - 1), available)
        entry.update({"name": name, "p": 16, "n": shp_n if "shpaths" in name else gauss_n})
        entries.append(entry)
        print(
            f"e2e   {name:15s} fused {entry['fused_s']:.3f}s  "
            f"per-rank {entry['unfused_s']:.3f}s  "
            f"speedup {entry['speedup']}x  "
            f"sim-identical={entry['sim_identical']}"
        )
    if eval_all_scale is not None:
        entry = _run_pair(
            lambda: lambda: _e2e_eval_all(eval_all_scale), 1, available
        )
        entry.update({"name": "eval_all", "scale": eval_all_scale})
        entries.append(entry)
        print(
            f"e2e   eval_all scale={eval_all_scale} "
            f"fused {entry['fused_s']:.2f}s  "
            f"per-rank {entry['unfused_s']:.2f}s  "
            f"speedup {entry['speedup']}x  "
            f"sim-identical={entry['sim_identical']}"
        )
    return entries


def _print_obs(obs: dict) -> None:
    print(
        f"obs   {obs['name']:15s} off {obs['off_s']:.4f}s  "
        f"record {obs['record_overhead']}x  stream {obs['stream_overhead']}x  "
        f"sim-identical={obs['sim_identical']}"
    )


def _print_profile(profo: dict) -> None:
    print(
        f"prof  {profo['name']:15s} off {profo['off_s']:.4f}s  "
        f"profiled {profo['profiled_s']:.4f}s  "
        f"overhead {profo['overhead']}x  "
        f"sim-identical={profo['sim_identical']}"
    )


def run_bench(
    quick: bool = False,
    repeat: int | None = None,
    seed: int = 0,
    e2e: bool = True,
    eval_all_scale: float | None = None,
) -> dict:
    """Run the benchmark suite; returns the BENCH_perf.json document."""
    available = _fusion_available()
    if available:
        from repro.skeletons.fuse import fusion_default

        prior_default = fusion_default()
    repeat = _default_repeat(quick, repeat)

    report: dict = {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "fusion_available": available,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repeat": repeat,
        "microbench": [],
        "end_to_end": [],
    }

    report["microbench"] = run_micro_section(quick, repeat, seed)
    report["scale"] = run_scale_bench(quick, seed)

    obs = run_obs_overhead(quick, repeat, seed)
    report["obs_overhead"] = obs
    _print_obs(obs)

    profo = run_profile_overhead(quick, repeat, seed)
    report["profile_overhead"] = profo
    _print_profile(profo)

    report["fusion"] = run_fusion_bench(quick, repeat, seed)

    if e2e:
        report["end_to_end"] = run_e2e_section(
            quick, repeat, seed, eval_all_scale
        )

    if available:
        _set_fusion(prior_default)
    return report


def validate_schema(doc: dict, partial: bool = False) -> list[str]:
    """Structural validation of a BENCH_perf.json document.

    *partial* relaxes the non-empty-microbench requirement — a
    ``--section`` run regenerating one section into a fresh file
    legitimately carries empty lists for the sections it did not run.
    """
    problems = []
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    for section in ("microbench", "end_to_end"):
        entries = doc.get(section)
        if not isinstance(entries, list):
            problems.append(f"{section} is not a list")
            continue
        for i, e in enumerate(entries):
            for key in ("name", "fused_s", "unfused_s", "speedup", "sim_identical"):
                if key not in e:
                    problems.append(f"{section}[{i}] missing {key!r}")
    if not doc.get("microbench") and not partial:
        problems.append("no microbenchmark entries")
    # the fusion section arrived with compiler-level skeleton fusion;
    # tolerate committed baselines written before it existed
    fus = doc.get("fusion")
    if fus is not None:
        if not isinstance(fus, list):
            problems.append("fusion is not a list")
        else:
            for i, e in enumerate(fus):
                for key in ("name", "p", "rounds_unfused", "rounds_fused",
                            "sim_unfused", "sim_fused", "values_equal"):
                    if key not in e:
                        problems.append(f"fusion[{i}] missing {key!r}")
    # the scale section arrived with the closed-form collective tier;
    # tolerate committed baselines written before it existed
    scale = doc.get("scale")
    if scale is not None:
        if not isinstance(scale, list):
            problems.append("scale is not a list")
        else:
            for i, e in enumerate(scale):
                for key in ("name", "p", "wall_s", "sim_seconds", "messages"):
                    if key not in e:
                        problems.append(f"scale[{i}] missing {key!r}")
    # the obs_overhead section arrived with the streaming layer; tolerate
    # committed baselines written before it existed
    obs = doc.get("obs_overhead")
    if obs is not None:
        for key in ("name", "off_s", "record_s", "stream_s",
                    "stream_overhead", "sim_identical"):
            if key not in obs:
                problems.append(f"obs_overhead missing {key!r}")
    # the profile_overhead section arrived with the wall profiler;
    # tolerate committed baselines written before it existed
    profo = doc.get("profile_overhead")
    if profo is not None:
        for key in ("name", "off_s", "profiled_s", "overhead",
                    "sim_identical"):
            if key not in profo:
                problems.append(f"profile_overhead missing {key!r}")
    # the backend section is optional: present only when the harness ran
    # with --backend threads|mp
    back = doc.get("backend")
    if back is not None:
        for key in ("backend", "cores", "entries"):
            if key not in back:
                problems.append(f"backend missing {key!r}")
        for i, e in enumerate(back.get("entries", [])):
            for key in ("name", "p", "workers", "sim_s", "wall_s",
                        "speedup_vs_sim", "sim_identical"):
                if key not in e:
                    problems.append(f"backend.entries[{i}] missing {key!r}")
    return problems


def check_regressions(current: dict, committed: dict) -> list[str]:
    """Compare the fused map/fold microbenchmark speedups against a
    committed baseline; returns failure messages (empty = OK)."""
    failures = []
    committed_by_key = {
        (e["name"], e["p"]): e for e in committed.get("microbench", [])
    }
    for e in current.get("microbench", []):
        if e["name"] not in GATED_MICROS:
            continue
        gated_ps = GATED_MICROS[e["name"]]
        if gated_ps is not None and e["p"] not in gated_ps:
            continue
        ref = committed_by_key.get((e["name"], e["p"]))
        if ref is None or not ref.get("speedup") or not e.get("speedup"):
            continue
        floor = REGRESSION_FLOOR * float(ref["speedup"])
        if float(e["speedup"]) < floor:
            failures.append(
                f"micro {e['name']} p={e['p']}: fused speedup "
                f"{e['speedup']}x regressed below {floor:.2f}x "
                f"(committed baseline {ref['speedup']}x, tolerance 25%)"
            )
    for e in current.get("microbench", []) + current.get("end_to_end", []):
        if not e.get("sim_identical", True):
            failures.append(
                f"{e['name']}: simulated seconds differ between fused and "
                "per-rank execution"
            )
    return failures


def run_section(
    section: str,
    quick: bool,
    repeat: int | None,
    seed: int,
    backend: str | None = None,
    eval_all_scale: float | None = None,
):
    """Run one named section; returns its value for the report key."""
    if section == "microbench":
        return run_micro_section(quick, repeat, seed)
    if section == "end_to_end":
        return run_e2e_section(quick, repeat, seed, eval_all_scale)
    if section == "scale":
        return run_scale_bench(quick, seed)
    if section == "obs_overhead":
        obs = run_obs_overhead(quick, _default_repeat(quick, repeat), seed)
        _print_obs(obs)
        return obs
    if section == "profile_overhead":
        profo = run_profile_overhead(
            quick, _default_repeat(quick, repeat), seed
        )
        _print_profile(profo)
        return profo
    if section == "fusion":
        return run_fusion_bench(quick, repeat, seed)
    if section == "backend":
        return run_backend_bench(backend, quick=quick, repeat=repeat, seed=seed)
    raise ValueError(f"unknown bench section {section!r}")


def main(argv: list[str] | None = None) -> int:
    from repro.errors import UsageError
    from repro.eval.cliopts import (
        apply_backend,
        apply_fusion,
        obs_parent,
        representative_obs_run,
        validate_fusion_flags,
        validate_profile_flags,
    )

    ap = argparse.ArgumentParser(
        prog="python -m repro.eval bench",
        description="Wall-clock benchmarks of the skeleton hot paths "
        "(fused vs per-rank execution).",
        parents=[obs_parent()],
    )
    ap.add_argument("--quick", action="store_true",
                    help="small sizes / few repeats (CI smoke)")
    ap.add_argument("--repeat", type=int, default=None,
                    help="timing repeats per measurement (best-of)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_perf.json",
                    help="output JSON path (default: BENCH_perf.json)")
    ap.add_argument("--no-e2e", action="store_true",
                    help="microbenchmarks only")
    ap.add_argument("--eval-all-scale", type=float, default=None,
                    metavar="S",
                    help="also time the full eval driver set at scale S "
                    "(slow; used for the committed perf record)")
    ap.add_argument("--check-against", metavar="FILE", default=None,
                    help="fail if fused map/fold speedups regressed >25%% "
                    "against this committed BENCH_perf.json")
    ap.add_argument("--section", choices=BENCH_SECTION_NAMES, default=None,
                    metavar="NAME",
                    help="run only this section and merge it into --out, "
                    "leaving every other section of an existing report "
                    "untouched (choices: %(choices)s)")
    args = ap.parse_args(argv)
    try:
        # bench drives backends itself, so only --workers applies here
        validate_profile_flags(args)
        validate_fusion_flags(args)
        if args.section == "backend" and args.backend not in ("threads", "mp"):
            raise UsageError(
                "--section backend needs --backend threads|mp to know "
                "which real backend to time"
            )
        apply_backend(None, args.workers)
        apply_fusion(args.fusion, args.fused)
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.section is not None:
        # regenerate one section, keep the rest of an existing report
        report = {
            "schema": BENCH_SCHEMA,
            "quick": args.quick,
            "fusion_available": _fusion_available(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repeat": _default_repeat(args.quick, args.repeat),
            "microbench": [],
            "end_to_end": [],
        }
        if os.path.exists(args.out):
            with open(args.out) as fh:
                report.update(json.load(fh))
        report[args.section] = run_section(
            args.section,
            quick=args.quick,
            repeat=args.repeat,
            seed=args.seed,
            backend=args.backend,
            eval_all_scale=args.eval_all_scale,
        )
    else:
        report = run_bench(
            quick=args.quick,
            repeat=args.repeat,
            seed=args.seed,
            e2e=not args.no_e2e,
            eval_all_scale=args.eval_all_scale,
        )
        if args.backend in ("threads", "mp"):
            report["backend"] = run_backend_bench(
                args.backend, quick=args.quick, repeat=args.repeat,
                seed=args.seed
            )
        elif args.backend == "sim":
            print("--backend sim is the baseline; no backend section recorded")
    problems = validate_schema(report, partial=args.section is not None)
    if problems:
        for pb in problems:
            print(f"SCHEMA PROBLEM: {pb}", file=sys.stderr)
        return 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if not args.quiet:
        print(f"wrote {args.out}")

    footer = representative_obs_run(
        args.trace, args.metrics_out,
        profile=args.profile, profile_path=args.profile_out,
    )
    if footer and not args.quiet:
        print("\n".join(footer))

    failures = []
    for e in report["microbench"] + report["end_to_end"]:
        if not e.get("sim_identical", True):
            failures.append(
                f"{e['name']}: simulated seconds differ between paths"
            )
    obs = report.get("obs_overhead")
    if obs is not None:
        if not obs["sim_identical"]:
            failures.append(
                f"{obs['name']}: simulated seconds differ across trace "
                "modes (tracing must not perturb the simulation)"
            )
        overhead = obs.get("stream_overhead")
        if overhead is not None and overhead > OBS_OVERHEAD_LIMIT:
            failures.append(
                f"{obs['name']}: stream-mode overhead {overhead}x exceeds "
                f"the {OBS_OVERHEAD_LIMIT}x ceiling vs trace-off"
            )
    profo = report.get("profile_overhead")
    if profo is not None:
        if not profo["sim_identical"]:
            failures.append(
                f"{profo['name']}: simulated seconds differ with the wall "
                "profiler attached (profiling must not perturb the "
                "simulation)"
            )
        overhead = profo.get("overhead")
        if overhead is not None and overhead > PROFILE_OVERHEAD_LIMIT:
            failures.append(
                f"{profo['name']}: profiled wall {overhead}x exceeds the "
                f"{PROFILE_OVERHEAD_LIMIT}x ceiling vs the unprofiled run"
            )
    fus = report.get("fusion")
    if fus is not None:
        for e in fus:
            where = f"fusion {e['name']} p={e.get('p', '?')}"
            if not e.get("values_equal", True):
                failures.append(
                    f"{where}: fused values differ from unfused "
                    "(fusion must be value-preserving)"
                )
            su, sf = e.get("sim_unfused"), e.get("sim_fused")
            if su is not None and sf is not None and sf > su:
                failures.append(
                    f"{where}: fused simulated seconds {sf:.6g} exceed "
                    f"unfused {su:.6g} (fusion made the schedule slower)"
                )
            if (
                e.get("name") == "map_map"
                and e.get("rounds_ratio") is not None
                and e["rounds_ratio"] < FUSION_ROUNDS_FLOOR
            ):
                failures.append(
                    f"{where}: rounds ratio {e['rounds_ratio']}x is below "
                    f"the {FUSION_ROUNDS_FLOOR}x floor "
                    f"({e['rounds_unfused']} -> {e['rounds_fused']} rounds)"
                )
    back = report.get("backend")
    if back is not None:
        for e in back["entries"]:
            if not e.get("sim_identical", True):
                failures.append(
                    f"backend {back['backend']} {e['name']} p={e['p']}: "
                    "simulated seconds differ from the sim backend "
                    "(backends must never touch the cost model)"
                )
        if back["backend"] == "threads" and back["cores"] >= 2:
            gate = next(
                (e for e in back["entries"]
                 if e["name"] == "map" and e["p"] == 16),
                None,
            )
            if (
                gate is not None
                and gate["speedup_vs_sim"] is not None
                and gate["speedup_vs_sim"] < THREADS_MAP_SPEEDUP_FLOOR
            ):
                failures.append(
                    f"backend threads map p=16: wall-clock speedup "
                    f"{gate['speedup_vs_sim']}x over sim is below the "
                    f"{THREADS_MAP_SPEEDUP_FLOOR}x floor on a "
                    f"{back['cores']}-core host"
                )
        elif back["cores"] < 2:
            print(
                "backend speedup gate skipped: single-core host "
                "(the thread pool has no parallel hardware to win on)"
            )
    if args.check_against is not None:
        with open(args.check_against) as fh:
            committed = json.load(fh)
        problems = validate_schema(committed)
        for pb in problems:
            failures.append(f"committed baseline schema: {pb}")
        if not problems:
            failures.extend(check_regressions(report, committed))
    for f in failures:
        print(f"BENCH FAILURE: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Regeneration of every table and figure of the paper's evaluation.

* :func:`table1` — §5.1, shortest paths: absolute Skil times, speed-up
  over DPFL, comparison against the old message-passing C.
* :func:`table2` — §5.2, Gaussian elimination: Skil absolute times
  (bold in the paper), DPFL/Skil quotient (roman), Skil/Parix-C quotient
  (italics), over n ∈ {64..640} and p ∈ {4, 16, 32, 64}.
* :func:`figure1` — the two panels plotted from the Table 2 grid:
  speed-ups vs DPFL (left) and slow-downs vs C (right) against the
  number of processors, one series per matrix size.
* :func:`ablation_equal_c`, :func:`ablation_full_gauss`,
  :func:`ablation_instantiation` — the three in-text claims indexed as
  A1, A2, A3 in DESIGN.md.

All drivers take a ``scale`` in (0, 1] shrinking the problem sizes for
quick runs; ``scale=1.0`` reproduces the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.harness import (
    ExperimentResult,
    fits_paper_memory,
    run_gauss,
    run_matmul,
    run_shpaths,
)

__all__ = [
    "Table1Row",
    "Table2Cell",
    "table1",
    "table2",
    "figure1",
    "ablation_equal_c",
    "ablation_full_gauss",
    "ablation_instantiation",
    "TABLE1_PS",
    "TABLE2_PS",
    "TABLE2_NS",
]

#: the paper's processor grids: 2x2 ... 8x8 for Table 1
TABLE1_PS = (4, 9, 16, 25, 36, 49, 64)
#: Table 2 uses 2x2, 4x4, 8x4 and 8x8 networks
TABLE2_PS = (4, 16, 32, 64)
TABLE2_NS = (64, 128, 256, 384, 512, 640)


@dataclass(frozen=True)
class Table1Row:
    p: int
    n: int
    dpfl_seconds: float
    skil_seconds: float
    c_old_seconds: float

    @property
    def speedup_vs_dpfl(self) -> float:
        return self.dpfl_seconds / self.skil_seconds

    @property
    def ratio_vs_c_old(self) -> float:
        return self.skil_seconds / self.c_old_seconds


@dataclass(frozen=True)
class Table2Cell:
    p: int
    n: int  #: actual matrix size run (nominal scaled, rounded to p | n)
    skil_seconds: float
    dpfl_seconds: float | None
    c_seconds: float
    dpfl_fits: bool
    n_nominal: int = 0  #: the paper's column label (64 ... 640)

    @property
    def dpfl_over_skil(self) -> float | None:
        if self.dpfl_seconds is None:
            return None
        return self.dpfl_seconds / self.skil_seconds

    @property
    def skil_over_c(self) -> float:
        return self.skil_seconds / self.c_seconds


def _scaled(n: int, scale: float) -> int:
    return max(8, int(round(n * scale)))


def table1(
    scale: float = 1.0, ps=TABLE1_PS, seed: int = 0, progress=None
) -> list[Table1Row]:
    """Shortest paths for ~200-node graphs on 2x2 ... 8x8 networks.

    *progress*, when given, is called with one label per grid cell
    before it runs (``eval all --progress``).
    """
    n = _scaled(200, scale)
    rows = []
    for p in ps:
        if progress is not None:
            progress(f"table1: shpaths p={p} n~{n}")
        skil = run_shpaths("skil", p, n, seed=seed)
        dpfl = run_shpaths("dpfl", p, n, seed=seed)
        c_old = run_shpaths("parix-c-old", p, n, seed=seed)
        rows.append(Table1Row(p, skil.n, dpfl.seconds, skil.seconds, c_old.seconds))
    return rows


def table2(
    scale: float = 1.0, ps=TABLE2_PS, ns=TABLE2_NS, seed: int = 0,
    progress=None,
) -> list[Table2Cell]:
    """Gaussian elimination grid (simple variant, as measured).

    *progress*, when given, is called with one label per grid cell
    before it runs (``eval all --progress``).
    """
    cells = []
    for p in ps:
        for n in ns:
            n_eff = _scaled(n, scale)
            n_eff = max(p, n_eff - (n_eff % p))  # the paper assumes p | n
            if progress is not None:
                progress(f"table2: gauss p={p} n={n_eff}")
            skil = run_gauss("skil", p, n_eff, seed=seed)
            c = run_gauss("parix-c", p, n_eff, seed=seed)
            fits = fits_paper_memory(n, p, "dpfl")
            dpfl_seconds = None
            if fits:
                dpfl_seconds = run_gauss("dpfl", p, n_eff, seed=seed).seconds
            cells.append(
                Table2Cell(
                    p, n_eff, skil.seconds, dpfl_seconds, c.seconds, fits,
                    n_nominal=n,
                )
            )
    return cells


def figure1(cells: list[Table2Cell] | None = None, scale: float = 1.0):
    """Series for the two panels of Figure 1, derived from Table 2.

    Returns ``(speedups, slowdowns)`` where each is a dict mapping the
    matrix size *n* to a list of ``(p, ratio)`` points.
    """
    if cells is None:
        cells = table2(scale=scale)
    speedups: dict[int, list[tuple[int, float]]] = {}
    slowdowns: dict[int, list[tuple[int, float]]] = {}
    for c in cells:
        label = c.n_nominal or c.n
        if c.dpfl_over_skil is not None:
            speedups.setdefault(label, []).append((c.p, c.dpfl_over_skil))
        slowdowns.setdefault(label, []).append((c.p, c.skil_over_c))
    for series in (speedups, slowdowns):
        for n in series:
            series[n].sort()
    return speedups, slowdowns


@dataclass(frozen=True)
class AblationResult:
    name: str
    description: str
    measured_ratio: float
    paper_ratio: float
    details: dict = field(default_factory=dict)


def ablation_equal_c(scale: float = 1.0, p: int = 16, seed: int = 0) -> AblationResult:
    """A1 — equally optimized C vs Skil matrix multiply (paper: ~1.2x)."""
    n = _scaled(256, scale)
    g = 4 if p == 16 else int(p**0.5)
    n -= n % g
    skil = run_matmul("skil", p, n, seed=seed)
    c = run_matmul("parix-c", p, n, seed=seed)
    return AblationResult(
        "equal-c-matmul",
        "Skil vs equally optimized message-passing C, matrix multiplication",
        skil.seconds / c.seconds,
        1.2,
        {"skil_seconds": skil.seconds, "c_seconds": c.seconds, "n": n, "p": p},
    )


def ablation_full_gauss(scale: float = 1.0, p: int = 4, seed: int = 0) -> AblationResult:
    """A2 — complete gauss (pivoting) vs simple gauss (paper: ~2x)."""
    n = _scaled(256, scale)
    n -= n % p
    simple = run_gauss("skil", p, n, full=False, seed=seed)
    full = run_gauss("skil", p, n, full=True, seed=seed)
    return AblationResult(
        "full-vs-simple-gauss",
        "Gaussian elimination with pivot search/exchange vs without",
        full.seconds / simple.seconds,
        2.0,
        {"full_seconds": full.seconds, "simple_seconds": simple.seconds, "n": n, "p": p},
    )


def ablation_topology(scale: float = 1.0, p: int = 64, seed: int = 0) -> AblationResult:
    """A4 — the virtual-topology ablation (DESIGN.md §5).

    Two levels:

    * **link level** (deterministic): a wrap-around torus edge costs
      ``sqrt(p) - 1`` hardware hops under the naive embedding but at
      most 2 under the folded one — the mechanism Parix virtual
      topologies exploit;
    * **end to end**: the same ``gen_mult`` run under both embeddings.
      A noteworthy *negative* finding of this reproduction: with
      store-and-forward costs and per-round compute, the wrap straggler
      is re-absorbed every round instead of accumulating, while the
      folded embedding pays 2 hops on *every* edge — so the end-to-end
      ratio hovers near 1.  The old C's Table-1 handicap is therefore
      dominated by its synchronous sends and scalar factor in our
      model, not by the embedding itself.

    ``measured_ratio`` is the link-level wrap-edge cost ratio
    (naive / folded); the end-to-end ratio is in ``details``.
    """
    import numpy as np

    from repro.apps.matmul import matmul
    from repro.machine.costmodel import SKIL, T800_PARSYTEC
    from repro.machine.machine import Machine
    from repro.machine.topology import Mesh2D, Torus2D
    from repro.skeletons import SkilContext

    g = int(p**0.5)
    n = _scaled(256, scale)
    n -= n % g
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (n, n))
    b = rng.uniform(-1, 1, (n, n))

    # link level: cost of one wrap-around message under each embedding
    mesh = Mesh2D.for_processors(p)
    folded_t = Torus2D(mesh, folded=True)
    naive_t = Torus2D(mesh, folded=False)
    east_of_last = folded_t.east(g - 1)  # wraps from column g-1 to column 0
    nbytes = (n // g) * (n // g) * 8
    wire_folded = T800_PARSYTEC.message_time(
        nbytes, folded_t.edge_hops(g - 1, east_of_last)
    )
    wire_naive = T800_PARSYTEC.message_time(
        nbytes, naive_t.edge_hops(g - 1, east_of_last)
    )

    folded_ctx = SkilContext(Machine(p), SKIL)
    _, rep_folded = matmul(folded_ctx, a, b)
    naive_ctx = SkilContext(Machine(p, use_virtual_topologies=False), SKIL)
    _, rep_naive = matmul(naive_ctx, a, b)
    return AblationResult(
        "virtual-topology",
        "torus wrap-edge cost naive vs folded embedding (gen_mult messages)",
        wire_naive / wire_folded,
        (g - 1) / 2.0,  # hop-count ratio the embedding should deliver
        {
            "wrap_wire_folded_s": wire_folded,
            "wrap_wire_naive_s": wire_naive,
            "end_to_end_folded_s": rep_folded.seconds,
            "end_to_end_naive_s": rep_naive.seconds,
            "end_to_end_ratio": rep_naive.seconds / rep_folded.seconds,
            "n": n,
            "p": p,
        },
    )


def ablation_sync_comm(scale: float = 1.0, p: int = 64, seed: int = 0) -> AblationResult:
    """A5 — synchronous vs asynchronous communication (DESIGN.md §5).

    The Table-1 footnote attributes part of the old C's loss to not
    using "asynchronous communication"; this runs the same Skil
    shortest-paths program with rendezvous sends everywhere.
    """
    from dataclasses import replace

    from repro.eval.harness import run_shpaths
    from repro.machine.costmodel import SKIL
    from repro.machine.machine import Machine
    from repro.skeletons import SkilContext
    from repro.apps.shortest_paths import random_distance_matrix, shpaths

    n = _scaled(200, scale)
    g = int(p**0.5)
    n += (-n) % g
    dist = random_distance_matrix(n, density=0.25, seed=seed)

    async_ctx = SkilContext(Machine(p), SKIL)
    _, rep_async = shpaths(async_ctx, dist)
    sync_profile = replace(SKIL, name="skil-sync", async_comm=False)
    sync_ctx = SkilContext(Machine(p), sync_profile)
    _, rep_sync = shpaths(sync_ctx, dist)
    return AblationResult(
        "sync-vs-async",
        "shortest paths with rendezvous sends vs asynchronous sends",
        rep_sync.seconds / rep_async.seconds,
        1.0,  # qualitative: sync must not be faster
        {"async_seconds": rep_async.seconds, "sync_seconds": rep_sync.seconds,
         "n": n, "p": p},
    )


def ablation_instantiation(
    scale: float = 1.0, p: int = 16, seed: int = 0
) -> AblationResult:
    """A3 — translation by instantiation vs classical closures.

    The paper replaces closures because they cause "important run-time
    overheads"; this measures the same skeleton program under the
    ``skil-closures`` profile.
    """
    n = _scaled(256, scale)
    n -= n % p
    inst = run_gauss("skil", p, n, seed=seed)
    clos = run_gauss("skil-closures", p, n, seed=seed)
    return AblationResult(
        "instantiation-vs-closures",
        "instantiated skeleton calls vs closure-based calls, gauss",
        clos.seconds / inst.seconds,
        1.5,  # qualitative in the paper: "important run-time overheads"
        {"closures_seconds": clos.seconds, "instantiated_seconds": inst.seconds,
         "n": n, "p": p},
    )

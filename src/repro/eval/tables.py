"""Text rendering of the reproduced tables, in the paper's layout."""

from __future__ import annotations

import math

from repro.eval.experiments import Table1Row, Table2Cell

__all__ = ["format_table1", "format_table2", "format_ablation"]


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1: run-time results for the shortest paths program.

    Columns as in the paper: grid, DPFL absolute, Skil absolute, Skil
    speed-up relative to DPFL, and the old message-passing C.
    """
    out = [
        "Table 1. Run-time results for the shortest paths program",
        f"{'grid':>6} {'n':>5} {'DPFL [s]':>10} {'Skil [s]':>10} "
        f"{'DPFL/Skil':>10} {'Parix-C [s]':>12} {'Skil/C':>8}",
    ]
    for r in rows:
        g = int(math.isqrt(r.p))
        out.append(
            f"{g}x{g:<4} {r.n:>5} {r.dpfl_seconds:>10.2f} {r.skil_seconds:>10.2f} "
            f"{r.speedup_vs_dpfl:>10.2f} {r.c_old_seconds:>12.2f} "
            f"{r.ratio_vs_c_old:>8.2f}"
        )
    return "\n".join(out)


def format_table2(cells: list[Table2Cell]) -> str:
    """Render Table 2 in the paper's 3-line-per-grid layout.

    Per (grid, n) cell: Skil absolute seconds (bold in the paper), the
    quotient DPFL/Skil (roman) and the quotient Skil/Parix-C (italics);
    '-' marks configurations that did not fit the 1 MB nodes (as the
    paper's missing DPFL entries for large matrices on small networks).
    """
    def label(c) -> int:
        return c.n_nominal or c.n

    ps = sorted({c.p for c in cells})
    ns = sorted({label(c) for c in cells})
    grid = {(c.p, label(c)): c for c in cells}
    name = {4: "2x2", 16: "4x4", 32: "8x4", 64: "8x8"}

    header = f"{'p':>6} {'':>12}" + "".join(f"{n:>10}" for n in ns)
    out = ["Table 2. Run-time results for Gaussian elimination", header]
    for p in ps:
        abs_row = [f"{name.get(p, p):>6} {'Skil [s]':>12}"]
        dpfl_row = [f"{'':>6} {'DPFL/Skil':>12}"]
        c_row = [f"{'':>6} {'Skil/C':>12}"]
        for n in ns:
            c = grid[(p, n)]
            abs_row.append(f"{c.skil_seconds:>10.2f}")
            ratio = c.dpfl_over_skil
            dpfl_row.append(f"{ratio:>10.2f}" if ratio is not None else f"{'-':>10}")
            c_row.append(f"{c.skil_over_c:>10.2f}")
        out.extend(["".join(abs_row), "".join(dpfl_row), "".join(c_row)])
    return "\n".join(out)


def format_ablation(res) -> str:
    return (
        f"[{res.name}] {res.description}\n"
        f"  measured ratio: {res.measured_ratio:.2f}   "
        f"paper: ~{res.paper_ratio:.1f}\n"
        f"  details: {res.details}"
    )

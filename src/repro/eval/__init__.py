"""Evaluation harness regenerating every table and figure of the paper."""

from repro.eval.experiments import (
    TABLE1_PS,
    TABLE2_NS,
    TABLE2_PS,
    AblationResult,
    Table1Row,
    Table2Cell,
    ablation_equal_c,
    ablation_full_gauss,
    ablation_instantiation,
    figure1,
    table1,
    table2,
)
from repro.eval.figures import ascii_plot, format_figure1, series_csv
from repro.eval.harness import (
    ExperimentResult,
    fits_paper_memory,
    run_gauss,
    run_matmul,
    run_shpaths,
)
from repro.eval.sweeps import (
    ScalingPoint,
    crossover_size,
    format_scaling,
    strong_scaling,
    weak_scaling,
)
from repro.eval.tables import format_ablation, format_table1, format_table2
from repro.eval.trace_report import CostBreakdown, breakdown, format_breakdowns

__all__ = [
    "table1",
    "table2",
    "figure1",
    "Table1Row",
    "Table2Cell",
    "AblationResult",
    "ablation_equal_c",
    "ablation_full_gauss",
    "ablation_instantiation",
    "ablation_topology",
    "ablation_sync_comm",
    "strong_scaling",
    "weak_scaling",
    "crossover_size",
    "ScalingPoint",
    "format_scaling",
    "breakdown",
    "CostBreakdown",
    "format_breakdowns",
    "TABLE1_PS",
    "TABLE2_PS",
    "TABLE2_NS",
    "run_shpaths",
    "run_gauss",
    "run_matmul",
    "fits_paper_memory",
    "ExperimentResult",
    "format_table1",
    "format_table2",
    "format_ablation",
    "format_figure1",
    "ascii_plot",
    "series_csv",
]

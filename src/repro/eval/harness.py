"""Experiment drivers: one simulated run per (application, language, p, n).

Every public function builds a fresh machine, runs the workload, checks
the numeric result against an oracle, and returns the simulated seconds.
The oracle check makes the benchmark harness double as an integration
test: a run whose *result* is wrong never reports a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.gauss import gauss_full, gauss_simple, random_system
from repro.apps.matmul import matmul
from repro.apps.shortest_paths import (
    random_distance_matrix,
    round_up_to_grid,
    shortest_paths_oracle,
    shpaths,
)
from repro.baselines.parix_c import gauss_c, make_c_machine, matmul_c, shpaths_c
from repro.errors import SkilError
from repro.machine.costmodel import DPFL, SKIL, SKIL_CLOSURES, T800_PARSYTEC
from repro.machine.machine import Machine
from repro.skeletons import SkilContext

__all__ = [
    "ExperimentResult",
    "run_shpaths",
    "run_gauss",
    "run_matmul",
    "fits_paper_memory",
    "LANGUAGES",
]

LANGUAGES = ("skil", "dpfl", "parix-c", "parix-c-old", "skil-closures")


@dataclass(frozen=True)
class ExperimentResult:
    app: str
    language: str
    p: int
    n: int
    seconds: float
    messages: int
    bytes_sent: int


def _context(language: str, p: int) -> SkilContext:
    if language == "skil":
        return SkilContext(Machine(p), SKIL)
    if language == "dpfl":
        return SkilContext(Machine(p), DPFL)
    if language == "skil-closures":
        return SkilContext(Machine(p), SKIL_CLOSURES)
    raise SkilError(f"unknown skeleton language {language!r}")


def run_shpaths(language: str, p: int, n: int = 200, seed: int = 0) -> ExperimentResult:
    """One Table 1 cell: shortest paths for an n-node graph on p procs.

    *n* is rounded up to a multiple of sqrt(p), exactly as the paper does
    ("e.g. n = 201 for sqrt(p) = 3").
    """
    g = Machine(p).mesh.rows  # square grid side
    n_eff = round_up_to_grid(n, g)
    dist = random_distance_matrix(n_eff, density=0.25, seed=seed)
    oracle = shortest_paths_oracle(dist)

    if language in ("parix-c", "parix-c-old"):
        old = language == "parix-c-old"
        machine = make_c_machine(p, old=old)
        result, report = shpaths_c(machine, dist, old=old)
    else:
        ctx = _context(language, p)
        result, report = shpaths(ctx, dist)
        machine = ctx.machine
    if not np.allclose(result, oracle):
        raise SkilError(f"shpaths({language}, p={p}, n={n_eff}) produced wrong paths")
    return ExperimentResult(
        "shpaths", language, p, n_eff, report.seconds,
        machine.stats.messages, machine.stats.bytes_sent,
    )


def run_gauss(
    language: str, p: int, n: int, full: bool = False, seed: int = 0
) -> ExperimentResult:
    """One Table 2 cell: n x n Gaussian elimination on p processors.

    ``full=False`` is the paper's measured configuration ("implemented
    without the search and the exchange of the pivot row ... because
    this version had been implemented in DPFL and we wanted to make a
    fair comparison").
    """
    a_mat, rhs = random_system(n, seed=seed)
    x_ref = np.linalg.solve(a_mat, rhs)

    if language in ("parix-c", "parix-c-old"):
        if full:
            raise SkilError("the hand-written C comparator implements only the "
                            "simple variant measured in Table 2")
        machine = make_c_machine(p, old=language == "parix-c-old")
        x, report = gauss_c(machine, a_mat, rhs)
    else:
        ctx = _context(language, p)
        driver = gauss_full if full else gauss_simple
        x, report = driver(ctx, a_mat, rhs)
        machine = ctx.machine
    if not np.allclose(x, x_ref, rtol=1e-6, atol=1e-8):
        raise SkilError(f"gauss({language}, p={p}, n={n}) produced a wrong solution")
    return ExperimentResult(
        "gauss-full" if full else "gauss", language, p, n, report.seconds,
        machine.stats.messages, machine.stats.bytes_sent,
    )


def run_matmul(language: str, p: int, n: int, seed: int = 0) -> ExperimentResult:
    """One ablation-A1 cell: classical n x n matrix multiplication."""
    rng = np.random.default_rng(seed)
    a_mat = rng.uniform(-1.0, 1.0, size=(n, n))
    b_mat = rng.uniform(-1.0, 1.0, size=(n, n))
    ref = a_mat @ b_mat

    if language in ("parix-c", "parix-c-old"):
        machine = make_c_machine(p, old=language == "parix-c-old")
        c_mat, report = matmul_c(machine, a_mat, b_mat)
    else:
        ctx = _context(language, p)
        c_mat, report = matmul(ctx, a_mat, b_mat)
        machine = ctx.machine
    if not np.allclose(c_mat, ref):
        raise SkilError(f"matmul({language}, p={p}, n={n}) produced a wrong product")
    return ExperimentResult(
        "matmul", language, p, n, report.seconds,
        machine.stats.messages, machine.stats.bytes_sent,
    )


def fits_paper_memory(n: int, p: int, language: str = "skil") -> bool:
    """Would the gauss working set fit the Parsytec's 1 MB/node?

    The paper: "Since only 1 MB of memory was available per node, larger
    problem sizes could only be fitted into larger networks."  Gauss
    keeps two n x (n+1) float (4-byte) arrays plus the p x (n+1) pivot
    array; DPFL additionally materialises a map temporary.
    """
    bytes_per_elem = 4  # C float on the T800
    rows = -(-n // p)
    per_node = 2 * rows * (n + 1) * bytes_per_elem + (n + 1) * bytes_per_elem
    if language == "dpfl":
        per_node += rows * (n + 1) * bytes_per_elem  # copy-on-update temp
    return per_node <= T800_PARSYTEC.memory_bytes

"""The ``trace`` subcommand: run one application with full tracing.

Runs a single simulated application on a machine constructed with
``trace_level=2`` (span tracer + metrics + per-rank timeline), prints
the cost analysis — overall shares, exclusive per-skeleton breakdown,
flamegraph rollup, metrics — and optionally writes a Chrome
trace-event JSON loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.gauss import gauss_full, gauss_simple, random_system
from repro.apps.shortest_paths import (
    random_distance_matrix,
    round_up_to_grid,
    shpaths,
)
from repro.errors import SkilError
from repro.eval.trace_report import (
    breakdown,
    format_breakdowns,
    format_skeleton_breakdowns,
    skeleton_breakdowns,
)
from repro.machine.costmodel import SKIL, CostModel
from repro.machine.machine import Machine
from repro.obs import flame_rollup, write_chrome_trace
from repro.skeletons import SkilContext

__all__ = ["TRACE_APPS", "TraceRun", "run_traced", "trace_report_text",
           "run_trace_command", "run_analyze_command"]

#: applications the trace subcommand can run
TRACE_APPS = ("shpaths", "gauss", "gauss-full")


@dataclass
class TraceRun:
    """One traced application run and everything needed to report on it."""

    app: str
    n: int
    machine: Machine
    seconds: float


def run_traced(
    app: str,
    p: int = 9,
    n: int = 48,
    trace_level: int = 2,
    seed: int = 0,
    cost: CostModel | None = None,
    balance_compute: bool = False,
    trace_mode: str = "record",
    stream=None,
    heartbeat_every: float | None = None,
    backend: str | None = None,
    workers: int | None = None,
    profile: bool = False,
) -> TraceRun:
    """Run *app* on a fresh traced machine; returns the run handle.

    *n* is rounded up to whatever divisibility the application needs
    (torus side for shpaths, p for gauss), mirroring the paper's rule.
    *cost* and *balance_compute* exist for the what-if replays of
    ``repro.obs.analysis``: the same application under a perturbed cost
    model and/or with per-step compute averaged across ranks.

    ``trace_mode="stream"`` runs under the memory-bounded streaming
    sinks (optionally configured by *stream*, a
    :class:`~repro.obs.stream.StreamConfig`); *heartbeat_every* then
    attaches a wall-clock progress heartbeat at that interval.

    *backend*/*workers* pick the execution backend (``None`` keeps the
    process default); *profile* attaches the wall-clock profiler
    (``run.machine.profiler`` afterwards).  Neither changes simulated
    seconds.
    """
    if app not in TRACE_APPS:
        raise SkilError(f"unknown trace app {app!r}; choose from {TRACE_APPS}")
    machine = Machine(
        p,
        trace_level=trace_level,
        trace_mode=trace_mode,
        stream=stream,
        backend=backend,
        workers=workers,
        profile=profile,
        **({"cost": cost} if cost is not None else {}),
    )
    if heartbeat_every is not None and machine.stream_obs is not None:
        from repro.obs.stream import ProgressReporter

        machine.stream_obs.heartbeat = ProgressReporter(
            machine, interval=heartbeat_every
        )
    machine.network.balance_compute = balance_compute
    ctx = SkilContext(machine, SKIL)
    if app == "shpaths":
        n_eff = round_up_to_grid(n, machine.mesh.rows)
        dist = random_distance_matrix(n_eff, density=0.25, seed=seed)
        _, report = shpaths(ctx, dist)
    else:
        n_eff = round_up_to_grid(n, p)
        a_mat, rhs = random_system(n_eff, seed=seed)
        driver = gauss_full if app == "gauss-full" else gauss_simple
        _, report = driver(ctx, a_mat, rhs)
    return TraceRun(app=app, n=n_eff, machine=machine, seconds=report.seconds)


def trace_report_text(run: TraceRun) -> str:
    """The full plain-text analysis of one traced run.

    Record mode prints the exclusive per-skeleton table and the
    flamegraph rollup (both need the span tree); stream mode prints the
    inclusive streamed table with duration quantiles and the
    aggregated-mode analysis instead.
    """
    m = run.machine
    label = f"{run.app} p={m.p} n={run.n}"
    parts = [format_breakdowns([breakdown(label, run.seconds, m.stats)]), ""]
    if m.stream_obs is not None:
        from repro.eval.trace_report import (
            format_stream_skeleton_breakdowns,
            stream_skeleton_breakdowns,
        )

        parts += [
            "per-skeleton breakdown (streamed, inclusive):",
            format_stream_skeleton_breakdowns(
                stream_skeleton_breakdowns(m.stream_obs)
            ),
        ]
        if m.trace_level >= 2:
            from repro.obs.analysis import analyze_stream, format_stream_analysis

            parts += ["", format_stream_analysis(analyze_stream(m))]
    else:
        parts += [
            "per-skeleton breakdown (exclusive):",
            format_skeleton_breakdowns(skeleton_breakdowns(m.tracer)),
            "",
            "flamegraph rollup:",
            flame_rollup(m.tracer, timeline=m.timeline),
        ]
    if m.metrics is not None:
        parts += ["", "metrics:", m.metrics.format()]
    return "\n".join(parts)


def run_trace_command(
    app: str,
    p: int = 9,
    n: int = 48,
    out: str | None = None,
    trace_level: int = 2,
    seed: int = 0,
    metrics_out: str | None = None,
    stream: bool = False,
    sample_size: int = 1024,
    heartbeat_every: float | None = None,
    profile: bool = False,
    profile_out: str | None = None,
) -> str:
    """Drive one traced run; returns the report text, writes *out* JSON.

    With *stream* the run uses ``trace_mode="stream"`` and *out* (the
    ``--trace`` file) becomes the streaming JSONL event spill — the
    stream retains no recording, so there is no Chrome JSON to write
    after the fact; events spill as they happen instead.

    With *profile* the wall profiler rides along: the Chrome JSON gains
    the dual-clock wall tracks and *profile_out* receives the
    ``repro-profile/1`` snapshot.
    """
    stream_cfg = None
    if stream:
        from repro.obs.stream import StreamConfig

        stream_cfg = StreamConfig(
            sample_size=sample_size, seed=seed, spill_path=out
        )
    run = run_traced(
        app,
        p=p,
        n=n,
        trace_level=trace_level,
        seed=seed,
        trace_mode="stream" if stream else "record",
        stream=stream_cfg,
        heartbeat_every=heartbeat_every,
        profile=profile,
    )
    text = trace_report_text(run)
    if out is not None:
        if stream:
            run.machine.stream_obs.close()
            text += (
                f"\n\nstreaming JSONL event spill written to {out} "
                "(rotated segments keep the tail of long runs)"
            )
        else:
            write_chrome_trace(out, run.machine)
            text += f"\n\nChrome trace written to {out} (open in Perfetto)"
    if metrics_out is not None:
        if run.machine.metrics is None:
            raise SkilError(
                "--metrics-out needs trace_level >= 1 (no metrics registry)"
            )
        with open(metrics_out, "w", encoding="utf-8") as fh:
            fh.write(run.machine.metrics.render_text())
        text += f"\n\nPrometheus metrics written to {metrics_out}"
    if profile_out is not None:
        from repro.eval.cliopts import write_obs_artifacts

        for line in write_obs_artifacts(
            run.machine, None, None, profile_out
        ):
            text += f"\n\n{line}"
    return text


def run_analyze_command(
    app: str,
    p: int = 9,
    n: int = 48,
    seed: int = 0,
    top: int = 8,
    whatif: bool = True,
    json_out: str | None = None,
    trace_out: str | None = None,
    metrics_out: str | None = None,
    profile: bool = False,
    profile_out: str | None = None,
) -> str:
    """Drive one traced run through the critical-path analysis.

    Prints the happens-before/critical-path report — makespan
    attribution, per-skeleton shares, rank loads, straggler skew, the
    top blocking message edges — and (unless *whatif* is off) replays
    the run under each perturbed cost model to cross-check the
    attribution bounds.  *json_out* additionally writes the analysis
    snapshot (``repro-analyze/1``) for regression comparisons.
    """
    import json

    from repro.obs.analysis import analyze_machine, run_whatif

    run = run_traced(app, p=p, n=n, seed=seed, profile=profile)
    analysis = analyze_machine(run.machine)
    whatifs = None
    if whatif:
        def _replay(cost: CostModel, balance: bool) -> float:
            rerun = run_traced(
                app, p=p, n=n, trace_level=0, seed=seed,
                cost=cost, balance_compute=balance,
            )
            return rerun.machine.time

        whatifs = run_whatif(analysis, run.machine.cost, _replay)
    from repro.obs.analysis import format_analysis

    header = f"analyze {app} p={p} n={run.n} (seed {seed})"
    text = header + "\n" + "=" * len(header) + "\n"
    text += format_analysis(analysis, whatifs, top=top)
    if json_out is not None:
        snap = analysis.snapshot()
        snap["app"] = app
        snap["n"] = run.n
        snap["seed"] = seed
        if whatifs:
            snap["whatif"] = [
                {
                    "scenario": w.scenario,
                    "makespan_s": w.makespan,
                    "delta_s": w.delta,
                    "bound_s": w.bound,
                    "within_bound": w.within_bound,
                }
                for w in whatifs
            ]
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")
        text += f"\n\nanalysis snapshot written to {json_out}"
    if trace_out is not None or metrics_out is not None or profile_out is not None:
        from repro.eval.cliopts import write_obs_artifacts

        for line in write_obs_artifacts(
            run.machine, trace_out, metrics_out, profile_out
        ):
            text += f"\n\n{line}"
    return text

"""Figure 1 rendering: ASCII scatter plots plus CSV series.

The paper plots, for every matrix size, the speed-up of Skil relative to
DPFL (left panel) and the slow-down relative to Parix-C (right panel)
against the number of processors.  We render the same two panels as
ASCII plots (one mark per series) and can emit the raw series as CSV so
any plotting tool can regenerate the figure.
"""

from __future__ import annotations

import io

__all__ = ["ascii_plot", "series_csv", "format_figure1"]

_MARKS = "ox+*#@%&"


def ascii_plot(
    series: dict[int, list[tuple[int, float]]],
    title: str,
    width: int = 64,
    height: int = 18,
    y_max: float | None = None,
) -> str:
    """Plot ratio-vs-processors series as ASCII art.

    *series* maps a label (matrix size n) to ``(p, ratio)`` points.
    """
    pts = [pt for s in series.values() for pt in s]
    if not pts:
        return f"{title}\n(no data)"
    x_min = min(p for p, _ in pts)
    x_max = max(p for p, _ in pts)
    if y_max is None:
        y_max = max(v for _, v in pts) * 1.1
    y_min = 0.0
    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        if x_max == x_min:
            return 0
        return min(width - 1, int((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(height - 1, max(0, height - 1 - int(frac * (height - 1))))

    legend = []
    for i, (label, points) in enumerate(sorted(series.items())):
        mark = _MARKS[i % len(_MARKS)]
        legend.append(f"{mark} n={label}")
        for p, v in points:
            grid[to_row(v)][to_col(p)] = mark

    out = io.StringIO()
    out.write(title + "\n")
    for r, row in enumerate(grid):
        y_val = y_max - (y_max - y_min) * r / (height - 1)
        out.write(f"{y_val:>6.1f} |" + "".join(row) + "\n")
    out.write(" " * 7 + "+" + "-" * width + "\n")
    out.write(" " * 8 + f"{x_min:<10}{'processors':^44}{x_max:>10}\n")
    out.write("legend: " + "   ".join(legend) + "\n")
    return out.getvalue()


def series_csv(series: dict[int, list[tuple[int, float]]], value_name: str) -> str:
    """Emit the series as CSV: n, p, <value_name>."""
    lines = [f"n,p,{value_name}"]
    for n in sorted(series):
        for p, v in series[n]:
            lines.append(f"{n},{p},{v:.4f}")
    return "\n".join(lines)


def format_figure1(speedups, slowdowns) -> str:
    left = ascii_plot(
        speedups, "Figure 1 (left): relative speed-ups Skil vs. DPFL"
    )
    right = ascii_plot(
        slowdowns, "Figure 1 (right): relative slow-downs Skil vs. Parix-C"
    )
    return left + "\n" + right
